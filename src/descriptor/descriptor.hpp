// PEPPHER XML descriptor types (§II of the paper): interfaces,
// implementation variants, platforms, and the application main module — plus
// the repository that stores them and lets the composition tool explore
// components bottom-up.
//
// Descriptors are XML documents (non-intrusive annotation: the paper prefers
// external XML over pragmas for separation of concerns). The schema used
// here:
//
//   <peppher-interface name="spmv">
//     <function returnType="void">
//       <param name="values" type="const float*" accessMode="read"/>
//       ...
//     </function>
//     <templateParam name="T"/>                       (generic interfaces)
//     <performanceMetrics><metric name="avg_exec_time"/></performanceMetrics>
//     <contextParams><contextParam name="nnz" min="0" max="1e9"/></contextParams>
//   </peppher-interface>
//
//   <peppher-implementation name="spmv_cusp" interface="spmv">
//     <platform language="cuda" target="TeslaC2050"/>
//     <sources><source file="cuda/spmv_cusp.cu"/></sources>
//     <compilation command="nvcc" options="-O3 -arch=sm_20"/>
//     <requires><interface name="reduce"/></requires>
//     <resources minMemoryMB="1" maxMemoryMB="2048"/>
//     <prediction function="spmv_cusp_predict"/>
//     <tunables><tunable name="block_size" values="64,128,256" default="128"/></tunables>
//     <constraints><constraint param="nnz" min="1024"/></constraints>
//   </peppher-implementation>
//
//   <peppher-platform name="TeslaC2050" kind="cuda">
//     <property name="peak_gflops" value="1030"/> ...
//   </peppher-platform>
//
//   <peppher-main name="spmv_app" source="main.cpp">
//     <target platform="xeon-e5520+c2050"/>
//     <goal metric="exec_time"/>
//     <uses interface="spmv"/>
//     <composition useHistoryModels="true" scheduler="dmda">
//       <disableImpls name="spmv_slow"/>
//     </composition>
//   </peppher-main>
#pragma once

#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analyze/diagnostics.hpp"
#include "runtime/types.hpp"
#include "xml/xml.hpp"

namespace peppher::desc {

/// One parameter of an interface function.
struct ParamDesc {
  std::string name;
  std::string type;  ///< C++ spelling, e.g. "const float*"
  rt::AccessMode access = rt::AccessMode::kRead;
  diag::SourceLocation loc;  ///< the <param> element in the descriptor file

  /// For raw-pointer operands: element count as a C++ expression over the
  /// interface's integer parameters (e.g. "nnz" or "nrows*ncols"). The
  /// entry-wrapper generator uses it to register the memory with the
  /// runtime. Smart-container operands carry their own size; value
  /// parameters leave it empty.
  std::string size_expr;

  /// Operand parameters (pointers / smart containers) become runtime data
  /// handles; value parameters are packed into the task argument blob.
  bool is_operand() const noexcept;

  /// True if this operand is a smart container (Vector/Matrix/Scalar).
  bool is_container() const noexcept;

  /// Element type of an operand ("float" for "const float*" and for
  /// "Vector<float>&"); empty for value parameters.
  std::string element_type() const;
};

/// A call-context property that may influence variant selection (§III).
struct ContextParamDesc {
  std::string name;
  std::optional<double> min;
  std::optional<double> max;
};

/// A PEPPHER interface descriptor.
struct InterfaceDescriptor {
  std::string name;
  std::string return_type = "void";
  diag::SourceLocation loc;  ///< the root element in the descriptor file
  std::vector<ParamDesc> params;
  std::vector<std::string> template_params;       ///< generic interfaces
  std::vector<std::string> performance_metrics;   ///< e.g. "avg_exec_time"
  std::vector<ContextParamDesc> context_params;

  bool is_generic() const noexcept { return !template_params.empty(); }

  static InterfaceDescriptor from_xml(const xml::Element& element);
  std::unique_ptr<xml::Element> to_xml() const;

  /// The C/C++ prototype this interface declares ("void spmv(...);").
  std::string prototype() const;
};

/// An exposed tunable parameter of an implementation variant.
struct TunableDesc {
  std::string name;
  std::vector<std::string> values;
  std::string default_value;
};

/// A selectability constraint on a context parameter (§II: "additional
/// constraints for component selectability, e.g. parameter ranges").
struct ConstraintDesc {
  std::string param;
  std::optional<double> min;
  std::optional<double> max;
  diag::SourceLocation loc;  ///< the <constraint> element

  bool admits(double value) const noexcept {
    return (!min || value >= *min) && (!max || value <= *max);
  }
};

/// A PEPPHER implementation-variant descriptor.
struct ImplementationDescriptor {
  std::string name;
  std::string interface_name;
  diag::SourceLocation loc;  ///< the root element in the descriptor file
  std::string language;         ///< "cpu", "openmp", "cuda", "opencl"
  std::string target_platform;  ///< platform descriptor name (may be empty)
  std::vector<std::string> sources;
  std::string compile_command;
  std::string compile_options;
  std::vector<std::string> required_interfaces;
  std::optional<std::string> prediction_function;
  std::vector<TunableDesc> tunables;
  std::vector<ConstraintDesc> constraints;
  double min_memory_mb = 0.0;
  double max_memory_mb = 0.0;

  /// The runtime architecture this variant executes on.
  rt::Arch arch() const { return rt::parse_arch(language); }

  static ImplementationDescriptor from_xml(const xml::Element& element);
  std::unique_ptr<xml::Element> to_xml() const;
};

/// A platform descriptor (Sandrieser et al. [6]): free-form properties
/// looked up by the composition tool and component developers.
struct PlatformDescriptor {
  std::string name;
  std::string kind;  ///< "cpu", "cuda", "opencl"
  diag::SourceLocation loc;  ///< the root element in the descriptor file
  std::map<std::string, std::string> properties;

  std::optional<double> numeric_property(const std::string& key) const;

  static PlatformDescriptor from_xml(const xml::Element& element);
  std::unique_ptr<xml::Element> to_xml() const;
};

/// One argument binding of a declared component call: binds interface
/// parameter `param` to the application-level data container `data`.
struct CallArgDesc {
  std::string param;
  std::string data;
  diag::SourceLocation loc;  ///< the <arg> element
};

/// One component call of the main module's declared call sequence:
///
///   <calls>
///     <call interface="spmv">
///       <arg param="values" data="A"/> <arg param="y" data="y"/> ...
///     </call>
///   </calls>
///
/// The sequence is optional; when present, the lint hazard analysis
/// symbolically executes it and reports data races the declared access
/// modes would let the runtime schedule concurrently.
struct CallDesc {
  std::string interface_name;
  std::vector<CallArgDesc> args;
  /// Cluster node the call is pinned to (0 = the primary node). Only
  /// meaningful when the verifier runs with a multi-node cluster profile;
  /// the single-host tools ignore it.
  int node = 0;
  /// Declared stencil access radius: how many elements past its own slice
  /// boundary the call reads from a distributed-partitioned operand (0 = no
  /// ghost accesses). Checked against the partitioning's halo width (PL080)
  /// and the exchange protocol (PL081).
  int radius = 0;
  diag::SourceLocation loc;  ///< the <call> element
};

/// One explicitly declared owned range of a distributed partitioning:
///
///   <partitioned data="g" nodes="2" halo="1" elements="100">
///     <slice node="0" begin="0" end="50"/>
///     <slice node="1" begin="50" end="100"/>
///   </partitioned>
///
/// When present, the verifier checks the ranges tile [0, elements) exactly
/// (PL084). Without explicit slices the partitioning is an even block
/// distribution, which always covers.
struct SliceDecl {
  int node = 0;
  long long begin = 0;
  long long end = 0;
  diag::SourceLocation loc;  ///< the <slice> element
};

/// One statement of the main module's declared call sequence. Besides plain
/// component calls, the sequence may declare structured control flow and
/// data-management operations, so the static verifier (peppher-verify) can
/// reason about every execution path:
///
///   <calls>
///     <partition data="x" parts="4"/>
///     <loop count="100">
///       <call interface="spmv"> ... </call>
///       <if>
///         <call interface="norm"> ... </call>
///         <else> <call interface="norm_cpu"> ... </call> </else>
///       </if>
///     </loop>
///     <unpartition data="x"/>
///     <prefetch data="x" on="device"/>
///   </calls>
///
/// `<loop count>` declares the trip count (>= 1; the verifier only needs
/// "executes at least once and may repeat"). `<if>` children form the then
/// branch; an optional `<else>` — which must be the last child — holds the
/// alternative. The branch condition itself is runtime data the descriptor
/// does not model: the verifier explores both paths.
///
/// Distributed statements (verified against a `peppher-cluster` profile,
/// docs/verify.md "Distributed verification"):
///
///   <partitioned data="g" nodes="2" halo="1"/>     scatter over the cluster
///   <exchange data="g"/>                           refresh the ghost regions
///   <repartition data="g" nodes="4" halo="1"/>     change the distribution
///   <gather data="g"/>                             collect to the primary host
///
/// `<partitioned>`/`<repartition>` may declare explicit owned ranges via
/// `<slice>` children (see SliceDecl); `<exchange>` takes an optional
/// `width` (defaults to the declared halo).
struct CallNode {
  enum class Kind {
    kCall,         ///< component call
    kLoop,         ///< <loop count="N"> body </loop>
    kIf,           ///< <if> then... <else> else... </else> </if>
    kPartition,    ///< <partition data="x" parts="N"/>
    kUnpartition,  ///< <unpartition data="x"/>
    kPrefetch,     ///< <prefetch data="x" on="host|device"/>
    kPartitioned,  ///< <partitioned data="x" nodes="N" halo="H"/>
    kExchange,     ///< <exchange data="x" width="W"/>
    kRepartition,  ///< <repartition data="x" nodes="N" halo="H"/>
    kGather,       ///< <gather data="x"/>
  };
  Kind kind = Kind::kCall;
  CallDesc call;                    ///< kCall
  int loop_count = 0;               ///< kLoop: declared trip count (>= 1)
  std::string data;  ///< kPartition/kUnpartition/kPrefetch/distributed forms
  int parts = 0;                    ///< kPartition
  bool prefetch_to_device = true;   ///< kPrefetch: on="device" (default)
  int nodes = 0;            ///< kPartitioned/kRepartition: owning node count
  int halo = 0;             ///< kPartitioned/kRepartition: ghost width
  int exchange_width = -1;  ///< kExchange: ghost width (-1 = declared halo)
  long long elements = 0;   ///< kPartitioned/kRepartition: extent, with slices
  std::vector<SliceDecl> slices;    ///< explicit owned ranges (may be empty)
  std::vector<CallNode> body;       ///< kLoop body / kIf then branch
  std::vector<CallNode> else_body;  ///< kIf else branch (may be empty)
  diag::SourceLocation loc;         ///< the statement element
};

/// The application main-module descriptor.
struct MainDescriptor {
  std::string name;
  std::string source;           ///< main translation unit, e.g. "main.cpp"
  diag::SourceLocation loc;     ///< the root element in the descriptor file
  std::string target_platform;  ///< machine name, e.g. "xeon-e5520+c2050"
  std::string optimization_goal = "exec_time";
  std::vector<std::string> uses;  ///< interfaces invoked from main

  /// The declared call sequence as written: a statement tree with control
  /// flow (see CallNode). Empty when the main module declares no <calls>.
  std::vector<CallNode> call_tree;

  /// Every component call of `call_tree`, flattened in document order (loop
  /// bodies and both branches of an <if> appear once). The straight-line
  /// hazard checks consume this view; path-sensitive checks walk the tree.
  std::vector<CallDesc> calls;

  /// True when `call_tree` contains a <loop> or <if>: the straight-line
  /// window checks (PL031–PL033, PL052) stand down in favour of the
  /// path-sensitive verifier, which models the actual paths.
  bool has_control_flow = false;

  /// True when `call_tree` contains a distributed statement (<partitioned>,
  /// <exchange>, <repartition>, <gather>): run_lint always runs the
  /// coherence verifier then, since only the verifier models the
  /// distributed protocol (PL080–PL087).
  bool has_distributed = false;
  bool use_history_models = true;
  std::string scheduler = "dmda";
  std::vector<std::string> disabled_impls;  ///< user-guided static narrowing

  static MainDescriptor from_xml(const xml::Element& element);
  std::unique_ptr<xml::Element> to_xml() const;
};

/// The interfaces/components/platforms repository (§II): stores descriptors
/// and lets the composition tool navigate the directory structure and locate
/// files automatically (§IV-C "global registry").
class Repository {
 public:
  // -- population ------------------------------------------------------------

  /// Recursively loads every *.xml under `root`, dispatching on the root
  /// element name; files with unknown root elements are ignored. Remembers
  /// the directory each descriptor came from (for locating sources).
  void scan(const std::filesystem::path& root);

  /// Parses one descriptor file.
  void load_file(const std::filesystem::path& path);

  /// Parses descriptor text (dispatching on the root element). `origin` is
  /// the directory sources are resolved against; `source_file` names the
  /// file for diagnostics locations (both may be empty for in-memory text).
  void load_text(std::string_view text, const std::filesystem::path& origin = {},
                 const std::string& source_file = {});

  void add(InterfaceDescriptor interface_desc);
  void add(ImplementationDescriptor impl_desc);
  void add(PlatformDescriptor platform_desc);
  void add(MainDescriptor main_desc);

  // -- lookup ------------------------------------------------------------------

  const InterfaceDescriptor* find_interface(const std::string& name) const;
  const ImplementationDescriptor* find_implementation(const std::string& name) const;
  const PlatformDescriptor* find_platform(const std::string& name) const;
  const MainDescriptor* main_module() const;

  /// Implementation variants of `interface_name`, in load order.
  std::vector<const ImplementationDescriptor*> implementations_of(
      const std::string& interface_name) const;

  std::vector<const InterfaceDescriptor*> interfaces() const;
  std::vector<const PlatformDescriptor*> platforms() const;

  /// Directory the named descriptor was loaded from (empty if added
  /// programmatically).
  std::filesystem::path origin_of(const std::string& descriptor_name) const;

  /// Interfaces sorted bottom-up in the components' required-interfaces
  /// relation lifted to interfaces (§III: the tool processes interfaces "in
  /// reverse order of their components' required interfaces relation").
  /// Throws Error(kInvalidState) on a dependency cycle.
  std::vector<const InterfaceDescriptor*> interfaces_bottom_up() const;

  /// Consistency diagnostics: dangling interface references, variant name
  /// clashes, empty interfaces, unknown platforms, undeclared parameters in
  /// constraints and size expressions. Diagnostics carry stable PL04x/PL05x
  /// codes and point at the offending descriptor element. Empty means
  /// consistent.
  std::vector<diag::Diagnostic> diagnose() const;

  /// diagnose(), rendered one line per problem (legacy convenience).
  std::vector<std::string> validate() const;

 private:
  std::map<std::string, InterfaceDescriptor> interfaces_;
  std::vector<std::string> interface_order_;
  std::map<std::string, ImplementationDescriptor> implementations_;
  std::vector<std::string> implementation_order_;
  /// Implementation names registered more than once (later wins); reported
  /// by validate().
  std::set<std::string> duplicate_implementations_;
  std::map<std::string, PlatformDescriptor> platforms_;
  std::optional<MainDescriptor> main_;
  std::map<std::string, std::filesystem::path> origins_;
};

}  // namespace peppher::desc
