#include "descriptor/descriptor.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <set>

#include "support/error.hpp"
#include "support/fs.hpp"
#include "support/strings.hpp"

namespace peppher::desc {

namespace {

bool parse_bool(std::string_view text, bool fallback) {
  const std::string lower = strings::to_lower(strings::trim(text));
  if (lower == "true" || lower == "1" || lower == "yes") return true;
  if (lower == "false" || lower == "0" || lower == "no") return false;
  return fallback;
}

std::optional<double> optional_attr_double(const xml::Element& element,
                                           std::string_view key) {
  if (auto raw = element.attribute(key)) return strings::to_double(*raw);
  return std::nullopt;
}

diag::SourceLocation loc_of(const xml::Element& element) {
  return diag::SourceLocation{"", element.line(), element.column()};
}

[[nodiscard]] ParseError schema_error(const xml::Element& element,
                                      const std::string& message) {
  return ParseError(message, element.line(), element.column());
}

int required_int_attribute(const xml::Element& element, std::string_view key) {
  const std::string raw = element.required_attribute(key);
  const std::optional<double> value = strings::to_double(raw);
  if (!value || *value != static_cast<double>(static_cast<long long>(*value))) {
    throw schema_error(element, "<" + element.name() + "> attribute '" +
                                    std::string(key) + "' must be an integer, "
                                    "got '" + raw + "'");
  }
  return static_cast<int>(*value);
}

/// `key` parsed as a non-negative integer when present, else `fallback`.
int optional_nonneg_int_attribute(const xml::Element& element,
                                  std::string_view key, int fallback) {
  if (!element.attribute(key)) return fallback;
  const int value = required_int_attribute(element, key);
  if (value < 0) {
    throw schema_error(element, "<" + element.name() + "> attribute '" +
                                    std::string(key) +
                                    "' must be non-negative, got " +
                                    std::to_string(value));
  }
  return value;
}

CallDesc parse_call(const xml::Element& element) {
  CallDesc c;
  c.interface_name = element.required_attribute("interface");
  c.node = optional_nonneg_int_attribute(element, "node", 0);
  c.radius = optional_nonneg_int_attribute(element, "radius", 0);
  c.loc = loc_of(element);
  for (const xml::Element* arg : element.children("arg")) {
    CallArgDesc a;
    a.param = arg->required_attribute("param");
    a.data = arg->required_attribute("data");
    a.loc = loc_of(*arg);
    c.args.push_back(std::move(a));
  }
  return c;
}

/// Parses the shared schema of <partitioned> and <repartition>: the owning
/// node count, halo width, and optional explicit <slice> children (which
/// require an `elements` extent so coverage is checkable).
void parse_distribution(const xml::Element& element, CallNode& node) {
  node.data = element.required_attribute("data");
  node.nodes = required_int_attribute(element, "nodes");
  if (node.nodes < 1) {
    throw schema_error(element, "<" + element.name() +
                                    "> nodes must be at least 1, got " +
                                    std::to_string(node.nodes));
  }
  node.halo = optional_nonneg_int_attribute(element, "halo", 0);
  for (const xml::Element* slice : element.children("slice")) {
    SliceDecl decl;
    decl.node = required_int_attribute(*slice, "node");
    if (decl.node < 0 || decl.node >= node.nodes) {
      throw schema_error(*slice,
                         "<slice> node " + std::to_string(decl.node) +
                             " is outside the declared partitioning (nodes=" +
                             std::to_string(node.nodes) + ")");
    }
    decl.begin = required_int_attribute(*slice, "begin");
    decl.end = required_int_attribute(*slice, "end");
    if (decl.begin < 0 || decl.end <= decl.begin) {
      throw schema_error(*slice, "<slice> range [" +
                                     std::to_string(decl.begin) + ", " +
                                     std::to_string(decl.end) +
                                     ") is empty or negative");
    }
    decl.loc = loc_of(*slice);
    node.slices.push_back(decl);
  }
  if (!node.slices.empty()) {
    node.elements = required_int_attribute(element, "elements");
    if (node.elements < 1) {
      throw schema_error(element, "<" + element.name() +
                                      "> elements must be at least 1, got " +
                                      std::to_string(node.elements));
    }
    for (const SliceDecl& decl : node.slices) {
      if (decl.end > node.elements) {
        throw schema_error(element,
                           "<slice> range [" + std::to_string(decl.begin) +
                               ", " + std::to_string(decl.end) +
                               ") exceeds the declared elements (" +
                               std::to_string(node.elements) + ")");
      }
    }
  } else if (element.attribute("elements")) {
    throw schema_error(element, "<" + element.name() +
                                    "> declares elements but no <slice> "
                                    "children — drop the attribute or "
                                    "declare the owned ranges");
  }
}

/// Parses the statement children of <calls>, <loop> or <if> recursively.
/// `inside_if` allows a trailing <else>, consumed into `else_out`.
std::vector<CallNode> parse_statements(const xml::Element& parent,
                                       bool inside_if,
                                       std::vector<CallNode>* else_out) {
  std::vector<CallNode> out;
  bool saw_else = false;
  for (const std::unique_ptr<xml::Element>& stmt_owner : parent.all_children()) {
    const xml::Element* stmt = stmt_owner.get();
    if (saw_else) {
      throw schema_error(*stmt, "<else> must be the last child of <if>, "
                                "found <" + stmt->name() + "> after it");
    }
    CallNode node;
    node.loc = loc_of(*stmt);
    if (stmt->name() == "call") {
      node.kind = CallNode::Kind::kCall;
      node.call = parse_call(*stmt);
    } else if (stmt->name() == "loop") {
      node.kind = CallNode::Kind::kLoop;
      node.loop_count = required_int_attribute(*stmt, "count");
      if (node.loop_count < 1) {
        throw schema_error(*stmt,
                           "<loop> count must be at least 1, got " +
                               std::to_string(node.loop_count));
      }
      node.body = parse_statements(*stmt, /*inside_if=*/false, nullptr);
    } else if (stmt->name() == "if") {
      node.kind = CallNode::Kind::kIf;
      node.body = parse_statements(*stmt, /*inside_if=*/true, &node.else_body);
    } else if (stmt->name() == "else") {
      if (!inside_if) {
        throw schema_error(*stmt, "<else> outside <if>");
      }
      saw_else = true;
      *else_out = parse_statements(*stmt, /*inside_if=*/false, nullptr);
      continue;
    } else if (stmt->name() == "partition") {
      node.kind = CallNode::Kind::kPartition;
      node.data = stmt->required_attribute("data");
      node.parts = required_int_attribute(*stmt, "parts");
      if (node.parts < 1) {
        throw schema_error(*stmt, "<partition> parts must be at least 1, got " +
                                      std::to_string(node.parts));
      }
    } else if (stmt->name() == "unpartition") {
      node.kind = CallNode::Kind::kUnpartition;
      node.data = stmt->required_attribute("data");
    } else if (stmt->name() == "prefetch") {
      node.kind = CallNode::Kind::kPrefetch;
      node.data = stmt->required_attribute("data");
      const std::string on = stmt->attribute("on").value_or("device");
      if (on != "host" && on != "device") {
        throw schema_error(*stmt, "<prefetch> attribute 'on' must be 'host' "
                                  "or 'device', got '" + on + "'");
      }
      node.prefetch_to_device = on == "device";
    } else if (stmt->name() == "partitioned") {
      node.kind = CallNode::Kind::kPartitioned;
      parse_distribution(*stmt, node);
    } else if (stmt->name() == "repartition") {
      node.kind = CallNode::Kind::kRepartition;
      parse_distribution(*stmt, node);
    } else if (stmt->name() == "exchange") {
      node.kind = CallNode::Kind::kExchange;
      node.data = stmt->required_attribute("data");
      node.exchange_width = optional_nonneg_int_attribute(*stmt, "width", -1);
    } else if (stmt->name() == "gather") {
      node.kind = CallNode::Kind::kGather;
      node.data = stmt->required_attribute("data");
    } else {
      throw schema_error(*stmt, "unknown element <" + stmt->name() +
                                    "> in the <calls> section");
    }
    out.push_back(std::move(node));
  }
  return out;
}

void flatten_calls(const std::vector<CallNode>& nodes,
                   std::vector<CallDesc>* calls, bool* has_control_flow,
                   bool* has_distributed) {
  for (const CallNode& node : nodes) {
    switch (node.kind) {
      case CallNode::Kind::kCall:
        calls->push_back(node.call);
        break;
      case CallNode::Kind::kLoop:
        *has_control_flow = true;
        flatten_calls(node.body, calls, has_control_flow, has_distributed);
        break;
      case CallNode::Kind::kIf:
        *has_control_flow = true;
        flatten_calls(node.body, calls, has_control_flow, has_distributed);
        flatten_calls(node.else_body, calls, has_control_flow,
                      has_distributed);
        break;
      case CallNode::Kind::kPartition:
      case CallNode::Kind::kUnpartition:
      case CallNode::Kind::kPrefetch:
        break;
      case CallNode::Kind::kPartitioned:
      case CallNode::Kind::kExchange:
      case CallNode::Kind::kRepartition:
      case CallNode::Kind::kGather:
        *has_distributed = true;
        break;
    }
  }
}

void serialize_statements(const std::vector<CallNode>& nodes,
                          xml::Element& parent) {
  for (const CallNode& node : nodes) {
    switch (node.kind) {
      case CallNode::Kind::kCall: {
        xml::Element& call = parent.append_child("call");
        call.set_attribute("interface", node.call.interface_name);
        if (node.call.node != 0) {
          call.set_attribute("node", std::to_string(node.call.node));
        }
        if (node.call.radius != 0) {
          call.set_attribute("radius", std::to_string(node.call.radius));
        }
        for (const CallArgDesc& a : node.call.args) {
          xml::Element& arg = call.append_child("arg");
          arg.set_attribute("param", a.param);
          arg.set_attribute("data", a.data);
        }
        break;
      }
      case CallNode::Kind::kLoop: {
        xml::Element& loop = parent.append_child("loop");
        loop.set_attribute("count", std::to_string(node.loop_count));
        serialize_statements(node.body, loop);
        break;
      }
      case CallNode::Kind::kIf: {
        xml::Element& branch = parent.append_child("if");
        serialize_statements(node.body, branch);
        if (!node.else_body.empty()) {
          serialize_statements(node.else_body, branch.append_child("else"));
        }
        break;
      }
      case CallNode::Kind::kPartition: {
        xml::Element& stmt = parent.append_child("partition");
        stmt.set_attribute("data", node.data);
        stmt.set_attribute("parts", std::to_string(node.parts));
        break;
      }
      case CallNode::Kind::kUnpartition:
        parent.append_child("unpartition").set_attribute("data", node.data);
        break;
      case CallNode::Kind::kPrefetch: {
        xml::Element& stmt = parent.append_child("prefetch");
        stmt.set_attribute("data", node.data);
        stmt.set_attribute("on", node.prefetch_to_device ? "device" : "host");
        break;
      }
      case CallNode::Kind::kPartitioned:
      case CallNode::Kind::kRepartition: {
        xml::Element& stmt = parent.append_child(
            node.kind == CallNode::Kind::kPartitioned ? "partitioned"
                                                      : "repartition");
        stmt.set_attribute("data", node.data);
        stmt.set_attribute("nodes", std::to_string(node.nodes));
        stmt.set_attribute("halo", std::to_string(node.halo));
        if (!node.slices.empty()) {
          stmt.set_attribute("elements", std::to_string(node.elements));
          for (const SliceDecl& decl : node.slices) {
            xml::Element& slice = stmt.append_child("slice");
            slice.set_attribute("node", std::to_string(decl.node));
            slice.set_attribute("begin", std::to_string(decl.begin));
            slice.set_attribute("end", std::to_string(decl.end));
          }
        }
        break;
      }
      case CallNode::Kind::kExchange: {
        xml::Element& stmt = parent.append_child("exchange");
        stmt.set_attribute("data", node.data);
        if (node.exchange_width >= 0) {
          stmt.set_attribute("width", std::to_string(node.exchange_width));
        }
        break;
      }
      case CallNode::Kind::kGather:
        parent.append_child("gather").set_attribute("data", node.data);
        break;
    }
  }
}

void set_statement_files(std::vector<CallNode>& nodes,
                         const std::string& source_file) {
  for (CallNode& node : nodes) {
    node.loc.file = source_file;
    node.call.loc.file = source_file;
    for (CallArgDesc& a : node.call.args) a.loc.file = source_file;
    for (SliceDecl& decl : node.slices) decl.loc.file = source_file;
    set_statement_files(node.body, source_file);
    set_statement_files(node.else_body, source_file);
  }
}

/// C-like identifiers appearing in a size expression ("nrows*ncols" ->
/// {"nrows","ncols"}); "sizeof" is not reported.
std::vector<std::string> identifiers_in(std::string_view expr) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < expr.size()) {
    const char c = expr[i];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < expr.size() &&
             (std::isalnum(static_cast<unsigned char>(expr[i])) ||
              expr[i] == '_')) {
        ++i;
      }
      std::string ident(expr.substr(start, i - start));
      if (ident != "sizeof") out.push_back(std::move(ident));
    } else {
      ++i;
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// ParamDesc / InterfaceDescriptor
// ---------------------------------------------------------------------------

bool ParamDesc::is_operand() const noexcept {
  // Pointers and smart containers carry payload data; references to
  // containers likewise. Value parameters are call context / argument blob.
  if (type.find('*') != std::string::npos) return true;
  return is_container();
}

bool ParamDesc::is_container() const noexcept {
  return type.find("Vector<") != std::string::npos ||
         type.find("Matrix<") != std::string::npos ||
         type.find("Scalar<") != std::string::npos;
}

std::string ParamDesc::element_type() const {
  if (is_container()) {
    const std::size_t open = type.find('<');
    const std::size_t close = type.rfind('>');
    if (open != std::string::npos && close != std::string::npos && close > open) {
      return std::string(strings::trim(type.substr(open + 1, close - open - 1)));
    }
    return "";
  }
  if (type.find('*') != std::string::npos) {
    std::string base = type.substr(0, type.find('*'));
    base = strings::replace_all(base, "const", "");
    return std::string(strings::trim(base));
  }
  return "";
}

InterfaceDescriptor InterfaceDescriptor::from_xml(const xml::Element& element) {
  if (element.name() != "peppher-interface") {
    throw ParseError("expected <peppher-interface>, found <" + element.name() + ">");
  }
  InterfaceDescriptor out;
  out.name = element.required_attribute("name");
  out.loc = loc_of(element);
  const xml::Element& function = element.required_child("function");
  out.return_type = function.attribute("returnType").value_or("void");
  for (const xml::Element* param : function.children("param")) {
    ParamDesc p;
    p.loc = loc_of(*param);
    p.name = param->required_attribute("name");
    p.type = param->required_attribute("type");
    p.access = rt::parse_access_mode(
        param->attribute("accessMode").value_or("read"));
    p.size_expr = param->attribute("size").value_or("");
    out.params.push_back(std::move(p));
  }
  for (const xml::Element* tp : element.children("templateParam")) {
    out.template_params.push_back(tp->required_attribute("name"));
  }
  if (const xml::Element* metrics = element.child("performanceMetrics")) {
    for (const xml::Element* metric : metrics->children("metric")) {
      out.performance_metrics.push_back(metric->required_attribute("name"));
    }
  }
  if (const xml::Element* context = element.child("contextParams")) {
    for (const xml::Element* cp : context->children("contextParam")) {
      ContextParamDesc c;
      c.name = cp->required_attribute("name");
      c.min = optional_attr_double(*cp, "min");
      c.max = optional_attr_double(*cp, "max");
      out.context_params.push_back(std::move(c));
    }
  }
  return out;
}

std::unique_ptr<xml::Element> InterfaceDescriptor::to_xml() const {
  auto root = std::make_unique<xml::Element>("peppher-interface");
  root->set_attribute("name", name);
  xml::Element& function = root->append_child("function");
  function.set_attribute("returnType", return_type);
  for (const ParamDesc& p : params) {
    xml::Element& param = function.append_child("param");
    param.set_attribute("name", p.name);
    param.set_attribute("type", p.type);
    param.set_attribute("accessMode", rt::to_string(p.access));
    if (!p.size_expr.empty()) param.set_attribute("size", p.size_expr);
  }
  for (const std::string& tp : template_params) {
    root->append_child("templateParam").set_attribute("name", tp);
  }
  if (!performance_metrics.empty()) {
    xml::Element& metrics = root->append_child("performanceMetrics");
    for (const std::string& m : performance_metrics) {
      metrics.append_child("metric").set_attribute("name", m);
    }
  }
  if (!context_params.empty()) {
    xml::Element& context = root->append_child("contextParams");
    for (const ContextParamDesc& c : context_params) {
      xml::Element& cp = context.append_child("contextParam");
      cp.set_attribute("name", c.name);
      if (c.min) cp.set_attribute("min", std::to_string(*c.min));
      if (c.max) cp.set_attribute("max", std::to_string(*c.max));
    }
  }
  return root;
}

std::string InterfaceDescriptor::prototype() const {
  std::string out;
  if (is_generic()) {
    out += "template <";
    for (std::size_t i = 0; i < template_params.size(); ++i) {
      if (i != 0) out += ", ";
      out += "typename " + template_params[i];
    }
    out += ">\n";
  }
  out += return_type + " " + name + "(";
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i != 0) out += ", ";
    out += params[i].type + " " + params[i].name;
  }
  out += ");";
  return out;
}

// ---------------------------------------------------------------------------
// ImplementationDescriptor
// ---------------------------------------------------------------------------

ImplementationDescriptor ImplementationDescriptor::from_xml(
    const xml::Element& element) {
  if (element.name() != "peppher-implementation") {
    throw ParseError("expected <peppher-implementation>, found <" +
                     element.name() + ">");
  }
  ImplementationDescriptor out;
  out.name = element.required_attribute("name");
  out.interface_name = element.required_attribute("interface");
  out.loc = loc_of(element);
  const xml::Element& platform = element.required_child("platform");
  out.language = platform.required_attribute("language");
  out.target_platform = platform.attribute("target").value_or("");
  if (const xml::Element* sources = element.child("sources")) {
    for (const xml::Element* source : sources->children("source")) {
      out.sources.push_back(source->required_attribute("file"));
    }
  }
  if (const xml::Element* compilation = element.child("compilation")) {
    out.compile_command = compilation->attribute("command").value_or("");
    out.compile_options = compilation->attribute("options").value_or("");
  }
  if (const xml::Element* requires_elem = element.child("requires")) {
    for (const xml::Element* iface : requires_elem->children("interface")) {
      out.required_interfaces.push_back(iface->required_attribute("name"));
    }
  }
  if (const xml::Element* resources = element.child("resources")) {
    out.min_memory_mb =
        optional_attr_double(*resources, "minMemoryMB").value_or(0.0);
    out.max_memory_mb =
        optional_attr_double(*resources, "maxMemoryMB").value_or(0.0);
  }
  if (const xml::Element* prediction = element.child("prediction")) {
    out.prediction_function = prediction->required_attribute("function");
  }
  if (const xml::Element* tunables = element.child("tunables")) {
    for (const xml::Element* tunable : tunables->children("tunable")) {
      TunableDesc t;
      t.name = tunable->required_attribute("name");
      for (std::string& v :
           strings::split(tunable->attribute("values").value_or(""), ',')) {
        std::string trimmed(strings::trim(v));
        if (!trimmed.empty()) t.values.push_back(std::move(trimmed));
      }
      t.default_value = tunable->attribute("default").value_or(
          t.values.empty() ? "" : t.values.front());
      out.tunables.push_back(std::move(t));
    }
  }
  if (const xml::Element* constraints = element.child("constraints")) {
    for (const xml::Element* constraint : constraints->children("constraint")) {
      ConstraintDesc c;
      c.loc = loc_of(*constraint);
      c.param = constraint->required_attribute("param");
      c.min = optional_attr_double(*constraint, "min");
      c.max = optional_attr_double(*constraint, "max");
      out.constraints.push_back(std::move(c));
    }
  }
  // Validates the language eagerly so errors point at the descriptor.
  (void)out.arch();
  return out;
}

std::unique_ptr<xml::Element> ImplementationDescriptor::to_xml() const {
  auto root = std::make_unique<xml::Element>("peppher-implementation");
  root->set_attribute("name", name);
  root->set_attribute("interface", interface_name);
  xml::Element& platform = root->append_child("platform");
  platform.set_attribute("language", language);
  if (!target_platform.empty()) platform.set_attribute("target", target_platform);
  if (!sources.empty()) {
    xml::Element& src = root->append_child("sources");
    for (const std::string& file : sources) {
      src.append_child("source").set_attribute("file", file);
    }
  }
  if (!compile_command.empty() || !compile_options.empty()) {
    xml::Element& compilation = root->append_child("compilation");
    compilation.set_attribute("command", compile_command);
    compilation.set_attribute("options", compile_options);
  }
  if (!required_interfaces.empty()) {
    xml::Element& req = root->append_child("requires");
    for (const std::string& iface : required_interfaces) {
      req.append_child("interface").set_attribute("name", iface);
    }
  }
  if (min_memory_mb > 0.0 || max_memory_mb > 0.0) {
    xml::Element& resources = root->append_child("resources");
    resources.set_attribute("minMemoryMB", std::to_string(min_memory_mb));
    resources.set_attribute("maxMemoryMB", std::to_string(max_memory_mb));
  }
  if (prediction_function) {
    root->append_child("prediction").set_attribute("function", *prediction_function);
  }
  if (!tunables.empty()) {
    xml::Element& tuns = root->append_child("tunables");
    for (const TunableDesc& t : tunables) {
      xml::Element& tunable = tuns.append_child("tunable");
      tunable.set_attribute("name", t.name);
      tunable.set_attribute("values", strings::join(t.values, ","));
      if (!t.default_value.empty()) {
        tunable.set_attribute("default", t.default_value);
      }
    }
  }
  if (!constraints.empty()) {
    xml::Element& cons = root->append_child("constraints");
    for (const ConstraintDesc& c : constraints) {
      xml::Element& constraint = cons.append_child("constraint");
      constraint.set_attribute("param", c.param);
      if (c.min) constraint.set_attribute("min", std::to_string(*c.min));
      if (c.max) constraint.set_attribute("max", std::to_string(*c.max));
    }
  }
  return root;
}

// ---------------------------------------------------------------------------
// PlatformDescriptor
// ---------------------------------------------------------------------------

PlatformDescriptor PlatformDescriptor::from_xml(const xml::Element& element) {
  if (element.name() != "peppher-platform") {
    throw ParseError("expected <peppher-platform>, found <" + element.name() + ">");
  }
  PlatformDescriptor out;
  out.name = element.required_attribute("name");
  out.kind = element.attribute("kind").value_or("cpu");
  out.loc = loc_of(element);
  for (const xml::Element* property : element.children("property")) {
    out.properties[property->required_attribute("name")] =
        property->required_attribute("value");
  }
  return out;
}

std::optional<double> PlatformDescriptor::numeric_property(
    const std::string& key) const {
  auto it = properties.find(key);
  if (it == properties.end()) return std::nullopt;
  return strings::to_double(it->second);
}

std::unique_ptr<xml::Element> PlatformDescriptor::to_xml() const {
  auto root = std::make_unique<xml::Element>("peppher-platform");
  root->set_attribute("name", name);
  root->set_attribute("kind", kind);
  for (const auto& [key, value] : properties) {
    xml::Element& property = root->append_child("property");
    property.set_attribute("name", key);
    property.set_attribute("value", value);
  }
  return root;
}

// ---------------------------------------------------------------------------
// MainDescriptor
// ---------------------------------------------------------------------------

MainDescriptor MainDescriptor::from_xml(const xml::Element& element) {
  if (element.name() != "peppher-main") {
    throw ParseError("expected <peppher-main>, found <" + element.name() + ">");
  }
  MainDescriptor out;
  out.name = element.required_attribute("name");
  out.source = element.attribute("source").value_or("main.cpp");
  out.loc = loc_of(element);
  if (const xml::Element* target = element.child("target")) {
    out.target_platform = target->attribute("platform").value_or("");
  }
  if (const xml::Element* goal = element.child("goal")) {
    out.optimization_goal = goal->attribute("metric").value_or("exec_time");
  }
  for (const xml::Element* uses : element.children("uses")) {
    out.uses.push_back(uses->required_attribute("interface"));
  }
  if (const xml::Element* calls = element.child("calls")) {
    out.call_tree = parse_statements(*calls, /*inside_if=*/false, nullptr);
    flatten_calls(out.call_tree, &out.calls, &out.has_control_flow,
                  &out.has_distributed);
  }
  if (const xml::Element* composition = element.child("composition")) {
    out.use_history_models = parse_bool(
        composition->attribute("useHistoryModels").value_or("true"), true);
    out.scheduler = composition->attribute("scheduler").value_or("dmda");
    for (const xml::Element* disable : composition->children("disableImpls")) {
      out.disabled_impls.push_back(disable->required_attribute("name"));
    }
  }
  return out;
}

std::unique_ptr<xml::Element> MainDescriptor::to_xml() const {
  auto root = std::make_unique<xml::Element>("peppher-main");
  root->set_attribute("name", name);
  root->set_attribute("source", source);
  if (!target_platform.empty()) {
    root->append_child("target").set_attribute("platform", target_platform);
  }
  root->append_child("goal").set_attribute("metric", optimization_goal);
  for (const std::string& iface : uses) {
    root->append_child("uses").set_attribute("interface", iface);
  }
  if (!call_tree.empty()) {
    serialize_statements(call_tree, root->append_child("calls"));
  } else if (!calls.empty()) {
    // Programmatically built descriptor with only the flattened view.
    xml::Element& calls_elem = root->append_child("calls");
    for (const CallDesc& c : calls) {
      xml::Element& call = calls_elem.append_child("call");
      call.set_attribute("interface", c.interface_name);
      for (const CallArgDesc& a : c.args) {
        xml::Element& arg = call.append_child("arg");
        arg.set_attribute("param", a.param);
        arg.set_attribute("data", a.data);
      }
    }
  }
  xml::Element& composition = root->append_child("composition");
  composition.set_attribute("useHistoryModels",
                            use_history_models ? "true" : "false");
  composition.set_attribute("scheduler", scheduler);
  for (const std::string& impl : disabled_impls) {
    composition.append_child("disableImpls").set_attribute("name", impl);
  }
  return root;
}

// ---------------------------------------------------------------------------
// Repository
// ---------------------------------------------------------------------------

void Repository::scan(const std::filesystem::path& root) {
  for (const auto& path : fs::list_files_recursive(root, ".xml")) {
    load_file(path);
  }
}

void Repository::load_file(const std::filesystem::path& path) {
  load_text(fs::read_file(path), path.parent_path(), path.string());
}

void Repository::load_text(std::string_view text,
                           const std::filesystem::path& origin,
                           const std::string& source_file) {
  const xml::Document doc = xml::parse(text);
  const std::string& root = doc.root->name();
  if (root == "peppher-interface") {
    InterfaceDescriptor d = InterfaceDescriptor::from_xml(*doc.root);
    d.loc.file = source_file;
    for (ParamDesc& p : d.params) p.loc.file = source_file;
    origins_[d.name] = origin;
    add(std::move(d));
  } else if (root == "peppher-implementation") {
    ImplementationDescriptor d = ImplementationDescriptor::from_xml(*doc.root);
    d.loc.file = source_file;
    for (ConstraintDesc& c : d.constraints) c.loc.file = source_file;
    origins_[d.name] = origin;
    add(std::move(d));
  } else if (root == "peppher-platform") {
    PlatformDescriptor d = PlatformDescriptor::from_xml(*doc.root);
    d.loc.file = source_file;
    origins_[d.name] = origin;
    add(std::move(d));
  } else if (root == "peppher-main") {
    MainDescriptor d = MainDescriptor::from_xml(*doc.root);
    d.loc.file = source_file;
    for (CallDesc& c : d.calls) {
      c.loc.file = source_file;
      for (CallArgDesc& a : c.args) a.loc.file = source_file;
    }
    set_statement_files(d.call_tree, source_file);
    origins_[d.name] = origin;
    add(std::move(d));
  }
  // Unknown root elements are ignored: repositories may hold other XML.
}

void Repository::add(InterfaceDescriptor interface_desc) {
  const std::string name = interface_desc.name;
  if (interfaces_.find(name) == interfaces_.end()) {
    interface_order_.push_back(name);
  }
  interfaces_[name] = std::move(interface_desc);
}

void Repository::add(ImplementationDescriptor impl_desc) {
  const std::string name = impl_desc.name;
  if (implementations_.find(name) == implementations_.end()) {
    implementation_order_.push_back(name);
  } else {
    duplicate_implementations_.insert(name);
  }
  implementations_[name] = std::move(impl_desc);
}

void Repository::add(PlatformDescriptor platform_desc) {
  platforms_[platform_desc.name] = std::move(platform_desc);
}

void Repository::add(MainDescriptor main_desc) { main_ = std::move(main_desc); }

const InterfaceDescriptor* Repository::find_interface(const std::string& name) const {
  auto it = interfaces_.find(name);
  return it == interfaces_.end() ? nullptr : &it->second;
}

const ImplementationDescriptor* Repository::find_implementation(
    const std::string& name) const {
  auto it = implementations_.find(name);
  return it == implementations_.end() ? nullptr : &it->second;
}

const PlatformDescriptor* Repository::find_platform(const std::string& name) const {
  auto it = platforms_.find(name);
  return it == platforms_.end() ? nullptr : &it->second;
}

const MainDescriptor* Repository::main_module() const {
  return main_.has_value() ? &*main_ : nullptr;
}

std::vector<const ImplementationDescriptor*> Repository::implementations_of(
    const std::string& interface_name) const {
  std::vector<const ImplementationDescriptor*> out;
  for (const std::string& name : implementation_order_) {
    const ImplementationDescriptor& impl = implementations_.at(name);
    if (impl.interface_name == interface_name) out.push_back(&impl);
  }
  return out;
}

std::vector<const InterfaceDescriptor*> Repository::interfaces() const {
  std::vector<const InterfaceDescriptor*> out;
  for (const std::string& name : interface_order_) {
    out.push_back(&interfaces_.at(name));
  }
  return out;
}

std::vector<const PlatformDescriptor*> Repository::platforms() const {
  std::vector<const PlatformDescriptor*> out;
  out.reserve(platforms_.size());
  for (const auto& [name, platform] : platforms_) out.push_back(&platform);
  return out;
}

std::filesystem::path Repository::origin_of(const std::string& descriptor_name) const {
  auto it = origins_.find(descriptor_name);
  return it == origins_.end() ? std::filesystem::path() : it->second;
}

std::vector<const InterfaceDescriptor*> Repository::interfaces_bottom_up() const {
  // Build interface -> required interfaces (union over that interface's
  // implementations), then topologically sort dependencies-first.
  std::map<std::string, std::set<std::string>> requires_map;
  for (const std::string& name : interface_order_) {
    requires_map[name] = {};
  }
  for (const std::string& impl_name : implementation_order_) {
    const ImplementationDescriptor& impl = implementations_.at(impl_name);
    auto it = requires_map.find(impl.interface_name);
    if (it == requires_map.end()) continue;
    for (const std::string& req : impl.required_interfaces) {
      if (requires_map.count(req) != 0) it->second.insert(req);
    }
  }

  std::vector<const InterfaceDescriptor*> out;
  std::set<std::string> emitted;
  std::set<std::string> visiting;
  // Depth-first emit of requirements before dependents (deterministic:
  // follows load order).
  std::function<void(const std::string&)> visit = [&](const std::string& name) {
    if (emitted.count(name) != 0) return;
    if (!visiting.insert(name).second) {
      throw Error(ErrorCode::kInvalidState,
                  "cycle in required-interfaces relation involving '" + name + "'");
    }
    for (const std::string& req : requires_map.at(name)) visit(req);
    visiting.erase(name);
    emitted.insert(name);
    out.push_back(&interfaces_.at(name));
  };
  for (const std::string& name : interface_order_) visit(name);
  return out;
}

std::vector<diag::Diagnostic> Repository::diagnose() const {
  using diag::Severity;
  diag::DiagnosticBag bag;
  for (const std::string& name : duplicate_implementations_) {
    bag.add("PL040", Severity::kWarning,
            "implementation name clash: '" + name +
                "' defined more than once (latest definition wins)",
            implementations_.at(name).loc);
  }
  for (const std::string& impl_name : implementation_order_) {
    const ImplementationDescriptor& impl = implementations_.at(impl_name);
    if (interfaces_.count(impl.interface_name) == 0) {
      bag.add("PL041", Severity::kError,
              "implementation '" + impl.name + "' provides unknown interface '" +
                  impl.interface_name + "'",
              impl.loc);
    }
    for (const std::string& req : impl.required_interfaces) {
      if (interfaces_.count(req) == 0) {
        bag.add("PL042", Severity::kError,
                "implementation '" + impl.name + "' requires unknown interface '" +
                    req + "'",
                impl.loc);
      }
    }
    if (!impl.target_platform.empty() &&
        platforms_.count(impl.target_platform) == 0) {
      bag.add("PL043", Severity::kError,
              "implementation '" + impl.name + "' targets unknown platform '" +
                  impl.target_platform + "'",
              impl.loc);
    }
    for (const ConstraintDesc& constraint : impl.constraints) {
      const InterfaceDescriptor* iface = find_interface(impl.interface_name);
      if (iface == nullptr) continue;
      const bool known =
          std::any_of(iface->context_params.begin(), iface->context_params.end(),
                      [&](const ContextParamDesc& c) { return c.name == constraint.param; }) ||
          std::any_of(iface->params.begin(), iface->params.end(),
                      [&](const ParamDesc& p) { return p.name == constraint.param; });
      if (!known) {
        bag.add("PL044", Severity::kError,
                "implementation '" + impl.name + "' constrains unknown parameter '" +
                    constraint.param + "'",
                constraint.loc.known() ? constraint.loc : impl.loc);
      }
    }
  }
  for (const std::string& iface_name : interface_order_) {
    const InterfaceDescriptor& iface = interfaces_.at(iface_name);
    if (implementations_of(iface_name).empty()) {
      bag.add("PL045", Severity::kWarning,
              "interface '" + iface_name + "' has no implementation variants",
              iface.loc);
    }
    // The runtime's performance models provide average execution time; any
    // other requested metric has no provider in this framework.
    for (const std::string& metric : iface.performance_metrics) {
      if (metric != "avg_exec_time") {
        bag.add("PL046", Severity::kWarning,
                "interface '" + iface_name +
                    "' requests unsupported performance metric '" + metric + "'",
                iface.loc);
      }
    }
    std::set<std::string> seen_params;
    for (const ParamDesc& p : iface.params) {
      if (!seen_params.insert(p.name).second) {
        bag.add("PL050", Severity::kError,
                "interface '" + iface_name + "' declares parameter '" + p.name +
                    "' more than once",
                p.loc.known() ? p.loc : iface.loc);
      }
    }
    for (const ParamDesc& p : iface.params) {
      for (const std::string& ident : identifiers_in(p.size_expr)) {
        if (seen_params.count(ident) == 0) {
          bag.add("PL051", Severity::kError,
                  "size expression '" + p.size_expr + "' of parameter '" +
                      p.name + "' in interface '" + iface_name +
                      "' references undeclared parameter '" + ident + "'",
                  p.loc.known() ? p.loc : iface.loc);
        }
      }
    }
  }
  if (main_.has_value()) {
    for (const std::string& used : main_->uses) {
      if (interfaces_.count(used) == 0) {
        bag.add("PL047", Severity::kError,
                "main module uses unknown interface '" + used + "'", main_->loc);
      }
    }
    for (const std::string& disabled : main_->disabled_impls) {
      bool is_arch = true;
      try {
        (void)rt::parse_arch(disabled);
      } catch (const Error&) {
        is_arch = false;
      }
      if (!is_arch && implementations_.count(disabled) == 0) {
        bag.add("PL048", Severity::kWarning,
                "disableImpls names '" + disabled +
                    "', which is neither an implementation nor an architecture",
                main_->loc);
      }
    }
  }
  bag.sort();
  return bag.diagnostics();
}

std::vector<std::string> Repository::validate() const {
  std::vector<std::string> problems;
  for (const diag::Diagnostic& d : diagnose()) problems.push_back(d.format());
  return problems;
}

}  // namespace peppher::desc
