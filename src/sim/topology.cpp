#include "sim/topology.hpp"

#include <set>
#include <sstream>

#include "support/error.hpp"

namespace peppher::sim {
namespace {

/// One whitespace-delimited token with its 1-based location.
struct Token {
  std::string text;
  int line = 0;
  int column = 0;
};

std::vector<std::vector<Token>> tokenize_lines(const std::string& text) {
  std::vector<std::vector<Token>> lines;
  std::vector<Token> current;
  Token token;
  int line = 1;
  int column = 1;
  const auto flush_token = [&] {
    if (!token.text.empty()) current.push_back(std::move(token));
    token = Token{};
  };
  const auto flush_line = [&] {
    flush_token();
    if (!current.empty()) lines.push_back(std::move(current));
    current.clear();
  };
  for (const char c : text) {
    if (c == '\n') {
      flush_line();
      ++line;
      column = 1;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      flush_token();
    } else {
      if (token.text.empty()) {
        token.line = line;
        token.column = column;
      }
      token.text.push_back(c);
    }
    ++column;
  }
  flush_line();
  return lines;
}

[[noreturn]] void fail(const std::string& message, const Token& at) {
  throw ParseError(message, at.line, at.column);
}

/// The token after `index` on the same line, or a located error naming the
/// keyword that is missing its value.
const Token& value_after(const std::vector<Token>& line, std::size_t index,
                         const std::string& keyword) {
  if (index + 1 >= line.size()) {
    fail("'" + keyword + "' is missing a value", line[index]);
  }
  return line[index + 1];
}

double parse_double(const Token& token, const std::string& what) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token.text, &consumed);
  } catch (const std::exception&) {
    fail(what + " is not a number: '" + token.text + "'", token);
  }
  if (consumed != token.text.size()) {
    fail(what + " is not a number: '" + token.text + "'", token);
  }
  return value;
}

int parse_int(const Token& token, const std::string& what) {
  const double value = parse_double(token, what);
  const int as_int = static_cast<int>(value);
  if (static_cast<double>(as_int) != value) {
    fail(what + " must be an integer", token);
  }
  return as_int;
}

MachineConfig machine_preset(const Token& token) {
  const std::string& name = token.text;
  if (name == "c2050") return MachineConfig::platform_c2050();
  if (name == "c1060") return MachineConfig::platform_c1060();
  if (name == "opencl") return MachineConfig::platform_opencl();
  if (name == "dual_c2050") return MachineConfig::platform_dual_c2050();
  if (name == "cpu_only") return MachineConfig::cpu_only();
  fail("unknown machine preset '" + name +
           "' (expected c2050, c1060, opencl, dual_c2050 or cpu_only)",
       token);
}

void parse_link_fields(const std::vector<Token>& line, std::size_t start,
                       LinkProfile& link) {
  for (std::size_t i = start; i < line.size(); i += 2) {
    const std::string& key = line[i].text;
    const Token& value = value_after(line, i, key);
    if (key == "latency_us") {
      link.latency_us = parse_double(value, "latency_us");
      if (link.latency_us < 0.0) fail("latency_us must be >= 0", value);
    } else if (key == "bandwidth_gbs") {
      link.bandwidth_gbs = parse_double(value, "bandwidth_gbs");
      if (link.bandwidth_gbs <= 0.0) {
        fail("bandwidth_gbs must be positive", value);
      }
    } else {
      fail("unknown internode field '" + key +
               "' (expected latency_us or bandwidth_gbs)",
           line[i]);
    }
  }
}

NodeConfig parse_node_line(const std::vector<Token>& line) {
  NodeConfig node;
  const Token& id = value_after(line, 0, "node");
  node.id = parse_int(id, "node id");
  if (node.id < 0) fail("node id must be non-negative", id);
  node.machine = MachineConfig::platform_c2050();
  for (std::size_t i = 2; i < line.size(); i += 2) {
    const std::string& key = line[i].text;
    const Token& value = value_after(line, i, key);
    if (key == "machine") {
      node.machine = machine_preset(value);
    } else if (key == "cpu_cores") {
      node.machine.cpu_cores = parse_int(value, "cpu_cores");
      if (node.machine.cpu_cores < 0) fail("cpu_cores must be >= 0", value);
    } else {
      fail("unknown node field '" + key +
               "' (expected machine or cpu_cores)",
           line[i]);
    }
  }
  return node;
}

}  // namespace

ClusterConfig ClusterConfig::single(MachineConfig machine) {
  ClusterConfig cluster;
  cluster.name = machine.name;
  cluster.nodes.push_back({0, std::move(machine)});
  return cluster;
}

ClusterConfig ClusterConfig::uniform(int count, MachineConfig machine,
                                     LinkProfile internode) {
  check(count > 0, "ClusterConfig::uniform: count must be positive");
  ClusterConfig cluster;
  cluster.name = std::to_string(count) + "x" + machine.name;
  cluster.internode = internode;
  for (int i = 0; i < count; ++i) {
    cluster.nodes.push_back({i, machine});
  }
  return cluster;
}

ClusterConfig parse_cluster(const std::string& text) {
  const std::vector<std::vector<Token>> lines = tokenize_lines(text);
  if (lines.empty()) {
    throw ParseError("empty cluster document (expected 'peppher-cluster v1')",
                     1, 1);
  }
  const std::vector<Token>& header = lines.front();
  if (header[0].text != "peppher-cluster") {
    fail("not a peppher-cluster document (got '" + header[0].text + "')",
         header[0]);
  }
  const Token& version = value_after(header, 0, "peppher-cluster");
  if (version.text != "v1") {
    fail("unsupported cluster format version '" + version.text +
             "' (reader supports v1)",
         version);
  }
  if (header.size() > 2) fail("trailing tokens after the header", header[2]);

  ClusterConfig cluster;
  cluster.nodes.clear();
  std::set<int> seen_ids;
  bool ended = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::vector<Token>& line = lines[i];
    const std::string& keyword = line[0].text;
    if (ended) fail("content after 'end'", line[0]);
    if (keyword == "name") {
      cluster.name = value_after(line, 0, "name").text;
      if (line.size() > 2) fail("trailing tokens after the name", line[2]);
    } else if (keyword == "internode") {
      parse_link_fields(line, 1, cluster.internode);
    } else if (keyword == "node") {
      NodeConfig node = parse_node_line(line);
      if (!seen_ids.insert(node.id).second) {
        fail("duplicate node id " + std::to_string(node.id), line[1]);
      }
      cluster.nodes.push_back(std::move(node));
    } else if (keyword == "end") {
      if (line.size() > 1) fail("trailing tokens after 'end'", line[1]);
      ended = true;
    } else {
      fail("unknown keyword '" + keyword +
               "' (expected name, internode, node or end)",
           line[0]);
    }
  }
  if (!ended) {
    const Token& last = lines.back().back();
    throw ParseError("truncated cluster document (missing 'end')", last.line,
                     last.column);
  }
  if (cluster.nodes.empty()) {
    throw ParseError("cluster has no nodes", 1, 1);
  }
  // Node ids must be dense 0..N-1 so they double as sim-node indices.
  for (std::size_t i = 0; i < cluster.nodes.size(); ++i) {
    if (cluster.nodes[i].id != static_cast<int>(i)) {
      throw ParseError("node ids must be dense and ordered 0..N-1 (got " +
                           std::to_string(cluster.nodes[i].id) +
                           " at position " + std::to_string(i) + ")",
                       1, 1);
    }
  }
  return cluster;
}

std::string to_text(const ClusterConfig& cluster) {
  std::ostringstream out;
  out << "peppher-cluster v1\n";
  out << "name " << cluster.name << "\n";
  out << "internode latency_us " << cluster.internode.latency_us
      << " bandwidth_gbs " << cluster.internode.bandwidth_gbs << "\n";
  for (const NodeConfig& node : cluster.nodes) {
    out << "node " << node.id;
    const std::string& name = node.machine.name;
    if (name == "xeon-e5520+c2050") {
      out << " machine c2050";
    } else if (name == "xeon-e5520+c1060") {
      out << " machine c1060";
    } else if (name == "xeon-e5520+opencl") {
      out << " machine opencl";
    } else if (name == "xeon-e5520+2xc2050") {
      out << " machine dual_c2050";
    } else {
      out << " machine cpu_only";
    }
    out << " cpu_cores " << node.machine.cpu_cores << "\n";
  }
  out << "end\n";
  return std::move(out).str();
}

}  // namespace peppher::sim
