// Device simulation substrate.
//
// The paper evaluates on real GPUs (NVIDIA Tesla C2050 / C1060) driven by
// StarPU. This reproduction has no GPU, so accelerators are *simulated*:
// each simulated device has its own memory space (separate host allocations
// standing in for device memory, so coherence and transfers are real code
// paths) and a roofline execution-cost model that converts a kernel's
// declared work (flops, bytes, access regularity) into *virtual seconds*.
// Virtual time drives the performance models, the locality-aware scheduler
// and every figure benchmark; numerics always come from really executing the
// kernel on a worker thread.
//
// Profile parameters follow the devices' public spec sheets:
//   * Xeon E5520 core: 2.27 GHz Nehalem, SSE 4-wide SP FMA-less
//   * Tesla C2050 (Fermi): 1.03 TFLOP/s SP, 144 GB/s, L1/L2 caches
//   * Tesla C1060 (GT200): 933 GFLOP/s SP, 102 GB/s, no cache hierarchy
// The cache difference is modelled as the achievable-bandwidth fraction for
// irregular access patterns — exactly the property Figure 6(a) vs 6(b) of
// the paper turns on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace peppher::sim {

/// Broad device class, mirroring the platform kinds of PEPPHER descriptors.
enum class DeviceClass { kCpuCore, kCudaGpu, kOpenClGpu };

std::string to_string(DeviceClass device_class);

/// Performance profile of one execution unit (a CPU core or a whole GPU).
struct DeviceProfile {
  std::string name;
  DeviceClass device_class = DeviceClass::kCpuCore;

  double peak_gflops = 1.0;         ///< single-precision peak of the unit
  double compute_efficiency = 0.5;  ///< fraction of peak typical kernels reach
  double mem_bandwidth_gbs = 10.0;  ///< streaming bandwidth (GB/s)
  double irregular_bw_fraction = 0.3;  ///< achievable BW fraction at regularity 0
  double launch_overhead_us = 1.0;  ///< fixed per-kernel launch cost
  double memory_mb = 4096.0;        ///< memory capacity of the unit's node
  double busy_watts = 50.0;         ///< draw while executing (energy model)

  // -- canned profiles used by the reproduction ----------------------------

  /// One core of the paper's Intel Xeon E5520 @ 2.27 GHz host.
  static DeviceProfile xeon_e5520_core();
  /// NVIDIA Tesla C2050 (Fermi, with L1/L2 cache) — Figure 6(a) platform.
  static DeviceProfile tesla_c2050();
  /// NVIDIA Tesla C1060 (GT200, no cache) — Figure 6(b) platform.
  static DeviceProfile tesla_c1060();
  /// A generic mid-range OpenCL accelerator (the PEPPHER component model
  /// treats OpenCL as a first-class backend; §IV-C lists it alongside CUDA).
  static DeviceProfile generic_opencl_gpu();
};

/// Work declared by a kernel for one execution: the roofline inputs.
struct KernelCost {
  double flops = 0.0;      ///< floating-point operations
  double bytes = 0.0;      ///< DRAM traffic (bytes moved)
  double regularity = 1.0; ///< 1 = perfectly streaming, 0 = fully irregular

  KernelCost scaled(double factor) const {
    return KernelCost{flops * factor, bytes * factor, regularity};
  }
};

/// Roofline execution time of `cost` on `device`, in (virtual) seconds:
///   overhead + max(flops / achieved_flops, bytes / achieved_bandwidth)
/// where achieved bandwidth degrades linearly from full (regularity 1) to
/// `irregular_bw_fraction` (regularity 0).
double execution_seconds(const DeviceProfile& device, const KernelCost& cost);

/// An interconnect between two memory spaces (PCIe in this reproduction).
///
/// The contention model has two shapes. By default every device gets two
/// independent *lanes* — one host-to-device, one device-to-host — so
/// concurrent transfers to different devices (or in different directions)
/// never queue behind each other, matching PCIe's full-duplex point-to-point
/// links. `shared_bus` restores the legacy model: one half-duplex bus with a
/// single clock shared by all devices and both directions (used by the
/// Figure 5 reproduction's compatibility runs and by tests that pin down the
/// serialized contention behavior).
struct LinkProfile {
  double latency_us = 10.0;
  double bandwidth_gbs = 8.0;

  /// Legacy contention model: one half-duplex bus shared by every device.
  bool shared_bus = false;

  /// Burst coalescing (lane mode only): a transfer whose host-side address
  /// continues a still-open burst on the same lane joins it and pays only
  /// the bandwidth term — one link latency for N contiguous chunks, the
  /// hybrid chunk-upload pattern of Figure 5.
  bool coalescing = true;

  /// Maximum idle gap (µs of virtual time) between two transfers that may
  /// still coalesce into one burst.
  double coalesce_window_us = 50.0;

  /// PCIe 2.0 x16 as on the paper's evaluation hosts (duplex lanes).
  static LinkProfile pcie2_x16();
  /// Same link with the legacy shared-bus contention model.
  static LinkProfile pcie2_x16_shared();
  /// 10GbE-class inter-node link: ~5x the PCIe latency and a fraction of
  /// its bandwidth, the default sim::ClusterConfig internode profile.
  /// No burst coalescing — every message pays the wire latency.
  static LinkProfile cluster_10gbe();
};

/// Time to move `bytes` across `link`, in (virtual) seconds.
double transfer_seconds(const LinkProfile& link, std::size_t bytes);

/// Bandwidth-only cost of `bytes` on `link` — the marginal cost of a
/// transfer that coalesced into an already-open burst (no latency term).
double burst_transfer_seconds(const LinkProfile& link, std::size_t bytes);

/// Seeded, deterministic fault specification for one simulated device.
/// Attached per accelerator via EngineConfig::accelerator_faults; the engine
/// exercises it from the execution and transfer paths so the runtime's retry
/// / fallback / blacklisting machinery can be tested reproducibly.
struct FaultPlan {
  double kernel_failure_rate = 0.0;    ///< P(one kernel attempt fails transiently)
  double transfer_failure_rate = 0.0;  ///< P(one PCIe hop touching the device fails)
  std::uint64_t die_after_tasks = 0;   ///< hard death after N successful kernels (0 = never)
  double die_at_vtime = 0.0;           ///< hard death at this virtual time (0 = never)
  std::uint64_t seed = 0;              ///< fault-stream seed (mixed with the engine seed)

  /// True if the plan injects anything at all.
  bool any() const noexcept {
    return kernel_failure_rate > 0.0 || transfer_failure_rate > 0.0 ||
           die_after_tasks > 0 || die_at_vtime > 0.0;
  }
};

/// Draws one device's fault decisions in execution order. Deterministic for
/// a fixed (plan, salt) and a fixed sequence of draws; thread safe because
/// kernel draws come from the device's worker thread while transfer draws
/// can come from any thread staging data to or from the device's node.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, std::uint64_t salt);

  const FaultPlan& plan() const noexcept { return plan_; }

  /// Draws the next transient-kernel-failure decision.
  bool next_kernel_fails();

  /// Draws the next transfer-failure decision.
  bool next_transfer_fails();

  /// Records one successful kernel execution (feeds die_after_tasks).
  void record_kernel_success();
  std::uint64_t kernel_successes() const;

  /// True once the device's hard-death condition holds: die_after_tasks
  /// successful kernels executed, or the device clock reached die_at_vtime.
  bool death_due(double device_vtime) const;

 private:
  FaultPlan plan_;
  mutable std::mutex mutex_;
  Rng rng_;
  std::uint64_t kernel_successes_ = 0;
};

/// Machine description: N identical CPU cores plus zero or more accelerators
/// reached over a shared link. Mirrors the paper's two evaluation platforms.
struct MachineConfig {
  std::string name;
  int cpu_cores = 4;
  DeviceProfile cpu_core = DeviceProfile::xeon_e5520_core();
  std::vector<DeviceProfile> accelerators;
  LinkProfile link = LinkProfile::pcie2_x16();

  /// The paper's main platform: 4 Xeon E5520 cores + Tesla C2050.
  static MachineConfig platform_c2050();
  /// The secondary platform: same CPUs + lower-end Tesla C1060.
  static MachineConfig platform_c1060();
  /// Same CPUs + a generic OpenCL accelerator.
  static MachineConfig platform_opencl();
  /// Multi-GPU platform: same CPUs + two Tesla C2050s sharing the PCIe
  /// link (the component model's multi-GPU case; abstract of the paper).
  static MachineConfig platform_dual_c2050();
  /// CPU-only machine (useful for tests).
  static MachineConfig cpu_only(int cores = 4);
};

}  // namespace peppher::sim
