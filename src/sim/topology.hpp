// Simulated cluster topology: several nodes, each a full MachineConfig
// (host memory + CPU cores + accelerators), connected by an inter-node
// link that is meaningfully slower than PCIe (10GbE-class latency and
// bandwidth, duplex per node-pair like the intra-node LinkProfile lanes).
//
// A ClusterConfig with one node is exactly the single-host machine the
// runtime has always simulated: Engine resolves an empty/one-node cluster
// to the same memory-node layout, lane table and estimates, which the
// differential tests in tests/test_distributed.cpp pin bitwise.
//
// Topologies can also be described in a small versioned text format
// (`peppher-cluster v1`, see docs/runtime.md "Distributed simulation");
// parse_cluster is strict and reports located ParseErrors for malformed
// input — negative bandwidth, duplicate node ids, truncation — the same
// contract the trace/model readers follow.
#pragma once

#include <string>
#include <vector>

#include "sim/device.hpp"

namespace peppher::sim {

/// One simulated cluster node: a machine (host memory, CPU cores,
/// accelerators) identified by a dense id 0..N-1.
struct NodeConfig {
  int id = 0;
  MachineConfig machine;
};

/// A whole simulated cluster. `internode` prices every host(i) <-> host(j)
/// hop; each direction of each node pair gets its own lane clock, so halo
/// exchange in both directions overlaps like the duplex PCIe lanes do.
struct ClusterConfig {
  std::string name = "cluster";
  std::vector<NodeConfig> nodes;
  LinkProfile internode = LinkProfile::cluster_10gbe();

  bool empty() const noexcept { return nodes.empty(); }

  /// The degenerate one-node cluster equivalent to `machine`.
  static ClusterConfig single(MachineConfig machine);

  /// `count` identical nodes built from `machine`.
  static ClusterConfig uniform(int count, MachineConfig machine,
                               LinkProfile internode =
                                   LinkProfile::cluster_10gbe());
};

/// Parses the `peppher-cluster v1` text format:
///
///   peppher-cluster v1
///   internode latency_us 50 bandwidth_gbs 1.25
///   node 0 machine c2050 cpu_cores 4
///   node 1 machine c2050 cpu_cores 4
///   end
///
/// Machine presets: c2050, c1060, opencl, dual_c2050, cpu_only. The
/// `internode` line is optional (defaults to cluster_10gbe); `end` is
/// required so truncated documents are always detected. Malformed input
/// (bad header, unknown keyword/preset, non-positive latency or bandwidth,
/// duplicate or negative node ids, missing values, missing `end`) throws
/// ParseError carrying the 1-based line/column of the offending token.
ClusterConfig parse_cluster(const std::string& text);

/// Renders `cluster` back into the text format parse_cluster accepts.
std::string to_text(const ClusterConfig& cluster);

}  // namespace peppher::sim
