#include "sim/device.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace peppher::sim {

std::string to_string(DeviceClass device_class) {
  switch (device_class) {
    case DeviceClass::kCpuCore: return "cpu";
    case DeviceClass::kCudaGpu: return "cuda";
    case DeviceClass::kOpenClGpu: return "opencl";
  }
  return "unknown";
}

DeviceProfile DeviceProfile::xeon_e5520_core() {
  DeviceProfile p;
  p.name = "XeonE5520-core";
  p.device_class = DeviceClass::kCpuCore;
  // 2.27 GHz x 4-wide SSE = 9.08 GFLOP/s SP peak per core; scalar-ish codes
  // typically reach ~40 % of that.
  p.peak_gflops = 9.08;
  p.compute_efficiency = 0.40;
  // ~25.6 GB/s socket bandwidth shared by 4 cores.
  p.mem_bandwidth_gbs = 6.4;
  // Deep cache hierarchy keeps irregular access tolerable.
  p.irregular_bw_fraction = 0.45;
  p.launch_overhead_us = 0.5;
  p.memory_mb = 24576.0;  // host RAM on the evaluation machine
  p.busy_watts = 20.0;    // one core's share of the 80 W TDP
  return p;
}

DeviceProfile DeviceProfile::tesla_c2050() {
  DeviceProfile p;
  p.name = "TeslaC2050";
  p.device_class = DeviceClass::kCudaGpu;
  p.peak_gflops = 1030.0;
  p.compute_efficiency = 0.55;
  // 144 GB/s raw; ~115 GB/s achievable with ECC enabled.
  p.mem_bandwidth_gbs = 115.0;
  // Fermi's L1/L2 caches keep irregular kernels (bfs, spmv) viable.
  p.irregular_bw_fraction = 0.30;
  p.launch_overhead_us = 7.0;
  p.memory_mb = 3072.0;  // 3 GB GDDR5 (with ECC)
  p.busy_watts = 238.0;  // board TDP
  return p;
}

DeviceProfile DeviceProfile::tesla_c1060() {
  DeviceProfile p;
  p.name = "TeslaC1060";
  p.device_class = DeviceClass::kCudaGpu;
  p.peak_gflops = 933.0;
  p.compute_efficiency = 0.45;
  p.mem_bandwidth_gbs = 102.0;
  // GT200 has no general cache: irregular access collapses to a small
  // fraction of peak bandwidth.
  p.irregular_bw_fraction = 0.06;
  p.launch_overhead_us = 10.0;
  p.memory_mb = 4096.0;  // 4 GB GDDR3
  p.busy_watts = 188.0;  // board TDP
  return p;
}

DeviceProfile DeviceProfile::generic_opencl_gpu() {
  DeviceProfile p;
  p.name = "GenericOpenCL";
  p.device_class = DeviceClass::kOpenClGpu;
  p.peak_gflops = 720.0;
  p.compute_efficiency = 0.40;  // OpenCL kernels typically trail CUDA tuning
  p.mem_bandwidth_gbs = 90.0;
  p.irregular_bw_fraction = 0.20;
  p.launch_overhead_us = 12.0;
  p.memory_mb = 2048.0;
  p.busy_watts = 150.0;
  return p;
}

double execution_seconds(const DeviceProfile& device, const KernelCost& cost) {
  check(cost.flops >= 0.0 && cost.bytes >= 0.0, "KernelCost must be non-negative");
  const double regularity = std::clamp(cost.regularity, 0.0, 1.0);
  const double achieved_flops =
      device.peak_gflops * device.compute_efficiency * 1e9;
  // Geometric interpolation between full bandwidth (regularity 1) and the
  // device's irregular floor (regularity 0): cache-less devices collapse
  // quickly as access patterns degrade, cached ones degrade gracefully —
  // the property Figure 6(a) vs 6(b) of the paper turns on.
  const double bw_fraction =
      std::pow(device.irregular_bw_fraction, 1.0 - regularity);
  const double achieved_bw = device.mem_bandwidth_gbs * bw_fraction * 1e9;
  const double compute_time =
      achieved_flops > 0.0 ? cost.flops / achieved_flops : 0.0;
  const double memory_time = achieved_bw > 0.0 ? cost.bytes / achieved_bw : 0.0;
  return device.launch_overhead_us * 1e-6 + std::max(compute_time, memory_time);
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t salt)
    : plan_(plan), rng_(plan.seed ^ salt ^ 0xD6E8FEB86659FD93ULL) {}

bool FaultInjector::next_kernel_fails() {
  if (plan_.kernel_failure_rate <= 0.0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  return rng_.next_double() < plan_.kernel_failure_rate;
}

bool FaultInjector::next_transfer_fails() {
  if (plan_.transfer_failure_rate <= 0.0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  return rng_.next_double() < plan_.transfer_failure_rate;
}

void FaultInjector::record_kernel_success() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++kernel_successes_;
}

std::uint64_t FaultInjector::kernel_successes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return kernel_successes_;
}

bool FaultInjector::death_due(double device_vtime) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (plan_.die_after_tasks > 0 && kernel_successes_ >= plan_.die_after_tasks) {
    return true;
  }
  return plan_.die_at_vtime > 0.0 && device_vtime >= plan_.die_at_vtime;
}

LinkProfile LinkProfile::pcie2_x16() {
  LinkProfile link;
  link.latency_us = 10.0;
  link.bandwidth_gbs = 8.0;
  return link;
}

LinkProfile LinkProfile::pcie2_x16_shared() {
  LinkProfile link = pcie2_x16();
  link.shared_bus = true;
  link.coalescing = false;
  return link;
}

LinkProfile LinkProfile::cluster_10gbe() {
  LinkProfile link;
  link.latency_us = 50.0;
  link.bandwidth_gbs = 1.25;
  link.coalescing = false;
  return link;
}

double transfer_seconds(const LinkProfile& link, std::size_t bytes) {
  return link.latency_us * 1e-6 + burst_transfer_seconds(link, bytes);
}

double burst_transfer_seconds(const LinkProfile& link, std::size_t bytes) {
  return static_cast<double>(bytes) / (link.bandwidth_gbs * 1e9);
}

MachineConfig MachineConfig::platform_c2050() {
  MachineConfig m;
  m.name = "xeon-e5520+c2050";
  m.cpu_cores = 4;
  m.cpu_core = DeviceProfile::xeon_e5520_core();
  m.accelerators = {DeviceProfile::tesla_c2050()};
  m.link = LinkProfile::pcie2_x16();
  return m;
}

MachineConfig MachineConfig::platform_c1060() {
  MachineConfig m = platform_c2050();
  m.name = "xeon-e5520+c1060";
  m.accelerators = {DeviceProfile::tesla_c1060()};
  return m;
}

MachineConfig MachineConfig::platform_opencl() {
  MachineConfig m = platform_c2050();
  m.name = "xeon-e5520+opencl";
  m.accelerators = {DeviceProfile::generic_opencl_gpu()};
  return m;
}

MachineConfig MachineConfig::platform_dual_c2050() {
  MachineConfig m = platform_c2050();
  m.name = "xeon-e5520+2xc2050";
  m.accelerators = {DeviceProfile::tesla_c2050(), DeviceProfile::tesla_c2050()};
  return m;
}

MachineConfig MachineConfig::cpu_only(int cores) {
  MachineConfig m;
  m.name = "cpu-only";
  m.cpu_cores = cores;
  m.cpu_core = DeviceProfile::xeon_e5520_core();
  m.accelerators.clear();
  return m;
}

}  // namespace peppher::sim
