#include "compose/expand.hpp"

#include <cctype>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace peppher::compose {

namespace {

bool is_word_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Whole-word replacement of identifier `word` by `replacement`.
std::string replace_word(std::string_view text, std::string_view word,
                         std::string_view replacement) {
  std::string out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t hit = text.find(word, pos);
    if (hit == std::string_view::npos) {
      out.append(text.substr(pos));
      return out;
    }
    const bool left_ok = hit == 0 || !is_word_char(text[hit - 1]);
    const std::size_t after = hit + word.size();
    const bool right_ok = after >= text.size() || !is_word_char(text[after]);
    out.append(text.substr(pos, hit - pos));
    if (left_ok && right_ok) {
      out.append(replacement);
    } else {
      out.append(text.substr(hit, word.size()));
    }
    pos = after;
  }
  return out;
}

/// All binding combinations for the given template parameters from the
/// recipe (cartesian product over each parameter's value list).
std::vector<Binding> binding_combinations(
    const std::vector<std::string>& template_params, const Recipe& recipe) {
  std::vector<Binding> combos = {Binding{}};
  for (const std::string& param : template_params) {
    const std::vector<std::string>* values = nullptr;
    for (const auto& [name, vals] : recipe.bindings) {
      if (name == param) {
        values = &vals;
        break;
      }
    }
    if (values == nullptr || values->empty()) return {};  // unbound parameter
    std::vector<Binding> next;
    for (const Binding& combo : combos) {
      for (const std::string& value : *values) {
        Binding extended = combo;
        extended.emplace_back(param, value);
        next.push_back(std::move(extended));
      }
    }
    combos = std::move(next);
  }
  return combos;
}

}  // namespace

std::string mangle_type(std::string_view type) {
  std::string out;
  bool last_underscore = false;
  for (char c : std::string(strings::trim(type))) {
    if (is_word_char(c)) {
      out += c;
      last_underscore = false;
    } else if (!last_underscore) {
      out += '_';
      last_underscore = true;
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

std::string substitute_type(std::string_view type, const Binding& binding) {
  std::string out(type);
  for (const auto& [param, value] : binding) {
    out = replace_word(out, param, value);
  }
  return out;
}

namespace {

/// Cartesian product over every tunable's value list.
std::vector<std::vector<std::pair<std::string, std::string>>>
tunable_combinations(const std::vector<desc::TunableDesc>& tunables) {
  std::vector<std::vector<std::pair<std::string, std::string>>> combos = {{}};
  for (const desc::TunableDesc& tunable : tunables) {
    if (tunable.values.empty()) continue;
    std::vector<std::vector<std::pair<std::string, std::string>>> next;
    for (const auto& combo : combos) {
      for (const std::string& value : tunable.values) {
        auto extended = combo;
        extended.emplace_back(tunable.name, value);
        next.push_back(std::move(extended));
      }
    }
    combos = std::move(next);
  }
  return combos;
}

std::string upper_snake(std::string_view name) {
  std::string out;
  for (char c : name) {
    out += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

std::vector<std::string> expand_tunables(ComponentTree& tree) {
  std::vector<std::string> report;
  for (ComponentNode& node : tree.components) {
    std::vector<VariantNode> expanded;
    for (VariantNode& variant : node.variants) {
      const auto combos = tunable_combinations(variant.descriptor.tunables);
      if (combos.size() <= 1) {
        // No multi-valued tunables: bind defaults if any, pass through.
        expanded.push_back(std::move(variant));
        continue;
      }
      for (const auto& combo : combos) {
        VariantNode instance = variant;
        instance.descriptor.tunables.clear();  // fully bound now
        std::string suffix;
        std::string defines;
        for (const auto& [name, value] : combo) {
          suffix += "__" + name + "_" + mangle_type(value);
          defines += " -D" + upper_snake(name) + "=" + value;
        }
        instance.descriptor.name += suffix;
        // The defines bind the tunables; PEPPHER_IMPL_NAME lets the shared
        // source name its entry function after the instantiated variant.
        instance.descriptor.compile_options +=
            defines + " -DPEPPHER_IMPL_NAME=" + instance.descriptor.name;
        report.push_back("component '" + node.interface.name + "': variant '" +
                         variant.descriptor.name + "' instantiated as '" +
                         instance.descriptor.name + "'");
        expanded.push_back(std::move(instance));
      }
    }
    node.variants = std::move(expanded);
  }
  return report;
}

std::vector<std::string> expand_generics(ComponentTree& tree) {
  std::vector<std::string> report;
  std::vector<ComponentNode> result;
  for (ComponentNode& node : tree.components) {
    if (!node.interface.is_generic()) {
      result.push_back(std::move(node));
      continue;
    }
    const std::vector<Binding> combos =
        binding_combinations(node.interface.template_params, tree.recipe);
    if (combos.empty()) {
      report.push_back("generic component '" + node.interface.name +
                       "' removed: no type binding provided for its "
                       "template parameter(s)");
      continue;
    }
    for (const Binding& binding : combos) {
      ComponentNode concrete = node;  // deep copy of descriptors
      concrete.expanded_from = node.interface.name;
      concrete.binding = binding;

      std::string suffix;
      for (const auto& [param, value] : binding) {
        (void)param;
        suffix += "_" + mangle_type(value);
      }
      concrete.interface.name = node.interface.name + suffix;
      concrete.interface.template_params.clear();
      concrete.interface.return_type =
          substitute_type(node.interface.return_type, binding);
      for (desc::ParamDesc& p : concrete.interface.params) {
        p.type = substitute_type(p.type, binding);
      }
      for (VariantNode& variant : concrete.variants) {
        variant.descriptor.name += suffix;
        variant.descriptor.interface_name = concrete.interface.name;
      }
      std::string binding_text;
      for (const auto& [param, value] : binding) {
        if (!binding_text.empty()) binding_text += ", ";
        binding_text += param + "=" + value;
      }
      report.push_back("expanded '" + node.interface.name + "' with [" +
                       binding_text + "] into '" + concrete.interface.name + "'");
      result.push_back(std::move(concrete));
    }
  }
  tree.components = std::move(result);
  return report;
}

}  // namespace peppher::compose
