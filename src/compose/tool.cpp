#include "compose/tool.hpp"

#include <ostream>

#include "analyze/lint.hpp"
#include "compose/codegen.hpp"
#include "compose/expand.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace peppher::compose {

namespace {

sim::MachineConfig machine_preset(const std::string& name) {
  if (name == "c2050") return sim::MachineConfig::platform_c2050();
  if (name == "c1060") return sim::MachineConfig::platform_c1060();
  if (name == "opencl") return sim::MachineConfig::platform_opencl();
  if (name == "cpu") return sim::MachineConfig::cpu_only();
  throw Error(ErrorCode::kInvalidArgument,
              "unknown machine preset '" + name + "' (c2050|c1060|opencl|cpu)");
}

/// Splits "-key=value"; returns false if `arg` is not "-key[=...]".
bool match_switch(const std::string& arg, std::string_view key, std::string* value) {
  if (!strings::starts_with(arg, "-")) return false;
  std::string_view body(arg);
  body.remove_prefix(1);
  if (strings::starts_with(body, "-")) body.remove_prefix(1);  // --key too
  if (!strings::starts_with(body, key)) return false;
  body.remove_prefix(key.size());
  if (body.empty()) {
    value->clear();
    return true;
  }
  if (body.front() != '=') return false;
  *value = std::string(body.substr(1));
  return true;
}

std::string strip_quotes(std::string text) {
  if (text.size() >= 2 && ((text.front() == '"' && text.back() == '"') ||
                           (text.front() == '\'' && text.back() == '\''))) {
    return text.substr(1, text.size() - 2);
  }
  return text;
}

}  // namespace

std::string usage() {
  return "usage:\n"
         "  compose <main.xml> [switches]        generate composition code\n"
         "  compose -generateCompFiles=<hdr.h>   generate component skeletons\n"
         "switches:\n"
         "  -disableImpls=<name|arch>[,...]\n"
         "  -useHistoryModels=<true|false>\n"
         "  -scheduler=<eager|random|ws|dmda|lookahead>\n"
         "  -machine=<c2050|c1060|opencl|cpu>\n"
         "  -bind=<Param=type[,type...]>\n"
         "  -expandTunables\n"
         "  -dumpIR\n"
         "  -outdir=<dir>\n"
         "  -backends=<cpu,openmp,cuda>\n"
         "  -lint    run the static checks (signatures, feasibility,\n"
         "           dispatch coverage, hazards, coherence) and stop\n"
         "  -verify  also run the coherence verifier on straight lines\n"
         "  -werror\n"
         "  -verbose\n";
}

ToolOptions parse_arguments(const std::vector<std::string>& args) {
  ToolOptions options;
  for (const std::string& arg : args) {
    std::string value;
    if (match_switch(arg, "generateCompFiles", &value)) {
      options.generate_comp_files = strip_quotes(value);
    } else if (match_switch(arg, "disableImpls", &value)) {
      for (std::string& name : strings::split(strip_quotes(value), ',')) {
        std::string trimmed(strings::trim(name));
        if (!trimmed.empty()) options.recipe.disable_impls.push_back(trimmed);
      }
    } else if (match_switch(arg, "useHistoryModels", &value)) {
      options.recipe.use_history_models =
          strings::to_lower(value) != "false" && value != "0";
    } else if (match_switch(arg, "scheduler", &value)) {
      options.recipe.scheduler = value;
    } else if (match_switch(arg, "machine", &value)) {
      options.recipe.machine = machine_preset(value);
    } else if (match_switch(arg, "bind", &value)) {
      const std::string binding = strip_quotes(value);
      const std::size_t eq = binding.find('=');
      if (eq == std::string::npos) {
        throw Error(ErrorCode::kInvalidArgument,
                    "-bind expects Param=type[,type...], got '" + binding + "'");
      }
      std::vector<std::string> types;
      for (std::string& t : strings::split(binding.substr(eq + 1), ',')) {
        std::string trimmed(strings::trim(t));
        if (!trimmed.empty()) types.push_back(trimmed);
      }
      if (types.empty()) {
        throw Error(ErrorCode::kInvalidArgument,
                    "-bind has no types: '" + binding + "'");
      }
      options.recipe.bindings.emplace_back(binding.substr(0, eq), types);
    } else if (match_switch(arg, "outdir", &value)) {
      options.output_dir = strip_quotes(value);
    } else if (match_switch(arg, "backends", &value)) {
      options.skeleton.backends.clear();
      for (std::string& b : strings::split(strip_quotes(value), ',')) {
        std::string trimmed(strings::trim(b));
        if (!trimmed.empty()) options.skeleton.backends.push_back(trimmed);
      }
    } else if (arg == "-expandTunables" || arg == "--expandTunables") {
      options.recipe.expand_tunables = true;
    } else if (arg == "-lint" || arg == "--lint") {
      options.lint_only = true;
    } else if (arg == "-verify" || arg == "--verify") {
      options.verify = true;
    } else if (arg == "-werror" || arg == "--werror") {
      options.werror = true;
    } else if (arg == "-dumpIR" || arg == "--dumpIR") {
      options.dump_ir = true;
    } else if (arg == "-verbose" || arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "-help" || arg == "--help" || arg == "-h") {
      throw Error(ErrorCode::kInvalidArgument, usage());
    } else if (!arg.empty() && arg.front() == '-') {
      throw Error(ErrorCode::kInvalidArgument,
                  "unknown switch '" + arg + "'\n" + usage());
    } else {
      if (!options.main_descriptor.empty()) {
        throw Error(ErrorCode::kInvalidArgument,
                    "more than one main descriptor given");
      }
      options.main_descriptor = arg;
    }
  }
  if (options.main_descriptor.empty() && options.generate_comp_files.empty()) {
    throw Error(ErrorCode::kInvalidArgument,
                "nothing to do: pass a main.xml or -generateCompFiles\n" + usage());
  }
  return options;
}

int run_tool(const ToolOptions& options, std::ostream& out, std::ostream& err) {
  try {
    if (!options.generate_comp_files.empty()) {
      const std::filesystem::path header(options.generate_comp_files);
      const std::filesystem::path outdir =
          options.output_dir.empty() ? header.parent_path()
                                     : std::filesystem::path(options.output_dir);
      const CodegenResult result =
          generate_skeleton_from_file(header, outdir, options.skeleton);
      out << "generated " << result.files.size() << " skeleton file(s) under '"
          << outdir.string() << "'\n";
      if (options.verbose) {
        for (const std::string& note : result.notes) out << "  " << note << "\n";
        for (const GeneratedFile& file : result.files) {
          out << "  " << file.path << "\n";
        }
      }
      return 0;
    }

    // Build mode: compose main.xml.
    const std::filesystem::path main_path(options.main_descriptor);
    desc::Repository repo;
    repo.scan(main_path.parent_path().empty() ? "."
                                              : main_path.parent_path().string());
    // Ensure the main descriptor itself is loaded even if outside the tree.
    repo.load_file(main_path);

    // Static checks (peppher-lint) before any code generation: the same
    // engine the standalone `peppher-lint` tool runs, so composition fails
    // fast with identical messages.
    analyze::LintOptions lint_options;
    lint_options.disable_impls = options.recipe.disable_impls;
    lint_options.machine = options.recipe.machine;
    lint_options.root = main_path.parent_path().empty()
                            ? std::filesystem::path(".")
                            : main_path.parent_path();
    lint_options.verify = options.verify;
    const diag::DiagnosticBag lint = analyze::run_lint(repo, lint_options);
    if (!lint.empty()) err << lint.format_text();
    if (lint.fails(options.werror)) {
      err << "compose: static checks failed; no code generated\n";
      return 1;
    }
    if (options.lint_only) {
      out << "lint: " << lint.diagnostics().size() << " diagnostic(s), 0 fatal\n";
      return 0;
    }

    ComponentTree tree = build_tree(repo, options.recipe);
    std::vector<std::string> expansion = expand_generics(tree);
    if (tree.recipe.expand_tunables) {
      for (std::string& note : expand_tunables(tree)) {
        expansion.push_back(std::move(note));
      }
    }
    const std::vector<std::string> narrowing = apply_static_narrowing(tree);
    if (options.dump_ir) out << describe(tree);
    const CodegenResult result = generate(tree);

    const std::filesystem::path outdir =
        options.output_dir.empty()
            ? (main_path.parent_path().empty()
                   ? std::filesystem::path(".")
                   : main_path.parent_path())
            : std::filesystem::path(options.output_dir);
    write_files(result, outdir);

    out << "composed " << tree.components.size() << " component(s); wrote "
        << result.files.size() << " file(s) under '" << outdir.string() << "'\n";
    if (options.verbose) {
      for (const std::string& note : expansion) out << "  " << note << "\n";
      for (const std::string& note : narrowing) out << "  " << note << "\n";
      for (const std::string& note : result.notes) out << "  " << note << "\n";
    }
    return 0;
  } catch (const Error& e) {
    err << "compose: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace peppher::compose
