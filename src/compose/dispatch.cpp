#include "compose/dispatch.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace peppher::compose {

DispatchTable DispatchTable::build(const ComponentNode& component,
                                   const std::vector<std::size_t>& scenario_bytes,
                                   const Predictor& predict) {
  std::vector<std::size_t> sizes = scenario_bytes;
  std::sort(sizes.begin(), sizes.end());
  sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());

  DispatchTable table;
  for (std::size_t bytes : sizes) {
    const VariantNode* best = nullptr;
    double best_seconds = std::numeric_limits<double>::infinity();
    for (const VariantNode* variant : component.enabled_variants()) {
      const std::optional<double> seconds = predict(*variant, bytes);
      if (seconds.has_value() && *seconds < best_seconds) {
        best = variant;
        best_seconds = *seconds;
      }
    }
    if (best == nullptr) continue;  // nothing predictable at this size
    if (!table.entries_.empty() &&
        table.entries_.back().variant == best->descriptor.name) {
      // Compaction: extend the previous run instead of adding an entry.
      table.entries_.back().upper_bytes = bytes;
    } else {
      table.entries_.push_back(
          DispatchEntry{bytes, best->descriptor.name, best->arch()});
    }
  }
  return table;
}

const DispatchEntry* DispatchTable::lookup(std::size_t bytes) const {
  for (const DispatchEntry& entry : entries_) {
    if (bytes <= entry.upper_bytes) return &entry;
  }
  return entries_.empty() ? nullptr : &entries_.back();
}

std::vector<std::string> DispatchTable::variants_used() const {
  std::vector<std::string> out;
  for (const DispatchEntry& entry : entries_) {
    if (std::find(out.begin(), out.end(), entry.variant) == out.end()) {
      out.push_back(entry.variant);
    }
  }
  return out;
}

std::string DispatchTable::serialize() const {
  std::ostringstream out;
  for (const DispatchEntry& entry : entries_) {
    out << entry.upper_bytes << ' ' << entry.variant << ' '
        << rt::to_string(entry.arch) << '\n';
  }
  return std::move(out).str();
}

DispatchTable DispatchTable::deserialize(std::string_view text) {
  DispatchTable table;
  for (const std::string& line : strings::split(text, '\n')) {
    const auto fields = strings::split_whitespace(line);
    if (fields.empty()) continue;
    if (fields.size() != 3) {
      throw ParseError("bad dispatch-table line: '" + line + "'");
    }
    DispatchEntry entry;
    entry.upper_bytes =
        static_cast<std::size_t>(strings::to_int(fields[0]).value_or(0));
    entry.variant = fields[1];
    entry.arch = rt::parse_arch(fields[2]);
    table.entries_.push_back(std::move(entry));
  }
  return table;
}

int narrow_with_table(ComponentNode& component, const DispatchTable& table) {
  if (table.empty()) return 0;
  const std::vector<std::string> used = table.variants_used();
  const std::set<std::string> keep(used.begin(), used.end());
  int disabled = 0;
  for (VariantNode& variant : component.variants) {
    if (variant.enabled && keep.count(variant.descriptor.name) == 0) {
      variant.enabled = false;
      variant.disabled_reason = "never selected by the static dispatch table";
      ++disabled;
    }
  }
  return disabled;
}

sim::DeviceProfile profile_for_arch(const sim::MachineConfig& machine,
                                    rt::Arch arch) {
  switch (arch) {
    case rt::Arch::kCpu:
      check(machine.cpu_cores > 0, "machine has no CPU cores");
      return machine.cpu_core;
    case rt::Arch::kCpuOmp: {
      check(machine.cpu_cores > 0, "machine has no CPU cores");
      sim::DeviceProfile p = machine.cpu_core;
      p.name += "-combined";
      p.peak_gflops *= machine.cpu_cores * 0.90;
      p.mem_bandwidth_gbs *= machine.cpu_cores;
      return p;
    }
    case rt::Arch::kCuda:
    case rt::Arch::kOpenCl: {
      const sim::DeviceClass wanted = arch == rt::Arch::kCuda
                                          ? sim::DeviceClass::kCudaGpu
                                          : sim::DeviceClass::kOpenClGpu;
      for (const auto& accel : machine.accelerators) {
        if (accel.device_class == wanted) return accel;
      }
      throw Error(ErrorCode::kNotFound,
                  "machine '" + machine.name + "' has no " + rt::to_string(arch) +
                      " device");
    }
  }
  throw Error(ErrorCode::kInternal, "unreachable arch");
}

Predictor history_predictor(const rt::PerfRegistry& registry,
                            const std::string& component_name) {
  return [&registry, component_name](const VariantNode& variant,
                                     std::size_t bytes) -> std::optional<double> {
    return registry.regression_estimate(component_name, variant.arch(), bytes);
  };
}

}  // namespace peppher::compose
