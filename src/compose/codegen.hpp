// Code generation (§IV-C): for each component interface the composition
// tool generates one wrapper file containing
//   * one *entry-wrapper* — a function with the interface's exact signature
//     that intercepts the component invocation, packs value parameters into
//     an argument struct, turns operand parameters into runtime data
//     handles, and submits a task (synchronously for raw-pointer operands,
//     with an additional _async entry point when all operands are smart
//     containers);
//   * one *backend-wrapper* per implementation variant, implementing the
//     `void <name>(void* buffers[], void* arg)` signature the runtime
//     expects for a task function and delegating to the actual
//     implementation;
//   * static registration of the enabled variants with the component
//     registry (disabled variants are simply not registered — user-guided
//     static composition costs nothing at runtime);
// plus a single `peppher.h` linking header and a Makefile.
//
// Calling conventions for the actual implementation variants (what the
// component developer writes; the skeleton generator emits matching stubs):
//   * raw-pointer interface parameters are passed through unchanged;
//   * `Vector<T>&`  lowers to `T* <name>, std::size_t <name>_count`;
//   * `Matrix<T>&`  lowers to `T* <name>, std::size_t <name>_rows,
//                    std::size_t <name>_cols`;
//   * `Scalar<T>&`  lowers to `T* <name>`;
//   * value parameters are passed through unchanged.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "compose/ir.hpp"

namespace peppher::compose {

/// One generated file (relative path + contents).
struct GeneratedFile {
  std::string path;
  std::string content;
};

struct CodegenResult {
  std::vector<GeneratedFile> files;
  std::vector<std::string> notes;  ///< human-readable generation log
};

/// Generates the wrapper file for one component. Throws
/// Error(kUnsupported) for non-void interfaces and Error(kInvalidState) for
/// raw-pointer operands without a size expression.
std::string generate_wrapper_file(const ComponentNode& component);

/// Generates the application-wide peppher.h: entry-wrapper declarations for
/// every component plus the runtime macros (via the core API header).
std::string generate_header(const ComponentTree& tree);

/// Generates the Makefile that compiles wrappers, implementation variants
/// (with their descriptor-specified compilers/options) and the main module,
/// then links the executable.
std::string generate_makefile(const ComponentTree& tree);

/// Runs all generators over the tree.
CodegenResult generate(const ComponentTree& tree);

/// Writes a generation result under `output_dir`.
void write_files(const CodegenResult& result,
                 const std::filesystem::path& output_dir);

/// The lowered C++ parameter list of an implementation variant of this
/// interface (see the calling conventions above) — reused by the skeleton
/// generator.
std::string lowered_impl_signature(const desc::InterfaceDescriptor& interface,
                                   const std::string& function_name);

}  // namespace peppher::compose
