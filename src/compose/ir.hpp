// The composition tool's intermediate representation (the "component tree"
// of Figure 2): a processed view of the repository's descriptors for one
// application, decoupled from the XML schema, carrying both descriptor
// information and composition-time decisions (the composition recipe).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "descriptor/descriptor.hpp"
#include "runtime/engine.hpp"
#include "runtime/types.hpp"
#include "sim/device.hpp"

namespace peppher::compose {

/// Composition-time inputs that are not in the descriptors (command-line
/// switches and target machine): the "composition recipe".
struct Recipe {
  /// Target machine; decides which variants are usable at all.
  sim::MachineConfig machine = sim::MachineConfig::platform_c2050();

  /// User-guided static narrowing: names/architectures to disable
  /// (the disableImpls switch, §IV-A).
  std::vector<std::string> disable_impls;

  /// The useHistoryModels flag (§IV-G); merged with the main descriptor.
  std::optional<bool> use_history_models;

  /// Scheduler override.
  std::optional<std::string> scheduler;

  /// Generic-component bindings, e.g. {"T" -> {"float","double"}}: each
  /// combination instantiates a concrete component (§IV-B).
  std::vector<std::pair<std::string, std::vector<std::string>>> bindings;

  /// Expand multi-valued tunable parameters into one variant per value
  /// combination (the paper's §IV-B future-work feature).
  bool expand_tunables = false;

  /// Output directory for generated code.
  std::string output_dir = "peppher-generated";
};

/// One implementation variant inside the IR.
struct VariantNode {
  desc::ImplementationDescriptor descriptor;  ///< owned copy (expansion mutates)
  bool enabled = true;
  std::string disabled_reason;  ///< why static composition removed it

  rt::Arch arch() const { return descriptor.arch(); }
};

/// One component (interface + its variants) inside the IR.
struct ComponentNode {
  desc::InterfaceDescriptor interface;  ///< owned copy (expansion mutates)
  std::vector<VariantNode> variants;

  /// For components created by generic expansion: the source interface and
  /// the applied binding ("sort" + "T=float").
  std::string expanded_from;
  std::vector<std::pair<std::string, std::string>> binding;

  /// Enabled variants only.
  std::vector<const VariantNode*> enabled_variants() const;

  /// True if at least one enabled variant remains.
  bool composable() const;
};

/// The component tree: all components reachable from the main module, in
/// bottom-up (requirements-first) order, plus application-level settings.
struct ComponentTree {
  std::vector<ComponentNode> components;
  desc::MainDescriptor main;
  Recipe recipe;

  ComponentNode* find(const std::string& interface_name);
  const ComponentNode* find(const std::string& interface_name) const;
};

/// Builds the IR from a repository (pass 1 of the tool, §III):
///  * explores interfaces bottom-up in the required-interfaces relation,
///    restricted to those reachable from the main module's `uses` (all
///    interfaces when the main module lists none);
///  * keeps only variants whose architecture exists on the target machine;
///  * merges the main descriptor's composition switches into the recipe.
/// Throws Error(kInvalidState) if the repository has no main module (use
/// build_tree_for_interfaces for library-style composition).
ComponentTree build_tree(const desc::Repository& repo, Recipe recipe);

/// Same, but for an explicit interface set and no main module.
ComponentTree build_tree_for_interfaces(const desc::Repository& repo,
                                        const std::vector<std::string>& interfaces,
                                        Recipe recipe);

/// Static composition pass (§IV-A): applies disableImpls narrowing and the
/// variants' own selectability constraints that are statically decidable.
/// Returns a human-readable report of what was narrowed. Throws
/// Error(kInvalidState) if a component ends up with no enabled variant.
std::vector<std::string> apply_static_narrowing(ComponentTree& tree);

/// Human-readable dump of the component tree (the `compose -dumpIR`
/// output): per component its interface signature, and per variant its
/// architecture, sources, enablement and the reason it was disabled.
std::string describe(const ComponentTree& tree);

/// The runtime configuration an application composed from this tree should
/// start with: the recipe's machine, the (merged) scheduler and
/// useHistoryModels switches, and the main descriptor's optimization goal
/// ("exec_time" -> time, "energy" -> energy).
rt::EngineConfig engine_config(const ComponentTree& tree);

}  // namespace peppher::compose
