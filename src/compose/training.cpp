#include "compose/training.hpp"

#include <algorithm>
#include <set>

#include "support/error.hpp"
#include "support/log.hpp"

namespace peppher::compose {

std::vector<std::size_t> TrainingReport::scenario_bytes() const {
  std::vector<std::size_t> out;
  for (const TrainingSample& sample : samples) {
    out.push_back(sample.total_bytes);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

TrainingReport train_component(rt::Engine& engine, const rt::Codelet& codelet,
                               const TrainingTaskFactory& factory,
                               const std::vector<std::size_t>& scenarios,
                               int repeats) {
  check(repeats > 0, "train_component: repeats must be positive");
  check(factory != nullptr, "train_component: null task factory");

  // Architectures with an enabled variant that exist on this machine.
  std::set<rt::Arch> archs;
  for (const auto& worker : engine.workers()) {
    for (rt::Arch arch : worker.archs) {
      if (codelet.impl_for(arch) != nullptr) archs.insert(arch);
    }
  }
  if (archs.empty()) {
    throw Error(ErrorCode::kInvalidState,
                "codelet '" + codelet.name() +
                    "' has no enabled variant runnable on this machine");
  }

  TrainingReport report;
  report.component = codelet.name();
  for (std::size_t scenario : scenarios) {
    for (rt::Arch arch : archs) {
      TrainingSample sample;
      sample.arch = arch;
      sample.scenario = scenario;
      double total_seconds = 0.0;
      for (int run = 0; run < repeats; ++run) {
        std::vector<rt::DataHandlePtr> keepalive;
        rt::TaskSpec spec = factory(engine, scenario, keepalive);
        check(spec.codelet == &codelet,
              "training factory built a task for a different codelet");
        spec.forced_arch = arch;
        spec.synchronous = true;
        rt::TaskPtr task;
        try {
          task = engine.submit(std::move(spec));
        } catch (const Error&) {
          // Selectability constraints can reject an (arch, scenario)
          // combination; skip it rather than failing the whole training.
          sample.runs = 0;
          break;
        }
        total_seconds += task->exec_seconds;
        ++sample.runs;
        std::size_t bytes = 0;
        for (const auto& op : task->spec.operands) bytes += op.handle->bytes();
        sample.total_bytes = bytes;
        for (const auto& handle : keepalive) engine.unregister(handle);
      }
      if (sample.runs > 0) {
        sample.seconds = total_seconds / static_cast<double>(sample.runs);
        report.samples.push_back(sample);
      }
    }
  }
  log::debug("compose", "trained component '{}': {} samples over {} scenarios",
             codelet.name(), report.samples.size(), scenarios.size());
  return report;
}

DispatchTable train_and_build_table(rt::Engine& engine,
                                    ComponentNode& component,
                                    const rt::Codelet& codelet,
                                    const TrainingTaskFactory& factory,
                                    const std::vector<std::size_t>& scenarios,
                                    int repeats) {
  const TrainingReport report =
      train_component(engine, codelet, factory, scenarios, repeats);
  return DispatchTable::build(component, report.scenario_bytes(),
                              history_predictor(engine.perf(), codelet.name()));
}

}  // namespace peppher::compose
