#include "compose/codegen.hpp"

#include <sstream>

#include "support/error.hpp"
#include "support/fs.hpp"
#include "support/strings.hpp"

namespace peppher::compose {

namespace {

/// Kind of lowering a parameter needs.
enum class ParamKind { kValue, kRawPointer, kVector, kMatrix, kScalar };

ParamKind classify(const desc::ParamDesc& param) {
  if (param.type.find("Vector<") != std::string::npos) return ParamKind::kVector;
  if (param.type.find("Matrix<") != std::string::npos) return ParamKind::kMatrix;
  if (param.type.find("Scalar<") != std::string::npos) return ParamKind::kScalar;
  if (param.type.find('*') != std::string::npos) return ParamKind::kRawPointer;
  return ParamKind::kValue;
}

/// Fully qualified spelling of a container type from a descriptor
/// ("Vector<float>&" -> "peppher::cont::Vector<float>&").
std::string qualified_container_type(const std::string& type) {
  if (type.find("peppher::") != std::string::npos) return type;
  return "peppher::cont::" + type;
}

std::string access_mode_expr(rt::AccessMode mode) {
  switch (mode) {
    case rt::AccessMode::kRead: return "peppher::rt::AccessMode::kRead";
    case rt::AccessMode::kWrite: return "peppher::rt::AccessMode::kWrite";
    case rt::AccessMode::kReadWrite: return "peppher::rt::AccessMode::kReadWrite";
  }
  return "peppher::rt::AccessMode::kReadWrite";
}

std::string arch_expr(rt::Arch arch) {
  switch (arch) {
    case rt::Arch::kCpu: return "peppher::rt::Arch::kCpu";
    case rt::Arch::kCpuOmp: return "peppher::rt::Arch::kCpuOmp";
    case rt::Arch::kCuda: return "peppher::rt::Arch::kCuda";
    case rt::Arch::kOpenCl: return "peppher::rt::Arch::kOpenCl";
  }
  return "peppher::rt::Arch::kCpu";
}

/// Signature of the entry wrapper (= the interface prototype, with
/// container types qualified).
std::string entry_signature(const desc::InterfaceDescriptor& iface,
                            const std::string& return_type,
                            const std::string& suffix) {
  std::string out = return_type + " " + iface.name + suffix + "(";
  for (std::size_t i = 0; i < iface.params.size(); ++i) {
    const desc::ParamDesc& p = iface.params[i];
    if (i != 0) out += ", ";
    const ParamKind kind = classify(p);
    const std::string type = (kind == ParamKind::kVector ||
                              kind == ParamKind::kMatrix ||
                              kind == ParamKind::kScalar)
                                 ? qualified_container_type(p.type)
                                 : p.type;
    out += type + " " + p.name;
  }
  out += ")";
  return out;
}

void validate(const ComponentNode& component) {
  const desc::InterfaceDescriptor& iface = component.interface;
  if (iface.return_type != "void") {
    throw Error(ErrorCode::kUnsupported,
                "interface '" + iface.name +
                    "' returns a value; components communicate through "
                    "operands (make the result a write-mode operand)");
  }
  if (iface.is_generic()) {
    throw Error(ErrorCode::kInvalidState,
                "generic interface '" + iface.name +
                    "' reached code generation; run expand_generics first");
  }
  for (const desc::ParamDesc& p : iface.params) {
    if (classify(p) == ParamKind::kRawPointer && p.size_expr.empty()) {
      throw Error(ErrorCode::kInvalidState,
                  "interface '" + iface.name + "': raw-pointer operand '" +
                      p.name +
                      "' has no size attribute; the entry wrapper cannot "
                      "register it with the runtime");
    }
  }
}

bool all_operands_are_containers(const desc::InterfaceDescriptor& iface) {
  for (const desc::ParamDesc& p : iface.params) {
    if (classify(p) == ParamKind::kRawPointer) return false;
  }
  return true;
}

/// Argument-struct definition: value parameters plus container geometry.
std::string args_struct(const desc::InterfaceDescriptor& iface,
                        const std::string& struct_name) {
  std::ostringstream out;
  out << "struct " << struct_name << " {\n";
  for (const desc::ParamDesc& p : iface.params) {
    switch (classify(p)) {
      case ParamKind::kValue:
        out << "  " << p.type << " " << p.name << "{};\n";
        break;
      case ParamKind::kVector:
        out << "  std::size_t " << p.name << "_count = 0;\n";
        break;
      case ParamKind::kMatrix:
        out << "  std::size_t " << p.name << "_rows = 0;\n";
        out << "  std::size_t " << p.name << "_cols = 0;\n";
        break;
      default:
        break;  // raw pointers carry their size in other parameters
    }
  }
  out << "};\n";
  return std::move(out).str();
}

/// extern declaration of one actual implementation variant.
std::string impl_extern_decl(const desc::InterfaceDescriptor& iface,
                             const std::string& variant_name) {
  return "extern " + lowered_impl_signature(iface, variant_name) + ";\n";
}

/// Constraints that the generated code can evaluate at call time: those on
/// value parameters of the interface.
std::vector<const desc::ConstraintDesc*> evaluable_constraints(
    const desc::InterfaceDescriptor& iface,
    const desc::ImplementationDescriptor& impl) {
  std::vector<const desc::ConstraintDesc*> out;
  for (const desc::ConstraintDesc& constraint : impl.constraints) {
    for (const desc::ParamDesc& p : iface.params) {
      if (p.name == constraint.param && classify(p) == ParamKind::kValue) {
        out.push_back(&constraint);
        break;
      }
    }
  }
  return out;
}

/// The selectability predicate for a variant with parameter-range
/// constraints (§II): generated as a C function checked by the runtime
/// before considering the variant for a call.
std::string selectable_predicate(const desc::InterfaceDescriptor& iface,
                                 const desc::ImplementationDescriptor& impl,
                                 const std::string& args_name) {
  const auto constraints = evaluable_constraints(iface, impl);
  std::ostringstream out;
  out << "static bool _peppher_" << impl.name
      << "_selectable(const std::vector<std::size_t>&, const void* arg) {\n";
  out << "  const auto* a = static_cast<const " << args_name << "*>(arg);\n";
  out << "  (void)a;\n";
  out << "  return true";
  for (const desc::ConstraintDesc* constraint : constraints) {
    if (constraint->min) {
      out << "\n      && static_cast<double>(a->" << constraint->param
          << ") >= " << *constraint->min;
    }
    if (constraint->max) {
      out << "\n      && static_cast<double>(a->" << constraint->param
          << ") <= " << *constraint->max;
    }
  }
  out << ";\n}\n";
  return std::move(out).str();
}

/// One backend wrapper (the C-style task function).
std::string backend_wrapper(const desc::InterfaceDescriptor& iface,
                            const std::string& variant_name,
                            const std::string& args_name) {
  std::ostringstream out;
  out << "static void _peppher_" << variant_name
      << "_task(void** buffers, const void* arg) {\n";
  out << "  const auto* a = static_cast<const " << args_name << "*>(arg);\n";
  out << "  (void)a;\n  (void)buffers;\n";
  out << "  " << variant_name << "(";
  std::size_t buffer_index = 0;
  bool first = true;
  for (const desc::ParamDesc& p : iface.params) {
    auto sep = [&]() -> std::ostringstream& {
      if (!first) out << ",\n      ";
      first = false;
      return out;
    };
    const std::string elem = p.element_type();
    switch (classify(p)) {
      case ParamKind::kValue:
        sep() << "a->" << p.name;
        break;
      case ParamKind::kRawPointer:
        sep() << "static_cast<" << p.type << ">(buffers[" << buffer_index++
              << "])";
        break;
      case ParamKind::kVector:
        sep() << "static_cast<" << elem << "*>(buffers[" << buffer_index++
              << "]), a->" << p.name << "_count";
        break;
      case ParamKind::kMatrix:
        sep() << "static_cast<" << elem << "*>(buffers[" << buffer_index++
              << "]), a->" << p.name << "_rows, a->" << p.name << "_cols";
        break;
      case ParamKind::kScalar:
        sep() << "static_cast<" << elem << "*>(buffers[" << buffer_index++
              << "])";
        break;
    }
  }
  out << ");\n}\n";
  return std::move(out).str();
}

/// The entry wrapper body shared by sync and async variants: packing of the
/// argument struct and the operand list.
void emit_packing(std::ostringstream& out, const desc::InterfaceDescriptor& iface,
                  const std::string& args_name, bool containers_only) {
  out << "  auto arg = std::make_shared<" << args_name << ">();\n";
  for (const desc::ParamDesc& p : iface.params) {
    switch (classify(p)) {
      case ParamKind::kValue:
        out << "  arg->" << p.name << " = " << p.name << ";\n";
        break;
      case ParamKind::kVector:
        out << "  arg->" << p.name << "_count = " << p.name << ".size();\n";
        break;
      case ParamKind::kMatrix:
        out << "  arg->" << p.name << "_rows = " << p.name << ".rows();\n";
        out << "  arg->" << p.name << "_cols = " << p.name << ".cols();\n";
        break;
      default:
        break;
    }
  }
  if (containers_only) {
    out << "  std::vector<peppher::core::CallOperand> _operands;\n";
    for (const desc::ParamDesc& p : iface.params) {
      if (classify(p) == ParamKind::kValue) continue;
      out << "  _operands.push_back({" << p.name << ".handle(), "
          << access_mode_expr(p.access) << "});\n";
    }
  } else {
    // Raw pointers present: transient registration with conservative
    // copy-back on return (§IV-D).
    out << "  peppher::core::TransientOperands _operands;\n";
    for (const desc::ParamDesc& p : iface.params) {
      const ParamKind kind = classify(p);
      if (kind == ParamKind::kValue) continue;
      if (kind == ParamKind::kRawPointer) {
        const std::string elem = p.element_type();
        out << "  _operands.add(const_cast<void*>(static_cast<const void*>("
            << p.name << ")), static_cast<std::size_t>(" << p.size_expr
            << "), sizeof(" << elem << "), " << access_mode_expr(p.access)
            << ");\n";
      } else {
        // Containers mixed with raw pointers: register the container's
        // handle as-is (not transient).
        out << "  // container operand '" << p.name
            << "' uses its own managed handle\n";
      }
    }
  }
}

}  // namespace

std::string lowered_impl_signature(const desc::InterfaceDescriptor& iface,
                                   const std::string& function_name) {
  std::string out = "void " + function_name + "(";
  bool first = true;
  for (const desc::ParamDesc& p : iface.params) {
    auto sep = [&] {
      if (!first) out += ", ";
      first = false;
    };
    const std::string elem = p.element_type();
    switch (classify(p)) {
      case ParamKind::kValue:
        sep();
        out += p.type + " " + p.name;
        break;
      case ParamKind::kRawPointer:
        sep();
        out += p.type + " " + p.name;
        break;
      case ParamKind::kVector:
        sep();
        out += elem + "* " + p.name + ", std::size_t " + p.name + "_count";
        break;
      case ParamKind::kMatrix:
        sep();
        out += elem + "* " + p.name + ", std::size_t " + p.name +
               "_rows, std::size_t " + p.name + "_cols";
        break;
      case ParamKind::kScalar:
        sep();
        out += elem + "* " + p.name;
        break;
    }
  }
  out += ")";
  return out;
}

std::string generate_wrapper_file(const ComponentNode& component) {
  validate(component);
  const desc::InterfaceDescriptor& iface = component.interface;
  const std::string args_name = "_peppher_" + iface.name + "_args";
  const bool containers_only = all_operands_are_containers(iface);

  std::ostringstream out;
  out << "// Generated by the PEPPHER composition tool — do not edit.\n";
  out << "// Component: " << iface.name << "\n";
  if (!component.expanded_from.empty()) {
    out << "// Expanded from generic component: " << component.expanded_from
        << "\n";
  }
  out << "#include \"peppher.h\"\n\n";
  out << "#include <cstddef>\n#include <memory>\n#include <vector>\n\n";

  out << "// Actual implementation variants (component-developer code).\n";
  for (const VariantNode* variant : component.enabled_variants()) {
    out << impl_extern_decl(iface, variant->descriptor.name);
  }
  bool any_prediction = false;
  for (const VariantNode* variant : component.enabled_variants()) {
    if (variant->descriptor.prediction_function) {
      if (!any_prediction) {
        out << "\n// User-provided performance prediction functions (§VII):\n";
        out << "// called with the operand sizes and the call-argument block,\n";
        out << "// they return the work estimate the scheduler plans with.\n";
        any_prediction = true;
      }
      out << "extern peppher::sim::KernelCost "
          << *variant->descriptor.prediction_function
          << "(const std::vector<std::size_t>& operand_bytes, const void* "
             "arg);\n";
    }
  }
  out << "\n// Call-argument block passed to the runtime task handler.\n";
  out << args_struct(iface, args_name) << "\n";

  out << "// Backend wrappers: the void(void* buffers[], void* arg) signature\n";
  out << "// the runtime system expects for a task function.\n";
  for (const VariantNode* variant : component.enabled_variants()) {
    out << backend_wrapper(iface, variant->descriptor.name, args_name) << "\n";
  }

  for (const VariantNode* variant : component.enabled_variants()) {
    if (!evaluable_constraints(iface, variant->descriptor).empty()) {
      out << "// Selectability constraint of variant '"
          << variant->descriptor.name << "' (§II parameter ranges).\n";
      out << selectable_predicate(iface, variant->descriptor, args_name)
          << "\n";
    }
  }

  out << "// Registration of the composed (enabled) variants.\n";
  out << "static const bool _peppher_" << iface.name << "_registered = [] {\n";
  for (const VariantNode* variant : component.enabled_variants()) {
    const bool has_selectable =
        !evaluable_constraints(iface, variant->descriptor).empty();
    out << "  peppher::core::register_backend(\"" << iface.name << "\", "
        << arch_expr(variant->arch()) << ", \"" << variant->descriptor.name
        << "\", &_peppher_" << variant->descriptor.name << "_task";
    if (variant->descriptor.prediction_function) {
      out << ", &" << *variant->descriptor.prediction_function;
    } else if (has_selectable) {
      out << ", nullptr";
    }
    if (has_selectable) {
      out << ", &_peppher_" << variant->descriptor.name << "_selectable";
    }
    out << ");\n";
  }
  out << "  return true;\n}();\n\n";

  out << "// Entry wrapper: intercepts the component invocation and translates\n";
  out << "// it to a task for the runtime system.\n";
  out << entry_signature(iface, "void", "") << " {\n";
  emit_packing(out, iface, args_name, containers_only);
  if (containers_only) {
    out << "  peppher::core::invoke(\"" << iface.name
        << "\", std::move(_operands), arg);\n";
  } else {
    out << "  peppher::core::invoke(\"" << iface.name
        << "\", _operands.operands(), arg);\n";
    out << "  // TransientOperands copies raw-pointer data back to main memory\n";
    out << "  // here (conservative consistency for unmanaged parameters).\n";
  }
  out << "}\n";

  if (containers_only) {
    out << "\n// Asynchronous entry wrapper: smart-container operands let the\n";
    out << "// runtime infer dependencies, enabling inter-component parallelism.\n";
    out << entry_signature(iface, "peppher::rt::TaskPtr", "_async") << " {\n";
    emit_packing(out, iface, args_name, containers_only);
    out << "  return peppher::core::invoke_async(\"" << iface.name
        << "\", std::move(_operands), arg);\n";
    out << "}\n";
  }
  return std::move(out).str();
}

std::string generate_header(const ComponentTree& tree) {
  std::ostringstream out;
  out << "// Generated by the PEPPHER composition tool — do not edit.\n";
  out << "// Single linking point between generated code and the application\n";
  out << "// (include this from the main module, then call\n";
  out << "// PEPPHER_INITIALIZE() / PEPPHER_SHUTDOWN()).\n";
  out << "#pragma once\n\n";
  out << "#include \"core/peppher.hpp\"\n";
  out << "#include \"containers/containers.hpp\"\n\n";
  out << "// Entry wrappers for the composed components.\n";
  for (const ComponentNode& component : tree.components) {
    out << entry_signature(component.interface, "void", "") << ";\n";
    if (all_operands_are_containers(component.interface)) {
      out << entry_signature(component.interface, "peppher::rt::TaskPtr",
                             "_async")
          << ";\n";
    }
  }
  return std::move(out).str();
}

std::string generate_makefile(const ComponentTree& tree) {
  std::ostringstream out;
  out << "# Generated by the PEPPHER composition tool — do not edit.\n";
  out << "CXX ?= g++\n";
  out << "CXXFLAGS ?= -O2 -std=c++20 -I.\n";
  out << "PEPPHER_LIBS ?= -lpeppher_core -lpeppher_runtime -lpeppher_sim "
         "-lpeppher_support -lpthread\n\n";

  std::vector<std::string> objects;
  const std::string main_src = tree.main.source.empty() ? "main.cpp"
                                                        : tree.main.source;
  std::string main_obj = main_src;
  const std::size_t dot = main_obj.rfind('.');
  if (dot != std::string::npos) main_obj = main_obj.substr(0, dot);
  main_obj += ".o";
  objects.push_back(main_obj);

  std::ostringstream rules;
  rules << main_obj << ": " << main_src << "\n";
  rules << "\t$(CXX) $(CXXFLAGS) -c $< -o $@\n\n";

  for (const ComponentNode& component : tree.components) {
    const std::string wrapper_src = component.interface.name + "_wrapper.cpp";
    const std::string wrapper_obj = component.interface.name + "_wrapper.o";
    objects.push_back(wrapper_obj);
    rules << wrapper_obj << ": " << wrapper_src << "\n";
    rules << "\t$(CXX) $(CXXFLAGS) -c $< -o $@\n\n";

    for (const VariantNode* variant : component.enabled_variants()) {
      const desc::ImplementationDescriptor& impl = variant->descriptor;
      for (const std::string& source : impl.sources) {
        // Object names are prefixed with the variant name so several
        // variants instantiated from the same source (tunable expansion)
        // compile to distinct objects.
        std::string obj = impl.name + "_" + source;
        for (char& c : obj) {
          if (c == '/') c = '_';
        }
        const std::size_t odot = obj.rfind('.');
        if (odot != std::string::npos) obj = obj.substr(0, odot);
        obj += ".o";
        objects.push_back(obj);
        const std::string compiler =
            impl.compile_command.empty() ? "$(CXX)" : impl.compile_command;
        const std::string options =
            impl.compile_options.empty() ? "$(CXXFLAGS)" : impl.compile_options;
        rules << obj << ": " << source << "\n";
        rules << "\t" << compiler << " " << options << " -c $< -o $@\n\n";
      }
    }
  }

  const std::string app = tree.main.name.empty() ? "app" : tree.main.name;
  out << "OBJS = " << strings::join(objects, " ") << "\n\n";
  out << "all: " << app << "\n\n";
  out << app << ": $(OBJS)\n";
  out << "\t$(CXX) $(CXXFLAGS) -o $@ $(OBJS) $(PEPPHER_LIBS)\n\n";
  out << rules.str();
  out << "clean:\n\trm -f $(OBJS) " << app << "\n";
  return std::move(out).str();
}

CodegenResult generate(const ComponentTree& tree) {
  CodegenResult result;
  for (const ComponentNode& component : tree.components) {
    result.files.push_back(GeneratedFile{
        component.interface.name + "_wrapper.cpp",
        generate_wrapper_file(component)});
    result.notes.push_back("generated wrapper for component '" +
                           component.interface.name + "' with " +
                           std::to_string(component.enabled_variants().size()) +
                           " variant(s)");
  }
  result.files.push_back(GeneratedFile{"peppher.h", generate_header(tree)});
  result.files.push_back(GeneratedFile{"Makefile", generate_makefile(tree)});
  return result;
}

void write_files(const CodegenResult& result,
                 const std::filesystem::path& output_dir) {
  for (const GeneratedFile& file : result.files) {
    fs::write_file(output_dir / file.path, file.content);
  }
}

}  // namespace peppher::compose
