// Command-line driver of the composition tool (the `compose` binary):
//
//   compose main.xml                       build composition code for an app
//   compose -generateCompFiles=spmv.h      utility mode: skeleton generation
//
// Switches (§IV):
//   -disableImpls=<name|arch>[,...]   user-guided static narrowing
//   -useHistoryModels=<true|false>    performance-aware selection flag
//   -scheduler=<eager|random|ws|dmda|lookahead> runtime scheduling policy
//   -machine=<c2050|c1060|cpu>        target platform preset
//   -bind=<T=float[,double]>          generic-component expansion bindings
//   -expandTunables                   variant per tunable-value combination
//   -outdir=<dir>                     output directory for generated files
//   -backends=<cpu,openmp,cuda>       utility mode: backends to scaffold
//   -lint                             run the static checks (signatures,
//                                     feasibility, dispatch coverage,
//                                     hazards, coherence), skip codegen
//   -verify                           coherence-verify (PL060..PL069) even
//                                     straight-line call sequences
//   -werror                           lint warnings abort composition too
//   -verbose                          print per-step reports
//
// Build mode always runs the peppher-lint static checks (src/analyze)
// before code generation and aborts on error-severity diagnostics, so
// `compose main.xml` fails fast with the same messages as `peppher-lint`.
//
// The driver is a library function so tests can exercise it without
// spawning processes; tools/compose_main.cpp is a thin wrapper.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "compose/ir.hpp"
#include "compose/skeleton.hpp"

namespace peppher::compose {

struct ToolOptions {
  std::string main_descriptor;      ///< path to main.xml ("" unless build mode)
  std::string generate_comp_files;  ///< header path ("" unless utility mode)
  std::string output_dir;           ///< "" = next to the input file
  Recipe recipe;
  SkeletonOptions skeleton;
  bool verbose = false;
  bool dump_ir = false;    ///< print the component tree after the IR passes
  bool lint_only = false;  ///< -lint: stop after the static checks
  bool werror = false;     ///< -werror: warnings abort composition too
  bool verify = false;     ///< -verify: coherence-verify straight lines too
};

/// Parses argv-style arguments (without argv[0]). Throws
/// Error(kInvalidArgument) with a usage-oriented message on bad input.
ToolOptions parse_arguments(const std::vector<std::string>& args);

/// Runs the tool: returns 0 on success, 1 on a reported error. All output
/// goes to the given streams (no direct stdout/stderr use).
int run_tool(const ToolOptions& options, std::ostream& out, std::ostream& err);

/// The usage/help text.
std::string usage();

}  // namespace peppher::compose
