// Generic component expansion (§IV-B): interfaces may be generic in static
// entities such as element types (C++-template style); the composition tool
// resolves genericity statically by expansion, creating one concrete
// component per requested type binding.
#pragma once

#include <string>
#include <vector>

#include "compose/ir.hpp"

namespace peppher::compose {

/// One concrete binding of all template parameters of an interface,
/// e.g. {{"T","float"}}.
using Binding = std::vector<std::pair<std::string, std::string>>;

/// Mangles a bound type into an identifier fragment: "unsigned long" ->
/// "unsigned_long", "std::pair<int,int>" -> "std_pair_int_int_".
std::string mangle_type(std::string_view type);

/// Replaces whole-word occurrences of template parameter names in a C++
/// type spelling ("Vector<T>&" with T=float -> "Vector<float>&").
std::string substitute_type(std::string_view type, const Binding& binding);

/// Expands every generic component in the tree using the recipe's bindings:
/// each combination of values instantiates one concrete component named
/// "<interface>_<mangled types>" whose params/variants have the template
/// parameters substituted; the generic component itself is removed.
/// Generic components with no applicable binding are reported (and removed,
/// since they cannot be compiled). Returns a report of the instantiations.
std::vector<std::string> expand_generics(ComponentTree& tree);

/// Tunable-parameter expansion — the paper's §IV-B future-work item,
/// implemented here: a variant that exposes tunable parameters (e.g. a
/// block size with values 64,128,256) is expanded into one variant per
/// value combination, each named "<variant>__<tunable><value>...", with a
/// -D<TUNABLE>=<value> define appended to its compile options. The
/// expanded variants become alternative choices for composition (selected
/// statically via dispatch tables or dynamically by the runtime's history
/// models, like any other variant). The original multi-valued variant is
/// replaced. Variants without tunables pass through unchanged. Returns a
/// report of the instantiations.
std::vector<std::string> expand_tunables(ComponentTree& tree);

}  // namespace peppher::compose
