#include "compose/ir.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "support/error.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

namespace peppher::compose {

namespace {

/// Architectures that exist on the machine.
std::set<rt::Arch> machine_archs(const sim::MachineConfig& machine) {
  std::set<rt::Arch> archs;
  if (machine.cpu_cores > 0) {
    archs.insert(rt::Arch::kCpu);
    archs.insert(rt::Arch::kCpuOmp);
  }
  for (const auto& accel : machine.accelerators) {
    archs.insert(accel.device_class == sim::DeviceClass::kOpenClGpu
                     ? rt::Arch::kOpenCl
                     : rt::Arch::kCuda);
  }
  return archs;
}

ComponentTree build_tree_impl(const desc::Repository& repo,
                              const std::vector<std::string>& roots,
                              desc::MainDescriptor main, Recipe recipe) {
  // Merge main-descriptor composition switches into the recipe (explicit
  // recipe entries win: the command line overrides the descriptor).
  for (const std::string& name : main.disabled_impls) {
    recipe.disable_impls.push_back(name);
  }
  if (!recipe.use_history_models.has_value()) {
    recipe.use_history_models = main.use_history_models;
  }
  if (!recipe.scheduler.has_value() && !main.scheduler.empty()) {
    recipe.scheduler = main.scheduler;
  }

  // Reachability: roots plus everything required transitively.
  std::set<std::string> reachable;
  std::vector<std::string> frontier = roots;
  while (!frontier.empty()) {
    const std::string name = frontier.back();
    frontier.pop_back();
    if (!reachable.insert(name).second) continue;
    if (repo.find_interface(name) == nullptr) {
      throw Error(ErrorCode::kNotFound,
                  "interface '" + name + "' is not in the repository");
    }
    for (const desc::ImplementationDescriptor* impl :
         repo.implementations_of(name)) {
      for (const std::string& req : impl->required_interfaces) {
        frontier.push_back(req);
      }
    }
  }

  const std::set<rt::Arch> archs = machine_archs(recipe.machine);

  // Source files in implementation descriptors are relative to the
  // descriptor's own directory; the generated Makefile runs from the
  // application root (where the main descriptor lives), so re-anchor them.
  const std::filesystem::path app_root = repo.origin_of(main.name);
  auto reanchor_sources = [&](desc::ImplementationDescriptor& impl) {
    const std::filesystem::path origin = repo.origin_of(impl.name);
    if (origin.empty()) return;
    std::filesystem::path rel = app_root.empty()
                                    ? origin
                                    : origin.lexically_relative(app_root);
    if (rel.empty() || rel == ".") return;
    for (std::string& source : impl.sources) {
      source = (rel / source).lexically_normal().string();
    }
  };

  ComponentTree tree;
  tree.main = std::move(main);
  tree.recipe = std::move(recipe);
  for (const desc::InterfaceDescriptor* iface : repo.interfaces_bottom_up()) {
    if (reachable.count(iface->name) == 0) continue;
    ComponentNode node;
    node.interface = *iface;
    for (const desc::ImplementationDescriptor* impl :
         repo.implementations_of(iface->name)) {
      VariantNode variant;
      variant.descriptor = *impl;
      reanchor_sources(variant.descriptor);
      if (archs.count(impl->arch()) == 0) {
        variant.enabled = false;
        variant.disabled_reason = "architecture '" + impl->language +
                                  "' not present on target machine '" +
                                  tree.recipe.machine.name + "'";
      }
      node.variants.push_back(std::move(variant));
    }
    tree.components.push_back(std::move(node));
  }
  return tree;
}

}  // namespace

std::vector<const VariantNode*> ComponentNode::enabled_variants() const {
  std::vector<const VariantNode*> out;
  for (const VariantNode& variant : variants) {
    if (variant.enabled) out.push_back(&variant);
  }
  return out;
}

bool ComponentNode::composable() const {
  return std::any_of(variants.begin(), variants.end(),
                     [](const VariantNode& v) { return v.enabled; });
}

ComponentNode* ComponentTree::find(const std::string& interface_name) {
  for (ComponentNode& node : components) {
    if (node.interface.name == interface_name) return &node;
  }
  return nullptr;
}

const ComponentNode* ComponentTree::find(const std::string& interface_name) const {
  for (const ComponentNode& node : components) {
    if (node.interface.name == interface_name) return &node;
  }
  return nullptr;
}

ComponentTree build_tree(const desc::Repository& repo, Recipe recipe) {
  const desc::MainDescriptor* main = repo.main_module();
  if (main == nullptr) {
    throw Error(ErrorCode::kInvalidState,
                "repository has no main-module descriptor");
  }
  std::vector<std::string> roots = main->uses;
  if (roots.empty()) {
    // Nothing declared: compose every interface in the repository.
    for (const desc::InterfaceDescriptor* iface : repo.interfaces()) {
      roots.push_back(iface->name);
    }
  }
  return build_tree_impl(repo, roots, *main, std::move(recipe));
}

ComponentTree build_tree_for_interfaces(const desc::Repository& repo,
                                        const std::vector<std::string>& interfaces,
                                        Recipe recipe) {
  desc::MainDescriptor main;
  main.name = "library";
  return build_tree_impl(repo, interfaces, std::move(main), std::move(recipe));
}

std::string describe(const ComponentTree& tree) {
  std::ostringstream out;
  out << "component tree for application '" << tree.main.name << "' on '"
      << tree.recipe.machine.name << "' (goal " << tree.main.optimization_goal
      << ", scheduler " << tree.recipe.scheduler.value_or("dmda")
      << ", history "
      << (tree.recipe.use_history_models.value_or(true) ? "on" : "off")
      << ")\n";
  for (const ComponentNode& node : tree.components) {
    out << "  component " << node.interface.name;
    if (!node.expanded_from.empty()) {
      out << " (expanded from " << node.expanded_from << ")";
    }
    out << "\n    " << node.interface.prototype() << "\n";
    for (const VariantNode& variant : node.variants) {
      out << "    " << (variant.enabled ? "[x] " : "[ ] ")
          << variant.descriptor.name << " (" << variant.descriptor.language
          << ")";
      if (!variant.descriptor.sources.empty()) {
        out << " <- " << strings::join(variant.descriptor.sources, ", ");
      }
      if (!variant.enabled) out << "  -- " << variant.disabled_reason;
      out << "\n";
    }
  }
  return std::move(out).str();
}

rt::EngineConfig engine_config(const ComponentTree& tree) {
  rt::EngineConfig config;
  config.machine = tree.recipe.machine;
  if (tree.recipe.scheduler.has_value()) {
    config.scheduler = *tree.recipe.scheduler;
  }
  config.use_history_models = tree.recipe.use_history_models.value_or(true);
  const std::string goal = strings::to_lower(tree.main.optimization_goal);
  config.objective = goal == "energy" ? rt::Objective::kEnergy
                                      : rt::Objective::kTime;
  return config;
}

std::vector<std::string> apply_static_narrowing(ComponentTree& tree) {
  std::vector<std::string> report;
  for (ComponentNode& node : tree.components) {
    for (VariantNode& variant : node.variants) {
      if (!variant.enabled) continue;
      // disableImpls: match on variant name or architecture name.
      for (const std::string& disabled : tree.recipe.disable_impls) {
        const std::string needle = strings::to_lower(strings::trim(disabled));
        const bool name_match =
            strings::to_lower(variant.descriptor.name) == needle;
        bool arch_match = false;
        try {
          arch_match = rt::parse_arch(needle) == variant.arch();
        } catch (const Error&) {
          arch_match = false;
        }
        if (name_match || arch_match) {
          variant.enabled = false;
          variant.disabled_reason = "disabled by disableImpls='" + disabled + "'";
          report.push_back("component '" + node.interface.name + "': variant '" +
                           variant.descriptor.name + "' " + variant.disabled_reason);
          break;
        }
      }
      if (!variant.enabled) continue;
      // Resource requirements (§II): a variant demanding more memory than
      // its execution unit provides can never run there.
      {
        double available_mb = 0.0;
        switch (variant.arch()) {
          case rt::Arch::kCpu:
          case rt::Arch::kCpuOmp:
            available_mb = tree.recipe.machine.cpu_core.memory_mb;
            break;
          case rt::Arch::kCuda:
          case rt::Arch::kOpenCl:
            for (const auto& accel : tree.recipe.machine.accelerators) {
              available_mb = std::max(available_mb, accel.memory_mb);
            }
            break;
        }
        if (variant.descriptor.min_memory_mb > available_mb) {
          variant.enabled = false;
          variant.disabled_reason =
              "requires " + std::to_string(variant.descriptor.min_memory_mb) +
              " MB but the execution unit has " + std::to_string(available_mb) +
              " MB";
          report.push_back("component '" + node.interface.name + "': variant '" +
                           variant.descriptor.name + "' " +
                           variant.disabled_reason);
          continue;
        }
      }
      // Statically decidable selectability constraints: a constraint whose
      // admissible range is empty can never be selected.
      for (const desc::ConstraintDesc& constraint : variant.descriptor.constraints) {
        if (constraint.min && constraint.max && *constraint.min > *constraint.max) {
          variant.enabled = false;
          variant.disabled_reason = "constraint on '" + constraint.param +
                                    "' admits no value";
          report.push_back("component '" + node.interface.name + "': variant '" +
                           variant.descriptor.name + "' " + variant.disabled_reason);
          break;
        }
      }
    }
    if (!node.composable()) {
      throw Error(ErrorCode::kInvalidState,
                  "static composition left component '" + node.interface.name +
                      "' with no enabled implementation variant");
    }
  }
  return report;
}

}  // namespace peppher::compose
