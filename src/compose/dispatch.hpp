// Static composition via off-line dispatch tables (§III step 3, §IV-A, and
// Kessler/Löwe [7]): when sufficient performance prediction metadata is
// available (prediction functions, cost models, or training-run history),
// the tool evaluates the predictions for selected context scenarios and
// constructs a dispatch table mapping context size to the expected best
// variant. Adjacent scenarios choosing the same variant are merged
// (decision-list compaction — the paper's "compacted by machine learning
// techniques" in its simplest effective form).
//
// Multi-stage composition: a table that still contains several variants
// *narrows* the candidate set (the runtime takes the final choice); a table
// with a single variant pins the choice entirely.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "compose/ir.hpp"
#include "runtime/perfmodel.hpp"

namespace peppher::compose {

/// Predicts the execution time in seconds of `variant` for a call context
/// with `bytes` total operand footprint; nullopt when nothing is known.
using Predictor =
    std::function<std::optional<double>(const VariantNode& variant, std::size_t bytes)>;

/// One decision of a dispatch table: contexts with total operand footprint
/// <= upper_bytes select `variant`.
struct DispatchEntry {
  std::size_t upper_bytes = 0;
  std::string variant;
  rt::Arch arch = rt::Arch::kCpu;
};

/// A per-component dispatch table (ascending by upper_bytes; the last entry
/// also covers larger contexts).
class DispatchTable {
 public:
  /// Builds a table for `component` by evaluating `predict` at each scenario
  /// size (ascending) and compacting runs of equal winners. Scenario sizes
  /// with no predictable variant are skipped. The result is empty if nothing
  /// was predictable.
  static DispatchTable build(const ComponentNode& component,
                             const std::vector<std::size_t>& scenario_bytes,
                             const Predictor& predict);

  /// The chosen variant for a context footprint, or nullptr if the table is
  /// empty.
  const DispatchEntry* lookup(std::size_t bytes) const;

  bool empty() const noexcept { return entries_.empty(); }
  const std::vector<DispatchEntry>& entries() const noexcept { return entries_; }

  /// Distinct variants appearing in the table.
  std::vector<std::string> variants_used() const;

  /// Text form: "upper_bytes variant arch" lines (round-trips with
  /// deserialize).
  std::string serialize() const;
  static DispatchTable deserialize(std::string_view text);

 private:
  std::vector<DispatchEntry> entries_;
};

/// Disables every variant of `component` that the table never selects
/// (user-transparent static narrowing from training data). No-op for empty
/// tables. Returns the number of variants disabled.
int narrow_with_table(ComponentNode& component, const DispatchTable& table);

/// Device profile a variant of the given architecture executes on, within
/// `machine` (combined-CPU profile for kCpuOmp). Throws if the machine
/// lacks the architecture.
sim::DeviceProfile profile_for_arch(const sim::MachineConfig& machine,
                                    rt::Arch arch);

/// Predictor backed by recorded training history (regression over the
/// recorded sizes of the component's interface, per architecture).
Predictor history_predictor(const rt::PerfRegistry& registry,
                            const std::string& component_name);

}  // namespace peppher::compose
