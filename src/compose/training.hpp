// Training executions / microbenchmarking (§III step 2: the tool "looks up
// prediction data from the performance data repository or runs
// microbenchmarking code on the target platform") packaged as a library
// API: run every enabled variant of a component over a set of context
// scenarios, record the timings in the engine's performance registry
// (persisted via the engine's sampling directory), and derive a static
// dispatch table from the result.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "compose/dispatch.hpp"
#include "runtime/engine.hpp"

namespace peppher::compose {

/// Builds one training task for a scenario. The factory owns scenario
/// setup: it registers whatever operand data the component needs (keeping
/// it alive via `keepalive`) and returns the TaskSpec — without forced_arch,
/// which the trainer controls.
using TrainingTaskFactory = std::function<rt::TaskSpec(
    rt::Engine& engine, std::size_t scenario,
    std::vector<rt::DataHandlePtr>& keepalive)>;

/// One (architecture, scenario) measurement.
struct TrainingSample {
  rt::Arch arch = rt::Arch::kCpu;
  std::size_t scenario = 0;      ///< the scenario value given to the factory
  std::size_t total_bytes = 0;   ///< operand footprint of the built task
  double seconds = 0.0;          ///< mean virtual execution time
  std::uint64_t runs = 0;
};

struct TrainingReport {
  std::string component;
  std::vector<TrainingSample> samples;

  /// Scenario footprints (bytes) seen during training — the natural
  /// scenario set for DispatchTable::build.
  std::vector<std::size_t> scenario_bytes() const;
};

/// Runs `repeats` executions of the component on every architecture that
/// has an enabled variant on the engine's machine, for every scenario, and
/// returns the measurements (which are also in engine.perf(), keyed by the
/// codelet name). Architectures whose variants cannot serve a scenario
/// (selectability constraints) are skipped for that scenario.
TrainingReport train_component(rt::Engine& engine, const rt::Codelet& codelet,
                               const TrainingTaskFactory& factory,
                               const std::vector<std::size_t>& scenarios,
                               int repeats = 3);

/// Convenience: train, then build the dispatch table from the recorded
/// history at the training scenarios' footprints.
DispatchTable train_and_build_table(rt::Engine& engine,
                                    ComponentNode& component,
                                    const rt::Codelet& codelet,
                                    const TrainingTaskFactory& factory,
                                    const std::vector<std::size_t>& scenarios,
                                    int repeats = 3);

}  // namespace peppher::compose
