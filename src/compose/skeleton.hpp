// Utility mode (§IV-I, Figure 4): `compose -generateCompFiles=spmv.h`
// generates the basic skeleton of the XML descriptors and C/C++ source
// files needed to write PEPPHER components from a plain C/C++ method
// declaration. The generator detects template parameters and suggests data
// access modes by analysing 'const' and pass-by-reference semantics of the
// function arguments; it also guesses size expressions for raw-pointer
// operands from integer parameters so the descriptors are immediately
// usable (the programmer verifies and fills in the rest).
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "cdecl/cdecl.hpp"
#include "compose/codegen.hpp"
#include "descriptor/descriptor.hpp"

namespace peppher::compose {

struct SkeletonOptions {
  /// Backends to scaffold (subdirectory per backend, paper §IV-C layout).
  std::vector<std::string> backends = {"cpu", "openmp", "cuda"};

  /// Also emit a main.xml skeleton for the application module.
  bool emit_main = true;
};

/// Maps one parsed declaration to an interface descriptor (access modes
/// inferred per the paper; size expressions guessed heuristically).
desc::InterfaceDescriptor interface_from_declaration(
    const cdecl_parser::FunctionDecl& decl);

/// Generates the full skeleton file set for every declaration in
/// `header_text`: per component a directory "<name>/" with the interface
/// descriptor and one "<backend>/<name>_<backend>.{xml,cpp|cu}" pair per
/// backend, plus (optionally) a main.xml. Paths are relative.
CodegenResult generate_skeleton(std::string_view header_text,
                                const SkeletonOptions& options = {});

/// Convenience: parse `header_path` and write the skeleton under
/// `output_dir`.
CodegenResult generate_skeleton_from_file(const std::filesystem::path& header_path,
                                          const std::filesystem::path& output_dir,
                                          const SkeletonOptions& options = {});

}  // namespace peppher::compose
