// Small string utilities used by the XML parser, the declaration parser and
// descriptor handling. All functions are pure and allocation-explicit.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace peppher::strings {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text) noexcept;

/// Splits on `separator`; empty fields are kept ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char separator);

/// Splits on any ASCII whitespace run; empty fields are dropped.
std::vector<std::string> split_whitespace(std::string_view text);

/// Joins `parts` with `separator`.
std::string join(const std::vector<std::string>& parts, std::string_view separator);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix) noexcept;

/// True if `text` ends with `suffix`.
bool ends_with(std::string_view text, std::string_view suffix) noexcept;

/// Replaces every occurrence of `from` (must be non-empty) with `to`.
std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to);

/// Parses a whole string as a long; nullopt on any trailing garbage.
std::optional<long long> to_int(std::string_view text) noexcept;

/// Parses a whole string as a double; nullopt on any trailing garbage.
std::optional<double> to_double(std::string_view text) noexcept;

/// Lower-cases ASCII letters.
std::string to_lower(std::string_view text);

/// True if `text` is a valid C identifier ([A-Za-z_][A-Za-z0-9_]*).
bool is_identifier(std::string_view text) noexcept;

/// Indents every line of `text` by `spaces` spaces (used by code generation).
std::string indent(std::string_view text, int spaces);

}  // namespace peppher::strings
