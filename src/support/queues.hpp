// Concurrent queues used by the runtime's schedulers.
//
// These are deliberately mutex-based: the runtime's tasks are coarse-grained
// (micro- to milli-seconds), so queue contention is not the bottleneck, and
// the simple implementations are easy to reason about and test. The
// work-stealing deque follows the classic owner-pops-back / thief-pops-front
// discipline of Chase–Lev, with a lock instead of the lock-free protocol.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace peppher {

/// Blocking multi-producer multi-consumer FIFO with shutdown support.
template <typename T>
class BlockingQueue {
 public:
  /// Enqueues an item and wakes one waiter. Returns false if closed.
  bool push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained;
  /// returns nullopt only in the latter case.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Closes the queue: pending items can still be popped, pushes fail, and
  /// blocked consumers wake up.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

/// Work-stealing deque: the owning worker pushes/pops at the back (LIFO for
/// locality), thieves steal from the front (FIFO for fairness).
template <typename T>
class WorkStealingDeque {
 public:
  void push(T item) {
    std::lock_guard<std::mutex> lock(mutex_);
    items_.push_back(std::move(item));
  }

  /// Owner-side pop (back). Non-blocking.
  std::optional<T> pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.back());
    items_.pop_back();
    return item;
  }

  /// Thief-side steal (front). Non-blocking.
  std::optional<T> steal() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::deque<T> items_;
};

}  // namespace peppher
