// Concurrent queues used by the runtime's schedulers.
//
// These are deliberately mutex-based: the runtime's tasks are coarse-grained
// (micro- to milli-seconds), so queue contention is not the bottleneck, and
// the simple implementations are easy to reason about and test. The
// work-stealing deque follows the classic owner-pops-back / thief-pops-front
// discipline of Chase–Lev, with a lock instead of the lock-free protocol.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace peppher {

/// One worker thread's parking spot, the building block of the runtime's
/// targeted-wakeup protocol (one ParkSlot per worker instead of one global
/// condition variable that every event broadcasts to).
///
/// Worker side (single consumer):
///
///   task = queue.pop();
///   if (!task) {
///     slot.announce();          // publish intent-to-park...
///     task = queue.pop();       // ...then re-check the queue (Dekker)
///     if (!task && !slot.park(stop_pred)) return;  // stopped
///   }
///
/// Producer side (any thread): after making work visible (queue insert under
/// the queue's own lock), call unpark(). The announce/re-check pair makes
/// the protocol lossless: if the producer reads the parked flag as false,
/// the mutex chain through the queue guarantees the worker's re-check pop
/// observes the inserted item; if it reads true, a wake token is delivered
/// under the slot mutex, where the worker consumes it before sleeping.
/// Tokens are sticky — an unpark() that races with the worker between
/// announce() and park() is consumed by park() without blocking.
class ParkSlot {
 public:
  /// Publishes that the owning worker is about to park. Must be followed by
  /// a re-check of the work source and then park() or cancel().
  void announce() noexcept { parked_.store(true, std::memory_order_seq_cst); }

  /// Withdraws an announce() after the re-check found work.
  void cancel() noexcept { parked_.store(false, std::memory_order_relaxed); }

  /// Blocks until a wake token arrives or `stopped()` turns true. Returns
  /// true if a token was consumed (re-check for work), false if the slot
  /// was stopped without a token (the worker should exit).
  template <typename StopPred>
  bool park(StopPred stopped) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return token_ || stopped(); });
    const bool woken = token_;
    token_ = false;
    lock.unlock();
    parked_.store(false, std::memory_order_relaxed);
    return woken;
  }

  /// Delivers a wake token if the owner is parked (or about to park).
  /// Returns true if a token was delivered, false if the owner was not
  /// parked — in that case the owner is mid-loop and will re-check its work
  /// source before parking, so no wake is needed.
  bool unpark() {
    if (!parked_.load(std::memory_order_seq_cst)) return false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      token_ = true;
    }
    cv_.notify_one();
    return true;
  }

  /// True while the owner is announced/parked (load only, no token).
  bool is_parked() const noexcept {
    return parked_.load(std::memory_order_seq_cst);
  }

  /// Wakes the owner so it re-evaluates its stop predicate (no token). The
  /// caller must have made the predicate's state visible beforehand.
  void poke() {
    { std::lock_guard<std::mutex> lock(mutex_); }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool token_ = false;              ///< guarded by mutex_
  std::atomic<bool> parked_{false};
};

/// Blocking multi-producer multi-consumer FIFO with shutdown support.
template <typename T>
class BlockingQueue {
 public:
  /// Enqueues an item and wakes one waiter. Returns false if closed.
  bool push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained;
  /// returns nullopt only in the latter case.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Closes the queue: pending items can still be popped, pushes fail, and
  /// blocked consumers wake up.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

/// Work-stealing deque: the owning worker pushes/pops at the back (LIFO for
/// locality), thieves steal from the front (FIFO for fairness).
template <typename T>
class WorkStealingDeque {
 public:
  void push(T item) {
    std::lock_guard<std::mutex> lock(mutex_);
    items_.push_back(std::move(item));
  }

  /// Owner-side pop (back). Non-blocking.
  std::optional<T> pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.back());
    items_.pop_back();
    return item;
  }

  /// Thief-side steal (front). Non-blocking.
  std::optional<T> steal() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::deque<T> items_;
};

}  // namespace peppher
