#include "support/fs.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace peppher::fs {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error(ErrorCode::kIoError, "cannot open file for reading: " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    throw Error(ErrorCode::kIoError, "read failure on: " + path.string());
  }
  return std::move(buffer).str();
}

void write_file(const std::filesystem::path& path, std::string_view content) {
  if (path.has_parent_path()) make_dirs(path.parent_path());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw Error(ErrorCode::kIoError, "cannot open file for writing: " + path.string());
  }
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) {
    throw Error(ErrorCode::kIoError, "write failure on: " + path.string());
  }
}

void make_dirs(const std::filesystem::path& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    throw Error(ErrorCode::kIoError,
                "cannot create directory " + path.string() + ": " + ec.message());
  }
}

namespace {
std::vector<std::filesystem::path> collect(const std::filesystem::path& dir,
                                           std::string_view suffix, bool recursive) {
  std::vector<std::filesystem::path> out;
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) return out;
  auto matches = [&](const std::filesystem::directory_entry& entry) {
    return entry.is_regular_file() &&
           (suffix.empty() || strings::ends_with(entry.path().string(), suffix));
  };
  if (recursive) {
    for (const auto& entry : std::filesystem::recursive_directory_iterator(dir)) {
      if (matches(entry)) out.push_back(entry.path());
    }
  } else {
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (matches(entry)) out.push_back(entry.path());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}
}  // namespace

std::vector<std::filesystem::path> list_files(const std::filesystem::path& dir,
                                              std::string_view suffix) {
  return collect(dir, suffix, /*recursive=*/false);
}

std::vector<std::filesystem::path> list_files_recursive(
    const std::filesystem::path& dir, std::string_view suffix) {
  return collect(dir, suffix, /*recursive=*/true);
}

std::size_t count_source_lines(const std::filesystem::path& path) {
  const std::string text = read_file(path);
  std::size_t lines = 0;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (!strings::trim(std::string_view(text).substr(start, end - start)).empty()) {
      ++lines;
    }
    start = end + 1;
  }
  return lines;
}

}  // namespace peppher::fs
