#include "support/rng.hpp"

namespace peppher {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire-style rejection: draw until inside the largest multiple of bound.
  const std::uint64_t threshold = (0 - bound) % bound;
  while (true) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() noexcept {
  // 53 high-quality bits into [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

double Rng::normal(double mean, double stddev) noexcept {
  double sum = 0.0;
  for (int i = 0; i < 12; ++i) sum += next_double();
  return mean + stddev * (sum - 6.0);
}

}  // namespace peppher
