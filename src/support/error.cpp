#include "support/error.hpp"

namespace peppher {

std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kInvalidState: return "invalid_state";
    case ErrorCode::kUnsupported: return "unsupported";
    case ErrorCode::kIoError: return "io_error";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

void check(bool condition, std::string_view what) {
  if (!condition) {
    throw Error(ErrorCode::kInternal, std::string(what));
  }
}

}  // namespace peppher
