// Deterministic pseudo-random number generation (xoshiro256**) used by the
// workload generators and the randomized schedulers. Deterministic seeding
// keeps every benchmark and property test reproducible across runs.
#pragma once

#include <cstdint>

namespace peppher {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm),
/// reimplemented here; fast, high-quality, 2^256-1 period.
class Rng {
 public:
  /// Seeds via splitmix64 so that any 64-bit seed yields a good state.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Next raw 64 random bits.
  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, bound); bound must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Approximately normal via sum of uniforms (Irwin–Hall, 12 terms);
  /// adequate for workload jitter, not for statistics.
  double normal(double mean, double stddev) noexcept;

 private:
  std::uint64_t state_[4];
};

}  // namespace peppher
