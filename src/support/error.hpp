// Error handling primitives shared by every PEPPHER module.
//
// The library uses exceptions (derived from peppher::Error) for genuinely
// exceptional conditions (malformed descriptors, broken invariants, I/O
// failures) and plain return values / std::optional for expected "not found"
// cases, following the C++ Core Guidelines (E.2, E.3).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace peppher {

/// Coarse classification of a PEPPHER error, useful for tests and for
/// callers that want to react differently to user errors vs internal bugs.
enum class ErrorCode {
  kInvalidArgument,  ///< caller passed something nonsensical
  kParseError,       ///< malformed XML / declaration / descriptor text
  kNotFound,         ///< a named entity (interface, file, impl) is missing
  kInvalidState,     ///< API used out of order (e.g. runtime not started)
  kUnsupported,      ///< feature combination not supported
  kIoError,          ///< filesystem or process-level failure
  kInternal,         ///< invariant violation inside the library
};

/// Human-readable name of an ErrorCode ("parse_error", ...).
std::string_view to_string(ErrorCode code) noexcept;

/// Root exception type for the whole library.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(to_string(code)) + ": " + message),
        code_(code) {}

  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// Thrown when parsing XML descriptors or C declarations fails.
class ParseError : public Error {
 public:
  /// @param where human-readable location, e.g. "line 12".
  ParseError(const std::string& message, const std::string& where = {})
      : Error(ErrorCode::kParseError,
              where.empty() ? message : message + " (" + where + ")") {}

  /// Location-carrying form: the structured 1-based line/column survive
  /// rethrows, so diagnostics (PL000) can point at the offending character
  /// instead of just the file. 0 means unknown.
  ParseError(const std::string& message, int line, int column)
      : Error(ErrorCode::kParseError,
              message + " (line " + std::to_string(line) + ", column " +
                  std::to_string(column) + ")"),
        line_(line),
        column_(column) {}

  /// Rethrow form: adds `where` to the text while carrying over an already
  /// known structured line/column unchanged.
  ParseError(const std::string& message, const std::string& where, int line,
             int column)
      : Error(ErrorCode::kParseError,
              where.empty() ? message : message + " (" + where + ")"),
        line_(line),
        column_(column) {}

  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  int line_ = 0;
  int column_ = 0;
};

/// Throws Error(kInternal) when `condition` is false. Used for internal
/// invariants that should hold regardless of user input; cheap enough to
/// keep enabled in release builds.
void check(bool condition, std::string_view what);

}  // namespace peppher
