#include "support/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>

namespace peppher::strings {
namespace {
bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
}
}  // namespace

std::string_view trim(std::string_view text) noexcept {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view text, char separator) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == separator) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && is_space(text[i])) ++i;
    size_t start = i;
    while (i < text.size() && !is_space(text[i])) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += separator;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  out.reserve(text.size());
  size_t pos = 0;
  while (true) {
    size_t hit = text.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(text.substr(pos));
      return out;
    }
    out.append(text.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

std::optional<long long> to_int(std::string_view text) noexcept {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  long long value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::optional<double> to_double(std::string_view text) noexcept {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  // std::from_chars for double is available in libstdc++ >= 11.
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool is_identifier(std::string_view text) noexcept {
  if (text.empty()) return false;
  auto head = static_cast<unsigned char>(text[0]);
  if (!std::isalpha(head) && text[0] != '_') return false;
  return std::all_of(text.begin() + 1, text.end(), [](unsigned char c) {
    return std::isalnum(c) || c == '_';
  });
}

std::string indent(std::string_view text, int spaces) {
  const std::string pad(static_cast<size_t>(spaces), ' ');
  std::string out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    std::string_view line =
        text.substr(start, end == std::string_view::npos ? text.size() - start
                                                         : end - start);
    if (!line.empty()) out += pad;
    out += line;
    if (end == std::string_view::npos) break;
    out += '\n';
    start = end + 1;
  }
  return out;
}

}  // namespace peppher::strings
