#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace peppher::log {
namespace {

Level parse_env_level() {
  const char* env = std::getenv("PEPPHER_LOG");
  if (env == nullptr) return Level::kWarn;
  std::string_view v(env);
  if (v == "trace") return Level::kTrace;
  if (v == "debug") return Level::kDebug;
  if (v == "info") return Level::kInfo;
  if (v == "warn") return Level::kWarn;
  if (v == "error") return Level::kError;
  if (v == "off") return Level::kOff;
  return Level::kWarn;
}

std::atomic<Level>& threshold_storage() {
  static std::atomic<Level> level{parse_env_level()};
  return level;
}

std::string_view level_name(Level level) {
  switch (level) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

Level threshold() noexcept { return threshold_storage().load(std::memory_order_relaxed); }

void set_threshold(Level level) noexcept {
  threshold_storage().store(level, std::memory_order_relaxed);
}

void write(Level level, std::string_view component, std::string_view message) {
  if (level < threshold()) return;
  static std::mutex mutex;
  std::lock_guard<std::mutex> lock(mutex);
  std::fprintf(stderr, "[peppher %.*s] %.*s: %.*s\n",
               static_cast<int>(level_name(level).size()), level_name(level).data(),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace peppher::log
