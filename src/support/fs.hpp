// Thin filesystem helpers on top of std::filesystem, throwing peppher::Error
// with readable messages instead of std::filesystem_error.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace peppher::fs {

/// Reads a whole file into a string. Throws Error(kIoError) if unreadable.
std::string read_file(const std::filesystem::path& path);

/// Writes `content` to `path`, creating parent directories as needed.
void write_file(const std::filesystem::path& path, std::string_view content);

/// Creates the directory (and parents); no-op if it exists.
void make_dirs(const std::filesystem::path& path);

/// Lists regular files directly under `dir` whose name ends with `suffix`
/// (pass "" for all), sorted by name for determinism.
std::vector<std::filesystem::path> list_files(const std::filesystem::path& dir,
                                              std::string_view suffix = "");

/// Recursively lists regular files under `dir` with the given suffix, sorted.
std::vector<std::filesystem::path> list_files_recursive(
    const std::filesystem::path& dir, std::string_view suffix = "");

/// Counts physical, non-blank source lines in a file (used by the Table I
/// LoC benchmark, matching the paper's "standard LOC metric").
std::size_t count_source_lines(const std::filesystem::path& path);

}  // namespace peppher::fs
