// Minimal thread-safe logging used across the runtime and the composition
// tool. Controlled by the PEPPHER_LOG environment variable
// (trace|debug|info|warn|error, default warn) or programmatically.
//
// Messages use "{}" placeholders filled left to right (a tiny subset of
// std::format, which this toolchain does not ship).
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace peppher::log {

enum class Level { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Current global threshold; messages below it are dropped.
Level threshold() noexcept;

/// Overrides the threshold (also overrides PEPPHER_LOG).
void set_threshold(Level level) noexcept;

/// Emits one line to stderr if `level >= threshold()`. Thread safe.
void write(Level level, std::string_view component, std::string_view message);

namespace detail {

inline void format_into(std::ostringstream& out, std::string_view fmt) {
  out << fmt;
}

template <typename First, typename... Rest>
void format_into(std::ostringstream& out, std::string_view fmt, First&& first,
                 Rest&&... rest) {
  const std::size_t slot = fmt.find("{}");
  if (slot == std::string_view::npos) {
    out << fmt;
    return;
  }
  out << fmt.substr(0, slot) << first;
  format_into(out, fmt.substr(slot + 2), std::forward<Rest>(rest)...);
}

template <typename... Args>
std::string format(std::string_view fmt, Args&&... args) {
  std::ostringstream out;
  format_into(out, fmt, std::forward<Args>(args)...);
  return std::move(out).str();
}

}  // namespace detail

/// Convenience wrappers; `component` tags the subsystem ("runtime",
/// "compose", ...).
template <typename... Args>
void trace(std::string_view component, std::string_view fmt, Args&&... args) {
  if (threshold() <= Level::kTrace)
    write(Level::kTrace, component, detail::format(fmt, std::forward<Args>(args)...));
}

template <typename... Args>
void debug(std::string_view component, std::string_view fmt, Args&&... args) {
  if (threshold() <= Level::kDebug)
    write(Level::kDebug, component, detail::format(fmt, std::forward<Args>(args)...));
}

template <typename... Args>
void info(std::string_view component, std::string_view fmt, Args&&... args) {
  if (threshold() <= Level::kInfo)
    write(Level::kInfo, component, detail::format(fmt, std::forward<Args>(args)...));
}

template <typename... Args>
void warn(std::string_view component, std::string_view fmt, Args&&... args) {
  if (threshold() <= Level::kWarn)
    write(Level::kWarn, component, detail::format(fmt, std::forward<Args>(args)...));
}

template <typename... Args>
void error(std::string_view component, std::string_view fmt, Args&&... args) {
  if (threshold() <= Level::kError)
    write(Level::kError, component, detail::format(fmt, std::forward<Args>(args)...));
}

}  // namespace peppher::log
