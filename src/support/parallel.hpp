// Tiny fork-join helper used by the "OpenMP" implementation variants of the
// evaluation kernels. The paper's OpenMP variants are multi-core CPU codes;
// this reproduction implements them with std::thread so no OpenMP runtime
// dependency is needed (see DESIGN.md §6).
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace peppher {

/// Runs `body(chunk_begin, chunk_end)` over [begin, end) split into at most
/// `threads` contiguous chunks, each on its own thread. With threads <= 1 or
/// a tiny range the body runs inline. `body` must be safe to run
/// concurrently on disjoint chunks.
inline void parallel_for(int threads, std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t count = end - begin;
  const std::size_t max_chunks = std::max<std::size_t>(1, static_cast<std::size_t>(threads));
  const std::size_t chunks = std::min(max_chunks, count);
  if (chunks == 1) {
    body(begin, end);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(chunks - 1);
  const std::size_t base = count / chunks;
  const std::size_t extra = count % chunks;
  std::size_t cursor = begin;
  for (std::size_t i = 0; i < chunks; ++i) {
    const std::size_t len = base + (i < extra ? 1 : 0);
    const std::size_t chunk_begin = cursor;
    const std::size_t chunk_end = cursor + len;
    cursor = chunk_end;
    if (i + 1 == chunks) {
      body(chunk_begin, chunk_end);  // run the last chunk inline
    } else {
      pool.emplace_back([&body, chunk_begin, chunk_end] { body(chunk_begin, chunk_end); });
    }
  }
  for (auto& t : pool) t.join();
}

}  // namespace peppher
