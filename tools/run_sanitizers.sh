#!/usr/bin/env bash
# Builds the project under one or more sanitizers (PEPPHER_SANITIZE build
# trees) and runs the test suite under each. Usage:
#
#   tools/run_sanitizers.sh [thread|address|undefined|all[,...]] \
#                           [build-dir] [-- extra ctest args]
#
# Examples:
#   tools/run_sanitizers.sh                      # all three, build-<san> trees
#   tools/run_sanitizers.sh thread               # TSan only (== run_tsan.sh)
#   tools/run_sanitizers.sh address,undefined    # ASan then UBSan
#   tools/run_sanitizers.sh all -- -R 'Chaos|FaultInjection|EngineStress'
#                                                # concurrency suites (chaos,
#                                                # fault injection, and the
#                                                # multi-producer engine
#                                                # stress tests) under each
#                                                # sanitizer; the TSan pass
#                                                # over EngineStress is what
#                                                # validates the lock-light
#                                                # hot path's memory ordering
#
# A custom build-dir only makes sense with a single sanitizer; with several,
# each gets its own build-<sanitizer> tree next to the repo root.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

selection="all"
if [[ $# -gt 0 && "$1" != "--" && "$1" != /* && ! -d "$1" ]]; then
  case "$1" in
    thread|address|undefined|all|*,*) selection="$1"; shift ;;
  esac
fi

build_dir=""
if [[ $# -gt 0 && "$1" != "--" ]]; then
  build_dir="$1"
  [[ "${build_dir}" = /* ]] || build_dir="${repo_root}/${build_dir}"
  shift
fi
[[ "${1:-}" == "--" ]] && shift
extra_ctest_args=("$@")

if [[ "${selection}" == "all" ]]; then
  sanitizers=(thread address undefined)
else
  IFS=',' read -r -a sanitizers <<< "${selection}"
fi

if [[ -n "${build_dir}" && "${#sanitizers[@]}" -gt 1 ]]; then
  echo "run_sanitizers.sh: a build-dir needs a single sanitizer" >&2
  exit 2
fi

# halt_on_error makes a finding fail the offending test instead of only
# printing a report; second_deadlock_stack improves TSan lock-order reports.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1 detect_leaks=0}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"

failed=()
for sanitizer in "${sanitizers[@]}"; do
  case "${sanitizer}" in
    thread|address|undefined) ;;
    *)
      echo "run_sanitizers.sh: unknown sanitizer '${sanitizer}'" >&2
      exit 2
      ;;
  esac
  dir="${build_dir:-${repo_root}/build-${sanitizer}}"

  echo "== configuring ${dir} with PEPPHER_SANITIZE=${sanitizer}"
  cmake -S "${repo_root}" -B "${dir}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPEPPHER_SANITIZE="${sanitizer}" >/dev/null

  echo "== building (${sanitizer})"
  cmake --build "${dir}" -j "$(nproc)"

  echo "== running tests under ${sanitizer} sanitizer"
  # Sanitized binaries are several times slower: scale the per-test timeout.
  if ctest --test-dir "${dir}" --output-on-failure --timeout 1500 \
       "${extra_ctest_args[@]}"; then
    echo "== ${sanitizer}: PASS"
  else
    echo "== ${sanitizer}: FAIL"
    failed+=("${sanitizer}")
  fi
done

if [[ "${#failed[@]}" -gt 0 ]]; then
  echo "run_sanitizers.sh: failures under: ${failed[*]}" >&2
  exit 1
fi
echo "== all sanitizer runs passed: ${sanitizers[*]}"
