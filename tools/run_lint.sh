#!/usr/bin/env bash
# Static-analysis smoke run, wired into ctest as `tools_lint_smoke`:
#
#   1. generates a skeleton component set with `compose -generateCompFiles`
#      and checks it lints clean under `peppher-lint --werror`;
#   2. seeds a signature fault into the generated sources and checks the
#      lint catches it (stable code PL002, non-zero exit);
#   3. checks the JSON and SARIF renderers emit parseable output;
#   4. runs the coherence verifier (peppher-verify) over a control-flow
#      main module: a correct one must pass `--verify --werror`, and a
#      seeded branch-divergent initialisation must be caught as PL060;
#   5. runs the distributed coherence verifier over a partitioned
#      stencil main module against a two-node cluster profile: a correct
#      exchange/gather protocol must pass `--cluster --werror`, a seeded
#      too-narrow halo must be caught as PL080, and a malformed cluster
#      profile must be rejected with a located parse error (exit 2);
#   6. runs the trace analyzer (peppher-perf): a well-sized recording must
#      analyze clean, a deliberately mis-sized one must fail --werror with
#      a PF001 device-imbalance finding, --explain must know the code, and
#      a truncated trace must be rejected with a located parse error;
#   7. checks static composition end to end: a lookahead training run must
#      write a loadable dispatch table, and replaying it (while training a
#      second table) must reproduce the trained per-key majority placements
#      with at most 5% divergence — a replay that drifts from its own table
#      means the table is being ignored;
#   8. runs the static cost predictor (peppher-predict): models recorded
#      from short ODE runs must predict a fixture repository clean under
#      --werror, a seeded dead variant must be caught as PL070, and a
#      corrupted .model file must be rejected with a located parse error;
#   9. if clang-tidy is installed and the build exported
#      compile_commands.json, runs it over src/analyze with the repo's
#      .clang-tidy configuration (advisory: failures are reported but do
#      not fail the smoke run, since the installed clang-tidy version
#      varies).
#
# Usage: tools/run_lint.sh [compose-binary] [peppher-lint-binary] \
#                          [perf-binary] [predict-binary]
# Defaults assume the standard build tree:
# build/tools/{compose,peppher-lint,peppher-perf,peppher-predict}.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
compose_bin="${1:-${repo_root}/build/tools/compose}"
lint_bin="${2:-${repo_root}/build/tools/peppher-lint}"
perf_bin="${3:-${repo_root}/build/tools/peppher-perf}"
predict_bin="${4:-${repo_root}/build/tools/peppher-predict}"

for bin in "${compose_bin}" "${lint_bin}" "${perf_bin}" "${predict_bin}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "run_lint.sh: missing binary '${bin}' (build the project first)" >&2
    exit 1
  fi
done

workdir="$(mktemp -d "${TMPDIR:-/tmp}/peppher_lint_smoke.XXXXXX")"
trap 'rm -rf "${workdir}"' EXIT

echo "== generating a skeleton component set"
cat > "${workdir}/spmv.h" <<'EOF'
void spmv(const float* values, const int* colidx, const int* rowptr,
          float* y, const float* x, int nrows);
EOF
"${compose_bin}" "-generateCompFiles=${workdir}/spmv.h" "-outdir=${workdir}" \
  > /dev/null

echo "== clean set must pass peppher-lint --werror"
"${lint_bin}" --werror "${workdir}"

echo "== seeded signature fault must be caught as PL002"
sed -i 's/float\* y/double* y/' "${workdir}/spmv/cpu/spmv_cpu.cpp"
if "${lint_bin}" "${workdir}" > "${workdir}/findings.txt"; then
  echo "run_lint.sh: lint accepted a broken signature" >&2
  cat "${workdir}/findings.txt" >&2
  exit 1
fi
grep -q "PL002" "${workdir}/findings.txt"

echo "== JSON and SARIF outputs must be valid"
# The tool exits 1 while findings are present; only the output is under test.
"${lint_bin}" --format=json "${workdir}" > "${workdir}/out.json" || true
"${lint_bin}" --format=sarif "${workdir}" > "${workdir}/out.sarif" || true
if command -v python3 > /dev/null; then
  python3 -m json.tool < "${workdir}/out.json" > /dev/null
  python3 -m json.tool < "${workdir}/out.sarif" > /dev/null
else
  grep -q "PL002" "${workdir}/out.json"
  grep -q "2.1.0" "${workdir}/out.sarif"
fi

echo "== coherence verifier: clean control-flow main must pass --verify --werror"
verifydir="${workdir}/verify"
mkdir -p "${verifydir}"
cat > "${verifydir}/init.xml" <<'EOF'
<peppher-interface name="init">
  <function returnType="void">
    <param name="n" type="int" accessMode="read"/>
    <param name="y" type="float*" accessMode="write" size="n"/>
  </function>
</peppher-interface>
EOF
cat > "${verifydir}/consume.xml" <<'EOF'
<peppher-interface name="consume">
  <function returnType="void">
    <param name="n" type="int" accessMode="read"/>
    <param name="x" type="const float*" accessMode="read" size="n"/>
  </function>
</peppher-interface>
EOF
cat > "${verifydir}/init_cpu.xml" <<'EOF'
<peppher-implementation name="init_cpu" interface="init">
  <platform language="cpu"/>
</peppher-implementation>
EOF
cat > "${verifydir}/consume_cpu.xml" <<'EOF'
<peppher-implementation name="consume_cpu" interface="consume">
  <platform language="cpu"/>
</peppher-implementation>
EOF
cat > "${verifydir}/main.xml" <<'EOF'
<peppher-main name="verify_smoke" source="main.cpp">
  <calls>
    <call interface="init"><arg param="y" data="v"/></call>
    <loop count="4">
      <if>
        <call interface="consume"><arg param="x" data="v"/></call>
      <else>
        <call interface="consume"><arg param="x" data="v"/></call>
      </else>
      </if>
    </loop>
  </calls>
</peppher-main>
EOF
"${lint_bin}" --verify --werror --no-sources "${verifydir}"

echo "== seeded branch-divergent initialisation must be caught as PL060"
cat > "${verifydir}/main.xml" <<'EOF'
<peppher-main name="verify_smoke" source="main.cpp">
  <calls>
    <if>
      <call interface="init"><arg param="y" data="v"/></call>
    </if>
    <call interface="consume"><arg param="x" data="v"/></call>
  </calls>
</peppher-main>
EOF
if "${lint_bin}" --werror --no-sources "${verifydir}" \
    > "${workdir}/verify_findings.txt"; then
  echo "run_lint.sh: verifier accepted a branch-divergent initialisation" >&2
  cat "${workdir}/verify_findings.txt" >&2
  exit 1
fi
grep -q "PL060" "${workdir}/verify_findings.txt"

echo "== distributed verifier: clean stencil protocol must pass --cluster --werror"
clusterdir="${workdir}/cluster"
mkdir -p "${clusterdir}"
cp "${verifydir}/init.xml" "${verifydir}/consume.xml" \
   "${verifydir}/init_cpu.xml" "${verifydir}/consume_cpu.xml" "${clusterdir}/"
cat > "${workdir}/testbed.cluster" <<'EOF'
peppher-cluster v1
name smoke
internode latency_us 50 bandwidth_gbs 1.25
node 0 machine c2050 cpu_cores 4
node 1 machine c2050 cpu_cores 4
end
EOF
cat > "${clusterdir}/main.xml" <<'EOF'
<peppher-main name="cluster_smoke" source="main.cpp">
  <calls>
    <call interface="init"><arg param="y" data="u"/></call>
    <partitioned data="u" nodes="2" halo="1"/>
    <exchange data="u"/>
    <call interface="consume" node="0" radius="1">
      <arg param="x" data="u"/>
    </call>
    <call interface="consume" node="1" radius="1">
      <arg param="x" data="u"/>
    </call>
    <gather data="u"/>
  </calls>
</peppher-main>
EOF
"${lint_bin}" "--cluster=${workdir}/testbed.cluster" --werror --no-sources \
  "${clusterdir}"

echo "== seeded too-narrow halo must be caught as PL080"
sed -i 's/halo="1"/halo="0"/' "${clusterdir}/main.xml"
if "${lint_bin}" "--cluster=${workdir}/testbed.cluster" --werror --no-sources \
    "${clusterdir}" > "${workdir}/cluster_findings.txt"; then
  echo "run_lint.sh: verifier accepted a halo narrower than the radius" >&2
  cat "${workdir}/cluster_findings.txt" >&2
  exit 1
fi
grep -q "PL080" "${workdir}/cluster_findings.txt"

echo "== malformed cluster profile must fail with a located parse error"
sed 's/bandwidth_gbs 1.25/bandwidth_gbs -1.25/' "${workdir}/testbed.cluster" \
  > "${workdir}/broken.cluster"
set +e
"${lint_bin}" "--cluster=${workdir}/broken.cluster" --no-sources \
  "${clusterdir}" > "${workdir}/cluster_parse.txt" 2>&1
cluster_status=$?
set -e
if [[ "${cluster_status}" -ne 2 ]]; then
  echo "run_lint.sh: malformed profile exited ${cluster_status}, expected 2" >&2
  cat "${workdir}/cluster_parse.txt" >&2
  exit 1
fi
grep -q "broken.cluster" "${workdir}/cluster_parse.txt"
grep -Eq "line [0-9]+, column [0-9]+" "${workdir}/cluster_parse.txt"

echo "== trace analyzer: a well-sized recording must analyze clean"
"${perf_bin}" --record=ode "--out=${workdir}/trace.json" > /dev/null
"${perf_bin}" "${workdir}/trace.json" > /dev/null

echo "== mis-sized recording must fail --werror with PF001"
"${perf_bin}" --record=ode --machine=cpu8 --force=cpu --scheduler=dmda \
  "--out=${workdir}/bad_trace.json" > /dev/null
if "${perf_bin}" --werror "${workdir}/bad_trace.json" \
    > "${workdir}/perf_findings.txt"; then
  echo "run_lint.sh: analyzer accepted a mis-sized machine profile" >&2
  cat "${workdir}/perf_findings.txt" >&2
  exit 1
fi
grep -q "PF001" "${workdir}/perf_findings.txt"

echo "== --explain must know the PF codes"
"${perf_bin}" --explain=PF001 | grep -q "PF001"

echo "== truncated trace must be rejected with a located parse error"
head -c 200 "${workdir}/trace.json" > "${workdir}/truncated.json"
if "${perf_bin}" "${workdir}/truncated.json" \
    > "${workdir}/perf_parse.txt" 2>&1; then
  echo "run_lint.sh: analyzer accepted a truncated trace" >&2
  exit 1
fi
grep -Eq "truncated.json:[0-9]+:[0-9]+" "${workdir}/perf_parse.txt"

echo "== static composition: lookahead training must write a dispatch table"
"${perf_bin}" --record=ode --scheduler=lookahead \
  "--dispatch-out=${workdir}/train.dispatch" \
  "--out=${workdir}/train_trace.json" > /dev/null
grep -q "^peppher-dispatch v1" "${workdir}/train.dispatch"

echo "== replaying the table must reproduce its placements (<=5% divergence)"
"${perf_bin}" --record=ode --scheduler=lookahead \
  "--dispatch=${workdir}/train.dispatch" \
  "--dispatch-out=${workdir}/replay.dispatch" \
  "--out=${workdir}/replay_trace.json" > /dev/null
if command -v python3 > /dev/null; then
  python3 - "${workdir}/train.dispatch" "${workdir}/replay.dispatch" <<'EOF'
import sys
from collections import defaultdict

def majorities(path):
    votes = defaultdict(lambda: defaultdict(int))
    with open(path) as handle:
        header = handle.readline()
        if not header.startswith("peppher-dispatch v1"):
            sys.exit(f"{path}: missing peppher-dispatch header")
        for line in handle:
            fields = line.split()
            if len(fields) != 5:
                continue
            codelet, footprint, point, arch, count = fields
            votes[(codelet, footprint, point)][arch] += int(count)
    return {key: max(arches, key=arches.get)
            for key, arches in votes.items()}

train = majorities(sys.argv[1])
replay = majorities(sys.argv[2])
shared = sorted(set(train) & set(replay))
if not shared:
    sys.exit("no shared keys between trained and replayed dispatch tables")
diverged = [key for key in shared if train[key] != replay[key]]
fraction = len(diverged) / len(shared)
print(f"  {len(shared)} shared dispatch keys, "
      f"{len(diverged)} diverged ({fraction:.0%})")
if fraction > 0.05:
    for key in diverged[:10]:
        print(f"  diverged {key}: trained {train[key]}, "
              f"replayed {replay[key]}", file=sys.stderr)
    sys.exit("replay diverged from its dispatch table beyond 5%")
EOF
else
  grep -q "^peppher-dispatch v1" "${workdir}/replay.dispatch"
fi

echo "== static predictor: record models from short ODE runs"
modelsdir="${workdir}/models"
mkdir -p "${modelsdir}"
for n in 64 96 128 160; do
  for arch in cpu cuda; do
    "${perf_bin}" --record=ode --machine=c2050 "--force=${arch}" "--n=${n}" \
      --steps=6 "--models-out=${modelsdir}" \
      "--out=${workdir}/predict_trace.json" > /dev/null
  done
done

predictdir="${workdir}/predict"
mkdir -p "${predictdir}"
cat > "${predictdir}/ode_rhs.xml" <<'EOF'
<peppher-interface name="ode_rhs">
  <function returnType="void">
    <param name="J" type="const float*" accessMode="read" size="n*n"/>
    <param name="y" type="const float*" accessMode="read" size="n"/>
    <param name="k1" type="float*" accessMode="write" size="n"/>
    <param name="n" type="int" accessMode="read"/>
  </function>
</peppher-interface>
EOF
cat > "${predictdir}/ode_combine.xml" <<'EOF'
<peppher-interface name="ode_combine">
  <function returnType="void">
    <param name="y" type="float*" accessMode="readwrite" size="n"/>
    <param name="k1" type="const float*" accessMode="read" size="n"/>
    <param name="k2" type="const float*" accessMode="read" size="n"/>
    <param name="k3" type="const float*" accessMode="read" size="n"/>
    <param name="k4" type="const float*" accessMode="read" size="n"/>
    <param name="n" type="int" accessMode="read"/>
  </function>
</peppher-interface>
EOF
for iface in ode_rhs ode_combine; do
  for arch in cpu cuda; do
    cat > "${predictdir}/${iface}_${arch}.xml" <<EOF
<peppher-implementation name="${iface}_${arch}" interface="${iface}">
  <platform language="${arch}"/>
</peppher-implementation>
EOF
  done
done
cat > "${predictdir}/main.xml" <<'EOF'
<peppher-main name="predict_smoke" source="main.cpp">
  <calls>
    <call interface="ode_rhs">
      <arg param="J" data="J"/>
      <arg param="y" data="y"/>
      <arg param="k1" data="k1"/>
    </call>
    <call interface="ode_combine">
      <arg param="y" data="y"/>
      <arg param="k1" data="k1"/>
      <arg param="k2" data="k2"/>
      <arg param="k3" data="k3"/>
      <arg param="k4" data="k4"/>
    </call>
  </calls>
</peppher-main>
EOF
# Sizes of the n=96 recording: vectors 96*4 bytes, Jacobian 96*96*4 bytes.
predict_sizes=(--size=J=36864 --size=y=384 --size=k1=384
               --size=k2=384 --size=k3=384 --size=k4=384)

echo "== recorded models must predict the fixture clean under --werror"
"${predict_bin}" analyze --werror --machine=c2050 "--models=${modelsdir}" \
  "${predict_sizes[@]}" "${predictdir}" > "${workdir}/predict_report.txt"
grep -q "predicted makespan" "${workdir}/predict_report.txt"

echo "== what-if query must answer with a device count"
"${predict_bin}" whatif --machine=c2050 "--models=${modelsdir}" \
  --target=0.001 "${predict_sizes[@]}" "${predictdir}" \
  | grep -q "device(s)"

echo "== seeded dead variant must be caught as PL070"
cat > "${predictdir}/ode_rhs_opencl.xml" <<'EOF'
<peppher-implementation name="ode_rhs_opencl" interface="ode_rhs">
  <platform language="opencl"/>
</peppher-implementation>
EOF
if "${predict_bin}" analyze --werror --machine=c2050 \
    "--models=${modelsdir}" "${predict_sizes[@]}" "${predictdir}" \
    > "${workdir}/predict_findings.txt"; then
  echo "run_lint.sh: predictor accepted a dead variant under --werror" >&2
  cat "${workdir}/predict_findings.txt" >&2
  exit 1
fi
grep -q "PL070" "${workdir}/predict_findings.txt"
rm -f "${predictdir}/ode_rhs_opencl.xml"

echo "== corrupted .model file must be rejected with a located parse error"
badmodels="${workdir}/bad_models"
mkdir -p "${badmodels}"
cp "${modelsdir}"/*.model "${badmodels}/" 2> /dev/null || true
first_model="$(ls "${badmodels}"/*.model | head -n 1)"
echo "1 2 garbage" >> "${first_model}"
if "${predict_bin}" analyze --machine=c2050 "--models=${badmodels}" \
    "${predictdir}" > "${workdir}/predict_parse.txt" 2>&1; then
  echo "run_lint.sh: predictor accepted a corrupted .model file" >&2
  exit 1
fi
grep -Eq "line [0-9]+" "${workdir}/predict_parse.txt"

echo "== --explain must know the PL07x codes, and --explain=all must list them"
"${predict_bin}" --explain=PL074 | grep -q "PL074"
"${lint_bin}" --explain=all > "${workdir}/explain_all.txt"
grep -q "PL070" "${workdir}/explain_all.txt"
grep -q "PF001" "${workdir}/explain_all.txt"

if command -v clang-tidy > /dev/null; then
  compile_db=""
  for candidate in "${repo_root}/build" "${repo_root}"/build-*; do
    if [[ -f "${candidate}/compile_commands.json" ]]; then
      compile_db="${candidate}"
      break
    fi
  done
  if [[ -n "${compile_db}" ]]; then
    echo "== clang-tidy over src/analyze (advisory)"
    clang-tidy -p "${compile_db}" "${repo_root}"/src/analyze/*.cpp \
      || echo "run_lint.sh: clang-tidy reported findings (advisory only)"
  else
    echo "== clang-tidy found but no compile_commands.json; skipping"
  fi
else
  echo "== clang-tidy not installed; skipping"
fi

echo "== lint smoke run passed"
