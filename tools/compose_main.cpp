// The `compose` command-line tool (see src/compose/tool.hpp for the
// interface and switches).
#include <iostream>

#include "compose/tool.hpp"
#include "support/error.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    const peppher::compose::ToolOptions options =
        peppher::compose::parse_arguments(args);
    return peppher::compose::run_tool(options, std::cout, std::cerr);
  } catch (const peppher::Error& e) {
    std::cerr << "compose: " << e.what() << "\n";
    return 1;
  }
}
