// peppher-report: offline analysis of a performance-model sampling
// directory (the "performance data repository" of §III step 2).
//
//   peppher-report <sampling-dir>                      list stored models
//   peppher-report <sampling-dir> --component=<name>   per-arch regression
//                       [--sizes=1024,65536,...]        predictions (and the
//                                                       expected winner) at
//                                                       the given footprints
//
// Use it after training runs (an Engine with sampling_dir set persists its
// history on shutdown) to inspect what the models learned and where the
// variant crossovers fall, without re-running anything.
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "runtime/perfmodel.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

using namespace peppher;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: peppher-report <sampling-dir> [--component=<name>] "
               "[--sizes=<bytes>[,<bytes>...]]\n");
  return 1;
}

void list_models(const rt::PerfRegistry& registry) {
  const auto models = registry.list();
  if (models.empty()) {
    std::printf("no performance models stored\n");
    return;
  }
  std::printf("%-24s %-8s %8s %9s %12s %12s\n", "component", "arch", "entries",
              "samples", "min bytes", "max bytes");
  for (const auto& info : models) {
    std::printf("%-24s %-8s %8zu %9llu %12zu %12zu\n", info.codelet.c_str(),
                rt::to_string(info.arch).c_str(), info.entries,
                static_cast<unsigned long long>(info.samples), info.min_bytes,
                info.max_bytes);
  }
}

void predict_component(const rt::PerfRegistry& registry,
                       const std::string& component,
                       const std::vector<std::size_t>& sizes) {
  std::printf("regression predictions for component '%s'\n", component.c_str());
  std::printf("%-12s", "bytes");
  const rt::Arch archs[] = {rt::Arch::kCpu, rt::Arch::kCpuOmp, rt::Arch::kCuda,
                            rt::Arch::kOpenCl};
  for (rt::Arch arch : archs) {
    std::printf(" %12s", rt::to_string(arch).c_str());
  }
  std::printf(" %10s\n", "winner");
  for (std::size_t bytes : sizes) {
    std::printf("%-12zu", bytes);
    std::optional<double> best;
    rt::Arch best_arch = rt::Arch::kCpu;
    for (rt::Arch arch : archs) {
      const auto estimate = registry.regression_estimate(component, arch, bytes);
      if (estimate.has_value()) {
        std::printf(" %12.3e", *estimate);
        if (!best.has_value() || *estimate < *best) {
          best = estimate;
          best_arch = arch;
        }
      } else {
        std::printf(" %12s", "-");
      }
    }
    std::printf(" %10s\n",
                best.has_value() ? rt::to_string(best_arch).c_str() : "-");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  std::string component;
  std::vector<std::size_t> sizes = {1024,      16384,    262144,
                                    4194304,   67108864, 1073741824};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (strings::starts_with(arg, "--component=")) {
      component = arg.substr(12);
    } else if (strings::starts_with(arg, "--sizes=")) {
      sizes.clear();
      for (const std::string& field : strings::split(arg.substr(8), ',')) {
        if (auto value = strings::to_int(field)) {
          sizes.push_back(static_cast<std::size_t>(*value));
        }
      }
      if (sizes.empty()) return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (dir.empty()) {
      dir = arg;
    } else {
      return usage();
    }
  }
  if (dir.empty()) return usage();

  try {
    rt::PerfRegistry registry;
    registry.load(dir);
    if (component.empty()) {
      list_models(registry);
    } else {
      predict_component(registry, component, sizes);
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "peppher-report: %s\n", e.what());
    return 1;
  }
}
