#!/usr/bin/env bash
# Runs the runtime-overhead benchmarks and records machine-readable results.
#
#   tools/run_bench.sh [BUILD_DIR]          full run; writes
#                                           BENCH_task_overhead.json,
#                                           BENCH_fig7_ode_overhead.json,
#                                           BENCH_fig5_spmv_hybrid.json,
#                                           BENCH_fig6_dynamic_selection.json,
#                                           BENCH_memory_overlap.json,
#                                           BENCH_predict_accuracy.json,
#                                           BENCH_scheduler_lookahead.json and
#                                           BENCH_distributed_scaling.json at
#                                           the repo root
#   tools/run_bench.sh --smoke [BUILD_DIR]  tiny iteration counts into a
#                                           temp dir, JSON validity checked
#                                           (the `bench-smoke` ctest)
#
# BENCH_task_overhead.json carries before/after numbers: "baseline" is the
# committed pre-optimisation run (bench/baseline_task_overhead.json, taken
# before the lock-light concurrency rework), "current" is this run, and
# "speedup" is baseline/current per benchmark (wall real_time).
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
SMOKE=0
BUILD_DIR="$ROOT/build"
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE=1 ;;
    -h|--help) sed -n '2,15p' "${BASH_SOURCE[0]}"; exit 0 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

TASK_BENCH="$BUILD_DIR/bench/bench_task_overhead"
FIG7_BENCH="$BUILD_DIR/bench/bench_fig7_ode_overhead"
FIG5_BENCH="$BUILD_DIR/bench/bench_fig5_spmv_hybrid"
FIG6_BENCH="$BUILD_DIR/bench/bench_fig6_dynamic_selection"
OVERLAP_BENCH="$BUILD_DIR/bench/bench_memory_overlap"
PREDICT_BENCH="$BUILD_DIR/bench/bench_predict_accuracy"
LOOKAHEAD_BENCH="$BUILD_DIR/bench/bench_scheduler_lookahead"
DIST_BENCH="$BUILD_DIR/bench/bench_distributed_scaling"
for bin in "$TASK_BENCH" "$FIG7_BENCH" "$FIG5_BENCH" "$FIG6_BENCH" \
           "$OVERLAP_BENCH" "$PREDICT_BENCH" "$LOOKAHEAD_BENCH" \
           "$DIST_BENCH"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (cmake --build $BUILD_DIR -j)" >&2
    exit 1
  fi
done

if [[ "$SMOKE" == 1 ]]; then
  OUT_DIR="$(mktemp -d)"
  trap 'rm -rf "$OUT_DIR"' EXIT
  MIN_TIME=0.01
  SMOKE_ARGS=(--smoke)
else
  OUT_DIR="$ROOT"
  MIN_TIME=0.5
  SMOKE_ARGS=()
fi

RAW="$OUT_DIR/bench_task_overhead_raw.json"
"$TASK_BENCH" "--benchmark_min_time=$MIN_TIME" \
  "--benchmark_out=$RAW" --benchmark_out_format=json
"$FIG7_BENCH" "${SMOKE_ARGS[@]}" "--json=$OUT_DIR/BENCH_fig7_ode_overhead.json"
"$FIG5_BENCH" "${SMOKE_ARGS[@]}" "--json=$OUT_DIR/BENCH_fig5_spmv_hybrid.json"
"$FIG6_BENCH" "${SMOKE_ARGS[@]}" \
  "--json=$OUT_DIR/BENCH_fig6_dynamic_selection.json"
"$OVERLAP_BENCH" "${SMOKE_ARGS[@]}" "--json=$OUT_DIR/BENCH_memory_overlap.json"
"$LOOKAHEAD_BENCH" "${SMOKE_ARGS[@]}" \
  "--json=$OUT_DIR/BENCH_scheduler_lookahead.json"
"$DIST_BENCH" "${SMOKE_ARGS[@]}" \
  "--json=$OUT_DIR/BENCH_distributed_scaling.json"
# Exits non-zero on a full run when a predicted/simulated ratio leaves the
# ±30% band (docs/predict.md "Accuracy"); --smoke only checks the pipeline.
"$PREDICT_BENCH" "${SMOKE_ARGS[@]}" "--json=$OUT_DIR/BENCH_predict_accuracy.json"

# Merge the committed baseline with this run into the before/after document.
python3 - "$ROOT/bench/baseline_task_overhead.json" "$RAW" \
  "$OUT_DIR/BENCH_task_overhead.json" <<'EOF'
import json
import sys

baseline_path, current_path, out_path = sys.argv[1:4]

def rows(path):
    doc = json.load(open(path))
    out = {}
    for b in doc.get("benchmarks", []):
        out[b["name"]] = {
            "real_time_us": b["real_time"],
            "cpu_time_us": b["cpu_time"],
            "items_per_second": b.get("items_per_second"),
        }
    return doc, out

baseline_doc, baseline = rows(baseline_path)
current_doc, current = rows(current_path)
speedup = {
    name: baseline[name]["real_time_us"] / current[name]["real_time_us"]
    for name in baseline
    if name in current and current[name]["real_time_us"] > 0
}
json.dump(
    {
        "description": "per-task overhead, before/after the lock-light "
                       "concurrency rework (µs wall time per benchmark "
                       "iteration; Pipelined/Independent iterate 256-task "
                       "batches)",
        "baseline_context": baseline_doc.get("context", {}),
        "current_context": current_doc.get("context", {}),
        "baseline": baseline,
        "current": current,
        "speedup": speedup,
    },
    open(out_path, "w"),
    indent=2,
)
print(f"wrote {out_path}")
for name, s in sorted(speedup.items()):
    print(f"  {name}: {s:.2f}x vs baseline")
EOF

rm -f "$OUT_DIR/bench_task_overhead_raw.json"

if [[ "$SMOKE" != 1 ]]; then
  # Drift check: compare this run's prediction ratios against the committed
  # baseline (bench/baseline_predict_accuracy.json). A drift above 10
  # percentage points means either the models, the scheduler, or the
  # predictor changed behaviour — flagged, not fatal (the ±30% band above
  # already gates correctness).
  python3 - "$ROOT/bench/baseline_predict_accuracy.json" \
    "$OUT_DIR/BENCH_predict_accuracy.json" <<'EOF'
import json
import sys

baseline_path, current_path = sys.argv[1:3]
def ratios(path):
    doc = json.load(open(path))
    return {(r["app"], r["machine"]): r["ratio"] for r in doc["rows"]}
baseline, current = ratios(baseline_path), ratios(current_path)
drifted = False
for key in sorted(baseline):
    if key not in current:
        continue
    drift = abs(current[key] - baseline[key])
    marker = " <-- drift" if drift > 0.10 else ""
    drifted |= drift > 0.10
    print(f"  predict accuracy {key[0]}/{key[1]}: ratio "
          f"{current[key]:.3f} (baseline {baseline[key]:.3f}){marker}")
if drifted:
    print("warning: prediction-accuracy ratios drifted >0.10 from the "
          "committed baseline", file=sys.stderr)
EOF

  # Scheduler-lookahead gates (docs/runtime.md "lookahead"): the adversarial
  # DAG must keep its >= 1.15x win over dmda, the paper-workload parity rows
  # must not regress below dmda beyond noise, and replay must stay within a
  # few percent of the eager scheduler's per-task cost. Ratios are also
  # diffed against the committed baseline
  # (bench/baseline_scheduler_lookahead.json) to flag behavioural drift.
  python3 - "$ROOT/bench/baseline_scheduler_lookahead.json" \
    "$OUT_DIR/BENCH_scheduler_lookahead.json" <<'EOF'
import json
import sys

baseline_path, current_path = sys.argv[1:3]
def ratios(path):
    doc = json.load(open(path))
    return {r["case"]: r["ratio"] for r in doc["rows"]}
baseline, current = ratios(baseline_path), ratios(current_path)
gates = {
    "adversarial": 1.15,      # lookahead must beat dmda here
    "fig5_parity": 0.90,      # parity rows: not worse beyond noise
    "fig7_parity": 0.90,
    "replay_overhead": 0.90,  # replay within a few percent of eager
}
failed = False
for case in sorted(current):
    ratio = current[case]
    floor = gates.get(case)
    base = baseline.get(case)
    drift = f" (baseline {base:.2f}x)" if base is not None else ""
    marker = ""
    if floor is not None and ratio < floor:
        marker = f" <-- below gate {floor:.2f}x"
        failed = True
    print(f"  scheduler lookahead {case}: {ratio:.2f}x{drift}{marker}")
if failed:
    print("error: scheduler-lookahead ratios fell below their gates",
          file=sys.stderr)
    sys.exit(1)
EOF

  # Distributed-scaling gates (docs/runtime.md "Distributed simulation"):
  # overlapping the halo exchange with interior compute must keep its
  # >= 1.3x win over blocking exchange on the 4-node Jacobi run, and the
  # 4-node weak scaling must stay >= 2.0x of the 1-node run. Headline
  # numbers are also diffed against the committed baseline
  # (bench/baseline_distributed_scaling.json) to flag behavioural drift.
  python3 - "$ROOT/bench/baseline_distributed_scaling.json" \
    "$OUT_DIR/BENCH_distributed_scaling.json" <<'EOF'
import json
import sys

baseline_path, current_path = sys.argv[1:3]
def headline(path):
    doc = json.load(open(path))
    return {k: doc[k] for k in ("overlap_speedup_4node", "weak_scaling_4node")}
baseline, current = headline(baseline_path), headline(current_path)
gates = {
    "overlap_speedup_4node": 1.3,  # overlapped vs blocking exchange
    "weak_scaling_4node": 2.0,     # 4-node scaled speedup (4.0 = ideal)
}
failed = False
for key in sorted(current):
    ratio = current[key]
    floor = gates[key]
    base = baseline.get(key)
    drift = f" (baseline {base:.2f}x)" if base is not None else ""
    marker = ""
    if ratio < floor:
        marker = f" <-- below gate {floor:.2f}x"
        failed = True
    elif base is not None and abs(ratio - base) > 0.5:
        marker = " <-- drift"
    print(f"  distributed scaling {key}: {ratio:.2f}x{drift}{marker}")
if failed:
    print("error: distributed-scaling ratios fell below their gates",
          file=sys.stderr)
    sys.exit(1)
EOF
fi

if [[ "$SMOKE" == 1 ]]; then
  # Validity gate: every document must parse.
  python3 -c "
import json, sys
for path in sys.argv[1:]:
    json.load(open(path))
print('bench smoke OK: JSON outputs parse')
" "$OUT_DIR/BENCH_task_overhead.json" "$OUT_DIR/BENCH_fig7_ode_overhead.json" \
  "$OUT_DIR/BENCH_fig5_spmv_hybrid.json" \
  "$OUT_DIR/BENCH_fig6_dynamic_selection.json" \
  "$OUT_DIR/BENCH_memory_overlap.json" \
  "$OUT_DIR/BENCH_predict_accuracy.json" \
  "$OUT_DIR/BENCH_scheduler_lookahead.json" \
  "$OUT_DIR/BENCH_distributed_scaling.json"
fi
