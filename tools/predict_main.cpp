// peppher-predict: static whole-program cost prediction (src/analyze,
// docs/predict.md). Analyzes a component repository plus main module and
// predicts the makespan on a hypothetical machine, without running the
// program:
//
//   peppher-predict analyze <dir-or-descriptor.xml>... [switches]
//   peppher-predict whatif  <dir-or-descriptor.xml>... --target=<tasks/s>
//
// Switches:
//   --machine=<c2050|c1060|opencl|cpu|cpuN>
//                              machine preset the program is costed for
//   --models=<dir>             performance-model directory (.model files,
//                              as written by peppher-perf --models-out)
//   --size=NAME=BYTES          container size binding (repeatable)
//   --default-size=BYTES       size of containers not bound by --size
//   --calibration=<N>          samples before an exact mean is calibrated
//                              (match the engine's calibration_samples)
//   --max-steps=<N>            statement-evaluation budget (PL077 beyond)
//   --target=<tasks/s>         whatif: throughput target
//   --max-devices=<N>          whatif: largest device count tried (default 64)
//   --dispatch-out=<path>      analyze: also export the per-point greedy
//                              placements as a runtime dispatch table (the
//                              static prior EngineConfig::dispatch_table
//                              replays; docs/runtime.md)
//   --format=text|json|sarif   output renderer (default text, to stdout)
//   --werror                   warnings fail the run too
//   --explain=PLxxx|all        print registry metadata, then exit
//
// Exit status: 0 clean (or findings below the failure threshold), 1 fatal
// findings, 2 usage error / unreadable descriptors or model files.
#include <filesystem>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/predict.hpp"
#include "sim/device.hpp"
#include "support/error.hpp"
#include "support/fs.hpp"
#include "support/strings.hpp"

namespace {

using namespace peppher;

int usage(std::ostream& out) {
  out << "usage: peppher-predict analyze <dir-or-descriptor.xml>... "
         "[switches]\n"
         "       peppher-predict whatif <dir-or-descriptor.xml>... "
         "--target=<tasks/s>\n"
         "  --machine=<c2050|c1060|opencl|cpu|cpuN>\n"
         "  --models=<dir>\n"
         "  --size=NAME=BYTES (repeatable)\n"
         "  --default-size=BYTES\n"
         "  --calibration=<N>\n"
         "  --max-steps=<N>\n"
         "  --target=<tasks/s> --max-devices=<N>\n"
         "  --dispatch-out=<path>\n"
         "  --format=text|json|sarif\n"
         "  --werror\n"
         "  --explain=PLxxx|all\n";
  return 2;
}

/// Same registry the linter explains from; the PL070..PL077 range is
/// documented in docs/predict.md (kept in sync by a test).
int explain(const std::string& code) {
  if (code == "all") {
    for (const diag::CodeInfo& info : diag::all_codes()) {
      std::cout << info.code << " (" << diag::to_string(info.severity)
                << "): " << info.summary << "\n";
    }
    return 0;
  }
  const diag::CodeInfo* info = diag::find_code(code);
  if (info == nullptr) {
    std::cerr << "peppher-predict: unknown diagnostic code '" << code
              << "' (or 'all'; see docs/predict.md)\n";
    return 2;
  }
  std::cout << info->code << " (" << diag::to_string(info->severity)
            << "): " << info->summary << "\n\n"
            << info->remediation << "\n";
  return 0;
}

bool match_switch(const std::string& arg, std::string_view key,
                  std::string* value) {
  std::string_view body(arg);
  if (!strings::starts_with(body, "-")) return false;
  body.remove_prefix(1);
  if (strings::starts_with(body, "-")) body.remove_prefix(1);
  if (!strings::starts_with(body, key)) return false;
  body.remove_prefix(key.size());
  if (body.empty()) {
    value->clear();
    return true;
  }
  if (body.front() != '=') return false;
  *value = std::string(body.substr(1));
  return true;
}

sim::MachineConfig machine_preset(const std::string& name) {
  if (name == "c2050") return sim::MachineConfig::platform_c2050();
  if (name == "c1060") return sim::MachineConfig::platform_c1060();
  if (name == "opencl") return sim::MachineConfig::platform_opencl();
  if (name == "cpu") return sim::MachineConfig::cpu_only();
  if (strings::starts_with(name, "cpu")) {
    const auto cores = strings::to_int(name.substr(3));
    if (cores && *cores > 0 && *cores <= 256) {
      return sim::MachineConfig::cpu_only(static_cast<int>(*cores));
    }
  }
  throw Error(ErrorCode::kInvalidArgument, "unknown machine preset '" + name +
                                               "' (c2050|c1060|opencl|cpu|cpuN)");
}

/// Loads every descriptor under the paths into one repository; parse
/// failures become PL000 findings (the prediction still runs over what
/// loaded).
desc::Repository load_repository(const std::vector<std::string>& paths,
                                 diag::DiagnosticBag& bag) {
  desc::Repository repo;
  for (const std::string& path : paths) {
    std::filesystem::path root = std::filesystem::is_directory(path)
                                     ? std::filesystem::path(path)
                                     : std::filesystem::path(path).parent_path();
    if (root.empty()) root = ".";
    for (const std::filesystem::path& file :
         fs::list_files_recursive(root, ".xml")) {
      try {
        repo.load_file(file);
      } catch (const ParseError& e) {
        bag.add("PL000", diag::Severity::kError, e.what(),
                diag::SourceLocation{file.string(), e.line(), e.column()});
      } catch (const Error& e) {
        bag.add("PL000", diag::Severity::kError, e.what(),
                diag::SourceLocation{file.string(), 0, 0});
      }
    }
  }
  return repo;
}

void render(const diag::DiagnosticBag& bag, const std::string& format) {
  if (format == "json") {
    std::cout << bag.format_json() << "\n";
  } else if (format == "sarif") {
    std::cout << bag.format_sarif() << "\n";
  } else if (!bag.empty()) {
    std::cout << bag.format_text();
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  analyze::PredictOptions options;
  std::string mode;
  std::string format = "text";
  std::string models_dir;
  bool werror = false;
  double target = 0.0;
  bool have_target = false;
  int max_devices = 64;
  std::string dispatch_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "-h" || arg == "-help" || arg == "--help") {
      usage(std::cout);
      return 0;
    } else if (mode.empty() && (arg == "analyze" || arg == "whatif")) {
      mode = arg;
    } else if (arg == "-werror" || arg == "--werror") {
      werror = true;
    } else if (match_switch(arg, "explain", &value)) {
      if (value.empty() && i + 1 < argc) value = argv[++i];
      return explain(value);
    } else if (match_switch(arg, "format", &value)) {
      if (value != "text" && value != "json" && value != "sarif") {
        std::cerr << "peppher-predict: unknown format '" << value << "'\n";
        return usage(std::cerr);
      }
      format = value;
    } else if (match_switch(arg, "machine", &value)) {
      try {
        options.machine = machine_preset(value);
      } catch (const Error& e) {
        std::cerr << "peppher-predict: " << e.what() << "\n";
        return 2;
      }
    } else if (match_switch(arg, "models", &value)) {
      models_dir = value;
    } else if (match_switch(arg, "size", &value)) {
      const std::size_t eq = value.find('=');
      std::optional<long long> bytes;
      if (eq != std::string::npos) {
        bytes = strings::to_int(value.substr(eq + 1));
      }
      if (eq == std::string::npos || eq == 0 || !bytes || *bytes < 0) {
        std::cerr << "peppher-predict: --size needs NAME=BYTES, got '" << value
                  << "'\n";
        return 2;
      }
      options.sizes[value.substr(0, eq)] = static_cast<std::size_t>(*bytes);
    } else if (match_switch(arg, "default-size", &value)) {
      const auto bytes = strings::to_int(value);
      if (!bytes || *bytes < 0) return usage(std::cerr);
      options.default_bytes = static_cast<std::size_t>(*bytes);
    } else if (match_switch(arg, "calibration", &value)) {
      const auto n = strings::to_int(value);
      if (!n || *n < 0) return usage(std::cerr);
      options.calibration_min = static_cast<std::uint64_t>(*n);
    } else if (match_switch(arg, "max-steps", &value)) {
      const auto n = strings::to_int(value);
      if (!n || *n <= 0) return usage(std::cerr);
      options.max_steps = static_cast<int>(*n);
    } else if (match_switch(arg, "max-devices", &value)) {
      const auto n = strings::to_int(value);
      if (!n || *n <= 0) return usage(std::cerr);
      max_devices = static_cast<int>(*n);
    } else if (match_switch(arg, "target", &value)) {
      try {
        target = std::stod(value);
      } catch (const std::exception&) {
        return usage(std::cerr);
      }
      have_target = true;
    } else if (match_switch(arg, "dispatch-out", &value)) {
      dispatch_out = value;
    } else if (match_switch(arg, "disableImpls", &value)) {
      for (std::string& name : strings::split(value, ',')) {
        std::string trimmed(strings::trim(name));
        if (!trimmed.empty()) options.lint.disable_impls.push_back(trimmed);
      }
    } else if (!arg.empty() && arg.front() == '-') {
      std::cerr << "peppher-predict: unknown switch '" << arg << "'\n";
      return usage(std::cerr);
    } else {
      paths.push_back(arg);
    }
  }
  if (mode.empty() || paths.empty()) return usage(std::cerr);
  if (mode == "whatif" && !have_target) {
    std::cerr << "peppher-predict: whatif needs --target=<tasks/s>\n";
    return usage(std::cerr);
  }

  diag::DiagnosticBag bag;
  const desc::Repository repo = load_repository(paths, bag);

  rt::PerfRegistry models;
  if (!models_dir.empty()) {
    try {
      models.load(models_dir);
    } catch (const ParseError& e) {
      // A malformed .model file is a usage-level failure with a precise
      // location: the prediction would silently degrade to guesses.
      std::cerr << e.what() << "\n";
      return 2;
    } catch (const Error& e) {
      std::cerr << "peppher-predict: " << e.what() << "\n";
      return 2;
    }
  }

  if (mode == "analyze") {
    analyze::PredictResult result = analyze::predict_main(repo, models, options);
    if (!dispatch_out.empty()) {
      try {
        analyze::export_dispatch(result, options.machine.name)
            .save(dispatch_out);
      } catch (const Error& e) {
        std::cerr << "peppher-predict: " << e.what() << "\n";
        return 2;
      }
    }
    bag.merge(result.bag.diagnostics());
    bag.sort();
    if (format == "json") {
      std::cout << "{\"diagnostics\":" << bag.format_json()
                << ",\"report\":" << result.report_json() << "}\n";
    } else {
      render(bag, format);
      if (format == "text") std::cout << result.report_text();
    }
    return bag.fails(werror) ? 1 : 0;
  }

  analyze::WhatIfResult result =
      analyze::whatif(repo, models, options, target, max_devices);
  bag.merge(result.base.bag.diagnostics());
  bag.merge(result.bag.diagnostics());
  bag.sort();
  if (format == "json") {
    std::ostringstream whatif_json;
    whatif_json.precision(17);
    whatif_json << "{\"target_tasks_per_second\":" << result.target_tasks_per_second
                << ",\"max_devices\":" << result.max_devices
                << ",\"min_devices\":" << result.min_devices
                << ",\"achieved_tasks_per_second\":"
                << result.achieved_tasks_per_second << ",\"makespans\":[";
    for (std::size_t i = 0; i < result.makespans.size(); ++i) {
      if (i > 0) whatif_json << ',';
      whatif_json << result.makespans[i];
    }
    whatif_json << "]}";
    std::cout << "{\"diagnostics\":" << bag.format_json()
              << ",\"whatif\":" << whatif_json.str()
              << ",\"report\":" << result.base.report_json() << "}\n";
  } else {
    render(bag, format);
    if (format == "text") std::cout << result.report_text();
  }
  return bag.fails(werror) ? 1 : 0;
}
