// peppher-perf: runtime-trace recorder and bottleneck analyzer (src/perf).
//
// Analyze mode (default) ingests a peppher-trace JSON document (schema v1,
// docs/perf.md) and reports PF0xx findings through the same diagnostics
// engine peppher-lint uses:
//
//   peppher-perf <trace.json> [switches]
//
// Record mode runs the ODE solver example through the runtime with tracing
// on and writes the trace (optionally also the chrome://tracing view):
//
//   peppher-perf --record=ode --out=trace.json [switches]
//
// Switches:
//   --format=text|json|sarif   output renderer (default text, to stdout)
//   --werror                   warnings fail the run too
//   --explain=PFxxx|all        print the code's severity, summary and
//                              remediation from the registry (or catalogue
//                              every registered code), then exit
//   --record=ode               record instead of analyze
//   --out=<path>               where record mode writes the trace
//   --chrome=<path>            also write the chrome://tracing JSON
//   --models-out=<dir>         also sample execution times and persist the
//                              .model files there (peppher-predict input)
//   --machine=<c2050|c1060|opencl|cpu|cpuN>
//                              machine preset to record on (cpuN = N cores)
//   --scheduler=<eager|random|ws|dmda|lookahead>
//   --window=<N>               lookahead window size (default 8)
//   --dispatch-out=<path>      train a static-composition dispatch table
//                              and write it here at shutdown
//   --dispatch=<path>          replay placements from a trained table
//                              (lookahead scheduler required)
//   --force=<cpu|cuda|opencl>  pin every task to one architecture
//   --n=<size> --steps=<count> ODE problem size (defaults 96 / 24)
//
// Exit status: 0 clean (or findings below the failure threshold), 1 fatal
// findings, 2 usage error / unreadable or malformed trace.
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>

#include "apps/ode.hpp"
#include "perf/analyze.hpp"
#include "perf/trace.hpp"
#include "runtime/engine.hpp"
#include "sim/device.hpp"
#include "support/error.hpp"
#include "support/fs.hpp"
#include "support/strings.hpp"

namespace {

using namespace peppher;

int usage(std::ostream& out) {
  out << "usage: peppher-perf <trace.json> [switches]\n"
         "       peppher-perf --record=ode --out=trace.json [switches]\n"
         "  --format=text|json|sarif\n"
         "  --werror\n"
         "  --explain=PFxxx|all\n"
         "  --chrome=<path>\n"
         "  --models-out=<dir>\n"
         "  --machine=<c2050|c1060|opencl|cpu|cpuN>\n"
         "  --scheduler=<eager|random|ws|dmda|lookahead>\n"
         "  --window=<N>\n"
         "  --dispatch-out=<path> --dispatch=<path>\n"
         "  --force=<cpu|cuda|opencl>\n"
         "  --n=<size> --steps=<count>\n";
  return 2;
}

/// `peppher-perf --explain PF001`: same registry the linter explains from,
/// so the PF range is documented in one place (docs/perf.md, kept in sync
/// by a test). `--explain=all` catalogues every registered code with
/// severity and summary, exactly like peppher-lint and peppher-predict.
int explain(const std::string& code) {
  if (code == "all") {
    for (const diag::CodeInfo& info : diag::all_codes()) {
      std::cout << info.code << " (" << diag::to_string(info.severity)
                << "): " << info.summary << "\n";
    }
    return 0;
  }
  const diag::CodeInfo* info = diag::find_code(code);
  if (info == nullptr) {
    std::cerr << "peppher-perf: unknown diagnostic code '" << code
              << "' (or 'all'; trace analyses are PF001..PF007, see "
                 "docs/perf.md)\n";
    return 2;
  }
  std::cout << info->code << " (" << diag::to_string(info->severity)
            << "): " << info->summary << "\n\n"
            << info->remediation << "\n";
  return 0;
}

bool match_switch(const std::string& arg, std::string_view key,
                  std::string* value) {
  std::string_view body(arg);
  if (!strings::starts_with(body, "-")) return false;
  body.remove_prefix(1);
  if (strings::starts_with(body, "-")) body.remove_prefix(1);
  if (!strings::starts_with(body, key)) return false;
  body.remove_prefix(key.size());
  if (body.empty()) {
    value->clear();
    return true;
  }
  if (body.front() != '=') return false;
  *value = std::string(body.substr(1));
  return true;
}

/// Same presets the other drivers take, plus "cpuN" (e.g. cpu8) so a
/// deliberately mis-sized host can be recorded for imbalance analysis.
sim::MachineConfig machine_preset(const std::string& name) {
  if (name == "c2050") return sim::MachineConfig::platform_c2050();
  if (name == "c1060") return sim::MachineConfig::platform_c1060();
  if (name == "opencl") return sim::MachineConfig::platform_opencl();
  if (name == "cpu") return sim::MachineConfig::cpu_only();
  if (strings::starts_with(name, "cpu")) {
    const auto cores = strings::to_int(name.substr(3));
    if (cores && *cores > 0 && *cores <= 256) {
      return sim::MachineConfig::cpu_only(static_cast<int>(*cores));
    }
  }
  throw Error(ErrorCode::kInvalidArgument, "unknown machine preset '" + name +
                                               "' (c2050|c1060|opencl|cpu|cpuN)");
}

std::optional<rt::Arch> force_arch(const std::string& name) {
  if (name == "cpu") return rt::Arch::kCpu;
  if (name == "cuda") return rt::Arch::kCuda;
  if (name == "opencl") return rt::Arch::kOpenCl;
  throw Error(ErrorCode::kInvalidArgument,
              "unknown --force arch '" + name + "' (cpu|cuda|opencl)");
}

struct RecordOptions {
  std::string out;
  std::string chrome;
  std::string models_out;
  sim::MachineConfig machine = sim::MachineConfig::platform_c2050();
  std::string scheduler = "dmda";
  std::optional<rt::Arch> force;
  std::uint32_t n = 96;
  int steps = 24;
  int window = 8;
  std::string dispatch_out;  ///< train + persist a dispatch table
  std::string dispatch;      ///< replay placements from a trained table
};

/// Runs the ODE pipeline with tracing on and writes the trace document.
int record_ode(const RecordOptions& options) {
  rt::EngineConfig config;
  config.machine = options.machine;
  config.scheduler = options.scheduler;
  config.enable_trace = true;
  // Cost hints only: recorded history would make the trace depend on the
  // sampling directory's state, and recordings should be reproducible.
  config.use_history_models = false;
  // A non-empty sampling dir turns on execution-time sampling; the engine
  // persists the .model files there at shutdown (peppher-predict input).
  config.sampling_dir = options.models_out;
  config.window_size = options.window;
  config.dispatch_out = options.dispatch_out;
  config.dispatch_table = options.dispatch;

  apps::ode::register_components();
  {
    rt::Engine engine(config);
    engine.trace_phase("ode:init");
    const apps::ode::Problem problem =
        apps::ode::make_problem(options.n, options.steps);
    const apps::ode::RunResult result =
        apps::ode::run_tool(engine, problem, options.force);
    engine.trace_phase("ode:done");

    fs::write_file(options.out, engine.trace_json());
    if (!options.chrome.empty()) {
      fs::write_file(options.chrome, engine.trace().to_chrome_json());
    }
    std::cout << "peppher-perf: recorded " << result.invocations
              << " invocations (" << result.virtual_seconds
              << " s virtual) to " << options.out << "\n";
  }  // engine shutdown flushes the models
  if (!options.models_out.empty()) {
    std::cout << "peppher-perf: performance models written to "
              << options.models_out << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string format = "text";
  bool werror = false;
  std::string record;
  RecordOptions record_options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "-h" || arg == "-help" || arg == "--help") {
      usage(std::cout);
      return 0;
    } else if (arg == "-werror" || arg == "--werror") {
      werror = true;
    } else if (match_switch(arg, "explain", &value)) {
      if (value.empty() && i + 1 < argc) value = argv[++i];
      return explain(value);
    } else if (match_switch(arg, "format", &value)) {
      if (value != "text" && value != "json" && value != "sarif") {
        std::cerr << "peppher-perf: unknown format '" << value << "'\n";
        return usage(std::cerr);
      }
      format = value;
    } else if (match_switch(arg, "record", &value)) {
      if (value != "ode") {
        std::cerr << "peppher-perf: unknown recording '" << value
                  << "' (only 'ode')\n";
        return usage(std::cerr);
      }
      record = value;
    } else if (match_switch(arg, "out", &value)) {
      record_options.out = value;
    } else if (match_switch(arg, "chrome", &value)) {
      record_options.chrome = value;
    } else if (match_switch(arg, "models-out", &value)) {
      record_options.models_out = value;
    } else if (match_switch(arg, "machine", &value)) {
      try {
        record_options.machine = machine_preset(value);
      } catch (const Error& e) {
        std::cerr << "peppher-perf: " << e.what() << "\n";
        return 2;
      }
    } else if (match_switch(arg, "scheduler", &value)) {
      record_options.scheduler = value;
    } else if (match_switch(arg, "window", &value)) {
      const auto window = strings::to_int(value);
      if (!window || *window <= 0 || *window > 1024) {
        std::cerr << "peppher-perf: --window needs an integer in [1, 1024]\n";
        return usage(std::cerr);
      }
      record_options.window = static_cast<int>(*window);
    } else if (match_switch(arg, "dispatch-out", &value)) {
      record_options.dispatch_out = value;
    } else if (match_switch(arg, "dispatch", &value)) {
      record_options.dispatch = value;
    } else if (match_switch(arg, "force", &value)) {
      try {
        record_options.force = force_arch(value);
      } catch (const Error& e) {
        std::cerr << "peppher-perf: " << e.what() << "\n";
        return 2;
      }
    } else if (match_switch(arg, "n", &value)) {
      const auto n = strings::to_int(value);
      if (!n || *n <= 0) return usage(std::cerr);
      record_options.n = static_cast<std::uint32_t>(*n);
    } else if (match_switch(arg, "steps", &value)) {
      const auto steps = strings::to_int(value);
      if (!steps || *steps <= 0) return usage(std::cerr);
      record_options.steps = static_cast<int>(*steps);
    } else if (!arg.empty() && arg.front() == '-') {
      std::cerr << "peppher-perf: unknown switch '" << arg << "'\n";
      return usage(std::cerr);
    } else {
      paths.push_back(arg);
    }
  }

  if (!record.empty()) {
    if (record_options.out.empty()) {
      std::cerr << "peppher-perf: --record needs --out=<path>\n";
      return usage(std::cerr);
    }
    try {
      return record_ode(record_options);
    } catch (const Error& e) {
      std::cerr << "peppher-perf: " << e.what() << "\n";
      return 2;
    }
  }

  if (paths.size() != 1) return usage(std::cerr);
  const std::string& path = paths.front();
  diag::DiagnosticBag bag;
  try {
    const perf::Trace trace = perf::parse_trace(fs::read_file(path));
    bag = perf::analyze_trace(trace);
  } catch (const ParseError& e) {
    // Malformed input is a usage-level failure with a precise location,
    // not a finding: the analyses never ran.
    std::cerr << path << ":" << e.line() << ":" << e.column() << ": "
              << e.what() << "\n";
    return 2;
  } catch (const Error& e) {
    std::cerr << "peppher-perf: " << e.what() << "\n";
    return 2;
  }

  if (format == "json") {
    std::cout << bag.format_json() << "\n";
  } else if (format == "sarif") {
    std::cout << bag.format_sarif() << "\n";
  } else if (!bag.empty()) {
    std::cout << bag.format_text();
  }
  return bag.fails(werror) ? 1 : 0;
}
