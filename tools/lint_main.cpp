// peppher-lint: standalone driver for the static-analysis subsystem
// (src/analyze). Lints component repositories and main modules without
// composing them:
//
//   peppher-lint <dir-or-descriptor.xml>... [switches]
//
// Switches:
//   --format=text|json|sarif   output renderer (default text, to stdout)
//   --werror                   warnings fail the run too
//   --machine=<c2050|c1060|opencl|cpu>
//                              count the preset machine's devices as backend
//                              providers for the feasibility checks
//   --disableImpls=<name|arch>[,...]
//                              same narrowing switch the compose tool takes
//   --no-sources               skip parsing implementation sources (descriptor
//                              and hazard checks only)
//   --verify                   run the coherence verifier (PL060..PL069) even
//                              for straight-line call sequences; main modules
//                              with <loop>/<if> or distributed forms are
//                              always verified
//   --cluster=<file>           verify against a peppher-cluster v1 profile:
//                              the abstract machine gains one host + one
//                              accelerator slot per cluster node and the
//                              distributed checks (PL080..PL087) arm; a
//                              one-node profile is byte-identical to not
//                              passing the switch
//   --explain=PLxxx            print the code's severity, summary and
//                              remediation from the registry, then exit
//
// Exit status: 0 clean (or findings below the failure threshold), 1 fatal
// findings, 2 usage error (or unknown --explain code).
#include <iostream>
#include <string>
#include <vector>

#include "analyze/lint.hpp"
#include "sim/device.hpp"
#include "sim/topology.hpp"
#include "support/error.hpp"
#include "support/fs.hpp"
#include "support/strings.hpp"

namespace {

using namespace peppher;

int usage(std::ostream& out) {
  out << "usage: peppher-lint <dir-or-descriptor.xml>... [switches]\n"
         "  --format=text|json|sarif\n"
         "  --werror\n"
         "  --machine=<c2050|c1060|opencl|cpu>\n"
         "  --disableImpls=<name|arch>[,...]\n"
         "  --no-sources\n"
         "  --verify\n"
         "  --cluster=<peppher-cluster-v1-file>\n"
         "  --explain=PLxxx|all\n";
  return 2;
}

/// `peppher-lint --explain PL031`: the registry is the single source of
/// truth for code metadata, so this prints exactly what docs/lint.md
/// documents (a test keeps the two in sync). `--explain=all` catalogues
/// every registered code (PL and PF) with severity and summary.
int explain(const std::string& code) {
  if (code == "all") {
    for (const diag::CodeInfo& info : diag::all_codes()) {
      std::cout << info.code << " (" << diag::to_string(info.severity)
                << "): " << info.summary << "\n";
    }
    return 0;
  }
  const diag::CodeInfo* info = diag::find_code(code);
  if (info == nullptr) {
    std::cerr << "peppher-lint: unknown diagnostic code '" << code
              << "' (or 'all'; see docs/lint.md)\n";
    return 2;
  }
  std::cout << info->code << " (" << diag::to_string(info->severity)
            << "): " << info->summary << "\n\n"
            << info->remediation << "\n";
  return 0;
}

bool match_switch(const std::string& arg, std::string_view key,
                  std::string* value) {
  std::string_view body(arg);
  if (!strings::starts_with(body, "-")) return false;
  body.remove_prefix(1);
  if (strings::starts_with(body, "-")) body.remove_prefix(1);
  if (!strings::starts_with(body, key)) return false;
  body.remove_prefix(key.size());
  if (body.empty()) {
    value->clear();
    return true;
  }
  if (body.front() != '=') return false;
  *value = std::string(body.substr(1));
  return true;
}

sim::MachineConfig machine_preset(const std::string& name) {
  if (name == "c2050") return sim::MachineConfig::platform_c2050();
  if (name == "c1060") return sim::MachineConfig::platform_c1060();
  if (name == "opencl") return sim::MachineConfig::platform_opencl();
  if (name == "cpu") return sim::MachineConfig::cpu_only();
  throw Error(ErrorCode::kInvalidArgument,
              "unknown machine preset '" + name + "' (c2050|c1060|opencl|cpu)");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  analyze::LintOptions options;
  std::string format = "text";
  bool werror = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "-h" || arg == "-help" || arg == "--help") {
      usage(std::cout);
      return 0;
    } else if (arg == "-werror" || arg == "--werror") {
      werror = true;
    } else if (arg == "-no-sources" || arg == "--no-sources") {
      options.check_sources = false;
    } else if (arg == "-verify" || arg == "--verify") {
      options.verify = true;
    } else if (match_switch(arg, "explain", &value)) {
      if (value.empty() && i + 1 < argc) value = argv[++i];
      return explain(value);
    } else if (match_switch(arg, "format", &value)) {
      if (value != "text" && value != "json" && value != "sarif") {
        std::cerr << "peppher-lint: unknown format '" << value << "'\n";
        return usage(std::cerr);
      }
      format = value;
    } else if (match_switch(arg, "machine", &value)) {
      try {
        options.machine = machine_preset(value);
      } catch (const Error& e) {
        std::cerr << "peppher-lint: " << e.what() << "\n";
        return 2;
      }
    } else if (match_switch(arg, "cluster", &value)) {
      if (value.empty() && i + 1 < argc) value = argv[++i];
      try {
        options.cluster = sim::parse_cluster(fs::read_file(value));
      } catch (const ParseError& e) {
        std::cerr << "peppher-lint: --cluster: " << value << ": " << e.what()
                  << "\n";
        return 2;
      } catch (const Error& e) {
        std::cerr << "peppher-lint: --cluster: " << e.what() << "\n";
        return 2;
      }
    } else if (match_switch(arg, "disableImpls", &value)) {
      for (std::string& name : strings::split(value, ',')) {
        std::string trimmed(strings::trim(name));
        if (!trimmed.empty()) options.disable_impls.push_back(trimmed);
      }
    } else if (!arg.empty() && arg.front() == '-') {
      std::cerr << "peppher-lint: unknown switch '" << arg << "'\n";
      return usage(std::cerr);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage(std::cerr);

  diag::DiagnosticBag bag;
  for (const std::string& path : paths) {
    if (!std::filesystem::exists(path)) {
      std::cerr << "peppher-lint: no such file or directory: '" << path
                << "'\n";
      return 2;
    }
    bag.merge(analyze::lint_path(path, options).diagnostics());
  }
  bag.sort();

  if (format == "json") {
    std::cout << bag.format_json() << "\n";
  } else if (format == "sarif") {
    std::cout << bag.format_sarif() << "\n";
  } else if (!bag.empty()) {
    std::cout << bag.format_text();
  }
  return bag.fails(werror) ? 1 : 0;
}
