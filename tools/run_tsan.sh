#!/usr/bin/env bash
# Builds the project with ThreadSanitizer (PEPPHER_SANITIZE=thread) in a
# separate build tree and runs the test suite under it. Usage:
#
#   tools/run_tsan.sh [build-dir] [-- extra ctest args]
#
# Examples:
#   tools/run_tsan.sh                      # build-tsan, full suite
#   tools/run_tsan.sh build-tsan -- -R engine   # only tests matching 'engine'
#
# The same script works for the other sanitizers:
#   PEPPHER_SANITIZE=address tools/run_tsan.sh build-asan
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
sanitizer="${PEPPHER_SANITIZE:-thread}"

build_dir="${repo_root}/build-tsan"
if [[ $# -gt 0 && "$1" != "--" ]]; then
  build_dir="$1"
  [[ "${build_dir}" = /* ]] || build_dir="${repo_root}/${build_dir}"
  shift
fi
[[ "${1:-}" == "--" ]] && shift
extra_ctest_args=("$@")

echo "== configuring ${build_dir} with PEPPHER_SANITIZE=${sanitizer}"
cmake -S "${repo_root}" -B "${build_dir}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPEPPHER_SANITIZE="${sanitizer}" >/dev/null

echo "== building"
cmake --build "${build_dir}" -j "$(nproc)"

# halt_on_error makes a race fail the offending test instead of only
# printing a report; second_deadlock_stack improves lock-order reports.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"

echo "== running tests under ${sanitizer} sanitizer"
# Sanitized binaries are several times slower: scale the per-test timeout.
ctest --test-dir "${build_dir}" --output-on-failure --timeout 1500 \
  "${extra_ctest_args[@]}"
