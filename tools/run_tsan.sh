#!/usr/bin/env bash
# Thin compatibility wrapper: the sanitizer runner lives in
# tools/run_sanitizers.sh and also covers address/undefined. This keeps the
# historical interface working:
#
#   tools/run_tsan.sh [build-dir] [-- extra ctest args]
#   PEPPHER_SANITIZE=address tools/run_tsan.sh build-asan
set -euo pipefail

exec "$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)/run_sanitizers.sh" \
  "${PEPPHER_SANITIZE:-thread}" "$@"
