// Execution tracing walk-through: runs a hybrid SpMV with tracing enabled,
// prints a text Gantt chart of what ran where in virtual time, and writes a
// chrome://tracing JSON file for interactive inspection.
//
// Build & run:  ./build/examples/trace_demo
#include <cstdio>

#include "apps/sparse.hpp"
#include "apps/spmv.hpp"
#include "runtime/engine.hpp"
#include "support/fs.hpp"

using namespace peppher;

int main() {
  rt::EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.use_history_models = false;
  config.enable_trace = true;
  config.verify_shadow = true;  // cross-check coherence while demoing
  rt::Engine engine(config);

  const auto problem =
      apps::spmv::make_problem(apps::sparse::MatrixClass::kStructural, 0.5);
  std::printf("hybrid SpMV, %zu nnz, 12 chunks over 4 CPUs + C2050\n\n",
              problem.A.nnz());
  const auto result = apps::spmv::run_hybrid(engine, problem, 12);
  std::printf("virtual time: %.4f s, %llu PCIe transfers\n\n",
              result.virtual_seconds,
              static_cast<unsigned long long>(result.transfers.total_count()));

  // Worker legend: 0..3 CPU cores, 4 combined-CPU, 5 GPU.
  std::printf("%s\n", engine.trace().to_text_gantt(72).c_str());
  for (const auto& desc : engine.workers()) {
    std::printf("  worker %d: %s%s\n", desc.id, desc.profile.name.c_str(),
                desc.is_combined_cpu ? " (combined)" : "");
  }

  const auto json_path =
      std::filesystem::temp_directory_path() / "peppher_trace.json";
  fs::write_file(json_path, engine.trace().to_chrome_json());
  std::printf("\nchrome://tracing JSON written to %s (%zu records)\n",
              json_path.string().c_str(), engine.trace().size());
  return 0;
}
