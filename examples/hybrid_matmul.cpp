// Intra-component parallelism (§IV-F): "for certain computations, more
// parallelism can be spawned from a single component invocation by
// partitioning and dividing the work into several chunks that all can be
// processed concurrently, possibly on different devices ... (e.g. blocked
// matrix multiplication)."
//
// This example PEPPHERizes exactly that: one logical matrix product whose
// C rows are partitioned through the smart container into blocks, each
// block becoming one runtime sub-task that the performance-aware scheduler
// places on CPUs or the GPU.
//
// Build & run:  ./build/examples/hybrid_matmul
#include <cstdio>
#include <memory>

#include "containers/containers.hpp"
#include "core/peppher.hpp"
#include "support/rng.hpp"

using namespace peppher;

namespace {

struct BlockArgs {
  std::uint32_t rows = 0, n = 0, k = 0;
};

/// One C row-block: C_block = A_block * B.
void register_matmul_block() {
  rt::Codelet& codelet =
      core::ComponentRegistry::global().get_or_create("matmul_block");
  auto body = [](rt::ExecContext& ctx) {
    const auto& args = ctx.arg<BlockArgs>();
    const auto* A = ctx.buffer_as<const float>(0);
    const auto* B = ctx.buffer_as<const float>(1);
    auto* C = ctx.buffer_as<float>(2);
    for (std::uint32_t i = 0; i < args.rows; ++i) {
      for (std::uint32_t j = 0; j < args.n; ++j) {
        float acc = 0.0f;
        for (std::uint32_t kk = 0; kk < args.k; ++kk) {
          acc += A[i * args.k + kk] * B[kk * args.n + j];
        }
        C[i * args.n + j] = acc;
      }
    }
  };
  auto cost = [](const std::vector<std::size_t>& bytes, const void* arg) {
    const auto* a = static_cast<const BlockArgs*>(arg);
    return sim::KernelCost{2.0 * a->rows * a->n * a->k,
                           static_cast<double>(bytes[0] + bytes[1] + bytes[2]),
                           1.0};
  };
  for (rt::Arch arch : {rt::Arch::kCpu, rt::Arch::kCuda}) {
    codelet.add_impl({arch, "matmul_block_" + rt::to_string(arch), body, cost});
  }
}

}  // namespace

int main() {
  rt::EngineConfig config;
  config.use_history_models = false;  // deterministic placement for the demo
  config.enable_trace = true;
  config.verify_shadow = true;  // cross-check coherence while demoing
  PEPPHER_INITIALIZE(config);
  register_matmul_block();
  rt::Engine& engine = core::engine();

  const std::uint32_t m = 512, n = 256, k = 128;
  const int blocks = 8;
  cont::Matrix<float> A(&engine, m, k);
  cont::Matrix<float> B(&engine, k, n);
  cont::Matrix<float> C(&engine, m, n);
  {
    Rng rng(7);
    for (float& v : A.write_access()) v = static_cast<float>(rng.uniform(-1, 1));
    for (float& v : B.write_access()) v = static_cast<float>(rng.uniform(-1, 1));
  }

  // One logical invocation -> `blocks` runtime sub-tasks over row blocks.
  auto a_blocks = A.partition_rows(blocks);
  auto c_blocks = C.partition_rows(blocks);
  for (int b = 0; b < blocks; ++b) {
    auto args = std::make_shared<BlockArgs>();
    args->rows = static_cast<std::uint32_t>(a_blocks[static_cast<std::size_t>(b)]->elements());
    args->n = n;
    args->k = k;
    core::invoke_async("matmul_block",
                       {{a_blocks[static_cast<std::size_t>(b)], rt::AccessMode::kRead},
                        {B.handle(), rt::AccessMode::kRead},
                        {c_blocks[static_cast<std::size_t>(b)], rt::AccessMode::kWrite}},
                       std::shared_ptr<const void>(args, args.get()));
  }
  engine.wait_for_all();
  A.unpartition_rows();
  C.unpartition_rows();

  std::printf("C = A(%ux%u) * B(%ux%u) as %d row-block sub-tasks\n", m, k, k,
              n, blocks);
  std::printf("C(0,0) = %.4f, C(%u,%u) = %.4f\n", static_cast<float>(C(0, 0)),
              m - 1, n - 1, static_cast<float>(C(m - 1, n - 1)));
  std::printf("\n%s\n", engine.summary().c_str());
  std::printf("%s", engine.trace().to_text_gantt(70).c_str());
  PEPPHER_SHUTDOWN();
  return 0;
}
