// The full "PEPPHER-ization" flow of §V-A, end to end, in one program:
//
//   1. utility mode:  compose -generateCompFiles="spmv.h"
//      generates the component directory tree with pre-filled XML
//      descriptors and implementation skeletons (Figure 4);
//   2. build mode:    compose main.xml
//      explores the repository, performs static composition, and generates
//      the wrapper files, peppher.h and the Makefile.
//
// Everything runs through the same library the `compose` binary uses, into
// a temporary directory that is printed so you can inspect the artefacts.
//
// Build & run:  ./build/examples/composition_tool_demo
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "compose/tool.hpp"
#include "support/fs.hpp"

using namespace peppher;

int main() {
  const auto dir =
      std::filesystem::temp_directory_path() / "peppher_compose_demo";
  std::filesystem::remove_all(dir);
  fs::make_dirs(dir);

  // The starting point: a plain C/C++ header (the paper's spmv example).
  const char* header =
      "void spmv(const float* values, int nnz, int nrows, int ncols, "
      "const unsigned* colidxs, const unsigned* rowPtr, const float* x, "
      "float* y);\n";
  fs::write_file(dir / "spmv.h", header);
  std::printf("wrote %s:\n  %s\n", (dir / "spmv.h").string().c_str(), header);

  // Step 1: compose -generateCompFiles="spmv.h"
  {
    const auto options = compose::parse_arguments(
        {"-generateCompFiles=" + (dir / "spmv.h").string(),
         "-outdir=" + dir.string(), "-verbose"});
    if (compose::run_tool(options, std::cout, std::cerr) != 0) return 1;
  }

  // The programmer now fills in the skeletons (we ship them as-is) and
  // writes main.cpp; main.xml was generated too.

  // Step 2: compose main.xml -disableImpls=spmv_openmp
  {
    const auto options = compose::parse_arguments(
        {(dir / "main.xml").string(), "-disableImpls=spmv_openmp",
         "-verbose"});
    if (compose::run_tool(options, std::cout, std::cerr) != 0) return 1;
  }

  std::printf("\ngenerated entry-wrapper (first 30 lines of spmv_wrapper.cpp):\n");
  const std::string wrapper = fs::read_file(dir / "spmv_wrapper.cpp");
  std::size_t pos = 0;
  for (int line = 0; line < 30 && pos < wrapper.size(); ++line) {
    std::size_t end = wrapper.find('\n', pos);
    if (end == std::string::npos) end = wrapper.size();
    std::printf("  %s\n", wrapper.substr(pos, end - pos).c_str());
    pos = end + 1;
  }
  std::printf("\nartefacts left under %s for inspection\n", dir.string().c_str());
  return 0;
}
