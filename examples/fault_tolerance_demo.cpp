// Fault-tolerance demo: runs the paper's hybrid SpMV workload while a
// seeded fault plan kills the simulated GPU mid-run, then shows how the
// engine retries the failed chunk on the CPU, blacklists the dead device
// and still produces a bitwise-correct result.
//
//   ./fault_tolerance_demo
#include <cstdio>

#include "apps/sparse.hpp"
#include "apps/spmv.hpp"
#include "runtime/engine.hpp"
#include "sim/device.hpp"

namespace apps = peppher::apps;
namespace rt = peppher::rt;
namespace sim = peppher::sim;

int main() {
  // The GPU dies 1 us (virtual) into the run: whatever chunk it is
  // executing at that point fails and is retried on a CPU variant.
  sim::FaultPlan plan;
  plan.die_at_vtime = 1e-6;
  plan.seed = 7;

  rt::EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.scheduler = "dmda";
  config.use_history_models = false;
  config.enable_trace = true;
  config.accelerator_faults = {plan};
  rt::Engine engine(config);

  const auto problem =
      apps::spmv::make_problem(apps::sparse::MatrixClass::kStructural, 0.15);
  const auto expected = apps::spmv::reference(problem);
  const auto result = apps::spmv::run_hybrid(engine, problem, 8);

  std::printf("hybrid SpMV under GPU death at t=%g s (virtual)\n",
              plan.die_at_vtime);
  std::printf("result bitwise-identical to reference: %s\n",
              result.y == expected ? "yes" : "NO");

  const rt::FaultStats stats = engine.fault_stats();
  std::printf(
      "failed attempts: %llu, retries: %llu, fallbacks: %llu, "
      "workers blacklisted: %llu\n",
      static_cast<unsigned long long>(stats.failed_attempts),
      static_cast<unsigned long long>(stats.retries),
      static_cast<unsigned long long>(stats.fallbacks),
      static_cast<unsigned long long>(stats.workers_blacklisted));

  std::printf("\n%s\n", engine.summary().c_str());

  std::printf("execution trace (x = failed attempt):\n%s\n",
              engine.trace().to_text_gantt().c_str());
  return result.y == expected ? 0 : 1;
}
