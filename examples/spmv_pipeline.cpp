// SpMV scenario walk-through — the paper's running example (§V-A/C).
//
// Multiplies a circuit-simulation-class sparse matrix by a vector four
// ways: forced serial CPU, forced OpenMP, forced CUDA (the "direct CUDA"
// baseline, paying the full PCIe bill), and hybrid execution where the
// rows are split into nnz-balanced chunks distributed over all CPU cores
// and the GPU by the performance-aware scheduler.
//
// Build & run:  ./build/examples/spmv_pipeline
#include <cstdio>

#include "apps/sparse.hpp"
#include "apps/spmv.hpp"
#include "runtime/engine.hpp"

using namespace peppher;

namespace {

rt::EngineConfig config() {
  rt::EngineConfig c;
  c.machine = sim::MachineConfig::platform_c2050();
  c.use_history_models = false;  // place by cost model (deterministic demo)
  c.verify_shadow = true;        // cross-check coherence while demoing
  return c;
}

void report(const char* label, const apps::spmv::RunResult& r,
            double baseline) {
  std::printf("  %-12s %10.4f ms   speedup %5.2fx   PCIe h2d %6.1f MB\n",
              label, r.virtual_seconds * 1e3, baseline / r.virtual_seconds,
              r.transfers.host_to_device_bytes / 1e6);
}

}  // namespace

int main() {
  std::printf("SpMV on a synthetic circuit-simulation matrix (4.6M nnz)\n\n");
  const auto problem =
      apps::spmv::make_problem(apps::sparse::MatrixClass::kSimulation, 1.0);
  std::printf("  matrix: %u x %u, %zu non-zeros, row skew %.2f\n\n",
              problem.A.nrows, problem.A.ncols, problem.A.nnz(),
              apps::sparse::row_skew(problem.A));

  rt::Engine cpu_engine(config());
  const auto cpu = apps::spmv::run_single(cpu_engine, problem, rt::Arch::kCpu);

  rt::Engine omp_engine(config());
  const auto omp = apps::spmv::run_single(omp_engine, problem, rt::Arch::kCpuOmp);

  rt::Engine cuda_engine(config());
  const auto cuda = apps::spmv::run_single(cuda_engine, problem, rt::Arch::kCuda);

  rt::Engine hybrid_engine(config());
  const auto hybrid = apps::spmv::run_hybrid(hybrid_engine, problem, 12);

  const double baseline = cpu.virtual_seconds;
  report("serial CPU", cpu, baseline);
  report("OpenMP x4", omp, baseline);
  report("direct CUDA", cuda, baseline);
  report("hybrid", hybrid, baseline);

  std::printf(
      "\nThe GPU kernel itself is far faster than the CPUs, but GPU-only\n"
      "execution is dominated by moving %zu MB across PCIe. Hybrid\n"
      "execution divides the computation *and* the communication (§V-C).\n",
      static_cast<std::size_t>(cuda.transfers.host_to_device_bytes / 1e6));
  return 0;
}
