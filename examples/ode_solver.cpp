// LibSolve-style Runge-Kutta ODE solver through the PEPPHER runtime — the
// paper's §V-E workload: 9 components, tight data dependencies, thousands
// of invocations. Demonstrates asynchronous component chaining, data
// residency across repeated invocations (§IV-H), and the runtime's low
// overhead against hand-written direct execution (Figure 7).
//
// Build & run:  ./build/examples/ode_solver
#include <cstdio>

#include "apps/ode.hpp"
#include "runtime/engine.hpp"

using namespace peppher;

int main() {
  const std::uint32_t n = 500;
  const int steps = 200;  // scaled-down horizon; Figure 7 uses 1179
  std::printf("RK4 ODE solver: y' = J*y, n = %u, %d steps\n\n", n, steps);
  const auto problem = apps::ode::make_problem(n, steps);

  // Hand-written direct execution (no runtime) on CPU and GPU.
  const auto machine = sim::MachineConfig::platform_c2050();
  const auto direct_cpu = apps::ode::run_direct(problem, rt::Arch::kCpu, machine);
  const auto direct_cuda = apps::ode::run_direct(problem, rt::Arch::kCuda, machine);

  // The composition-tool path: every stage is a runtime task; dependencies
  // are inferred from the operands; J crosses PCIe exactly once.
  rt::EngineConfig config;
  config.machine = machine;
  config.use_history_models = false;
  config.verify_shadow = true;  // cross-check coherence while demoing
  rt::Engine engine(config);
  const auto tool = apps::ode::run_tool(engine, problem, rt::Arch::kCuda);

  std::printf("  direct CPU  : %9.4f s virtual\n", direct_cpu.virtual_seconds);
  std::printf("  direct CUDA : %9.4f s virtual\n", direct_cuda.virtual_seconds);
  std::printf("  tool CUDA   : %9.4f s virtual  (%llu component invocations)\n",
              tool.virtual_seconds,
              static_cast<unsigned long long>(tool.invocations));
  std::printf("  PCIe traffic: %llu transfers, %.2f MB "
              "(Jacobian resident after the first touch)\n",
              static_cast<unsigned long long>(tool.transfers.total_count()),
              tool.transfers.total_bytes() / 1e6);
  std::printf("  final error estimate: %.3e, y[0] = %.6f\n", tool.last_error,
              tool.y.empty() ? 0.0f : tool.y[0]);
  std::printf(
      "\nDespite %llu fine-grained tasks with tight dependencies, the tool\n"
      "path costs within a fraction of a percent of hand-written code.\n",
      static_cast<unsigned long long>(tool.invocations));
  return 0;
}
