// Adaptive algorithm library walk-through: a small numerical pipeline built
// entirely from pre-PEPPHERized skeletons (map / zip / reduce / scan /
// sort). Every call is asynchronous; the runtime chains them through
// inferred dependencies and places each on the expected-fastest device.
//
//   normalized RMS:  r = sqrt( sum((x[i]-mean)^2) / n )
//
// Build & run:  ./build/examples/skeleton_pipeline
#include <cmath>
#include <cstdio>

#include "core/peppher.hpp"
#include "lib/skeletons.hpp"
#include "support/rng.hpp"

using namespace peppher;

namespace {
float plus(float a, float b) { return a + b; }
float sub_then_square(float x, float mean) {
  const float d = x - mean;
  return d * d;
}
}  // namespace

int main() {
  PEPPHER_INITIALIZE();
  lib::register_components();

  const std::size_t n = 1 << 20;
  cont::Vector<float> samples(&core::engine(), n);
  {
    Rng rng(2026);
    auto view = samples.write_access();
    for (float& v : view) v = static_cast<float>(rng.normal(40.0, 12.0));
  }

  // mean = reduce(samples, +) / n          (asynchronous)
  cont::Scalar<float> total(&core::engine());
  lib::reduce(samples, total, &plus, 0.0f);
  const float mean = total.get() / static_cast<float>(n);  // sync point

  // deviations squared, then their sum     (chained asynchronously)
  cont::Vector<float> squared(&core::engine(), n);
  cont::Scalar<float> sum_squared(&core::engine());
  lib::map(samples, squared, &sub_then_square, mean);
  lib::reduce(squared, sum_squared, &plus, 0.0f);
  const float rms = std::sqrt(sum_squared.get() / static_cast<float>(n));

  std::printf("n = %zu samples\n", n);
  std::printf("mean = %.3f (generated with mean 40)\n", mean);
  std::printf("rms deviation = %.3f (generated with sigma 12)\n", rms);

  // And a sorted median for good measure.
  lib::sort(samples);
  std::printf("median = %.3f\n", static_cast<float>(samples[n / 2]));
  std::printf("virtual time for the whole pipeline: %.5f s\n",
              core::engine().virtual_makespan());

  PEPPHER_SHUTDOWN();
  return 0;
}
