// Application-kernel correctness: every evaluation app, on every
// architecture variant (serial CPU, OpenMP, simulated CUDA), must match its
// serial reference — parameterised over the architecture.
#include <gtest/gtest.h>

#include "apps/bfs.hpp"
#include "apps/cfd.hpp"
#include "apps/common.hpp"
#include "apps/hotspot.hpp"
#include "apps/lud.hpp"
#include "apps/nw.hpp"
#include "apps/ode.hpp"
#include "apps/particlefilter.hpp"
#include "apps/pathfinder.hpp"
#include "apps/sgemm.hpp"
#include "apps/sparse.hpp"
#include "apps/spmv.hpp"
#include "runtime/engine.hpp"

namespace peppher::apps {
namespace {

rt::EngineConfig test_config() {
  rt::EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.machine.cpu_cores = 2;
  config.use_history_models = false;
  return config;
}

class AppsOnArch : public ::testing::TestWithParam<rt::Arch> {
 protected:
  AppsOnArch() : engine_(test_config()) {}
  rt::Engine engine_;
};

INSTANTIATE_TEST_SUITE_P(AllVariants, AppsOnArch,
                         ::testing::Values(rt::Arch::kCpu, rt::Arch::kCpuOmp,
                                           rt::Arch::kCuda),
                         [](const auto& info) { return rt::to_string(info.param); });

TEST_P(AppsOnArch, SpmvMatchesReference) {
  const auto problem = spmv::make_problem(sparse::MatrixClass::kHB, 0.02);
  const auto expected = spmv::reference(problem);
  const auto result = spmv::run_single(engine_, problem, GetParam());
  EXPECT_LT(max_abs_diff(result.y, expected), 1e-4);
  EXPECT_GT(result.virtual_seconds, 0.0);
}

TEST_P(AppsOnArch, SgemmMatchesReference) {
  const auto problem = sgemm::make_problem(33, 29, 41);
  const auto expected = sgemm::reference(problem);
  const auto result = sgemm::run_single(engine_, problem, GetParam());
  EXPECT_LT(max_abs_diff(result.C, expected), 1e-3);
}

TEST_P(AppsOnArch, BfsMatchesReference) {
  const auto problem = bfs::make_problem(2000, 4);
  const auto expected = bfs::reference(problem);
  const auto result = bfs::run_single(engine_, problem, GetParam());
  EXPECT_EQ(result.depth, expected);
}

TEST_P(AppsOnArch, CfdMatchesReference) {
  const auto problem = cfd::make_problem(512, 3);
  const auto expected = cfd::reference(problem);
  const auto result = cfd::run(engine_, problem, GetParam());
  EXPECT_LT(max_abs_diff(result.state, expected), 1e-4);
}

TEST_P(AppsOnArch, HotspotMatchesReference) {
  auto problem = hotspot::make_problem(24, 32, 5);
  const auto expected = hotspot::reference(problem);
  const auto result = hotspot::run(engine_, problem, GetParam());
  EXPECT_LT(max_abs_diff(result.temp, expected), 1e-3);
}

TEST_P(AppsOnArch, LudMatchesReference) {
  const auto problem = lud::make_problem(48);
  const auto expected = lud::reference(problem);
  const auto result = lud::run_single(engine_, problem, GetParam());
  EXPECT_LT(max_abs_diff(result.A, expected), 1e-3);
}

TEST_P(AppsOnArch, NwMatchesReference) {
  const auto problem = nw::make_problem(96);
  const auto expected = nw::reference(problem);
  const auto result = nw::run_single(engine_, problem, GetParam());
  EXPECT_EQ(result.score, expected);
}

TEST_P(AppsOnArch, ParticlefilterMatchesReference) {
  const auto problem = particlefilter::make_problem(512, 4);
  const auto expected = particlefilter::reference(problem);
  const auto result = particlefilter::run(engine_, problem, GetParam());
  ASSERT_EQ(result.estimates.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(result.estimates[i], expected[i], 1e-4);
  }
}

TEST_P(AppsOnArch, PathfinderMatchesReference) {
  const auto problem = pathfinder::make_problem(40, 64);
  const auto expected = pathfinder::reference(problem);
  const auto result = pathfinder::run_single(engine_, problem, GetParam());
  EXPECT_EQ(result.result, expected);
}

TEST_P(AppsOnArch, OdeMatchesReference) {
  const auto problem = ode::make_problem(32, 20);
  const auto expected = ode::reference(problem);
  const auto result = ode::run_tool(engine_, problem, GetParam());
  EXPECT_LT(max_abs_diff(result.y, expected), 1e-4);
}

// -- unforced (dynamic selection) correctness ---------------------------------

TEST(AppsDynamic, AllAppsCorrectUnderDynamicScheduling) {
  rt::EngineConfig config = test_config();
  config.use_history_models = true;
  config.calibration_samples = 1;
  rt::Engine engine(config);

  const auto spmv_problem = spmv::make_problem(sparse::MatrixClass::kNetwork, 0.02);
  EXPECT_LT(max_abs_diff(spmv::run_single(engine, spmv_problem).y,
                         spmv::reference(spmv_problem)),
            1e-4);

  const auto sgemm_problem = sgemm::make_problem(24, 24, 24);
  EXPECT_LT(max_abs_diff(sgemm::run_single(engine, sgemm_problem).C,
                         sgemm::reference(sgemm_problem)),
            1e-3);

  const auto ode_problem = ode::make_problem(16, 10);
  EXPECT_LT(max_abs_diff(ode::run_tool(engine, ode_problem).y,
                         ode::reference(ode_problem)),
            1e-4);
}

// -- workload generators ---------------------------------------------------------

TEST(SparseGenerator, MatchesTargetNnzAtScale) {
  for (const sparse::MatrixSpec& spec : sparse::uf_matrix_table()) {
    const auto m = sparse::generate(spec.matrix_class, 0.01);
    const double target = spec.target_nnz * 0.01;
    EXPECT_GT(m.nnz(), target * 0.5) << spec.short_name;
    EXPECT_LT(m.nnz(), target * 1.6) << spec.short_name;
    ASSERT_EQ(m.rowptr.size(), m.nrows + 1u) << spec.short_name;
    EXPECT_EQ(m.rowptr.back(), m.nnz()) << spec.short_name;
    for (std::uint32_t c : m.colidx) ASSERT_LT(c, m.ncols);
  }
}

TEST(SparseGenerator, DeterministicInSeed) {
  const auto a = sparse::generate(sparse::MatrixClass::kHB, 0.02, 9);
  const auto b = sparse::generate(sparse::MatrixClass::kHB, 0.02, 9);
  EXPECT_EQ(a.colidx, b.colidx);
  EXPECT_EQ(a.values, b.values);
  const auto c = sparse::generate(sparse::MatrixClass::kHB, 0.02, 10);
  EXPECT_NE(a.values, c.values);
}

TEST(SparseGenerator, NetworkIsSkewedBandedIsNot) {
  const auto banded = sparse::generate(sparse::MatrixClass::kStructural, 0.01);
  const auto network = sparse::generate(sparse::MatrixClass::kNetwork, 0.01);
  EXPECT_LT(sparse::row_skew(banded), 0.2);
  EXPECT_GT(sparse::row_skew(network), 0.5);
}

TEST(OdeProblem, PaperConfigurationHas10613Invocations) {
  rt::Engine engine(test_config());
  auto problem = ode::make_problem(16, ode::kPaperSteps);
  const auto result = ode::run_tool(engine, problem, rt::Arch::kCpu);
  EXPECT_EQ(result.invocations, 10613u);  // 2 + 9 * 1179, §V-E
}

TEST(OdeDirect, MatchesToolNumerics) {
  rt::Engine engine(test_config());
  const auto problem = ode::make_problem(24, 15);
  const auto direct =
      ode::run_direct(problem, rt::Arch::kCpu, sim::MachineConfig::platform_c2050());
  const auto tool = ode::run_tool(engine, problem, rt::Arch::kCpu);
  EXPECT_LT(max_abs_diff(direct.y, tool.y), 1e-5);
  EXPECT_GT(direct.virtual_seconds, 0.0);
}

TEST(Checksum, CloseToToleratesReassociation) {
  Checksum a, b;
  for (int i = 0; i < 100; ++i) {
    a.add(static_cast<float>(i) * 0.25f);
    b.add(static_cast<float>(99 - i) * 0.25f);
  }
  EXPECT_TRUE(a.close_to(b));
  Checksum c;
  c.add(1e6f);
  EXPECT_FALSE(a.close_to(c));
}

}  // namespace
}  // namespace peppher::apps
