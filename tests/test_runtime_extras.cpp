// Tests for the runtime's supporting facilities: execution tracing, data
// prefetch, OpenCL workers, dmda priorities, Vector partitioning, and the
// resource-requirement narrowing of the composition tool.
#include <gtest/gtest.h>

#include <numeric>

#include "compose/ir.hpp"
#include "containers/containers.hpp"
#include "runtime/engine.hpp"
#include "runtime/trace.hpp"
#include "support/error.hpp"

namespace peppher {
namespace {

rt::Codelet make_add_one(std::initializer_list<rt::Arch> archs) {
  rt::Codelet codelet("add_one");
  for (rt::Arch arch : archs) {
    rt::Implementation impl;
    impl.arch = arch;
    impl.name = "add_one_" + rt::to_string(arch);
    impl.fn = [](rt::ExecContext& ctx) {
      auto* data = ctx.buffer_as<float>(0);
      for (std::size_t i = 0; i < ctx.buffer_bytes(0) / sizeof(float); ++i) {
        data[i] += 1.0f;
      }
    };
    impl.cost = [](const std::vector<std::size_t>& bytes, const void*) {
      return sim::KernelCost{static_cast<double>(bytes[0]),
                             static_cast<double>(bytes[0]), 1.0};
    };
    codelet.add_impl(std::move(impl));
  }
  return codelet;
}

// ---------------------------------------------------------------------------
// tracing
// ---------------------------------------------------------------------------

TEST(Trace, RecordsEveryExecutionWhenEnabled) {
  rt::EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.machine.cpu_cores = 2;
  config.use_history_models = false;
  config.enable_trace = true;
  rt::Engine engine(config);

  rt::Codelet codelet = make_add_one({rt::Arch::kCpu, rt::Arch::kCuda});
  std::vector<float> data(64, 0.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * sizeof(float),
                                       sizeof(float));
  for (int i = 0; i < 5; ++i) {
    rt::TaskSpec spec;
    spec.codelet = &codelet;
    spec.name = "traced";
    spec.operands = {{handle, rt::AccessMode::kReadWrite}};
    engine.submit(std::move(spec));
  }
  engine.wait_for_all();

  const auto records = engine.trace().records();
  ASSERT_EQ(records.size(), 5u);
  for (const auto& r : records) {
    EXPECT_EQ(r.name, "traced");
    EXPECT_GT(r.vend, r.vstart);
    EXPECT_GE(r.worker, 0);
    EXPECT_FALSE(r.impl.empty());
  }
}

TEST(Trace, DisabledByDefault) {
  rt::EngineConfig config;
  config.machine = sim::MachineConfig::cpu_only(1);
  rt::Engine engine(config);
  rt::Codelet codelet = make_add_one({rt::Arch::kCpu});
  std::vector<float> data(4, 0.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * sizeof(float),
                                       sizeof(float));
  rt::TaskSpec spec;
  spec.codelet = &codelet;
  spec.operands = {{handle, rt::AccessMode::kReadWrite}};
  spec.synchronous = true;
  engine.submit(std::move(spec));
  EXPECT_EQ(engine.trace().size(), 0u);
}

TEST(Trace, ChromeJsonIsWellFormedIsh) {
  rt::Tracer tracer;
  tracer.record({1, "spmv \"quoted\"", "spmv_cuda", rt::Arch::kCuda, 3, 0.5, 1.5});
  tracer.record({2, "sgemm", "sgemm_cpu", rt::Arch::kCpu, 0, 0.0, 0.25});
  const std::string json = tracer.to_chrome_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 3"), std::string::npos);
  EXPECT_NE(json.find("spmv 'quoted'"), std::string::npos);  // escaped
  EXPECT_NE(json.find("\"dur\": 1000000.000"), std::string::npos);  // 1 s
}

TEST(Trace, TextGanttPaintsWorkers) {
  rt::Tracer tracer;
  tracer.record({1, "alpha", "a_cpu", rt::Arch::kCpu, 0, 0.0, 0.5});
  tracer.record({2, "beta", "b_cuda", rt::Arch::kCuda, 1, 0.5, 1.0});
  const std::string gantt = tracer.to_text_gantt(20);
  EXPECT_NE(gantt.find("worker 0"), std::string::npos);
  EXPECT_NE(gantt.find("worker 1"), std::string::npos);
  EXPECT_NE(gantt.find('a'), std::string::npos);
  EXPECT_NE(gantt.find('b'), std::string::npos);
  EXPECT_EQ(rt::Tracer().to_text_gantt(20), "");
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
}

// ---------------------------------------------------------------------------
// prefetch
// ---------------------------------------------------------------------------

TEST(Prefetch, MovesDataAheadOfTasks) {
  rt::EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.machine.cpu_cores = 1;
  config.use_history_models = false;
  rt::Engine engine(config);

  std::vector<float> data(1024, 1.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * sizeof(float),
                                       sizeof(float));
  EXPECT_TRUE(engine.prefetch(handle, 1));
  EXPECT_EQ(handle->replica_state(1), rt::ReplicaState::kShared);
  // A GPU task now finds its data resident: zero further h2d transfers.
  engine.reset_transfer_stats();
  rt::Codelet codelet = make_add_one({rt::Arch::kCuda});
  rt::TaskSpec spec;
  spec.codelet = &codelet;
  spec.operands = {{handle, rt::AccessMode::kReadWrite}};
  spec.synchronous = true;
  engine.submit(std::move(spec));
  EXPECT_EQ(engine.transfer_stats().host_to_device_count, 0u);
}

TEST(Prefetch, SkipsWhileWriterInFlight) {
  rt::EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.machine.cpu_cores = 1;
  config.use_history_models = false;
  rt::Engine engine(config);
  std::vector<float> data(1 << 16, 1.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * sizeof(float),
                                       sizeof(float));
  rt::Codelet slow("slow_writer");
  rt::Implementation impl;
  impl.arch = rt::Arch::kCpu;
  impl.name = "slow_cpu";
  impl.fn = [](rt::ExecContext& ctx) {
    auto* d = ctx.buffer_as<float>(0);
    for (int repeat = 0; repeat < 50; ++repeat) {
      for (std::size_t i = 0; i < ctx.elements(0); ++i) d[i] += 1.0f;
    }
  };
  slow.add_impl(std::move(impl));
  rt::TaskSpec spec;
  spec.codelet = &slow;
  spec.operands = {{handle, rt::AccessMode::kReadWrite}};
  rt::TaskPtr task = engine.submit(std::move(spec));
  // Racing prefetches must either succeed (writer already done) or be
  // skipped — never crash or corrupt.
  const bool prefetched = engine.prefetch(handle, 1);
  engine.wait(task);
  if (!prefetched) {
    EXPECT_EQ(handle->replica_state(1), rt::ReplicaState::kInvalid);
  }
  engine.acquire_host(handle, rt::AccessMode::kRead);
  EXPECT_FLOAT_EQ(data[0], 51.0f);
}

// ---------------------------------------------------------------------------
// OpenCL backend
// ---------------------------------------------------------------------------

TEST(OpenCl, EngineRunsOpenClVariants) {
  rt::EngineConfig config;
  config.machine = sim::MachineConfig::platform_opencl();
  config.machine.cpu_cores = 1;
  config.use_history_models = false;
  rt::Engine engine(config);

  rt::Codelet codelet = make_add_one({rt::Arch::kOpenCl});
  std::vector<float> data(32, 0.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * sizeof(float),
                                       sizeof(float));
  rt::TaskSpec spec;
  spec.codelet = &codelet;
  spec.operands = {{handle, rt::AccessMode::kReadWrite}};
  spec.synchronous = true;
  rt::TaskPtr task = engine.submit(std::move(spec));
  EXPECT_EQ(task->executed_arch, rt::Arch::kOpenCl);
  engine.acquire_host(handle, rt::AccessMode::kRead);
  EXPECT_FLOAT_EQ(data[0], 1.0f);
}

TEST(OpenCl, ComposeKeepsOpenClVariantOnOpenClMachine) {
  desc::Repository repo;
  repo.load_text(R"(<peppher-interface name="k">
      <function returnType="void">
        <param name="v" type="float*" accessMode="readwrite" size="n"/>
        <param name="n" type="int" accessMode="read"/>
      </function></peppher-interface>)");
  repo.load_text(R"(<peppher-implementation name="k_ocl" interface="k">
      <platform language="opencl"/></peppher-implementation>)");
  repo.load_text(R"(<peppher-implementation name="k_cuda" interface="k">
      <platform language="cuda"/></peppher-implementation>)");
  repo.load_text(R"(<peppher-main name="app"><uses interface="k"/></peppher-main>)");

  compose::Recipe recipe;
  recipe.machine = sim::MachineConfig::platform_opencl();
  const compose::ComponentTree tree = compose::build_tree(repo, recipe);
  const auto enabled = tree.components[0].enabled_variants();
  ASSERT_EQ(enabled.size(), 1u);
  EXPECT_EQ(enabled[0]->descriptor.name, "k_ocl");
}

// ---------------------------------------------------------------------------
// dmda priorities
// ---------------------------------------------------------------------------

TEST(Priority, DmdaRunsHigherPriorityFirstWithinAQueue) {
  rt::EngineConfig config;
  config.machine = sim::MachineConfig::cpu_only(1);
  config.use_history_models = false;
  rt::Engine engine(config);

  // One long blocker keeps the worker busy while we enqueue; after it, the
  // high-priority task must run before earlier-submitted low-priority ones.
  std::vector<int> order;
  std::mutex order_mutex;
  rt::Codelet codelet("prio");
  rt::Implementation impl;
  impl.arch = rt::Arch::kCpu;
  impl.name = "prio_cpu";
  impl.fn = [&order, &order_mutex](rt::ExecContext& ctx) {
    const int id = ctx.arg<int>();
    std::lock_guard<std::mutex> lock(order_mutex);
    order.push_back(id);
  };
  codelet.add_impl(std::move(impl));

  // Serialise everything through one handle in RW mode? No — that would fix
  // the order by dependencies. Use independent buffers and a single CPU
  // worker; the queue order is the scheduler's choice.
  std::vector<float> blocker_data(1 << 18, 0.0f);
  auto blocker = engine.register_buffer(blocker_data.data(),
                                        blocker_data.size() * sizeof(float),
                                        sizeof(float));
  rt::Codelet slow("slow");
  rt::Implementation slow_impl;
  slow_impl.arch = rt::Arch::kCpu;
  slow_impl.name = "slow_cpu";
  slow_impl.fn = [](rt::ExecContext& ctx) {
    auto* d = ctx.buffer_as<float>(0);
    for (int repeat = 0; repeat < 30; ++repeat) {
      for (std::size_t i = 0; i < ctx.elements(0); ++i) d[i] += 1.0f;
    }
  };
  slow.add_impl(std::move(slow_impl));
  {
    rt::TaskSpec spec;
    spec.codelet = &slow;
    spec.operands = {{blocker, rt::AccessMode::kReadWrite}};
    engine.submit(std::move(spec));
  }

  std::vector<std::vector<float>> buffers(4, std::vector<float>(4, 0.0f));
  auto submit = [&](int id, int priority) {
    auto h = engine.register_buffer(buffers[static_cast<std::size_t>(id)].data(),
                                    4 * sizeof(float), sizeof(float));
    auto arg = std::make_shared<int>(id);
    rt::TaskSpec spec;
    spec.codelet = &codelet;
    spec.operands = {{h, rt::AccessMode::kReadWrite}};
    spec.arg = std::shared_ptr<const void>(arg, arg.get());
    spec.priority = priority;
    engine.submit(std::move(spec));
  };
  submit(0, 0);
  submit(1, 0);
  submit(2, 10);  // submitted last-but-one but most urgent
  submit(3, 0);
  engine.wait_for_all();

  ASSERT_EQ(order.size(), 4u);
  // Task 2 must not run after every low-priority task; with the blocker in
  // front, it should in fact be first.
  EXPECT_EQ(order.front(), 2);
}

// ---------------------------------------------------------------------------
// Vector partitioning
// ---------------------------------------------------------------------------

TEST(VectorPartition, BlocksProcessIndependentlyThenGather) {
  rt::EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.machine.cpu_cores = 2;
  config.use_history_models = false;
  rt::Engine engine(config);

  cont::Vector<float> v(&engine, 100);
  {
    auto view = v.write_access();
    std::iota(view.begin(), view.end(), 0.0f);
  }
  rt::Codelet codelet = make_add_one({rt::Arch::kCpu, rt::Arch::kCuda});
  auto blocks = v.partition(4);
  ASSERT_EQ(blocks.size(), 4u);
  // The whole-vector handle is blocked while partitioned.
  auto submit_whole = [&] {
    rt::TaskSpec spec;
    spec.codelet = &codelet;
    spec.operands = {{v.handle(), rt::AccessMode::kReadWrite}};
    engine.submit(std::move(spec));
  };
  EXPECT_THROW(submit_whole(), Error);
  for (auto& block : blocks) {
    rt::TaskSpec spec;
    spec.codelet = &codelet;
    spec.operands = {{block, rt::AccessMode::kReadWrite}};
    engine.submit(std::move(spec));
  }
  engine.wait_for_all();
  v.unpartition();
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_FLOAT_EQ(v[i], static_cast<float>(i) + 1.0f);
  }
}

// ---------------------------------------------------------------------------
// failure isolation
// ---------------------------------------------------------------------------

TEST(Failure, ThrowingImplementationSurfacesAtWait) {
  rt::EngineConfig config;
  config.machine = sim::MachineConfig::cpu_only(2);
  config.use_history_models = false;
  rt::Engine engine(config);

  rt::Codelet codelet("bomb");
  rt::Implementation impl;
  impl.arch = rt::Arch::kCpu;
  impl.name = "bomb_cpu";
  impl.fn = [](rt::ExecContext&) {
    throw Error(ErrorCode::kInternal, "kernel exploded");
  };
  codelet.add_impl(std::move(impl));

  std::vector<float> data(8, 0.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * 4, 4);
  rt::TaskSpec spec;
  spec.codelet = &codelet;
  spec.operands = {{handle, rt::AccessMode::kReadWrite}};
  rt::TaskPtr task = engine.submit(std::move(spec));
  EXPECT_THROW(engine.wait(task), Error);
  EXPECT_TRUE(task->failed());

  // The engine is still alive: a healthy task runs fine afterwards.
  rt::Codelet healthy = make_add_one({rt::Arch::kCpu});
  std::vector<float> other(8, 0.0f);
  auto h2 = engine.register_buffer(other.data(), other.size() * 4, 4);
  rt::TaskSpec ok;
  ok.codelet = &healthy;
  ok.operands = {{h2, rt::AccessMode::kReadWrite}};
  ok.synchronous = true;
  EXPECT_NO_THROW(engine.submit(std::move(ok)));
  engine.acquire_host(h2, rt::AccessMode::kRead);
  EXPECT_FLOAT_EQ(other[0], 1.0f);
}

TEST(Failure, DependentTasksAreCancelledTransitively) {
  rt::EngineConfig config;
  config.machine = sim::MachineConfig::cpu_only(1);
  config.use_history_models = false;
  rt::Engine engine(config);

  rt::Codelet bomb("bomb2");
  {
    rt::Implementation impl;
    impl.arch = rt::Arch::kCpu;
    impl.name = "bomb2_cpu";
    impl.fn = [](rt::ExecContext&) { throw std::runtime_error("boom"); };
    bomb.add_impl(std::move(impl));
  }
  rt::Codelet healthy = make_add_one({rt::Arch::kCpu});

  std::vector<float> data(8, 0.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * 4, 4);
  rt::TaskSpec first;
  first.codelet = &bomb;
  first.operands = {{handle, rt::AccessMode::kReadWrite}};
  engine.submit(std::move(first));

  // Two chained successors on the same handle: both must be cancelled and
  // report the predecessor failure; nothing hangs.
  std::vector<rt::TaskPtr> chain;
  for (int i = 0; i < 2; ++i) {
    rt::TaskSpec spec;
    spec.codelet = &healthy;
    spec.operands = {{handle, rt::AccessMode::kReadWrite}};
    chain.push_back(engine.submit(std::move(spec)));
  }
  for (const auto& task : chain) {
    EXPECT_THROW(engine.wait(task), Error);
    EXPECT_TRUE(task->failed());
  }
  engine.wait_for_all();  // must not hang
  EXPECT_FLOAT_EQ(data[0], 0.0f);  // the healthy increments never ran
}

// ---------------------------------------------------------------------------
// multi-GPU (abstract: "GPU and multi-GPU based systems")
// ---------------------------------------------------------------------------

TEST(MultiGpu, IndependentTasksSpreadAcrossBothGpus) {
  rt::EngineConfig config;
  config.machine = sim::MachineConfig::platform_dual_c2050();
  config.machine.cpu_cores = 1;
  config.use_history_models = false;
  // Disable the CPU variant entirely: GPU-only codelet.
  rt::Engine engine(config);
  EXPECT_EQ(engine.accelerator_count(), 2);

  rt::Codelet codelet = make_add_one({rt::Arch::kCuda});
  // Compute-heavy independent tasks: with both GPUs available the makespan
  // must be clearly below a single-GPU serialisation.
  std::vector<std::vector<float>> buffers(8, std::vector<float>(1 << 16, 0.0f));
  std::vector<rt::DataHandlePtr> handles;
  for (auto& buffer : buffers) {
    handles.push_back(engine.register_buffer(buffer.data(),
                                             buffer.size() * sizeof(float),
                                             sizeof(float)));
  }
  for (const auto& handle : handles) {
    rt::TaskSpec spec;
    spec.codelet = &codelet;
    spec.operands = {{handle, rt::AccessMode::kReadWrite}};
    engine.submit(std::move(spec));
  }
  engine.wait_for_all();
  // Both GPU workers executed something.
  std::uint64_t per_gpu[2] = {0, 0};
  for (const auto& desc : engine.workers()) {
    if (desc.node != rt::kHostNode) {
      per_gpu[static_cast<std::size_t>(desc.node - 1)] =
          engine.worker_stats(desc.id).tasks_executed;
    }
  }
  EXPECT_GT(per_gpu[0], 0u);
  EXPECT_GT(per_gpu[1], 0u);
  for (auto& buffer : buffers) {
    EXPECT_FLOAT_EQ(buffer[0], 0.0f);  // device copy not yet fetched
  }
  for (const auto& handle : handles) {
    engine.acquire_host(handle, rt::AccessMode::kRead);
  }
  EXPECT_FLOAT_EQ(buffers[0][0], 1.0f);
}

TEST(MultiGpu, DataMigratesBetweenGpusThroughHost) {
  rt::EngineConfig config;
  config.machine = sim::MachineConfig::platform_dual_c2050();
  config.machine.cpu_cores = 1;
  config.use_history_models = false;
  rt::Engine engine(config);

  rt::Codelet codelet = make_add_one({rt::Arch::kCuda});
  std::vector<float> data(128, 0.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * sizeof(float),
                                       sizeof(float));
  // Chain two tasks pinned to different GPU workers: the second must see
  // the first's result via a device->host->device migration.
  rt::WorkerId gpu0 = -1, gpu1 = -1;
  for (const auto& desc : engine.workers()) {
    if (desc.node == 1) gpu0 = desc.id;
    if (desc.node == 2) gpu1 = desc.id;
  }
  ASSERT_GE(gpu0, 0);
  ASSERT_GE(gpu1, 0);
  for (rt::WorkerId target : {gpu0, gpu1}) {
    rt::TaskSpec spec;
    spec.codelet = &codelet;
    spec.operands = {{handle, rt::AccessMode::kReadWrite}};
    spec.forced_worker = target;
    engine.submit(std::move(spec));
  }
  engine.acquire_host(handle, rt::AccessMode::kRead);
  EXPECT_FLOAT_EQ(data[0], 2.0f);
}

// ---------------------------------------------------------------------------
// call-context selectability constraints
// ---------------------------------------------------------------------------

TEST(Selectability, VariantWithFailingPredicateIsSkipped) {
  rt::EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.machine.cpu_cores = 1;
  config.use_history_models = false;
  rt::Engine engine(config);

  // The "CUDA" variant only accepts operands of at least 1 KiB.
  rt::Codelet codelet("constrained");
  {
    rt::Implementation cpu;
    cpu.arch = rt::Arch::kCpu;
    cpu.name = "constrained_cpu";
    cpu.fn = [](rt::ExecContext&) {};
    codelet.add_impl(std::move(cpu));
    rt::Implementation cuda;
    cuda.arch = rt::Arch::kCuda;
    cuda.name = "constrained_cuda";
    cuda.fn = [](rt::ExecContext&) {};
    cuda.selectable = [](const std::vector<std::size_t>& bytes, const void*) {
      return bytes.at(0) >= 1024;
    };
    codelet.add_impl(std::move(cuda));
  }

  std::vector<float> small(16, 0.0f), large(1024, 0.0f);
  auto h_small = engine.register_buffer(small.data(), small.size() * 4, 4);
  auto h_large = engine.register_buffer(large.data(), large.size() * 4, 4);

  // Forcing CUDA on the small operand: no selectable variant -> submit
  // throws (no worker can serve).
  {
    rt::TaskSpec spec;
    spec.codelet = &codelet;
    spec.operands = {{h_small, rt::AccessMode::kReadWrite}};
    spec.forced_arch = rt::Arch::kCuda;
    EXPECT_THROW(engine.submit(std::move(spec)), Error);
  }
  // Forcing CUDA on the large operand works.
  {
    rt::TaskSpec spec;
    spec.codelet = &codelet;
    spec.operands = {{h_large, rt::AccessMode::kReadWrite}};
    spec.forced_arch = rt::Arch::kCuda;
    spec.synchronous = true;
    rt::TaskPtr task = engine.submit(std::move(spec));
    EXPECT_EQ(task->executed_impl, "constrained_cuda");
  }
  // Unforced on the small operand: the scheduler falls back to the CPU.
  {
    rt::TaskSpec spec;
    spec.codelet = &codelet;
    spec.operands = {{h_small, rt::AccessMode::kReadWrite}};
    spec.synchronous = true;
    rt::TaskPtr task = engine.submit(std::move(spec));
    EXPECT_EQ(task->executed_impl, "constrained_cpu");
  }
}

// ---------------------------------------------------------------------------
// resource-requirement narrowing
// ---------------------------------------------------------------------------

TEST(ResourceNarrowing, VariantExceedingDeviceMemoryIsDisabled) {
  desc::Repository repo;
  repo.load_text(R"(<peppher-interface name="big">
      <function returnType="void">
        <param name="v" type="float*" accessMode="readwrite" size="n"/>
        <param name="n" type="int" accessMode="read"/>
      </function></peppher-interface>)");
  repo.load_text(R"(<peppher-implementation name="big_cuda" interface="big">
      <platform language="cuda"/>
      <resources minMemoryMB="8192" maxMemoryMB="16384"/>
    </peppher-implementation>)");
  repo.load_text(R"(<peppher-implementation name="big_cpu" interface="big">
      <platform language="cpu"/>
      <resources minMemoryMB="8192" maxMemoryMB="16384"/>
    </peppher-implementation>)");
  repo.load_text(R"(<peppher-main name="app"><uses interface="big"/></peppher-main>)");

  // The C2050 has 3 GB: the CUDA variant (needs 8 GB) must be narrowed
  // away; the CPU variant (24 GB host RAM) survives.
  compose::ComponentTree tree = compose::build_tree(repo, compose::Recipe{});
  const auto report = compose::apply_static_narrowing(tree);
  ASSERT_EQ(tree.components[0].enabled_variants().size(), 1u);
  EXPECT_EQ(tree.components[0].enabled_variants()[0]->descriptor.name,
            "big_cpu");
  ASSERT_EQ(report.size(), 1u);
  EXPECT_NE(report[0].find("requires"), std::string::npos);
}

}  // namespace
}  // namespace peppher
