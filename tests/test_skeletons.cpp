// Adaptive algorithm-library tests: the five skeletons against their
// standard-library equivalents, on forced architectures and under dynamic
// selection, including the asynchronous chaining behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/peppher.hpp"
#include "lib/skeletons.hpp"
#include "support/rng.hpp"

namespace peppher::lib {
namespace {

float plus(float a, float b) { return a + b; }
float times(float a, float b) { return a * b; }
float fmax_fn(float a, float b) { return a < b ? b : a; }
float axpb(float x, float c) { return 2.0f * x + c; }
float square(float x, float) { return x * x; }

class SkeletonTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    if (!core::initialized()) {
      rt::EngineConfig config;
      config.machine = sim::MachineConfig::platform_c2050();
      config.machine.cpu_cores = 2;
      config.use_history_models = false;
      core::initialize(config);
    }
    register_components();
  }

  static cont::Vector<float> random_vector(std::size_t n, std::uint64_t seed) {
    cont::Vector<float> v(&core::engine(), n);
    Rng rng(seed);
    auto view = v.write_access();
    for (float& value : view) value = static_cast<float>(rng.uniform(-8.0, 8.0));
    return v;
  }
};

TEST_F(SkeletonTest, MapAppliesElementwise) {
  auto x = random_vector(999, 3);
  cont::Vector<float> y(&core::engine(), 999);
  map(x, y, &axpb, 5.0f);
  auto xs = x.read_access();
  auto ys = y.read_access();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ASSERT_FLOAT_EQ(ys[i], 2.0f * xs[i] + 5.0f);
  }
}

TEST_F(SkeletonTest, ZipCombinesTwoVectors) {
  auto x = random_vector(512, 5);
  auto y = random_vector(512, 6);
  cont::Vector<float> z(&core::engine(), 512);
  zip(x, y, z, &times);
  auto xs = x.read_access();
  auto ys = y.read_access();
  auto zs = z.read_access();
  for (std::size_t i = 0; i < zs.size(); ++i) {
    ASSERT_FLOAT_EQ(zs[i], xs[i] * ys[i]);
  }
}

TEST_F(SkeletonTest, ReduceSumAndMax) {
  auto x = random_vector(4096, 7);
  cont::Scalar<float> total(&core::engine());
  reduce(x, total, &plus, 0.0f);
  auto xs = x.read_access();
  const double expected = std::accumulate(xs.begin(), xs.end(), 0.0);
  EXPECT_NEAR(total.get(), expected, 1e-2);

  cont::Scalar<float> biggest(&core::engine());
  reduce(x, biggest, &fmax_fn, -1e30f);
  EXPECT_FLOAT_EQ(biggest.get(), *std::max_element(xs.begin(), xs.end()));
}

TEST_F(SkeletonTest, ScanInclusivePrefix) {
  auto x = random_vector(257, 9);
  cont::Vector<float> y(&core::engine(), 257);
  scan(x, y, &plus);
  auto xs = x.read_access();
  auto ys = y.read_access();
  float acc = 0.0f;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    acc += xs[i];
    ASSERT_NEAR(ys[i], acc, 1e-2);
  }
}

TEST_F(SkeletonTest, SortOrdersAscending) {
  auto x = random_vector(10'000, 11);
  sort(x);
  auto view = x.read_access();
  EXPECT_TRUE(std::is_sorted(view.begin(), view.end()));
}

TEST_F(SkeletonTest, SortOnEveryVariant) {
  for (rt::Arch arch : {rt::Arch::kCpu, rt::Arch::kCpuOmp, rt::Arch::kCuda}) {
    auto x = random_vector(5'000, 13 + static_cast<std::uint64_t>(arch));
    register_components();
    core::CallOptions options;
    options.forced_arch = arch;
    core::invoke("skel_sort", {{x.handle(), rt::AccessMode::kReadWrite}},
                 nullptr, options);
    auto view = x.read_access();
    EXPECT_TRUE(std::is_sorted(view.begin(), view.end()))
        << rt::to_string(arch);
  }
}

TEST_F(SkeletonTest, ChainedSkeletonsComputeDotProduct) {
  // dot(x, y) = reduce(zip(x, y, *), +) — all calls asynchronous; the
  // scalar read at the end synchronises the whole chain.
  auto x = random_vector(2048, 17);
  auto y = random_vector(2048, 19);
  cont::Vector<float> products(&core::engine(), 2048);
  cont::Scalar<float> dot(&core::engine());
  zip(x, y, products, &times);
  reduce(products, dot, &plus, 0.0f);

  auto xs = x.read_access();
  auto ys = y.read_access();
  double expected = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    expected += static_cast<double>(xs[i]) * ys[i];
  }
  EXPECT_NEAR(dot.get(), expected, std::fabs(expected) * 1e-4 + 1e-2);
}

TEST_F(SkeletonTest, MapSquareThenScanMatchesManual) {
  auto x = random_vector(300, 23);
  cont::Vector<float> squares(&core::engine(), 300);
  cont::Vector<float> prefix(&core::engine(), 300);
  map(x, squares, &square);
  scan(squares, prefix, &plus);
  auto xs = x.read_access();
  auto ps = prefix.read_access();
  float acc = 0.0f;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    acc += xs[i] * xs[i];
    ASSERT_NEAR(ps[i], acc, acc * 1e-4 + 1e-2);
  }
}

TEST_F(SkeletonTest, SizeMismatchThrows) {
  auto x = random_vector(16, 29);
  cont::Vector<float> y(&core::engine(), 8);
  EXPECT_THROW(map(x, y, &axpb), Error);
  EXPECT_THROW(scan(x, y, &plus), Error);
  cont::Vector<float> z(&core::engine(), 16);
  EXPECT_THROW(zip(x, y, z, &plus), Error);
  EXPECT_THROW(map(x, z, nullptr), Error);
}

}  // namespace
}  // namespace peppher::lib
