// Composition-tool IR tests: tree building, bottom-up exploration,
// machine-based filtering, user-guided static narrowing and generic
// component expansion.
#include <gtest/gtest.h>

#include "compose/expand.hpp"
#include "compose/ir.hpp"
#include "support/error.hpp"

namespace peppher::compose {
namespace {

desc::Repository make_repo() {
  desc::Repository repo;
  repo.load_text(R"(<peppher-interface name="spmv">
      <function returnType="void">
        <param name="y" type="float*" accessMode="write" size="n"/>
        <param name="n" type="int" accessMode="read"/>
      </function>
    </peppher-interface>)");
  repo.load_text(R"(<peppher-implementation name="spmv_cpu" interface="spmv">
      <platform language="cpu"/></peppher-implementation>)");
  repo.load_text(R"(<peppher-implementation name="spmv_omp" interface="spmv">
      <platform language="openmp"/></peppher-implementation>)");
  repo.load_text(R"(<peppher-implementation name="spmv_cusp" interface="spmv">
      <platform language="cuda"/></peppher-implementation>)");
  repo.load_text(R"(<peppher-implementation name="spmv_ocl" interface="spmv">
      <platform language="opencl"/></peppher-implementation>)");
  repo.load_text(R"(<peppher-main name="app" source="main.cpp">
      <uses interface="spmv"/>
    </peppher-main>)");
  return repo;
}

TEST(ComposeIr, BuildsTreeFromMainUses) {
  const desc::Repository repo = make_repo();
  const ComponentTree tree = build_tree(repo, Recipe{});
  ASSERT_EQ(tree.components.size(), 1u);
  EXPECT_EQ(tree.components[0].interface.name, "spmv");
  EXPECT_EQ(tree.components[0].variants.size(), 4u);
  EXPECT_EQ(tree.main.name, "app");
}

TEST(ComposeIr, MachineFiltersUnavailableArchitectures) {
  const desc::Repository repo = make_repo();
  const ComponentTree tree = build_tree(repo, Recipe{});  // c2050: no OpenCL
  const ComponentNode& node = tree.components[0];
  EXPECT_EQ(node.enabled_variants().size(), 3u);
  for (const VariantNode& v : node.variants) {
    if (v.descriptor.name == "spmv_ocl") {
      EXPECT_FALSE(v.enabled);
      EXPECT_NE(v.disabled_reason.find("not present"), std::string::npos);
    }
  }
}

TEST(ComposeIr, CpuOnlyMachineDisablesCuda) {
  const desc::Repository repo = make_repo();
  Recipe recipe;
  recipe.machine = sim::MachineConfig::cpu_only();
  const ComponentTree tree = build_tree(repo, recipe);
  const auto enabled = tree.components[0].enabled_variants();
  ASSERT_EQ(enabled.size(), 2u);  // cpu + openmp
  for (const VariantNode* v : enabled) {
    EXPECT_TRUE(v->arch() == rt::Arch::kCpu || v->arch() == rt::Arch::kCpuOmp);
  }
}

TEST(ComposeIr, MissingMainThrows) {
  desc::Repository repo;
  EXPECT_THROW(build_tree(repo, Recipe{}), Error);
}

TEST(ComposeIr, UnknownUsedInterfaceThrows) {
  desc::Repository repo;
  repo.load_text(R"(<peppher-main name="app">
      <uses interface="ghost"/></peppher-main>)");
  EXPECT_THROW(build_tree(repo, Recipe{}), Error);
}

TEST(ComposeIr, RequiredInterfacesArePulledInBottomUp) {
  desc::Repository repo = make_repo();
  repo.load_text(R"(<peppher-interface name="reduce">
      <function returnType="void"/></peppher-interface>)");
  repo.load_text(R"(<peppher-implementation name="reduce_cpu" interface="reduce">
      <platform language="cpu"/></peppher-implementation>)");
  repo.load_text(R"(<peppher-implementation name="spmv_fancy" interface="spmv">
      <platform language="cpu"/>
      <requires><interface name="reduce"/></requires>
    </peppher-implementation>)");
  const ComponentTree tree = build_tree(repo, Recipe{});
  ASSERT_EQ(tree.components.size(), 2u);
  EXPECT_EQ(tree.components[0].interface.name, "reduce");  // requirement first
  EXPECT_EQ(tree.components[1].interface.name, "spmv");
}

TEST(ComposeIr, MainDescriptorSwitchesMergeIntoRecipe) {
  desc::Repository repo = make_repo();
  repo.load_text(R"(<peppher-main name="app">
      <uses interface="spmv"/>
      <composition useHistoryModels="false" scheduler="eager">
        <disableImpls name="spmv_cpu"/>
      </composition>
    </peppher-main>)");
  const ComponentTree tree = build_tree(repo, Recipe{});
  EXPECT_EQ(tree.recipe.use_history_models, false);
  EXPECT_EQ(tree.recipe.scheduler.value(), "eager");
  ASSERT_EQ(tree.recipe.disable_impls.size(), 1u);
  EXPECT_EQ(tree.recipe.disable_impls[0], "spmv_cpu");
}

TEST(ComposeIr, RecipeOverridesMainDescriptor) {
  desc::Repository repo = make_repo();
  repo.load_text(R"(<peppher-main name="app">
      <uses interface="spmv"/>
      <composition useHistoryModels="false" scheduler="eager"/>
    </peppher-main>)");
  Recipe recipe;
  recipe.use_history_models = true;
  recipe.scheduler = "dmda";
  const ComponentTree tree = build_tree(repo, recipe);
  EXPECT_EQ(tree.recipe.use_history_models, true);
  EXPECT_EQ(tree.recipe.scheduler.value(), "dmda");
}

// -- static narrowing ------------------------------------------------------------

TEST(StaticNarrowing, DisableImplsByName) {
  const desc::Repository repo = make_repo();
  Recipe recipe;
  recipe.disable_impls = {"spmv_cpu"};
  ComponentTree tree = build_tree(repo, recipe);
  const auto report = apply_static_narrowing(tree);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(tree.components[0].enabled_variants().size(), 2u);
}

TEST(StaticNarrowing, DisableImplsByArchitecture) {
  const desc::Repository repo = make_repo();
  Recipe recipe;
  recipe.disable_impls = {"cuda"};
  ComponentTree tree = build_tree(repo, recipe);
  apply_static_narrowing(tree);
  for (const VariantNode* v : tree.components[0].enabled_variants()) {
    EXPECT_NE(v->arch(), rt::Arch::kCuda);
  }
}

TEST(StaticNarrowing, DisablingEverythingThrows) {
  const desc::Repository repo = make_repo();
  Recipe recipe;
  recipe.disable_impls = {"cpu", "openmp", "cuda", "opencl"};
  ComponentTree tree = build_tree(repo, recipe);
  EXPECT_THROW(apply_static_narrowing(tree), Error);
}

TEST(StaticNarrowing, ImpossibleConstraintDisablesVariant) {
  desc::Repository repo = make_repo();
  repo.load_text(R"(<peppher-implementation name="spmv_never" interface="spmv">
      <platform language="cpu"/>
      <constraints><constraint param="n" min="10" max="5"/></constraints>
    </peppher-implementation>)");
  ComponentTree tree = build_tree(repo, Recipe{});
  apply_static_narrowing(tree);
  for (const VariantNode& v : tree.components[0].variants) {
    if (v.descriptor.name == "spmv_never") {
      EXPECT_FALSE(v.enabled);
    }
  }
}

TEST(ComposeIr, DescribePrintsTreeAndDisablement) {
  const desc::Repository repo = make_repo();
  Recipe recipe;
  recipe.disable_impls = {"spmv_cpu"};
  ComponentTree tree = build_tree(repo, recipe);
  apply_static_narrowing(tree);
  const std::string text = describe(tree);
  EXPECT_NE(text.find("component tree for application 'app'"), std::string::npos);
  EXPECT_NE(text.find("void spmv("), std::string::npos);
  EXPECT_NE(text.find("[ ] spmv_cpu"), std::string::npos);
  EXPECT_NE(text.find("[x] spmv_omp"), std::string::npos);
  EXPECT_NE(text.find("not present on target machine"), std::string::npos);
}

TEST(ComposeIr, LibraryModeComposesWithoutMainModule) {
  desc::Repository repo = make_repo();
  const ComponentTree tree =
      build_tree_for_interfaces(repo, {"spmv"}, Recipe{});
  ASSERT_EQ(tree.components.size(), 1u);
  EXPECT_EQ(tree.main.name, "library");
  // And it is code-generatable like any application tree.
  // (The spmv interface here has a size attribute on its operand.)
}

// -- generic expansion -------------------------------------------------------------

desc::Repository make_generic_repo() {
  desc::Repository repo;
  repo.load_text(R"(<peppher-interface name="sort">
      <function returnType="void">
        <param name="data" type="Vector&lt;T&gt;&amp;" accessMode="readwrite"/>
        <param name="n" type="T" accessMode="read"/>
      </function>
      <templateParam name="T"/>
    </peppher-interface>)");
  repo.load_text(R"(<peppher-implementation name="sort_cpu" interface="sort">
      <platform language="cpu"/></peppher-implementation>)");
  repo.load_text(R"(<peppher-main name="app">
      <uses interface="sort"/></peppher-main>)");
  return repo;
}

TEST(Expansion, InstantiatesOneComponentPerBinding) {
  const desc::Repository repo = make_generic_repo();
  Recipe recipe;
  recipe.bindings = {{"T", {"float", "double"}}};
  ComponentTree tree = build_tree(repo, recipe);
  const auto report = expand_generics(tree);
  ASSERT_EQ(tree.components.size(), 2u);
  EXPECT_EQ(tree.components[0].interface.name, "sort_float");
  EXPECT_EQ(tree.components[1].interface.name, "sort_double");
  EXPECT_EQ(tree.components[0].interface.params[0].type, "Vector<float>&");
  EXPECT_EQ(tree.components[0].interface.params[1].type, "float");
  EXPECT_FALSE(tree.components[0].interface.is_generic());
  EXPECT_EQ(tree.components[0].variants[0].descriptor.name, "sort_cpu_float");
  EXPECT_EQ(tree.components[0].expanded_from, "sort");
  EXPECT_EQ(report.size(), 2u);
}

TEST(Expansion, UnboundGenericIsRemovedWithReport) {
  const desc::Repository repo = make_generic_repo();
  ComponentTree tree = build_tree(repo, Recipe{});
  const auto report = expand_generics(tree);
  EXPECT_TRUE(tree.components.empty());
  ASSERT_EQ(report.size(), 1u);
  EXPECT_NE(report[0].find("no type binding"), std::string::npos);
}

TEST(Expansion, NonGenericComponentsPassThrough) {
  const desc::Repository repo = make_repo();
  ComponentTree tree = build_tree(repo, Recipe{});
  expand_generics(tree);
  ASSERT_EQ(tree.components.size(), 1u);
  EXPECT_EQ(tree.components[0].interface.name, "spmv");
}

TEST(Expansion, MangleType) {
  EXPECT_EQ(mangle_type("float"), "float");
  EXPECT_EQ(mangle_type("unsigned long"), "unsigned_long");
  EXPECT_EQ(mangle_type("std::pair<int, int>"), "std_pair_int_int");
}

TEST(Expansion, SubstituteTypeIsWordAware) {
  const Binding binding = {{"T", "float"}};
  EXPECT_EQ(substitute_type("Vector<T>&", binding), "Vector<float>&");
  EXPECT_EQ(substitute_type("T*", binding), "float*");
  // 'T' inside identifiers must not be replaced.
  EXPECT_EQ(substitute_type("MyType<T>", binding), "MyType<float>");
  EXPECT_EQ(substitute_type("TT", binding), "TT");
}

// -- tunable expansion (the paper's §IV-B future-work feature) -----------------

TEST(TunableExpansion, OneVariantPerValueCombination) {
  desc::Repository repo = make_repo();
  repo.load_text(R"(<peppher-implementation name="spmv_tiled" interface="spmv">
      <platform language="cuda"/>
      <compilation command="nvcc" options="-O3"/>
      <tunables>
        <tunable name="block_size" values="64,128" default="128"/>
        <tunable name="unroll" values="1,4"/>
      </tunables>
    </peppher-implementation>)");
  ComponentTree tree = build_tree(repo, Recipe{});
  const auto report = expand_tunables(tree);
  EXPECT_EQ(report.size(), 4u);  // 2 x 2 combinations

  std::vector<std::string> names;
  for (const VariantNode& v : tree.components[0].variants) {
    names.push_back(v.descriptor.name);
  }
  EXPECT_NE(std::find(names.begin(), names.end(),
                      "spmv_tiled__block_size_64__unroll_1"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(),
                      "spmv_tiled__block_size_128__unroll_4"),
            names.end());
  // Untuned variants pass through unchanged.
  EXPECT_NE(std::find(names.begin(), names.end(), "spmv_cpu"), names.end());
  // The original multi-valued variant is gone.
  EXPECT_EQ(std::find(names.begin(), names.end(), "spmv_tiled"), names.end());
}

TEST(TunableExpansion, InstancesGetBindingDefines) {
  desc::Repository repo = make_repo();
  repo.load_text(R"(<peppher-implementation name="spmv_tiled" interface="spmv">
      <platform language="cuda"/>
      <compilation command="nvcc" options="-O3"/>
      <tunables><tunable name="block_size" values="64,128"/></tunables>
    </peppher-implementation>)");
  ComponentTree tree = build_tree(repo, Recipe{});
  expand_tunables(tree);
  bool found = false;
  for (const VariantNode& v : tree.components[0].variants) {
    if (v.descriptor.name == "spmv_tiled__block_size_64") {
      found = true;
      EXPECT_NE(v.descriptor.compile_options.find("-DBLOCK_SIZE=64"),
                std::string::npos);
      EXPECT_NE(v.descriptor.compile_options.find(
                    "-DPEPPHER_IMPL_NAME=spmv_tiled__block_size_64"),
                std::string::npos);
      EXPECT_TRUE(v.descriptor.tunables.empty());  // fully bound
    }
  }
  EXPECT_TRUE(found);
}

TEST(TunableExpansion, NoTunablesIsIdentity) {
  const desc::Repository repo = make_repo();
  ComponentTree tree = build_tree(repo, Recipe{});
  const std::size_t before = tree.components[0].variants.size();
  EXPECT_TRUE(expand_tunables(tree).empty());
  EXPECT_EQ(tree.components[0].variants.size(), before);
}

TEST(Expansion, MultiParameterCartesianProduct) {
  desc::Repository repo;
  repo.load_text(R"(<peppher-interface name="conv">
      <function returnType="void">
        <param name="a" type="A*" accessMode="read" size="1"/>
        <param name="b" type="B*" accessMode="write" size="1"/>
      </function>
      <templateParam name="A"/>
      <templateParam name="B"/>
    </peppher-interface>)");
  repo.load_text(R"(<peppher-implementation name="conv_cpu" interface="conv">
      <platform language="cpu"/></peppher-implementation>)");
  repo.load_text(R"(<peppher-main name="app"><uses interface="conv"/></peppher-main>)");
  Recipe recipe;
  recipe.bindings = {{"A", {"float", "double"}}, {"B", {"int"}}};
  ComponentTree tree = build_tree(repo, recipe);
  expand_generics(tree);
  ASSERT_EQ(tree.components.size(), 2u);
  EXPECT_EQ(tree.components[0].interface.name, "conv_float_int");
  EXPECT_EQ(tree.components[1].interface.name, "conv_double_int");
  EXPECT_EQ(tree.components[1].interface.params[0].type, "double*");
}

}  // namespace
}  // namespace peppher::compose
