// Tests of the full-runtime tracing path and the peppher-perf analyses:
//
//  - a golden chrome://tracing export pinned byte-for-byte (like the SARIF
//    golden), so format drift is a visible diff;
//  - a differential harness: for every scheduler, totals derived purely
//    from the trace must EXACTLY equal the engine's own counters
//    (WorkerStats, TransferStats, PrefetchStats, FaultStats) — the trace
//    is a second bookkeeping system and the two must never diverge;
//  - round-trip of the machine-readable schema through the src/perf
//    parser;
//  - the PF0xx analyses, both end-to-end (a deliberately mis-sized
//    machine must yield a device-imbalance diagnosis naming the hot
//    program point) and unit-level on hand-built traces.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "apps/ode.hpp"
#include "perf/analyze.hpp"
#include "perf/trace.hpp"
#include "runtime/engine.hpp"
#include "sim/device.hpp"
#include "sim/topology.hpp"
#include "support/error.hpp"
#include "support/fs.hpp"

namespace peppher {
namespace {

using rt::AccessMode;
using rt::Arch;
using rt::Codelet;
using rt::DataHandlePtr;
using rt::Engine;
using rt::EngineConfig;
using rt::TaskSpec;
using rt::WorkerId;

Codelet make_chain_codelet() {
  Codelet codelet("chain_add");
  const auto body = [](rt::ExecContext& ctx) {
    auto* data = ctx.buffer_as<float>(0);
    for (std::size_t i = 0; i < ctx.elements(0); ++i) data[i] += 1.0f;
  };
  const auto cost = [](const std::vector<std::size_t>&, const void*) {
    return sim::KernelCost{5e7, 1e5, 1.0};
  };
  codelet.add_impl({Arch::kCpu, "chain_cpu", body, cost});
  codelet.add_impl({Arch::kCpuOmp, "chain_omp", body, cost});
  codelet.add_impl({Arch::kCuda, "chain_cuda", body, cost});
  return codelet;
}

/// Submits `chains` x `length` dependent RW chains (the chaos-test shape:
/// dependencies within a chain, parallelism across chains).
void run_chains(Engine& engine, Codelet& codelet, int chains, int length) {
  std::vector<std::vector<float>> buffers(chains, std::vector<float>(64, 0.f));
  std::vector<DataHandlePtr> handles;
  for (auto& buffer : buffers) {
    handles.push_back(engine.register_buffer(
        buffer.data(), buffer.size() * sizeof(float), sizeof(float)));
  }
  for (int step = 0; step < length; ++step) {
    for (int chain = 0; chain < chains; ++chain) {
      TaskSpec spec;
      spec.codelet = &codelet;
      spec.operands = {{handles[chain], AccessMode::kReadWrite}};
      spec.name = "c" + std::to_string(chain) + "s" + std::to_string(step);
      engine.submit(std::move(spec));
    }
  }
  engine.wait_for_all();
  engine.drain_prefetches();
}

// ---------------------------------------------------------------------------
// Golden chrome://tracing export
// ---------------------------------------------------------------------------
//
// A single-eligible-worker configuration (forced CUDA, no prefetcher, no
// history models) makes the whole run — placements, virtual times, lane
// sequences — a pure function of the inputs, so the export is pinned
// byte-for-byte. Regenerate with PEPPHER_REGENERATE_GOLDEN=1 after an
// intentional format change.
TEST(TraceGolden, ChromeExportIsPinned) {
  EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.scheduler = "eager";
  config.enable_trace = true;
  config.enable_prefetch = false;
  config.use_history_models = false;

  apps::ode::register_components();
  Engine engine(config);
  const apps::ode::Problem problem = apps::ode::make_problem(32, 3);
  apps::ode::run_tool(engine, problem, Arch::kCuda);

  const std::string json = engine.trace().to_chrome_json();
  const std::filesystem::path golden =
      std::filesystem::path(PEPPHER_SOURCE_ROOT) / "tests" / "golden" /
      "trace.json";
  if (std::getenv("PEPPHER_REGENERATE_GOLDEN") != nullptr) {
    fs::write_file(golden, json);
    SUCCEED() << "regenerated " << golden;
    return;
  }
  EXPECT_EQ(json, fs::read_file(golden))
      << "chrome trace export drifted; if intentional, regenerate with "
         "PEPPHER_REGENERATE_GOLDEN=1";
}

/// First accelerator worker on `sim_node` (kNoWorkerHint + failure if none).
WorkerId accelerator_on(const Engine& engine, int sim_node) {
  for (const rt::WorkerDesc& desc : engine.workers()) {
    if (desc.sim_node != sim_node || desc.archs.empty()) continue;
    if (desc.archs.front() == Arch::kCuda ||
        desc.archs.front() == Arch::kOpenCl) {
      return desc.id;
    }
  }
  ADD_FAILURE() << "no accelerator on sim node " << sim_node;
  return rt::kNoWorkerHint;
}

// A two-node cluster run, forced onto the remote accelerator so every
// placement and hop is deterministic. Inter-node hops must render as "n2n"
// rows while the single-host golden above keeps its historical d2h/h2d
// labels (from_node == to_node there).
TEST(TraceGolden, ClusterChromeExportIsPinned) {
  EngineConfig config;
  config.cluster =
      sim::ClusterConfig::uniform(2, sim::MachineConfig::platform_c2050());
  config.scheduler = "eager";
  config.enable_trace = true;
  config.enable_prefetch = false;
  config.use_history_models = false;
  Engine engine(config);

  Codelet codelet = make_chain_codelet();
  std::vector<float> data(64, 0.f);
  auto handle = engine.register_buffer(
      data.data(), data.size() * sizeof(float), sizeof(float));
  for (int step = 0; step < 3; ++step) {
    TaskSpec spec;
    spec.codelet = &codelet;
    spec.operands = {{handle, AccessMode::kReadWrite}};
    spec.name = "hop" + std::to_string(step);
    // Ping-pong between the two nodes' accelerators: each step crosses the
    // inter-node link.
    spec.forced_worker = accelerator_on(engine, step % 2);
    engine.submit(std::move(spec));
  }
  engine.wait_for_all();
  engine.acquire_host(handle, AccessMode::kRead);

  const std::string json = engine.trace().to_chrome_json();
  EXPECT_NE(json.find("\"n2n\""), std::string::npos);
  const std::filesystem::path golden =
      std::filesystem::path(PEPPHER_SOURCE_ROOT) / "tests" / "golden" /
      "trace_cluster.json";
  if (std::getenv("PEPPHER_REGENERATE_GOLDEN") != nullptr) {
    fs::write_file(golden, json);
    SUCCEED() << "regenerated " << golden;
    return;
  }
  EXPECT_EQ(json, fs::read_file(golden))
      << "cluster chrome trace export drifted; if intentional, regenerate "
         "with PEPPHER_REGENERATE_GOLDEN=1";
}

// ---------------------------------------------------------------------------
// Differential harness: trace totals == engine counters, exactly
// ---------------------------------------------------------------------------

class TraceDifferential : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllSchedulers, TraceDifferential,
                         ::testing::Values("eager", "random", "ws", "dmda"),
                         [](const auto& info) { return info.param; });

TEST_P(TraceDifferential, CountersMatchTraceExactly) {
  EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.machine.cpu_cores = 2;
  config.scheduler = GetParam();
  config.use_history_models = false;
  config.enable_trace = true;
  Engine engine(config);
  Codelet codelet = make_chain_codelet();
  run_chains(engine, codelet, /*chains=*/6, /*length=*/30);

  // Per-worker busy time: the worker accumulates exec_seconds in execution
  // order, and its records land in the trace in that same order, so the
  // re-summed doubles must be BITWISE equal — any tolerance would hide a
  // dropped or double-counted record.
  std::map<int, double> busy;
  std::map<int, std::uint64_t> executed;
  std::map<int, std::uint64_t> failed;
  for (const rt::TaskRecord& r : engine.trace().records()) {
    busy[r.worker] += r.exec_seconds;
    ++(r.failed ? failed : executed)[r.worker];
  }
  for (const rt::WorkerDesc& desc : engine.workers()) {
    const rt::WorkerStats stats = engine.worker_stats(desc.id);
    EXPECT_EQ(busy[desc.id], stats.busy_vtime) << "worker " << desc.id;
    EXPECT_EQ(executed[desc.id], stats.tasks_executed) << "worker " << desc.id;
    EXPECT_EQ(failed[desc.id], stats.failed_attempts) << "worker " << desc.id;
  }

  // Transfers: every DataManager hop emits exactly one record, so counts,
  // bytes and coalesced joins re-derived from the trace must equal
  // TransferStats to the last byte.
  rt::TransferStats observed;
  for (const rt::TransferRecord& t : engine.trace().transfers()) {
    if (t.from == rt::kHostNode) {
      ++observed.host_to_device_count;
      observed.host_to_device_bytes += t.bytes;
    } else {
      ++observed.device_to_host_count;
      observed.device_to_host_bytes += t.bytes;
    }
    if (t.coalesced) ++observed.coalesced_transfers;
  }
  const rt::TransferStats stats = engine.transfer_stats();
  EXPECT_EQ(observed.host_to_device_count, stats.host_to_device_count);
  EXPECT_EQ(observed.device_to_host_count, stats.device_to_host_count);
  EXPECT_EQ(observed.host_to_device_bytes, stats.host_to_device_bytes);
  EXPECT_EQ(observed.device_to_host_bytes, stats.device_to_host_bytes);
  EXPECT_EQ(observed.coalesced_transfers, stats.coalesced_transfers);

  // Prefetch lifecycle: one enqueued record per queued operand, one
  // completed/skipped record per serviced request.
  std::uint64_t enqueued = 0;
  std::uint64_t completed = 0;
  std::uint64_t skipped = 0;
  for (const rt::PrefetchRecord& p : engine.trace().prefetches()) {
    switch (p.event) {
      case rt::PrefetchEvent::kEnqueued: ++enqueued; break;
      case rt::PrefetchEvent::kCompleted: ++completed; break;
      case rt::PrefetchEvent::kSkipped: ++skipped; break;
    }
  }
  const Engine::PrefetchStats prefetch = engine.prefetch_stats();
  EXPECT_EQ(enqueued, prefetch.enqueued);
  EXPECT_EQ(completed, prefetch.completed);
  EXPECT_EQ(skipped, prefetch.skipped);

  // Scheduler decisions: one record per hinted placement; the chosen
  // worker must exist and dmda's steady-state decisions carry estimates.
  for (const rt::DecisionRecord& d : engine.trace().decisions()) {
    ASSERT_GE(d.chosen, 0);
    ASSERT_LT(d.chosen, static_cast<int>(engine.workers().size()));
    if (GetParam() == "dmda" && !d.explored) {
      EXPECT_GE(d.chosen_estimate, 0.0);
    }
  }
  if (GetParam() != "eager") {  // central FIFO places nothing at push time
    EXPECT_FALSE(engine.trace().decisions().empty());
  }
}

TEST_P(TraceDifferential, FaultedCountersMatchTraceExactly) {
  sim::FaultPlan plan;
  plan.kernel_failure_rate = 0.25;
  plan.seed = 99;

  EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.machine.cpu_cores = 2;
  config.scheduler = GetParam();
  config.use_history_models = false;
  config.enable_trace = true;
  config.max_retries = 4;
  config.accelerator_faults = {plan};
  Engine engine(config);
  Codelet codelet = make_chain_codelet();
  run_chains(engine, codelet, /*chains=*/6, /*length=*/30);

  const rt::FaultStats faults = engine.fault_stats();
  std::uint64_t success_records = 0;
  std::uint64_t failed_records = 0;
  std::map<int, double> busy;
  for (const rt::TaskRecord& r : engine.trace().records()) {
    busy[r.worker] += r.exec_seconds;
    ++(r.failed ? failed_records : success_records);
  }
  EXPECT_EQ(success_records, 6u * 30u);
  EXPECT_EQ(failed_records, faults.failed_attempts);

  // Busy time stays exact under retries too: the failed attempt burned
  // the worker's virtual time and the trace must account for it.
  for (const rt::WorkerDesc& desc : engine.workers()) {
    EXPECT_EQ(busy[desc.id], engine.worker_stats(desc.id).busy_vtime)
        << "worker " << desc.id;
  }
}

// ---------------------------------------------------------------------------
// Machine-readable schema round trip
// ---------------------------------------------------------------------------

TEST(TraceSchema, RoundTripsThroughTheParser) {
  EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.machine.cpu_cores = 2;
  config.scheduler = "dmda";
  config.use_history_models = false;
  config.enable_trace = true;
  Engine engine(config);
  engine.trace_phase("build");
  Codelet codelet = make_chain_codelet();
  run_chains(engine, codelet, /*chains=*/4, /*length=*/10);
  engine.trace_phase("done");

  const perf::Trace trace = perf::parse_trace(engine.trace_json());
  EXPECT_EQ(trace.version, 1);
  EXPECT_EQ(trace.machine, config.machine.name);
  EXPECT_EQ(trace.scheduler, "dmda");
  EXPECT_EQ(trace.workers.size(), engine.workers().size());
  EXPECT_EQ(trace.tasks.size(), engine.trace().records().size());
  EXPECT_EQ(trace.transfers.size(), engine.trace().transfers().size());
  EXPECT_EQ(trace.prefetches.size(), engine.trace().prefetches().size());
  EXPECT_EQ(trace.decisions.size(), engine.trace().decisions().size());
  ASSERT_EQ(trace.phases.size(), 2u);
  EXPECT_EQ(trace.phases[0].label, "build");
  EXPECT_EQ(trace.phases[1].label, "done");
  EXPECT_EQ(trace.makespan, engine.virtual_makespan());

  // Doubles survive the round trip bit-for-bit (the writer emits 17
  // significant digits).
  ASSERT_FALSE(trace.tasks.empty());
  double trace_busy = 0.0;
  for (const perf::TraceTask& t : trace.tasks) trace_busy += t.exec;
  double engine_busy = 0.0;
  for (const rt::TaskRecord& r : engine.trace().records()) {
    engine_busy += r.exec_seconds;
  }
  EXPECT_DOUBLE_EQ(trace_busy, engine_busy);
}

// Schema v1 additive node fields: workers carry sim_node, transfers carry
// from_node/to_node, and they survive engine.trace_json() -> parse_trace.
TEST(TraceSchema, ClusterRunStampsNodeIds) {
  EngineConfig config;
  config.cluster =
      sim::ClusterConfig::uniform(2, sim::MachineConfig::platform_c2050());
  config.scheduler = "eager";
  config.use_history_models = false;
  config.enable_prefetch = false;
  config.enable_trace = true;
  Engine engine(config);

  Codelet codelet = make_chain_codelet();
  std::vector<float> data(64, 0.f);
  auto handle = engine.register_buffer(
      data.data(), data.size() * sizeof(float), sizeof(float));
  TaskSpec spec;
  spec.codelet = &codelet;
  spec.operands = {{handle, AccessMode::kReadWrite}};
  spec.forced_worker = accelerator_on(engine, 1);
  engine.submit(std::move(spec));
  engine.wait_for_all();
  engine.acquire_host(handle, AccessMode::kRead);

  const perf::Trace trace = perf::parse_trace(engine.trace_json());
  ASSERT_EQ(trace.workers.size(), engine.workers().size());
  bool saw_node1_worker = false;
  for (std::size_t i = 0; i < trace.workers.size(); ++i) {
    EXPECT_EQ(trace.workers[i].sim_node, engine.workers()[i].sim_node);
    if (trace.workers[i].sim_node == 1) saw_node1_worker = true;
  }
  EXPECT_TRUE(saw_node1_worker);

  int internode = 0;
  for (const perf::TraceTransfer& t : trace.transfers) {
    EXPECT_GE(t.from_node, 0);
    EXPECT_GE(t.to_node, 0);
    if (t.from_node != t.to_node) ++internode;
  }
  // One hop out (host0 -> host1) and one home (host1 -> host0).
  EXPECT_EQ(internode, 2);
  EXPECT_EQ(static_cast<std::uint64_t>(internode),
            engine.transfer_stats().internode_count);
}

TEST(TraceSchema, TracingDisabledRecordsNothing) {
  EngineConfig config;
  config.machine = sim::MachineConfig::cpu_only(2);
  Engine engine(config);
  engine.trace_phase("ignored");
  Codelet codelet = make_chain_codelet();
  run_chains(engine, codelet, /*chains=*/2, /*length=*/4);
  EXPECT_EQ(engine.trace().size(), 0u);
  EXPECT_TRUE(engine.trace().transfers().empty());
  EXPECT_TRUE(engine.trace().prefetches().empty());
  EXPECT_TRUE(engine.trace().decisions().empty());
  EXPECT_TRUE(engine.trace().phases().empty());
}

// ---------------------------------------------------------------------------
// End-to-end analysis: the ISSUE's acceptance scenario
// ---------------------------------------------------------------------------
//
// An 8-core host profile fed a serial ODE chain pinned to the CPU: seven
// cores can never get work. The analyzer must call out the imbalance and
// name the dominant program point (the O(n^2) right-hand side).
TEST(PerfAnalysis, MisSizedMachineReportsImbalanceAtTheHotPoint) {
  EngineConfig config;
  config.machine = sim::MachineConfig::cpu_only(8);
  config.scheduler = "dmda";
  config.use_history_models = false;
  config.enable_trace = true;

  apps::ode::register_components();
  Engine engine(config);
  const apps::ode::Problem problem = apps::ode::make_problem(64, 8);
  apps::ode::run_tool(engine, problem, Arch::kCpu);

  const perf::Trace trace = perf::parse_trace(engine.trace_json());
  const diag::DiagnosticBag bag = perf::analyze_trace(trace);
  const diag::Diagnostic* imbalance = nullptr;
  for (const diag::Diagnostic& d : bag.diagnostics()) {
    if (d.code == "PF001") imbalance = &d;
  }
  ASSERT_NE(imbalance, nullptr) << bag.format_text();
  EXPECT_EQ(imbalance->severity, diag::Severity::kWarning);
  EXPECT_NE(imbalance->message.find("ode_rhs"), std::string::npos)
      << imbalance->message;
}

// ---------------------------------------------------------------------------
// Unit-level analyses on hand-built traces
// ---------------------------------------------------------------------------

perf::Trace balanced_base() {
  perf::Trace trace;
  trace.version = 1;
  trace.machine = "unit";
  trace.scheduler = "dmda";
  trace.makespan = 1.0;
  trace.workers = {{0, "core", "cpu", 0, false},
                   {1, "core", "cpu", 0, false},
                   {2, "gpu", "cuda", 1, false}};
  return trace;
}

perf::TraceTask unit_task(std::uint64_t sequence, const std::string& name,
                          int worker, double start, double exec,
                          std::vector<std::uint64_t> data = {}) {
  perf::TraceTask t;
  t.sequence = sequence;
  t.name = name;
  t.impl = name + "_impl";
  t.arch = "cpu";
  t.worker = worker;
  t.vstart = start;
  t.vend = start + exec;
  t.exec = exec;
  t.data = std::move(data);
  return t;
}

TEST(PerfAnalysis, BalancedTraceIsClean) {
  perf::Trace trace = balanced_base();
  trace.tasks = {unit_task(0, "a", 0, 0.0, 0.5),
                 unit_task(1, "a", 1, 0.0, 0.5)};
  const diag::DiagnosticBag bag = perf::analyze_trace(trace);
  EXPECT_TRUE(bag.empty()) << bag.format_text();
}

TEST(PerfAnalysis, TransferBoundPhaseIsReported) {
  perf::Trace trace = balanced_base();
  trace.tasks = {unit_task(0, "a", 0, 0.0, 0.1),
                 unit_task(1, "a", 1, 0.0, 0.1)};
  perf::TraceTransfer move;
  move.lane = 0;
  move.order = 0;
  move.from = 0;
  move.to = 1;
  move.bytes = 1 << 20;
  move.vstart = 0.0;
  move.vend = 0.9;
  trace.transfers = {move};
  const diag::DiagnosticBag bag = perf::analyze_trace(trace);
  ASSERT_EQ(bag.diagnostics().size(), 1u) << bag.format_text();
  EXPECT_EQ(bag.diagnostics()[0].code, "PF002");
}

TEST(PerfAnalysis, PrefetchMissesAndStaleSkipsAreReported) {
  perf::Trace trace = balanced_base();
  trace.tasks = {unit_task(0, "a", 0, 0.0, 0.5),
                 unit_task(1, "a", 1, 0.0, 0.5)};
  for (int i = 0; i < 10; ++i) {
    perf::TracePrefetch enqueue;
    enqueue.event = "enqueued";
    enqueue.reason = "none";
    enqueue.task = static_cast<std::uint64_t>(i);
    trace.prefetches.push_back(enqueue);
    perf::TracePrefetch outcome;
    outcome.event = "skipped";
    outcome.reason = i == 0 ? "writer_race" : "transfer_failed";
    outcome.task = static_cast<std::uint64_t>(i);
    trace.prefetches.push_back(outcome);
  }
  const diag::DiagnosticBag bag = perf::analyze_trace(trace);
  bool saw_misses = false;
  bool saw_stale = false;
  for (const diag::Diagnostic& d : bag.diagnostics()) {
    if (d.code == "PF003") saw_misses = true;
    if (d.code == "PF004") saw_stale = true;
  }
  EXPECT_TRUE(saw_misses) << bag.format_text();
  EXPECT_TRUE(saw_stale) << bag.format_text();
}

TEST(PerfAnalysis, SystematicMispredictionsAreReported) {
  perf::Trace trace = balanced_base();
  for (int i = 0; i < 8; ++i) {
    trace.tasks.push_back(
        unit_task(static_cast<std::uint64_t>(i), "hot", i % 2, 0.1 * i, 0.1));
    perf::TraceDecision d;
    d.task = static_cast<std::uint64_t>(i);
    d.worker = i % 2;
    d.estimate = trace.tasks.back().vend * 4.0;  // 300% off, > 1ms absolute
    trace.decisions.push_back(d);
  }
  const diag::DiagnosticBag bag = perf::analyze_trace(trace);
  bool saw = false;
  for (const diag::Diagnostic& d : bag.diagnostics()) {
    if (d.code == "PF005") {
      saw = true;
      EXPECT_NE(d.message.find("hot"), std::string::npos) << d.message;
    }
  }
  EXPECT_TRUE(saw) << bag.format_text();
}

TEST(PerfAnalysis, RuntimePingPongIsReported) {
  perf::Trace trace = balanced_base();
  for (int i = 0; i < 10; ++i) {
    // Datum 7 alternates between a host worker and the device worker.
    trace.tasks.push_back(unit_task(static_cast<std::uint64_t>(i),
                                    i % 2 == 0 ? "produce" : "consume",
                                    i % 2 == 0 ? 0 : 2, 0.05 * i, 0.05, {7}));
  }
  // Keep the CPU class balanced so only the ping-pong fires.
  trace.tasks.push_back(unit_task(100, "other", 1, 0.0, 0.25));
  const diag::DiagnosticBag bag = perf::analyze_trace(trace);
  bool saw = false;
  for (const diag::Diagnostic& d : bag.diagnostics()) {
    if (d.code == "PF006") {
      saw = true;
      EXPECT_NE(d.message.find("data 7"), std::string::npos) << d.message;
      EXPECT_NE(d.message.find("produce"), std::string::npos) << d.message;
    }
  }
  EXPECT_TRUE(saw) << bag.format_text();
}

// ---------------------------------------------------------------------------
// PF007: node-link-bound phases / lopsided halo exchange
// ---------------------------------------------------------------------------

/// Two one-device nodes: memory layout [host0, dev0, host1, dev1].
perf::Trace cluster_base() {
  perf::Trace trace = balanced_base();
  trace.machine = "2xunit";
  trace.workers = {{0, "core", "cpu", 0, 0, false},
                   {1, "gpu", "cuda", 1, 0, false},
                   {2, "core", "cpu", 2, 1, false},
                   {3, "gpu", "cuda", 3, 1, false}};
  return trace;
}

perf::TraceTransfer node_hop(int from_node, int to_node, std::uint64_t bytes,
                             double vstart, double vend) {
  perf::TraceTransfer t;
  t.lane = 0;
  t.order = 0;
  t.from = from_node == 0 ? 0 : 2;  // hosts move inter-node traffic
  t.to = to_node == 0 ? 0 : 2;
  t.from_node = from_node;
  t.to_node = to_node;
  t.bytes = bytes;
  t.vstart = vstart;
  t.vend = vend;
  return t;
}

std::vector<const diag::Diagnostic*> find_all(const diag::DiagnosticBag& bag,
                                              const std::string& code) {
  std::vector<const diag::Diagnostic*> out;
  for (const diag::Diagnostic& d : bag.diagnostics()) {
    if (d.code == code) out.push_back(&d);
  }
  return out;
}

TEST(PerfAnalysis, NodeLinkBoundPhaseIsReported) {
  perf::Trace trace = cluster_base();
  // 0.8 s of balanced compute vs 0.6 s of inter-node lane busy (>= 50%),
  // spread over four hops — the halo exchange is clearly not hidden.
  trace.tasks = {unit_task(0, "jacobi", 0, 0.0, 0.4),
                 unit_task(1, "jacobi", 2, 0.0, 0.4)};
  trace.transfers = {node_hop(0, 1, 4096, 0.00, 0.15),
                     node_hop(0, 1, 4096, 0.20, 0.35),
                     node_hop(0, 1, 4096, 0.40, 0.55),
                     node_hop(0, 1, 4096, 0.60, 0.75)};
  const diag::DiagnosticBag bag = perf::analyze_trace(trace);
  const auto hits = find_all(bag, "PF007");
  // Only the phase signal fires: a single directed pair has no imbalance.
  ASSERT_EQ(hits.size(), 1u) << bag.format_text();
  EXPECT_EQ(hits[0]->severity, diag::Severity::kWarning);
  EXPECT_NE(hits[0]->message.find("node-link-bound"), std::string::npos)
      << hits[0]->message;
  EXPECT_NE(hits[0]->message.find("4 hops"), std::string::npos)
      << hits[0]->message;
}

TEST(PerfAnalysis, LopsidedHaloExchangeIsReported) {
  perf::Trace trace = cluster_base();
  trace.tasks = {unit_task(0, "jacobi", 0, 0.0, 0.5),
                 unit_task(1, "jacobi", 2, 0.0, 0.5)};
  // Instantaneous hops keep the lanes idle (no phase signal), but link
  // 0->1 moves 3 MiB while 1->0 moves 4 KiB: the partitioning is lopsided.
  trace.transfers = {node_hop(0, 1, 1 << 20, 0.1, 0.1),
                     node_hop(0, 1, 1 << 20, 0.2, 0.2),
                     node_hop(0, 1, 1 << 20, 0.3, 0.3),
                     node_hop(1, 0, 4096, 0.4, 0.4)};
  const diag::DiagnosticBag bag = perf::analyze_trace(trace);
  const auto hits = find_all(bag, "PF007");
  ASSERT_EQ(hits.size(), 1u) << bag.format_text();
  EXPECT_NE(hits[0]->message.find("lopsided halo exchange"), std::string::npos)
      << hits[0]->message;
  EXPECT_NE(hits[0]->message.find("0->1"), std::string::npos)
      << hits[0]->message;
  EXPECT_NE(hits[0]->message.find("4096"), std::string::npos)
      << hits[0]->message;
}

TEST(PerfAnalysis, BalancedExchangeStaysQuiet) {
  perf::Trace trace = cluster_base();
  trace.tasks = {unit_task(0, "jacobi", 0, 0.0, 0.5),
                 unit_task(1, "jacobi", 2, 0.0, 0.5)};
  // Symmetric volumes and lanes busy well under half the compute: hidden.
  trace.transfers = {node_hop(0, 1, 4096, 0.00, 0.02),
                     node_hop(1, 0, 4096, 0.10, 0.12),
                     node_hop(0, 1, 4096, 0.20, 0.22),
                     node_hop(1, 0, 4096, 0.30, 0.32)};
  const diag::DiagnosticBag bag = perf::analyze_trace(trace);
  EXPECT_TRUE(find_all(bag, "PF007").empty()) << bag.format_text();
}

TEST(PerfAnalysis, SingleHostTracesNeverFireNodeLink) {
  perf::Trace trace = balanced_base();
  trace.tasks = {unit_task(0, "a", 0, 0.0, 0.1),
                 unit_task(1, "a", 1, 0.0, 0.1)};
  // Saturated PCIe lanes on one host (from_node == to_node == 0): PF002
  // territory, never PF007.
  for (int i = 0; i < 6; ++i) {
    perf::TraceTransfer move;
    move.lane = 0;
    move.order = i;
    move.from = 0;
    move.to = 1;
    move.bytes = 1 << 20;
    move.vstart = 0.15 * i;
    move.vend = 0.15 * i + 0.14;
    trace.transfers.push_back(move);
  }
  const diag::DiagnosticBag bag = perf::analyze_trace(trace);
  EXPECT_TRUE(find_all(bag, "PF007").empty()) << bag.format_text();
}

}  // namespace
}  // namespace peppher
