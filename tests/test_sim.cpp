// Device-simulation tests: roofline model behaviour, device profiles and
// the properties the evaluation depends on (C2050 vs C1060 irregularity
// behaviour, PCIe costs).
#include <gtest/gtest.h>

#include "sim/device.hpp"
#include "support/error.hpp"

namespace peppher::sim {
namespace {

TEST(Roofline, LaunchOverheadDominatesTinyKernels) {
  const DeviceProfile gpu = DeviceProfile::tesla_c2050();
  const double t = execution_seconds(gpu, {100.0, 100.0, 1.0});
  EXPECT_NEAR(t, gpu.launch_overhead_us * 1e-6, 1e-7);
}

TEST(Roofline, ComputeBoundScalesWithFlops) {
  const DeviceProfile gpu = DeviceProfile::tesla_c2050();
  const KernelCost small{1e9, 1e3, 1.0};
  const KernelCost big{4e9, 1e3, 1.0};
  const double overhead = gpu.launch_overhead_us * 1e-6;
  EXPECT_NEAR((execution_seconds(gpu, big) - overhead) /
                  (execution_seconds(gpu, small) - overhead),
              4.0, 0.01);
}

TEST(Roofline, MemoryBoundScalesWithBytes) {
  const DeviceProfile cpu = DeviceProfile::xeon_e5520_core();
  const KernelCost small{10.0, 1e8, 1.0};
  const KernelCost big{10.0, 3e8, 1.0};
  const double overhead = cpu.launch_overhead_us * 1e-6;
  EXPECT_NEAR((execution_seconds(cpu, big) - overhead) /
                  (execution_seconds(cpu, small) - overhead),
              3.0, 0.01);
}

TEST(Roofline, IrregularityDegradesBandwidth) {
  const DeviceProfile gpu = DeviceProfile::tesla_c1060();
  const KernelCost streaming{1.0, 1e8, 1.0};
  const KernelCost irregular{1.0, 1e8, 0.0};
  EXPECT_GT(execution_seconds(gpu, irregular),
            5.0 * execution_seconds(gpu, streaming));
}

TEST(Roofline, RegularityIsClamped) {
  const DeviceProfile gpu = DeviceProfile::tesla_c2050();
  EXPECT_DOUBLE_EQ(execution_seconds(gpu, {1.0, 1e8, 2.0}),
                   execution_seconds(gpu, {1.0, 1e8, 1.0}));
  EXPECT_DOUBLE_EQ(execution_seconds(gpu, {1.0, 1e8, -1.0}),
                   execution_seconds(gpu, {1.0, 1e8, 0.0}));
}

TEST(Roofline, NegativeCostRejected) {
  const DeviceProfile cpu = DeviceProfile::xeon_e5520_core();
  EXPECT_THROW(execution_seconds(cpu, {-1.0, 0.0, 1.0}), Error);
}

// The Figure 6 platform-adaptation property: on irregular workloads the
// cache-less C1060 is slower than 4 CPU cores, while the cached C2050 wins.
TEST(Profiles, IrregularWorkloadFlipsWinnerBetweenPlatforms) {
  const KernelCost irregular{1e8, 2e8, 0.1};
  DeviceProfile cpu_combined = DeviceProfile::xeon_e5520_core();
  cpu_combined.peak_gflops *= 4 * 0.9;
  cpu_combined.mem_bandwidth_gbs *= 4;

  const double t_cpu = execution_seconds(cpu_combined, irregular);
  const double t_c2050 = execution_seconds(DeviceProfile::tesla_c2050(), irregular);
  const double t_c1060 = execution_seconds(DeviceProfile::tesla_c1060(), irregular);
  EXPECT_LT(t_c2050, t_cpu);  // cached GPU still wins
  EXPECT_GT(t_c1060, t_cpu);  // cache-less GPU loses
}

TEST(Profiles, RegularComputeHeavyWorkloadFavorsBothGpus) {
  const KernelCost gemm{2e9, 4e7, 1.0};
  DeviceProfile cpu_combined = DeviceProfile::xeon_e5520_core();
  cpu_combined.peak_gflops *= 4 * 0.9;
  cpu_combined.mem_bandwidth_gbs *= 4;
  const double t_cpu = execution_seconds(cpu_combined, gemm);
  EXPECT_LT(execution_seconds(DeviceProfile::tesla_c2050(), gemm), t_cpu);
  EXPECT_LT(execution_seconds(DeviceProfile::tesla_c1060(), gemm), t_cpu);
}

TEST(Link, TransferCombinesLatencyAndBandwidth) {
  const LinkProfile link = LinkProfile::pcie2_x16();
  EXPECT_NEAR(transfer_seconds(link, 0), 10e-6, 1e-9);
  // 8 GB over 8 GB/s = 1 s.
  EXPECT_NEAR(transfer_seconds(link, 8ull << 30), 1.0 + 10e-6, 0.08);
}

TEST(Machine, PresetsDescribeThePaperPlatforms) {
  const MachineConfig main_platform = MachineConfig::platform_c2050();
  EXPECT_EQ(main_platform.cpu_cores, 4);
  ASSERT_EQ(main_platform.accelerators.size(), 1u);
  EXPECT_EQ(main_platform.accelerators[0].name, "TeslaC2050");

  const MachineConfig second = MachineConfig::platform_c1060();
  EXPECT_EQ(second.accelerators[0].name, "TeslaC1060");

  const MachineConfig cpu = MachineConfig::cpu_only(8);
  EXPECT_EQ(cpu.cpu_cores, 8);
  EXPECT_TRUE(cpu.accelerators.empty());
}

TEST(DeviceClassNames, RoundTrip) {
  EXPECT_EQ(to_string(DeviceClass::kCpuCore), "cpu");
  EXPECT_EQ(to_string(DeviceClass::kCudaGpu), "cuda");
  EXPECT_EQ(to_string(DeviceClass::kOpenClGpu), "opencl");
}

}  // namespace
}  // namespace peppher::sim
