// Per-test-process unique temp directories. ctest registers every gtest
// case as its own test, so under `ctest -j` several processes of the same
// binary run concurrently — fixtures that share one fixed
// /tmp/peppher_*_test path race each other's SetUp/TearDown remove_all.
#pragma once

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>

namespace peppher::testing {

/// A fresh, empty directory under the system temp dir, unique to this
/// process (pid + call counter). The caller owns cleanup.
inline std::filesystem::path unique_temp_dir(const std::string& prefix) {
  static std::atomic<unsigned> counter{0};
  const auto dir = std::filesystem::temp_directory_path() /
                   (prefix + "_" + std::to_string(::getpid()) + "_" +
                    std::to_string(counter.fetch_add(1)));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace peppher::testing
