// Tests for the support substrate: strings, RNG, filesystem helpers,
// concurrent queues, error types and the parallel_for helper.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <thread>

#include "support/error.hpp"
#include "support/fs.hpp"
#include "support/parallel.hpp"
#include "support/queues.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

#include "temp_dir.hpp"

namespace peppher {
namespace {

// ---------------------------------------------------------------------------
// strings
// ---------------------------------------------------------------------------

TEST(Strings, Trim) {
  EXPECT_EQ(strings::trim("  hello \t\n"), "hello");
  EXPECT_EQ(strings::trim(""), "");
  EXPECT_EQ(strings::trim("   "), "");
  EXPECT_EQ(strings::trim("x"), "x");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = strings::split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWhitespaceDropsEmpty) {
  const auto parts = strings::split_whitespace("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, JoinRoundTripsSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(strings::join(parts, "::"), "x::y::z");
  EXPECT_EQ(strings::join({}, ","), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(strings::starts_with("peppher.h", "pep"));
  EXPECT_FALSE(strings::starts_with("pe", "pep"));
  EXPECT_TRUE(strings::ends_with("main.xml", ".xml"));
  EXPECT_FALSE(strings::ends_with("xml", ".xml"));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(strings::replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(strings::replace_all("abc", "x", "y"), "abc");
  EXPECT_EQ(strings::replace_all("", "a", "b"), "");
}

TEST(Strings, ToIntRejectsTrailingGarbage) {
  EXPECT_EQ(strings::to_int("42").value(), 42);
  EXPECT_EQ(strings::to_int("  -7 ").value(), -7);
  EXPECT_FALSE(strings::to_int("42x").has_value());
  EXPECT_FALSE(strings::to_int("").has_value());
}

TEST(Strings, ToDouble) {
  EXPECT_DOUBLE_EQ(strings::to_double("2.5").value(), 2.5);
  EXPECT_FALSE(strings::to_double("2.5.1").has_value());
}

TEST(Strings, IsIdentifier) {
  EXPECT_TRUE(strings::is_identifier("_x9"));
  EXPECT_FALSE(strings::is_identifier("9x"));
  EXPECT_FALSE(strings::is_identifier(""));
  EXPECT_FALSE(strings::is_identifier("a-b"));
}

TEST(Strings, IndentSkipsEmptyLines) {
  EXPECT_EQ(strings::indent("a\n\nb", 2), "  a\n\n  b");
}

// ---------------------------------------------------------------------------
// rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, DoublesInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // law of large numbers
}

TEST(Rng, NormalRoughlyCentred) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / 10000.0, 5.0, 0.1);
}

// ---------------------------------------------------------------------------
// fs
// ---------------------------------------------------------------------------

TEST(Fs, WriteReadRoundTrip) {
  const auto dir = peppher::testing::unique_temp_dir("peppher_fs_test");
  const auto file = dir / "sub" / "data.txt";
  fs::write_file(file, "hello\nworld");
  EXPECT_EQ(fs::read_file(file), "hello\nworld");
  std::filesystem::remove_all(dir);
}

TEST(Fs, ReadMissingFileThrows) {
  EXPECT_THROW(fs::read_file("/definitely/not/here.txt"), Error);
}

TEST(Fs, ListFilesFiltersAndSorts) {
  const auto dir = peppher::testing::unique_temp_dir("peppher_ls_test");
  fs::write_file(dir / "b.xml", "x");
  fs::write_file(dir / "a.xml", "x");
  fs::write_file(dir / "c.txt", "x");
  const auto xmls = fs::list_files(dir, ".xml");
  ASSERT_EQ(xmls.size(), 2u);
  EXPECT_EQ(xmls[0].filename(), "a.xml");
  EXPECT_EQ(xmls[1].filename(), "b.xml");
  EXPECT_EQ(fs::list_files(dir).size(), 3u);
  std::filesystem::remove_all(dir);
}

TEST(Fs, CountSourceLinesIgnoresBlanks) {
  const auto dir = peppher::testing::unique_temp_dir("peppher_loc_test");
  fs::write_file(dir / "f.cpp", "int x;\n\n  \nint y;\n");
  EXPECT_EQ(fs::count_source_lines(dir / "f.cpp"), 2u);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// error
// ---------------------------------------------------------------------------

TEST(ErrorType, CarriesCodeAndMessage) {
  const Error e(ErrorCode::kNotFound, "widget");
  EXPECT_EQ(e.code(), ErrorCode::kNotFound);
  EXPECT_NE(std::string(e.what()).find("widget"), std::string::npos);
  EXPECT_NE(std::string(e.what()).find("not_found"), std::string::npos);
}

TEST(ErrorType, CheckThrowsOnFalse) {
  EXPECT_NO_THROW(check(true, "fine"));
  EXPECT_THROW(check(false, "boom"), Error);
}

// ---------------------------------------------------------------------------
// queues
// ---------------------------------------------------------------------------

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.try_pop().value(), 3);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BlockingQueue, CloseWakesConsumers) {
  BlockingQueue<int> q;
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  q.close();
  consumer.join();
  EXPECT_FALSE(q.push(1));
}

TEST(BlockingQueue, DrainsAfterClose) {
  BlockingQueue<int> q;
  q.push(42);
  q.close();
  EXPECT_EQ(q.pop().value(), 42);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(WorkStealingDeque, OwnerLifoThiefFifo) {
  WorkStealingDeque<int> d;
  d.push(1);
  d.push(2);
  d.push(3);
  EXPECT_EQ(d.steal().value(), 1);  // oldest
  EXPECT_EQ(d.pop().value(), 3);    // newest
  EXPECT_EQ(d.pop().value(), 2);
  EXPECT_FALSE(d.pop().has_value());
  EXPECT_FALSE(d.steal().has_value());
}

// ---------------------------------------------------------------------------
// parallel_for
// ---------------------------------------------------------------------------

TEST(ParallelFor, CoversRangeExactlyOnce) {
  std::vector<int> hits(1000, 0);
  parallel_for(4, 0, hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i]++;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, EmptyAndSingleRanges) {
  int calls = 0;
  parallel_for(4, 5, 5, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(4, 5, 6, [&](std::size_t b, std::size_t e) {
    EXPECT_EQ(b, 5u);
    EXPECT_EQ(e, 6u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, MoreThreadsThanItems) {
  std::vector<int> hits(3, 0);
  parallel_for(16, 0, 3, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i]++;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

}  // namespace
}  // namespace peppher
