// Engine tests: task execution, implicit dependency inference, forced
// architectures, virtual time accounting, combined-CPU parallel tasks,
// waiting semantics and error cases.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "runtime/engine.hpp"
#include "sim/device.hpp"
#include "support/error.hpp"

namespace peppher::rt {
namespace {

EngineConfig small_config(const std::string& scheduler = "dmda") {
  EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.machine.cpu_cores = 2;
  config.scheduler = scheduler;
  config.use_history_models = false;  // deterministic: cost-model driven
  return config;
}

/// Codelet that doubles every float of its single RW operand.
Codelet make_double_codelet(Arch arch = Arch::kCpu) {
  Codelet codelet("double");
  Implementation impl;
  impl.arch = arch;
  impl.name = "double_" + to_string(arch);
  impl.fn = [](ExecContext& ctx) {
    auto* data = ctx.buffer_as<float>(0);
    for (std::size_t i = 0; i < ctx.elements(0); ++i) data[i] *= 2.0f;
  };
  impl.cost = [](const std::vector<std::size_t>& bytes, const void*) {
    return sim::KernelCost{static_cast<double>(bytes[0]),
                           static_cast<double>(bytes[0]), 1.0};
  };
  codelet.add_impl(std::move(impl));
  return codelet;
}

TEST(Engine, ExecutesSimpleTask) {
  Engine engine(small_config());
  std::vector<float> data(64, 1.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * sizeof(float),
                                       sizeof(float));
  Codelet codelet = make_double_codelet();
  TaskSpec spec;
  spec.codelet = &codelet;
  spec.operands = {{handle, AccessMode::kReadWrite}};
  TaskPtr task = engine.submit(std::move(spec));
  engine.wait(task);
  EXPECT_EQ(task->state, TaskState::kDone);
  engine.acquire_host(handle, AccessMode::kRead);
  for (float v : data) EXPECT_FLOAT_EQ(v, 2.0f);
}

TEST(Engine, SynchronousSubmission) {
  Engine engine(small_config());
  std::vector<float> data(16, 3.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * sizeof(float),
                                       sizeof(float));
  Codelet codelet = make_double_codelet();
  TaskSpec spec;
  spec.codelet = &codelet;
  spec.operands = {{handle, AccessMode::kReadWrite}};
  spec.synchronous = true;
  TaskPtr task = engine.submit(std::move(spec));
  EXPECT_EQ(task->state, TaskState::kDone);
}

TEST(Engine, ChainedRWTasksExecuteInOrder) {
  Engine engine(small_config());
  std::vector<float> data(8, 1.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * sizeof(float),
                                       sizeof(float));
  Codelet codelet = make_double_codelet();
  for (int i = 0; i < 6; ++i) {
    TaskSpec spec;
    spec.codelet = &codelet;
    spec.operands = {{handle, AccessMode::kReadWrite}};
    engine.submit(std::move(spec));
  }
  engine.wait_for_all();
  engine.acquire_host(handle, AccessMode::kRead);
  for (float v : data) EXPECT_FLOAT_EQ(v, 64.0f);  // 2^6
}

TEST(Engine, ReadersRunAfterWriterAndSeeItsData) {
  Engine engine(small_config());
  std::vector<float> src(32, 1.0f);
  std::vector<float> sums(4, 0.0f);
  auto h_src = engine.register_buffer(src.data(), src.size() * sizeof(float),
                                      sizeof(float));

  Codelet writer = make_double_codelet();
  {
    TaskSpec spec;
    spec.codelet = &writer;
    spec.operands = {{h_src, AccessMode::kReadWrite}};
    engine.submit(std::move(spec));
  }

  Codelet reader("sum_into");
  Implementation impl;
  impl.arch = Arch::kCpu;
  impl.name = "sum_into_cpu";
  impl.fn = [](ExecContext& ctx) {
    const auto* in = ctx.buffer_as<const float>(0);
    auto* out = ctx.buffer_as<float>(1);
    float acc = 0.0f;
    for (std::size_t i = 0; i < ctx.elements(0); ++i) acc += in[i];
    out[0] = acc;
  };
  reader.add_impl(std::move(impl));

  std::vector<DataHandlePtr> out_handles;
  for (std::size_t i = 0; i < sums.size(); ++i) {
    auto h_out = engine.register_buffer(&sums[i], sizeof(float), sizeof(float));
    out_handles.push_back(h_out);
    TaskSpec spec;
    spec.codelet = &reader;
    spec.operands = {{h_src, AccessMode::kRead}, {h_out, AccessMode::kWrite}};
    engine.submit(std::move(spec));
  }
  engine.wait_for_all();
  for (auto& h : out_handles) engine.acquire_host(h, AccessMode::kRead);
  for (float s : sums) EXPECT_FLOAT_EQ(s, 64.0f);  // 32 * 2.0
}

TEST(Engine, ForcedArchIsRespected) {
  Engine engine(small_config());
  Codelet codelet("multi");
  for (Arch arch : {Arch::kCpu, Arch::kCpuOmp, Arch::kCuda}) {
    Implementation impl;
    impl.arch = arch;
    impl.name = "multi_" + to_string(arch);
    impl.fn = [](ExecContext&) {};
    codelet.add_impl(std::move(impl));
  }
  std::vector<float> data(4, 0.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * sizeof(float),
                                       sizeof(float));
  for (Arch arch : {Arch::kCpu, Arch::kCpuOmp, Arch::kCuda}) {
    TaskSpec spec;
    spec.codelet = &codelet;
    spec.operands = {{handle, AccessMode::kReadWrite}};
    spec.forced_arch = arch;
    TaskPtr task = engine.submit(std::move(spec));
    engine.wait(task);
    EXPECT_EQ(task->executed_arch, arch);
  }
}

TEST(Engine, ForcedArchWithoutImplThrows) {
  Engine engine(small_config());
  Codelet codelet = make_double_codelet(Arch::kCpu);
  std::vector<float> data(4, 0.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * sizeof(float),
                                       sizeof(float));
  TaskSpec spec;
  spec.codelet = &codelet;
  spec.operands = {{handle, AccessMode::kReadWrite}};
  spec.forced_arch = Arch::kCuda;
  EXPECT_THROW(engine.submit(std::move(spec)), Error);
}

TEST(Engine, CudaOnlyCodeletOnCpuOnlyMachineThrows) {
  EngineConfig config;
  config.machine = sim::MachineConfig::cpu_only(2);
  Engine engine(config);
  Codelet codelet = make_double_codelet(Arch::kCuda);
  std::vector<float> data(4, 0.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * sizeof(float),
                                       sizeof(float));
  TaskSpec spec;
  spec.codelet = &codelet;
  spec.operands = {{handle, AccessMode::kReadWrite}};
  EXPECT_THROW(engine.submit(std::move(spec)), Error);
}

TEST(Engine, DisabledCodeletThrows) {
  Engine engine(small_config());
  Codelet codelet = make_double_codelet();
  codelet.disable_impls("cpu");
  TaskSpec spec;
  spec.codelet = &codelet;
  EXPECT_THROW(engine.submit(std::move(spec)), Error);
}

TEST(Engine, VirtualTimeAdvancesAndResets) {
  Engine engine(small_config());
  EXPECT_DOUBLE_EQ(engine.virtual_makespan(), 0.0);
  std::vector<float> data(1024, 1.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * sizeof(float),
                                       sizeof(float));
  Codelet codelet = make_double_codelet();
  TaskSpec spec;
  spec.codelet = &codelet;
  spec.operands = {{handle, AccessMode::kReadWrite}};
  spec.synchronous = true;
  engine.submit(std::move(spec));
  EXPECT_GT(engine.virtual_makespan(), 0.0);
  engine.reset_virtual_time();
  EXPECT_DOUBLE_EQ(engine.virtual_makespan(), 0.0);
}

TEST(Engine, SequentialTasksAccumulateVirtualTime) {
  Engine engine(small_config());
  std::vector<float> data(4096, 1.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * sizeof(float),
                                       sizeof(float));
  Codelet codelet = make_double_codelet();
  double previous = 0.0;
  for (int i = 0; i < 4; ++i) {
    TaskSpec spec;
    spec.codelet = &codelet;
    spec.operands = {{handle, AccessMode::kReadWrite}};
    spec.synchronous = true;
    TaskPtr task = engine.submit(std::move(spec));
    EXPECT_GE(task->vstart, previous);
    EXPECT_GT(task->vend, task->vstart);
    previous = task->vend;
  }
}

TEST(Engine, CombinedCpuWorkerGetsAllThreads) {
  Engine engine(small_config());
  Codelet codelet("width_probe");
  Implementation impl;
  impl.arch = Arch::kCpuOmp;
  impl.name = "probe_omp";
  std::atomic<int> seen_threads{0};
  impl.fn = [&seen_threads](ExecContext& ctx) {
    seen_threads = ctx.cpu_threads();
  };
  codelet.add_impl(std::move(impl));
  std::vector<float> data(4, 0.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * sizeof(float),
                                       sizeof(float));
  TaskSpec spec;
  spec.codelet = &codelet;
  spec.operands = {{handle, AccessMode::kReadWrite}};
  spec.synchronous = true;
  engine.submit(std::move(spec));
  EXPECT_EQ(seen_threads.load(), 2);  // machine has 2 CPU cores
}

TEST(Engine, ArchTaskCountsTrackExecution) {
  Engine engine(small_config());
  Codelet codelet = make_double_codelet(Arch::kCpu);
  std::vector<float> data(4, 0.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * sizeof(float),
                                       sizeof(float));
  for (int i = 0; i < 3; ++i) {
    TaskSpec spec;
    spec.codelet = &codelet;
    spec.operands = {{handle, AccessMode::kReadWrite}};
    engine.submit(std::move(spec));
  }
  engine.wait_for_all();
  const auto counts = engine.arch_task_counts();
  EXPECT_EQ(counts[static_cast<std::size_t>(Arch::kCpu)], 3u);
  EXPECT_EQ(engine.tasks_submitted(), 3u);
}

TEST(Engine, WorkerTopologyMatchesMachine) {
  Engine engine(small_config());
  // 2 CPU cores + 1 combined + 1 GPU.
  EXPECT_EQ(engine.workers().size(), 4u);
  EXPECT_EQ(engine.cpu_worker_count(), 2);
  EXPECT_EQ(engine.accelerator_count(), 1);
  int combined = 0, gpus = 0;
  for (const auto& w : engine.workers()) {
    if (w.is_combined_cpu) ++combined;
    if (w.node != kHostNode) ++gpus;
  }
  EXPECT_EQ(combined, 1);
  EXPECT_EQ(gpus, 1);
}

TEST(Engine, AcquireHostBlocksUntilWriterFinishes) {
  Engine engine(small_config());
  std::vector<float> data(256, 1.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * sizeof(float),
                                       sizeof(float));
  Codelet codelet = make_double_codelet();
  for (int i = 0; i < 3; ++i) {
    TaskSpec spec;
    spec.codelet = &codelet;
    spec.operands = {{handle, AccessMode::kReadWrite}};
    engine.submit(std::move(spec));
  }
  // No explicit wait: acquire_host must block until all three finished.
  engine.acquire_host(handle, AccessMode::kRead);
  for (float v : data) EXPECT_FLOAT_EQ(v, 8.0f);
}

TEST(Engine, EagerRandomWsSchedulersAllRunTasks) {
  for (const std::string scheduler : {"eager", "random", "ws"}) {
    Engine engine(small_config(scheduler));
    std::vector<float> data(64, 1.0f);
    auto handle = engine.register_buffer(data.data(),
                                         data.size() * sizeof(float),
                                         sizeof(float));
    Codelet codelet = make_double_codelet();
    for (int i = 0; i < 8; ++i) {
      TaskSpec spec;
      spec.codelet = &codelet;
      spec.operands = {{handle, AccessMode::kReadWrite}};
      engine.submit(std::move(spec));
    }
    engine.wait_for_all();
    engine.acquire_host(handle, AccessMode::kRead);
    EXPECT_FLOAT_EQ(data[0], 256.0f) << scheduler;  // 2^8
  }
}

TEST(Engine, UnknownSchedulerThrows) {
  EngineConfig config = small_config("definitely_not_a_scheduler");
  EXPECT_THROW(Engine engine(config), Error);
}

TEST(Engine, IndependentReadTasksMayRunOnDifferentWorkers) {
  // 4 independent read-only tasks over the same handle must all execute.
  Engine engine(small_config("ws"));
  std::vector<float> data(1024, 1.0f);
  auto h_in = engine.register_buffer(data.data(), data.size() * sizeof(float),
                                     sizeof(float));
  Codelet codelet("reader");
  Implementation impl;
  impl.arch = Arch::kCpu;
  impl.name = "reader_cpu";
  std::atomic<int> executed{0};
  impl.fn = [&executed](ExecContext&) { executed++; };
  codelet.add_impl(std::move(impl));
  for (int i = 0; i < 4; ++i) {
    TaskSpec spec;
    spec.codelet = &codelet;
    spec.operands = {{h_in, AccessMode::kRead}};
    engine.submit(std::move(spec));
  }
  engine.wait_for_all();
  EXPECT_EQ(executed.load(), 4);
}

}  // namespace
}  // namespace peppher::rt
