// Fault-injection tests: seeded FaultPlans, transient-failure retry on an
// alternative variant, hard device death (task-count and virtual-time
// triggered) with queue draining and blacklisting, transfer faults,
// retry-exhaustion semantics, and the bitwise-correct CPU fallback of the
// SpMV and ODE example workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "apps/ode.hpp"
#include "apps/sparse.hpp"
#include "apps/spmv.hpp"
#include "runtime/engine.hpp"
#include "sim/device.hpp"
#include "support/error.hpp"

namespace peppher::rt {
namespace {

/// 1 CPU core + the C2050: scheduling is cost-model driven (deterministic)
/// and the GPU wins compute-heavy tasks outright.
EngineConfig fault_config(sim::FaultPlan plan,
                          const std::string& scheduler = "dmda") {
  EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.machine.cpu_cores = 1;
  config.scheduler = scheduler;
  config.use_history_models = false;
  config.enable_trace = true;
  config.accelerator_faults = {plan};
  return config;
}

/// Codelet with identical-numerics CPU and CUDA variants whose cost hint
/// makes the GPU the clear first choice (~0.27 s CPU vs ~1.8 ms GPU).
Codelet make_add_one_codelet() {
  Codelet codelet("add_one");
  const auto body = [](ExecContext& ctx) {
    auto* data = ctx.buffer_as<float>(0);
    for (std::size_t i = 0; i < ctx.elements(0); ++i) data[i] += 1.0f;
  };
  const auto cost = [](const std::vector<std::size_t>&, const void*) {
    return sim::KernelCost{1e9, 1e6, 1.0};
  };
  codelet.add_impl({Arch::kCpu, "add_one_cpu", body, cost});
  codelet.add_impl({Arch::kCuda, "add_one_cuda", body, cost});
  return codelet;
}

WorkerId gpu_worker_id(const Engine& engine) {
  for (const auto& desc : engine.workers()) {
    if (desc.node != kHostNode) return desc.id;
  }
  return -1;
}

TEST(FaultInjector, RespectsRatesAndIsDeterministic) {
  sim::FaultPlan plan;
  plan.kernel_failure_rate = 0.5;
  plan.transfer_failure_rate = 0.25;
  plan.seed = 7;
  sim::FaultInjector a(plan, 99);
  sim::FaultInjector b(plan, 99);
  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    const bool fa = a.next_kernel_fails();
    EXPECT_EQ(fa, b.next_kernel_fails());
    EXPECT_EQ(a.next_transfer_fails(), b.next_transfer_fails());
    failures += fa ? 1 : 0;
  }
  EXPECT_GT(failures, 50);   // ~100 expected at rate 0.5
  EXPECT_LT(failures, 150);

  sim::FaultPlan never;  // all-zero plan: no faults, no death
  EXPECT_FALSE(never.any());
  sim::FaultInjector off(never, 1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(off.next_kernel_fails());
    EXPECT_FALSE(off.next_transfer_fails());
  }
  EXPECT_FALSE(off.death_due(1e9));

  sim::FaultPlan always;
  always.kernel_failure_rate = 1.0;
  always.die_after_tasks = 2;
  sim::FaultInjector hot(always, 1);
  EXPECT_TRUE(hot.next_kernel_fails());
  EXPECT_FALSE(hot.death_due(0.0));
  hot.record_kernel_success();
  hot.record_kernel_success();
  EXPECT_TRUE(hot.death_due(0.0));
}

TEST(FaultInjection, TransientFaultRetriesOnAnotherVariant) {
  sim::FaultPlan plan;
  plan.kernel_failure_rate = 1.0;  // the GPU variant always fails
  Engine engine(fault_config(plan));
  Codelet codelet = make_add_one_codelet();

  std::vector<float> data(64, 1.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * sizeof(float),
                                       sizeof(float));
  TaskSpec spec;
  spec.codelet = &codelet;
  spec.operands = {{handle, AccessMode::kReadWrite}};
  TaskPtr task = engine.submit(std::move(spec));
  engine.wait(task);  // must not throw: the CPU variant succeeded
  engine.acquire_host(handle, AccessMode::kRead);
  for (float v : data) EXPECT_FLOAT_EQ(v, 2.0f);

  EXPECT_EQ(task->attempts, 1);
  EXPECT_EQ(task->executed_arch, Arch::kCpu);
  const FaultStats stats = engine.fault_stats();
  EXPECT_EQ(stats.injected_kernel_faults, 1u);
  EXPECT_EQ(stats.failed_attempts, 1u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.fallbacks, 1u);
  EXPECT_EQ(stats.tasks_failed, 0u);
  EXPECT_EQ(stats.workers_blacklisted, 0u);

  // The trace shows both attempts: a failed CUDA one, then the CPU retry.
  const auto records = engine.trace().records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].arch, Arch::kCuda);
  EXPECT_TRUE(records[0].failed);
  EXPECT_EQ(records[0].attempt, 0);
  EXPECT_EQ(records[1].arch, Arch::kCpu);
  EXPECT_FALSE(records[1].failed);
  EXPECT_EQ(records[1].attempt, 1);
  EXPECT_NE(engine.trace().to_chrome_json().find("\"failed\": true"),
            std::string::npos);
}

TEST(FaultInjection, RetriesDisabledReproducesTerminalFailure) {
  sim::FaultPlan plan;
  plan.kernel_failure_rate = 1.0;
  EngineConfig config = fault_config(plan);
  config.max_retries = 0;  // fail fast: pre-fault-tolerance behavior
  Engine engine(config);
  Codelet codelet = make_add_one_codelet();

  std::vector<float> data(64, 1.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * sizeof(float),
                                       sizeof(float));
  TaskSpec first;
  first.codelet = &codelet;
  first.operands = {{handle, AccessMode::kReadWrite}};
  TaskPtr task = engine.submit(std::move(first));
  TaskSpec second;
  second.codelet = &codelet;
  second.operands = {{handle, AccessMode::kReadWrite}};
  TaskPtr successor = engine.submit(std::move(second));

  EXPECT_THROW(engine.wait(task), Error);
  EXPECT_THROW(engine.wait(successor), Error);  // cancelled transitively
  const FaultStats stats = engine.fault_stats();
  EXPECT_EQ(stats.failed_attempts, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.fallbacks, 0u);
  EXPECT_EQ(stats.tasks_failed, 2u);
}

TEST(FaultInjection, DeadDeviceDrainsQueuedTasksToCpu) {
  sim::FaultPlan plan;
  plan.die_after_tasks = 3;
  Engine engine(fault_config(plan));
  Codelet codelet = make_add_one_codelet();

  constexpr int kTasks = 10;
  std::vector<std::vector<float>> buffers(kTasks, std::vector<float>(16, 1.0f));
  std::vector<DataHandlePtr> handles;
  std::vector<TaskPtr> tasks;
  for (int i = 0; i < kTasks; ++i) {
    handles.push_back(engine.register_buffer(buffers[i].data(),
                                             buffers[i].size() * sizeof(float),
                                             sizeof(float)));
    TaskSpec spec;
    spec.codelet = &codelet;
    spec.operands = {{handles.back(), AccessMode::kReadWrite}};
    spec.name = "t" + std::to_string(i);
    tasks.push_back(engine.submit(std::move(spec)));
  }
  engine.wait_for_all();
  for (const auto& task : tasks) EXPECT_NO_THROW(engine.wait(task));
  for (const auto& handle : handles) {
    engine.acquire_host(handle, AccessMode::kRead);
  }
  for (const auto& buffer : buffers) {
    for (float v : buffer) EXPECT_FLOAT_EQ(v, 2.0f);
  }

  const WorkerId gpu = gpu_worker_id(engine);
  ASSERT_GE(gpu, 0);
  EXPECT_TRUE(engine.worker_blacklisted(gpu));
  EXPECT_EQ(engine.worker_stats(gpu).tasks_executed, 3u);
  const FaultStats stats = engine.fault_stats();
  EXPECT_EQ(stats.workers_blacklisted, 1u);
  EXPECT_EQ(stats.tasks_failed, 0u);
  EXPECT_NE(engine.summary().find("dead"), std::string::npos);
  EXPECT_NE(engine.summary().find("1 workers blacklisted"), std::string::npos);
}

TEST(FaultInjection, DeathAtVirtualTimeKillsTheCrossingAttempt) {
  sim::FaultPlan plan;
  plan.die_at_vtime = 1e-4;  // far below the ~1.8 ms GPU kernel
  Engine engine(fault_config(plan));
  Codelet codelet = make_add_one_codelet();

  std::vector<float> data(16, 1.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * sizeof(float),
                                       sizeof(float));
  TaskSpec spec;
  spec.codelet = &codelet;
  spec.operands = {{handle, AccessMode::kReadWrite}};
  TaskPtr task = engine.submit(std::move(spec));
  engine.wait(task);
  engine.acquire_host(handle, AccessMode::kRead);
  for (float v : data) EXPECT_FLOAT_EQ(v, 2.0f);

  EXPECT_EQ(task->attempts, 1);
  EXPECT_EQ(task->executed_arch, Arch::kCpu);
  const WorkerId gpu = gpu_worker_id(engine);
  EXPECT_TRUE(engine.worker_blacklisted(gpu));
  const FaultStats stats = engine.fault_stats();
  EXPECT_EQ(stats.failed_attempts, 1u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.workers_blacklisted, 1u);
}

TEST(FaultInjection, ExhaustedVariantsCancelSuccessorsAndRethrow) {
  sim::FaultPlan plan;
  plan.kernel_failure_rate = 1.0;  // the CUDA attempt is injected to fail
  Engine engine(fault_config(plan));

  Codelet codelet("doomed");
  const auto cost = [](const std::vector<std::size_t>&, const void*) {
    return sim::KernelCost{1e9, 1e6, 1.0};
  };
  codelet.add_impl({Arch::kCuda, "doomed_cuda", [](ExecContext&) {}, cost});
  codelet.add_impl({Arch::kCpu, "doomed_cpu",
                    [](ExecContext&) {
                      throw Error(ErrorCode::kInternal, "cpu variant bug");
                    },
                    cost});

  std::vector<float> data(8, 1.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * sizeof(float),
                                       sizeof(float));
  std::vector<TaskPtr> chain;
  for (int i = 0; i < 3; ++i) {
    TaskSpec spec;
    spec.codelet = &codelet;
    spec.operands = {{handle, AccessMode::kReadWrite}};
    chain.push_back(engine.submit(std::move(spec)));
  }
  // CUDA fails (injected), the CPU retry hits the real bug, no variant is
  // left: the task fails terminally and cancels its successors.
  EXPECT_THROW(engine.wait(chain[0]), Error);
  EXPECT_THROW(engine.wait(chain[1]), Error);
  EXPECT_THROW(engine.wait(chain[2]), Error);
  engine.acquire_host(handle, AccessMode::kRead);
  for (float v : data) EXPECT_FLOAT_EQ(v, 1.0f);  // data untouched

  const FaultStats stats = engine.fault_stats();
  EXPECT_EQ(stats.failed_attempts, 2u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.fallbacks, 0u);
  EXPECT_EQ(stats.tasks_failed, 3u);
}

TEST(FaultInjection, TransferFaultFailsTheAttemptAndFallsBackToCpu) {
  sim::FaultPlan plan;
  plan.transfer_failure_rate = 1.0;  // every PCIe hop to/from the GPU fails
  Engine engine(fault_config(plan));
  Codelet codelet = make_add_one_codelet();

  std::vector<float> data(64, 1.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * sizeof(float),
                                       sizeof(float));
  TaskSpec spec;
  spec.codelet = &codelet;
  spec.operands = {{handle, AccessMode::kReadWrite}};
  TaskPtr task = engine.submit(std::move(spec));
  engine.wait(task);
  engine.acquire_host(handle, AccessMode::kRead);
  for (float v : data) EXPECT_FLOAT_EQ(v, 2.0f);

  EXPECT_EQ(task->executed_arch, Arch::kCpu);
  const FaultStats stats = engine.fault_stats();
  EXPECT_GE(stats.injected_transfer_faults, 1u);
  EXPECT_EQ(stats.failed_attempts, 1u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.injected_kernel_faults, 0u);
}

TEST(FaultInjection, SeededPlansReplayIdentically) {
  sim::FaultPlan plan;
  plan.kernel_failure_rate = 0.4;
  plan.seed = 2024;

  const auto run = [&] {
    Engine engine(fault_config(plan));
    Codelet codelet = make_add_one_codelet();
    std::vector<float> data(16, 0.0f);
    auto handle = engine.register_buffer(
        data.data(), data.size() * sizeof(float), sizeof(float));
    for (int i = 0; i < 20; ++i) {
      TaskSpec spec;
      spec.codelet = &codelet;
      spec.operands = {{handle, AccessMode::kReadWrite}};
      engine.submit(std::move(spec));
    }
    engine.wait_for_all();
    engine.acquire_host(handle, AccessMode::kRead);
    for (float v : data) EXPECT_FLOAT_EQ(v, 20.0f);
    return engine.fault_stats();
  };

  const FaultStats first = run();
  const FaultStats second = run();
  EXPECT_GT(first.failed_attempts, 0u);
  EXPECT_EQ(first.failed_attempts, second.failed_attempts);
  EXPECT_EQ(first.injected_kernel_faults, second.injected_kernel_faults);
  EXPECT_EQ(first.retries, second.retries);
  EXPECT_EQ(first.fallbacks, second.fallbacks);
}

TEST(FaultInjection, PerTaskMaxRetriesOverridesEngineDefault) {
  sim::FaultPlan plan;
  plan.kernel_failure_rate = 1.0;
  EngineConfig config = fault_config(plan);
  config.max_retries = 3;  // engine would retry...
  Engine engine(config);
  Codelet codelet = make_add_one_codelet();

  std::vector<float> data(8, 1.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * sizeof(float),
                                       sizeof(float));
  TaskSpec spec;
  spec.codelet = &codelet;
  spec.operands = {{handle, AccessMode::kReadWrite}};
  spec.max_retries = 0;  // ...but this task opts out
  TaskPtr task = engine.submit(std::move(spec));
  EXPECT_THROW(engine.wait(task), Error);
  EXPECT_EQ(engine.fault_stats().retries, 0u);
}

// ---------------------------------------------------------------------------
// Acceptance: the paper's example workloads survive a mid-run device death
// with bitwise-identical results (all SpMV/ODE variants share one kernel
// body, so the CPU fallback reproduces the GPU numerics exactly).
// ---------------------------------------------------------------------------

EngineConfig app_fault_config(sim::FaultPlan plan) {
  EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.scheduler = "dmda";
  config.use_history_models = false;
  config.enable_trace = true;
  config.accelerator_faults = {plan};
  return config;
}

TEST(FaultInjection, SpmvHybridSurvivesGpuDeathBitwise) {
  sim::FaultPlan plan;
  plan.die_at_vtime = 1e-6;  // the GPU dies during its very first chunk
  Engine engine(app_fault_config(plan));

  const auto problem =
      apps::spmv::make_problem(apps::sparse::MatrixClass::kStructural, 0.15);
  const auto expected = apps::spmv::reference(problem);
  const auto result = apps::spmv::run_hybrid(engine, problem, 8);
  EXPECT_EQ(result.y, expected);  // bitwise

  const WorkerId gpu = gpu_worker_id(engine);
  const FaultStats stats = engine.fault_stats();
  EXPECT_EQ(stats.workers_blacklisted, 1u);
  EXPECT_EQ(stats.tasks_failed, 0u);
  EXPECT_EQ(stats.failed_attempts, 1u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.fallbacks, 1u);
  EXPECT_TRUE(engine.worker_blacklisted(gpu));
  EXPECT_EQ(engine.worker_stats(gpu).failed_attempts, 1u);
  EXPECT_NE(engine.summary().find("workers blacklisted"), std::string::npos);

  // The trace shows the failed GPU attempt and the CPU-side retry.
  bool failed_gpu_record = false;
  bool retry_record = false;
  for (const auto& record : engine.trace().records()) {
    if (record.failed && record.worker == gpu) failed_gpu_record = true;
    if (!record.failed && record.attempt > 0) retry_record = true;
  }
  EXPECT_TRUE(failed_gpu_record);
  EXPECT_TRUE(retry_record);
}

TEST(FaultInjection, SpmvHybridWithRetriesDisabledFailsTerminally) {
  sim::FaultPlan plan;
  plan.die_at_vtime = 1e-6;  // same plan as above...
  EngineConfig config = app_fault_config(plan);
  config.max_retries = 0;  // ...but no retries: the failure is terminal
  Engine engine(config);

  const auto problem =
      apps::spmv::make_problem(apps::sparse::MatrixClass::kStructural, 0.15);
  // Depending on whether the failed chunk is already retired when the
  // result is gathered, the error surfaces as a throw from the acquire in
  // run_hybrid or stays recorded on the task; both are terminal failures.
  try {
    apps::spmv::run_hybrid(engine, problem, 8);
  } catch (const Error&) {
    engine.wait_for_all();
  }
  const FaultStats stats = engine.fault_stats();
  EXPECT_GE(stats.tasks_failed, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.fallbacks, 0u);
  // The trace confirms fail-fast: a failed first attempt, never a retry.
  bool failed_record = false;
  for (const auto& record : engine.trace().records()) {
    if (record.failed) failed_record = true;
    EXPECT_EQ(record.attempt, 0);
  }
  EXPECT_TRUE(failed_record);
}

TEST(FaultInjection, OdeSurvivesGpuDeathBitwise) {
  sim::FaultPlan plan;
  plan.die_after_tasks = 5;  // mid-run: the GPU takes ~21 of the 38 tasks
  Engine engine(app_fault_config(plan));

  // n=2048 makes the dense O(n^2) stage GPU-worthy despite PCIe costs.
  const auto problem = apps::ode::make_problem(2048, 4);
  const auto expected = apps::ode::reference(problem);
  const auto result = apps::ode::run_tool(engine, problem);
  EXPECT_EQ(result.y, expected);  // bitwise

  const WorkerId gpu = gpu_worker_id(engine);
  const FaultStats stats = engine.fault_stats();
  EXPECT_EQ(stats.workers_blacklisted, 1u);
  EXPECT_EQ(stats.tasks_failed, 0u);
  EXPECT_TRUE(engine.worker_blacklisted(gpu));
  EXPECT_EQ(engine.worker_stats(gpu).tasks_executed, 5u);
  EXPECT_NE(engine.summary().find("dead"), std::string::npos);
}

}  // namespace
}  // namespace peppher::rt
