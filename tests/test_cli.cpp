// Subprocess tests of the installed command-line tools (`compose` and
// `peppher-report`) — the in-process driver is covered elsewhere; these
// verify the actual binaries users run.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "apps/sgemm.hpp"
#include "core/peppher.hpp"
#include "runtime/engine.hpp"
#include "support/fs.hpp"

#include "temp_dir.hpp"

namespace peppher {
namespace {

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = peppher::testing::unique_temp_dir("peppher_cli_test");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  int run(const std::string& command, std::string* output) {
    const auto log = dir_ / "cli.log";
    const int rc =
        std::system((command + " > " + log.string() + " 2>&1").c_str());
    *output = fs::read_file(log);
    return rc;
  }

  static std::string tool(const char* name) {
    return std::string(PEPPHER_BINARY_ROOT) + "/tools/" + name;
  }

  std::filesystem::path dir_;
};

TEST_F(CliTest, ComposeBinaryUtilityThenBuild) {
  fs::write_file(dir_ / "axpy.h",
                 "void axpy(float a, const float* x, float* y, int n);\n");
  std::string output;
  ASSERT_EQ(run(tool("compose") + " -generateCompFiles=" +
                    (dir_ / "axpy.h").string() + " -outdir=" + dir_.string() +
                    " -verbose",
                &output),
            0)
      << output;
  EXPECT_NE(output.find("skeleton file(s)"), std::string::npos);
  ASSERT_TRUE(std::filesystem::exists(dir_ / "axpy" / "axpy.xml"));

  ASSERT_EQ(run(tool("compose") + " " + (dir_ / "main.xml").string(), &output),
            0)
      << output;
  EXPECT_NE(output.find("composed 1 component(s)"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(dir_ / "axpy_wrapper.cpp"));
}

TEST_F(CliTest, ComposeBinaryReportsErrors) {
  std::string output;
  EXPECT_NE(run(tool("compose"), &output), 0);
  EXPECT_NE(output.find("usage"), std::string::npos);
  EXPECT_NE(run(tool("compose") + " " + (dir_ / "missing.xml").string(),
                &output),
            0);
  EXPECT_NE(output.find("compose:"), std::string::npos);
}

TEST_F(CliTest, ReportBinaryListsAndPredicts) {
  // Produce a sampling directory with real training data.
  const auto sampling = dir_ / "sampling";
  {
    rt::EngineConfig config;
    config.machine = sim::MachineConfig::platform_c2050();
    config.machine.cpu_cores = 2;
    config.use_history_models = true;
    config.calibration_samples = 1;
    config.sampling_dir = sampling;
    rt::Engine engine(config);
    for (std::uint32_t n : {8u, 16u, 24u, 32u, 48u}) {
      const auto problem = apps::sgemm::make_problem(n, n, n);
      for (rt::Arch arch : {rt::Arch::kCpu, rt::Arch::kCpuOmp, rt::Arch::kCuda}) {
        apps::sgemm::run_single(engine, problem, arch);
      }
    }
  }  // engine destructor persists the models

  std::string output;
  ASSERT_EQ(run(tool("peppher-report") + " " + sampling.string(), &output), 0)
      << output;
  EXPECT_NE(output.find("sgemm"), std::string::npos);
  EXPECT_NE(output.find("cuda"), std::string::npos);

  ASSERT_EQ(run(tool("peppher-report") + " " + sampling.string() +
                    " --component=sgemm --sizes=4096,1048576,268435456",
                &output),
            0)
      << output;
  EXPECT_NE(output.find("winner"), std::string::npos);
  // At a quarter-gigabyte footprint the GPU must be the predicted winner.
  const std::size_t last_row = output.rfind("268435456");
  ASSERT_NE(last_row, std::string::npos);
  EXPECT_NE(output.find("cuda", last_row), std::string::npos);
}

TEST_F(CliTest, ReportBinaryUsageErrors) {
  std::string output;
  EXPECT_NE(run(tool("peppher-report"), &output), 0);
  EXPECT_NE(output.find("usage"), std::string::npos);
  // Missing directory is a cold start: lists nothing, exits 0.
  EXPECT_EQ(run(tool("peppher-report") + " " + (dir_ / "nope").string(),
                &output),
            0);
  EXPECT_NE(output.find("no performance models"), std::string::npos);
}

}  // namespace
}  // namespace peppher
