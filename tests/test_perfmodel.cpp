// Performance-model tests: Welford statistics, footprints, history lookup,
// power-law regression, persistence round-trips.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "runtime/perfmodel.hpp"
#include "support/error.hpp"
#include "support/fs.hpp"

#include "temp_dir.hpp"

namespace peppher::rt {
namespace {

TEST(SampleStats, WelfordMeanAndStddev) {
  SampleStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(SampleStats, SingleSample) {
  SampleStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Footprint, DistinguishesSizesAndOrder) {
  EXPECT_NE(footprint_of({100}), footprint_of({200}));
  EXPECT_NE(footprint_of({100, 200}), footprint_of({200, 100}));
  EXPECT_EQ(footprint_of({100, 200}), footprint_of({100, 200}));
  EXPECT_NE(footprint_of({}), footprint_of({0}));
}

TEST(HistoryModel, ExactMatchReturnsMean) {
  HistoryModel model;
  model.record(42, 1000, 0.5);
  model.record(42, 1000, 1.5);
  EXPECT_DOUBLE_EQ(model.expected(42).value(), 1.0);
  EXPECT_EQ(model.sample_count(42), 2u);
  EXPECT_FALSE(model.expected(43).has_value());
  EXPECT_EQ(model.sample_count(43), 0u);
}

TEST(HistoryModel, RegressionNeedsFourDistinctSizes) {
  HistoryModel model;
  model.record(1, 1000, 1.0);
  model.record(2, 2000, 2.0);
  model.record(3, 4000, 4.0);
  EXPECT_FALSE(model.regression_estimate(8000).has_value());
  model.record(4, 8000, 8.0);
  // Perfectly linear data: time = 1e-3 * bytes.
  const double estimate = model.regression_estimate(16000).value();
  EXPECT_NEAR(estimate, 16.0, 0.5);
}

TEST(HistoryModel, RegressionFitsPowerLaw) {
  HistoryModel model;
  // time = 2e-9 * bytes^1.5
  for (std::size_t bytes : {1000u, 4000u, 16000u, 64000u, 256000u}) {
    const double t = 2e-9 * std::pow(static_cast<double>(bytes), 1.5);
    model.record(bytes /*as footprint*/, bytes, t);
  }
  const double estimate = model.regression_estimate(1000000).value();
  const double truth = 2e-9 * std::pow(1e6, 1.5);
  EXPECT_NEAR(estimate / truth, 1.0, 0.05);
}

TEST(HistoryModel, SerializeRoundTrip) {
  HistoryModel model;
  model.record(7, 512, 0.25);
  model.record(7, 512, 0.75);
  model.record(9, 2048, 3.0);
  HistoryModel copy;
  copy.deserialize(model.serialize());
  EXPECT_DOUBLE_EQ(copy.expected(7).value(), 0.5);
  EXPECT_EQ(copy.sample_count(7), 2u);
  EXPECT_DOUBLE_EQ(copy.expected(9).value(), 3.0);
  EXPECT_EQ(copy.entry_count(), 2u);
}

TEST(HistoryModel, DeserializeRejectsGarbage) {
  HistoryModel model;
  EXPECT_THROW(model.deserialize("1 2 3\n"), Error);
  EXPECT_NO_THROW(model.deserialize(""));
}

TEST(PerfRegistry, RecordsPerCodeletAndArch) {
  PerfRegistry registry;
  registry.record("spmv", Arch::kCpu, 1, 100, 2.0);
  registry.record("spmv", Arch::kCuda, 1, 100, 0.5);
  EXPECT_DOUBLE_EQ(registry.expected("spmv", Arch::kCpu, 1).value(), 2.0);
  EXPECT_DOUBLE_EQ(registry.expected("spmv", Arch::kCuda, 1).value(), 0.5);
  EXPECT_FALSE(registry.expected("sgemm", Arch::kCpu, 1).has_value());
  EXPECT_EQ(registry.sample_count("spmv", Arch::kCpu, 1), 1u);
}

TEST(PerfRegistry, SaveLoadRoundTrip) {
  const auto dir = peppher::testing::unique_temp_dir("peppher_models");

  PerfRegistry registry;
  registry.record("spmv", Arch::kCpu, 11, 100, 2.0);
  registry.record("spmv", Arch::kCuda, 11, 100, 0.25);
  registry.record("sgemm", Arch::kCpuOmp, 12, 200, 1.0);
  registry.save(dir);

  PerfRegistry loaded;
  loaded.load(dir);
  EXPECT_DOUBLE_EQ(loaded.expected("spmv", Arch::kCpu, 11).value(), 2.0);
  EXPECT_DOUBLE_EQ(loaded.expected("spmv", Arch::kCuda, 11).value(), 0.25);
  EXPECT_DOUBLE_EQ(loaded.expected("sgemm", Arch::kCpuOmp, 12).value(), 1.0);
  std::filesystem::remove_all(dir);
}

TEST(PerfRegistry, LoadMissingDirIsColdStart) {
  PerfRegistry registry;
  EXPECT_NO_THROW(registry.load("/nonexistent/peppher/dir"));
}

TEST(PerfRegistry, ClearDropsEverything) {
  PerfRegistry registry;
  registry.record("x", Arch::kCpu, 1, 8, 1.0);
  registry.clear();
  EXPECT_FALSE(registry.expected("x", Arch::kCpu, 1).has_value());
}

}  // namespace
}  // namespace peppher::rt
