// Table I driver-pair equivalence: for every application, the tool version
// and the hand-written direct version must compute the same checksum (they
// are the same program written two ways), and all driver source files must
// exist for the LoC benchmark.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "apps/drivers/drivers.hpp"
#include "core/peppher.hpp"
#include "support/fs.hpp"

namespace peppher::apps::drivers {
namespace {

class DriversTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    if (!core::initialized()) {
      rt::EngineConfig config;
      config.machine = sim::MachineConfig::platform_c2050();
      config.machine.cpu_cores = 2;
      config.use_history_models = false;
      core::initialize(config);
    }
  }

  static void expect_close(double a, double b, double rel = 1e-3) {
    const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
    EXPECT_NEAR(a, b, rel * scale);
  }
};

TEST_F(DriversTest, SpmvToolEqualsDirect) {
  const auto problem = spmv::make_problem(sparse::MatrixClass::kHB, 0.02);
  expect_close(spmv_tool(problem), spmv_direct(problem));
}

TEST_F(DriversTest, SgemmToolEqualsDirect) {
  const auto problem = sgemm::make_problem(20, 24, 28);
  expect_close(sgemm_tool(problem), sgemm_direct(problem));
}

TEST_F(DriversTest, BfsToolEqualsDirect) {
  const auto problem = bfs::make_problem(1500, 4);
  expect_close(bfs_tool(problem), bfs_direct(problem));
}

TEST_F(DriversTest, CfdToolEqualsDirect) {
  const auto problem = cfd::make_problem(400, 3);
  expect_close(cfd_tool(problem), cfd_direct(problem));
}

TEST_F(DriversTest, HotspotToolEqualsDirect) {
  const auto problem = hotspot::make_problem(20, 20, 4);
  expect_close(hotspot_tool(problem), hotspot_direct(problem));
}

TEST_F(DriversTest, LudToolEqualsDirect) {
  const auto problem = lud::make_problem(32);
  expect_close(lud_tool(problem), lud_direct(problem));
}

TEST_F(DriversTest, NwToolEqualsDirect) {
  const auto problem = nw::make_problem(64);
  expect_close(nw_tool(problem), nw_direct(problem));
}

TEST_F(DriversTest, ParticlefilterToolEqualsDirect) {
  const auto problem = particlefilter::make_problem(256, 3);
  expect_close(particlefilter_tool(problem), particlefilter_direct(problem));
}

TEST_F(DriversTest, PathfinderToolEqualsDirect) {
  const auto problem = pathfinder::make_problem(30, 40);
  expect_close(pathfinder_tool(problem), pathfinder_direct(problem));
}

TEST_F(DriversTest, OdeToolEqualsDirect) {
  const auto problem = ode::make_problem(16, 8);
  expect_close(ode_tool(problem), ode_direct(problem));
}

TEST_F(DriversTest, ToolVersionsMatchKernelReferences) {
  // The tool drivers must also agree with the no-runtime references.
  const auto spmv_problem = spmv::make_problem(sparse::MatrixClass::kConvex, 0.01);
  double expected = 0.0;
  for (float v : spmv::reference(spmv_problem)) expected += v;
  expect_close(spmv_tool(spmv_problem), expected);

  const auto sgemm_problem = sgemm::make_problem(16, 16, 16);
  expected = 0.0;
  for (float v : sgemm::reference(sgemm_problem)) expected += v;
  expect_close(sgemm_tool(sgemm_problem), expected);
}

TEST(DriverSourcesTable, AllFilesExistAndToolIsSmaller) {
  const std::filesystem::path root(PEPPHER_SOURCE_ROOT);
  for (const DriverSources& app : driver_sources()) {
    const auto tool_path = root / app.tool_file;
    const auto direct_path = root / app.direct_file;
    ASSERT_TRUE(std::filesystem::exists(tool_path)) << app.tool_file;
    ASSERT_TRUE(std::filesystem::exists(direct_path)) << app.direct_file;
    const std::size_t tool_loc = fs::count_source_lines(tool_path);
    const std::size_t direct_loc = fs::count_source_lines(direct_path);
    // The paper's Table I result: the tool version always needs fewer lines.
    EXPECT_LT(tool_loc, direct_loc) << app.app;
  }
  EXPECT_EQ(driver_sources().size(), 10u);  // all ten Table I applications
}

}  // namespace
}  // namespace peppher::apps::drivers
