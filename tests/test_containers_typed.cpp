// Typed container tests: the smart containers are generic in the element
// type (§IV-D: "all three containers are made generic in the element type,
// using C++ templates") — exercise Vector/Matrix/Scalar over several
// element types, managed and unmanaged, plus engine lifecycle stress and
// task completion callbacks.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>

#include "containers/containers.hpp"
#include "runtime/engine.hpp"

namespace peppher::cont {
namespace {

template <typename T>
class TypedContainers : public ::testing::Test {
 protected:
  TypedContainers() : engine_(config()) {}

  static rt::EngineConfig config() {
    rt::EngineConfig c;
    c.machine = sim::MachineConfig::platform_c2050();
    c.machine.cpu_cores = 1;
    c.use_history_models = false;
    return c;
  }

  /// Doubles every element of operand 0 (element type T), on the GPU.
  rt::Codelet make_doubler() {
    rt::Codelet codelet("typed_double");
    rt::Implementation impl;
    impl.arch = rt::Arch::kCuda;
    impl.name = "typed_double_cuda";
    impl.fn = [](rt::ExecContext& ctx) {
      auto* data = ctx.buffer_as<T>(0);
      for (std::size_t i = 0; i < ctx.elements(0); ++i) {
        data[i] = static_cast<T>(data[i] + data[i]);
      }
    };
    codelet.add_impl(std::move(impl));
    return codelet;
  }

  rt::Engine engine_;
};

using ElementTypes = ::testing::Types<float, double, std::int32_t, std::uint64_t>;
TYPED_TEST_SUITE(TypedContainers, ElementTypes);

TYPED_TEST(TypedContainers, UnmanagedVectorBehavesLikeStdVector) {
  Vector<TypeParam> v(10, TypeParam{3});
  EXPECT_EQ(v.size(), 10u);
  v[4] = TypeParam{7};
  EXPECT_EQ(static_cast<TypeParam>(v[4]), TypeParam{7});
  EXPECT_EQ(static_cast<TypeParam>(v[5]), TypeParam{3});
}

TYPED_TEST(TypedContainers, ManagedVectorRoundTripsThroughGpu) {
  Vector<TypeParam> v(&this->engine_, 33, TypeParam{2});
  rt::Codelet codelet = this->make_doubler();
  rt::TaskSpec spec;
  spec.codelet = &codelet;
  spec.operands = {{v.handle(), rt::AccessMode::kReadWrite}};
  spec.synchronous = true;
  this->engine_.submit(std::move(spec));
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_EQ(static_cast<TypeParam>(v[i]), TypeParam{4});
  }
}

TYPED_TEST(TypedContainers, MatrixProxyAndBulkViewsAgree) {
  Matrix<TypeParam> m(&this->engine_, 4, 5, TypeParam{1});
  m(2, 3) = TypeParam{9};
  auto view = m.read_access();
  EXPECT_EQ(view[2 * 5 + 3], TypeParam{9});
  EXPECT_EQ(view[0], TypeParam{1});
}

TYPED_TEST(TypedContainers, ScalarThroughTask) {
  Scalar<TypeParam> s(&this->engine_, TypeParam{21});
  rt::Codelet codelet = this->make_doubler();
  rt::TaskSpec spec;
  spec.codelet = &codelet;
  spec.operands = {{s.handle(), rt::AccessMode::kReadWrite}};
  spec.synchronous = true;
  this->engine_.submit(std::move(spec));
  EXPECT_EQ(s.get(), TypeParam{42});
}

// ---------------------------------------------------------------------------
// engine lifecycle & callbacks (not type-parameterised)
// ---------------------------------------------------------------------------

TEST(EngineLifecycle, RepeatedConstructionAndTeardown) {
  for (int round = 0; round < 8; ++round) {
    rt::EngineConfig config;
    config.machine = round % 2 == 0 ? sim::MachineConfig::platform_c2050()
                                    : sim::MachineConfig::cpu_only(2);
    config.machine.cpu_cores = 1 + round % 3;
    config.use_history_models = false;
    rt::Engine engine(config);
    Vector<float> v(&engine, 64, 1.0f);
    rt::Codelet codelet("lifecycle");
    rt::Implementation impl;
    impl.arch = rt::Arch::kCpu;
    impl.name = "lifecycle_cpu";
    impl.fn = [](rt::ExecContext& ctx) {
      auto* d = ctx.buffer_as<float>(0);
      for (std::size_t i = 0; i < ctx.elements(0); ++i) d[i] += 1.0f;
    };
    codelet.add_impl(std::move(impl));
    for (int i = 0; i < 10; ++i) {
      rt::TaskSpec spec;
      spec.codelet = &codelet;
      spec.operands = {{v.handle(), rt::AccessMode::kReadWrite}};
      engine.submit(std::move(spec));
    }
    EXPECT_FLOAT_EQ(v[0], 11.0f);  // implicit sync through the proxy
  }  // destructor must drain and join cleanly every round
}

TEST(Callbacks, FireOnceAfterCompletion) {
  rt::EngineConfig config;
  config.machine = sim::MachineConfig::cpu_only(2);
  config.use_history_models = false;
  rt::Engine engine(config);
  rt::Codelet codelet("cb");
  rt::Implementation impl;
  impl.arch = rt::Arch::kCpu;
  impl.name = "cb_cpu";
  impl.fn = [](rt::ExecContext&) {};
  codelet.add_impl(std::move(impl));

  std::atomic<int> fired{0};
  std::atomic<bool> saw_done{false};
  std::vector<float> data(4, 0.0f);
  auto handle = engine.register_buffer(data.data(), 16, 4);
  for (int i = 0; i < 16; ++i) {
    rt::TaskSpec spec;
    spec.codelet = &codelet;
    spec.operands = {{handle, rt::AccessMode::kReadWrite}};
    spec.on_complete = [&](const rt::Task& task) {
      fired++;
      saw_done = saw_done || task.state == rt::TaskState::kDone;
    };
    engine.submit(std::move(spec));
  }
  engine.wait_for_all();
  EXPECT_EQ(fired.load(), 16);
  EXPECT_TRUE(saw_done.load());
}

TEST(Callbacks, FireForCancelledSuccessors) {
  rt::EngineConfig config;
  config.machine = sim::MachineConfig::cpu_only(1);
  config.use_history_models = false;
  rt::Engine engine(config);

  rt::Codelet bomb("cb_bomb");
  {
    rt::Implementation impl;
    impl.arch = rt::Arch::kCpu;
    impl.name = "cb_bomb_cpu";
    impl.fn = [](rt::ExecContext&) { throw std::runtime_error("boom"); };
    bomb.add_impl(std::move(impl));
  }
  rt::Codelet noop("cb_noop");
  {
    rt::Implementation impl;
    impl.arch = rt::Arch::kCpu;
    impl.name = "cb_noop_cpu";
    impl.fn = [](rt::ExecContext&) {};
    noop.add_impl(std::move(impl));
  }

  std::vector<float> data(4, 0.0f);
  auto handle = engine.register_buffer(data.data(), 16, 4);
  std::atomic<int> cancelled_callbacks{0};
  {
    rt::TaskSpec spec;
    spec.codelet = &bomb;
    spec.operands = {{handle, rt::AccessMode::kReadWrite}};
    engine.submit(std::move(spec));
  }
  {
    rt::TaskSpec spec;
    spec.codelet = &noop;
    spec.operands = {{handle, rt::AccessMode::kReadWrite}};
    spec.on_complete = [&](const rt::Task& task) {
      if (task.failed()) cancelled_callbacks++;
    };
    engine.submit(std::move(spec));
  }
  engine.wait_for_all();
  EXPECT_EQ(cancelled_callbacks.load(), 1);
}

}  // namespace
}  // namespace peppher::cont
