// Property-based tests (parameterised over seeds): randomized sequences
// exercising the invariants the system's correctness rests on — MSI
// coherence, sequential-consistency dependency inference, virtual-time
// consistency, partition round-trips, XML round-trips and dispatch-table
// optimality.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>

#include "compose/dispatch.hpp"
#include "runtime/engine.hpp"
#include "runtime/memory.hpp"
#include "support/rng.hpp"
#include "xml/xml.hpp"

namespace peppher {
namespace {

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// MSI coherence under random access sequences
// ---------------------------------------------------------------------------

TEST_P(SeededProperty, CoherenceInvariantsUnderRandomAccesses) {
  Rng rng(GetParam());
  const int nodes = 2 + static_cast<int>(rng.next_below(3));  // host + 1..3
  rt::DataManager manager(nodes, sim::LinkProfile::pcie2_x16());
  std::vector<std::uint32_t> payload(64, 0);
  auto handle = manager.register_buffer(payload.data(),
                                        payload.size() * sizeof(std::uint32_t),
                                        sizeof(std::uint32_t));
  std::uint32_t model = 0;  // what a correct reader must observe
  double last_vtime = 0.0;

  for (int step = 0; step < 200; ++step) {
    const auto node = static_cast<rt::MemoryNodeId>(rng.next_below(nodes));
    const int mode_pick = static_cast<int>(rng.next_below(3));
    const rt::AccessMode mode = mode_pick == 0   ? rt::AccessMode::kRead
                                : mode_pick == 1 ? rt::AccessMode::kWrite
                                                 : rt::AccessMode::kReadWrite;
    rt::VirtualTime ready = 0.0;
    auto* data = static_cast<std::uint32_t*>(handle->acquire(node, mode, &ready));

    // Invariant: fetched data matches the model (except pure writes, whose
    // incoming contents are unspecified).
    if (mode != rt::AccessMode::kWrite) {
      for (std::uint32_t v : std::vector<std::uint32_t>(data, data + 64)) {
        ASSERT_EQ(v, model) << "stale read at step " << step;
      }
      ASSERT_GE(ready, 0.0);
    }
    if (mode != rt::AccessMode::kRead) {
      ++model;
      for (int i = 0; i < 64; ++i) data[i] = model;
      last_vtime += 1.0;
      handle->mark_written(node, last_vtime);
    }

    // Invariant: at most one Owned replica; Owned implies everyone else
    // Invalid; at least one valid replica exists.
    int owned = 0, valid = 0;
    for (int n = 0; n < nodes; ++n) {
      const rt::ReplicaState state = handle->replica_state(n);
      owned += state == rt::ReplicaState::kOwned ? 1 : 0;
      valid += state != rt::ReplicaState::kInvalid ? 1 : 0;
    }
    ASSERT_LE(owned, 1);
    ASSERT_GE(valid, 1);
    if (owned == 1) {
      ASSERT_EQ(valid, 1);
    }
  }
}

// ---------------------------------------------------------------------------
// Sequential consistency of inferred dependencies
// ---------------------------------------------------------------------------

TEST_P(SeededProperty, InferredDependenciesGiveSequentialConsistency) {
  Rng rng(GetParam());
  rt::EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.machine.cpu_cores = 3;
  config.scheduler = GetParam() % 2 == 0 ? "ws" : "eager";
  config.use_history_models = false;
  rt::Engine engine(config);

  // Each handle holds one counter; writer task i does value = value*3 + 1.
  // Sequential consistency in submission order fixes the final value
  // exactly; readers are just extra edges.
  constexpr int kHandles = 4;
  std::vector<std::uint64_t> values(kHandles, 0);
  std::vector<rt::DataHandlePtr> handles;
  std::vector<std::uint64_t> expected(kHandles, 0);
  for (int h = 0; h < kHandles; ++h) {
    handles.push_back(engine.register_buffer(&values[static_cast<std::size_t>(h)],
                                             sizeof(std::uint64_t),
                                             sizeof(std::uint64_t)));
  }

  rt::Codelet writer("prop_writer");
  {
    rt::Implementation impl;
    impl.arch = rt::Arch::kCpu;
    impl.name = "prop_writer_cpu";
    impl.fn = [](rt::ExecContext& ctx) {
      auto* v = ctx.buffer_as<std::uint64_t>(0);
      *v = *v * 3 + 1;
    };
    writer.add_impl(std::move(impl));
    rt::Implementation gpu;
    gpu.arch = rt::Arch::kCuda;
    gpu.name = "prop_writer_cuda";
    gpu.fn = [](rt::ExecContext& ctx) {
      auto* v = ctx.buffer_as<std::uint64_t>(0);
      *v = *v * 3 + 1;
    };
    writer.add_impl(std::move(gpu));
  }
  rt::Codelet reader("prop_reader");
  {
    rt::Implementation impl;
    impl.arch = rt::Arch::kCpu;
    impl.name = "prop_reader_cpu";
    impl.fn = [](rt::ExecContext& ctx) {
      volatile std::uint64_t sink = *ctx.buffer_as<const std::uint64_t>(0);
      (void)sink;
    };
    reader.add_impl(std::move(impl));
  }

  for (int step = 0; step < 150; ++step) {
    const int h = static_cast<int>(rng.next_below(kHandles));
    const bool is_writer = rng.next_double() < 0.5;
    rt::TaskSpec spec;
    spec.codelet = is_writer ? &writer : &reader;
    spec.operands = {{handles[static_cast<std::size_t>(h)],
                      is_writer ? rt::AccessMode::kReadWrite
                                : rt::AccessMode::kRead}};
    engine.submit(std::move(spec));
    if (is_writer) {
      expected[static_cast<std::size_t>(h)] =
          expected[static_cast<std::size_t>(h)] * 3 + 1;
    }
  }
  engine.wait_for_all();
  for (int h = 0; h < kHandles; ++h) {
    engine.acquire_host(handles[static_cast<std::size_t>(h)],
                        rt::AccessMode::kRead);
    EXPECT_EQ(values[static_cast<std::size_t>(h)],
              expected[static_cast<std::size_t>(h)])
        << "handle " << h;
  }
}

// ---------------------------------------------------------------------------
// Virtual-time consistency
// ---------------------------------------------------------------------------

TEST_P(SeededProperty, VirtualTimelineIsConsistent) {
  Rng rng(GetParam());
  rt::EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.machine.cpu_cores = 2;
  config.use_history_models = false;
  rt::Engine engine(config);

  rt::Codelet codelet("vt_probe");
  for (rt::Arch arch : {rt::Arch::kCpu, rt::Arch::kCuda}) {
    rt::Implementation impl;
    impl.arch = arch;
    impl.name = "vt_probe_" + rt::to_string(arch);
    impl.fn = [](rt::ExecContext& ctx) {
      auto* v = ctx.buffer_as<float>(0);
      v[0] += 1.0f;
    };
    impl.cost = [](const std::vector<std::size_t>& bytes, const void*) {
      return sim::KernelCost{1e6, static_cast<double>(bytes[0]), 1.0};
    };
    codelet.add_impl(std::move(impl));
  }

  std::vector<float> buffers(6, 0.0f);
  std::vector<rt::DataHandlePtr> handles;
  for (float& b : buffers) {
    handles.push_back(engine.register_buffer(&b, sizeof(float), sizeof(float)));
  }

  std::vector<rt::TaskPtr> tasks;
  for (int i = 0; i < 60; ++i) {
    rt::TaskSpec spec;
    spec.codelet = &codelet;
    spec.operands = {{handles[rng.next_below(handles.size())],
                      rt::AccessMode::kReadWrite}};
    tasks.push_back(engine.submit(std::move(spec)));
  }
  engine.wait_for_all();

  std::map<rt::WorkerId, std::vector<const rt::Task*>> by_worker;
  double makespan = 0.0;
  for (const auto& task : tasks) {
    ASSERT_EQ(task->state, rt::TaskState::kDone);
    EXPECT_GE(task->vstart, 0.0);
    EXPECT_GT(task->vend, task->vstart);          // positive duration
    EXPECT_GE(task->vstart, task->max_pred_end);  // respects dependencies
    by_worker[task->executed_on].push_back(task.get());
    makespan = std::max(makespan, task->vend);
  }
  EXPECT_DOUBLE_EQ(engine.virtual_makespan(), makespan);
  // No two tasks overlap on the same worker.
  for (auto& [worker, list] : by_worker) {
    std::sort(list.begin(), list.end(),
              [](const rt::Task* a, const rt::Task* b) {
                return a->vstart < b->vstart;
              });
    for (std::size_t i = 1; i < list.size(); ++i) {
      EXPECT_LE(list[i - 1]->vend, list[i]->vstart + 1e-12)
          << "overlap on worker " << worker;
    }
  }
}

// ---------------------------------------------------------------------------
// Partition round-trips
// ---------------------------------------------------------------------------

TEST_P(SeededProperty, PartitionRoundTripPreservesData) {
  Rng rng(GetParam());
  rt::DataManager manager(3, sim::LinkProfile::pcie2_x16());
  const std::size_t elements = 16 + rng.next_below(200);
  std::vector<std::uint32_t> data(elements);
  std::iota(data.begin(), data.end(), 1000u);
  auto handle = manager.register_buffer(data.data(),
                                        data.size() * sizeof(std::uint32_t),
                                        sizeof(std::uint32_t));
  const std::size_t parts = 1 + rng.next_below(std::min<std::size_t>(elements, 9));
  auto children = handle->partition(parts);

  // Coverage: children tile the parent exactly.
  std::size_t covered = 0;
  for (const auto& child : children) covered += child->elements();
  ASSERT_EQ(covered, elements);

  // Each child doubles its slice on a random device node.
  for (const auto& child : children) {
    const auto node = static_cast<rt::MemoryNodeId>(1 + rng.next_below(2));
    auto* p = static_cast<std::uint32_t*>(
        child->acquire(node, rt::AccessMode::kReadWrite, nullptr));
    for (std::size_t i = 0; i < child->elements(); ++i) p[i] *= 2;
    child->mark_written(node, 1.0);
  }
  handle->unpartition();
  for (std::size_t i = 0; i < elements; ++i) {
    ASSERT_EQ(data[i], 2 * (1000u + static_cast<std::uint32_t>(i)));
  }
}

// ---------------------------------------------------------------------------
// Device-capacity invariants under random access/eviction pressure
// ---------------------------------------------------------------------------

TEST_P(SeededProperty, EvictionKeepsDataCorrectUnderPressure) {
  Rng rng(GetParam() * 8191);
  rt::DataManager manager(2, sim::LinkProfile::pcie2_x16());
  const std::size_t capacity = 2048;
  manager.set_node_capacity(1, capacity);

  constexpr int kHandles = 6;
  std::vector<std::vector<std::uint32_t>> storage(kHandles);
  std::vector<rt::DataHandlePtr> handles;
  std::vector<std::uint32_t> model(kHandles, 0);
  for (int h = 0; h < kHandles; ++h) {
    storage[static_cast<std::size_t>(h)].assign(128, 0);  // 512 B each
    handles.push_back(manager.register_buffer(
        storage[static_cast<std::size_t>(h)].data(), 512, 4));
  }

  for (int step = 0; step < 300; ++step) {
    const int h = static_cast<int>(rng.next_below(kHandles));
    auto& handle = handles[static_cast<std::size_t>(h)];
    const bool write = rng.next_double() < 0.4;
    auto* data = static_cast<std::uint32_t*>(handle->acquire(
        1, write ? rt::AccessMode::kReadWrite : rt::AccessMode::kRead, nullptr));
    // Reads must always observe the model value, across any evictions.
    for (int i = 0; i < 128; ++i) {
      ASSERT_EQ(data[i], model[static_cast<std::size_t>(h)])
          << "handle " << h << " step " << step;
    }
    if (write) {
      ++model[static_cast<std::size_t>(h)];
      for (int i = 0; i < 128; ++i) data[i] = model[static_cast<std::size_t>(h)];
      handle->mark_written(1, static_cast<double>(step));
    }
    handle->release(1);
    // Capacity invariant: pins are all released, so the manager must have
    // kept the node within capacity (everything is evictable).
    ASSERT_LE(manager.node_allocated(1), capacity);
  }
  EXPECT_EQ(manager.stats().overcommits, 0u);
  // Final consistency: each handle's data reaches the host intact.
  for (int h = 0; h < kHandles; ++h) {
    auto* host = static_cast<std::uint32_t*>(
        handles[static_cast<std::size_t>(h)]->acquire(rt::kHostNode,
                                                      rt::AccessMode::kRead,
                                                      nullptr));
    ASSERT_EQ(host[0], model[static_cast<std::size_t>(h)]);
  }
}

// ---------------------------------------------------------------------------
// XML round-trips on random trees
// ---------------------------------------------------------------------------

namespace {

void build_random_tree(xml::Element& element, Rng& rng, int depth) {
  const char* const names[] = {"alpha", "beta", "gamma", "delta"};
  const char* const values[] = {"plain", "with space", "a<b&c>\"d'",
                                "123.5", ""};
  const std::size_t attrs = rng.next_below(3);
  for (std::size_t a = 0; a < attrs; ++a) {
    element.set_attribute(std::string("k") + std::to_string(a),
                          values[rng.next_below(5)]);
  }
  if (depth > 0 && rng.next_double() < 0.8) {
    const std::size_t kids = 1 + rng.next_below(3);
    for (std::size_t k = 0; k < kids; ++k) {
      build_random_tree(element.append_child(names[rng.next_below(4)]), rng,
                        depth - 1);
    }
  } else if (rng.next_double() < 0.5) {
    element.set_text(values[rng.next_below(5)]);
  }
}

void expect_equal_trees(const xml::Element& a, const xml::Element& b) {
  ASSERT_EQ(a.name(), b.name());
  ASSERT_EQ(a.text(), b.text());
  ASSERT_EQ(a.attributes().size(), b.attributes().size());
  for (std::size_t i = 0; i < a.attributes().size(); ++i) {
    EXPECT_EQ(a.attributes()[i], b.attributes()[i]);
  }
  ASSERT_EQ(a.child_count(), b.child_count());
  for (std::size_t i = 0; i < a.child_count(); ++i) {
    expect_equal_trees(*a.all_children()[i], *b.all_children()[i]);
  }
}

}  // namespace

TEST_P(SeededProperty, XmlSerializeParseRoundTrip) {
  Rng rng(GetParam() * 7919);
  for (int round = 0; round < 20; ++round) {
    xml::Element root("root");
    build_random_tree(root, rng, 4);
    const std::string text = xml::serialize(root);
    const xml::Document parsed = xml::parse(text);
    expect_equal_trees(root, *parsed.root);
  }
}

// ---------------------------------------------------------------------------
// Dispatch tables pick the argmin at every scenario point
// ---------------------------------------------------------------------------

TEST_P(SeededProperty, DispatchTableIsArgminAtScenarios) {
  Rng rng(GetParam() * 104729);
  compose::ComponentNode node;
  node.interface.name = "prop";
  const char* const langs[] = {"cpu", "openmp", "cuda"};
  // Random affine cost curves per variant.
  struct Curve {
    double base, slope;
  };
  std::map<std::string, Curve> curves;
  for (int v = 0; v < 3; ++v) {
    compose::VariantNode variant;
    variant.descriptor.name = std::string("prop_") + langs[v];
    variant.descriptor.interface_name = "prop";
    variant.descriptor.language = langs[v];
    curves[variant.descriptor.name] =
        Curve{rng.uniform(1e-6, 1e-3), rng.uniform(1e-12, 1e-8)};
    node.variants.push_back(std::move(variant));
  }
  auto predict = [&curves](const compose::VariantNode& variant,
                           std::size_t bytes) -> std::optional<double> {
    const Curve& c = curves.at(variant.descriptor.name);
    return c.base + c.slope * static_cast<double>(bytes);
  };
  std::vector<std::size_t> scenarios;
  for (int s = 0; s < 12; ++s) {
    scenarios.push_back(1 + rng.next_below(1 << 28));
  }
  const compose::DispatchTable table =
      compose::DispatchTable::build(node, scenarios, predict);
  for (std::size_t bytes : scenarios) {
    std::string best;
    double best_cost = std::numeric_limits<double>::infinity();
    for (const auto& variant : node.variants) {
      const double cost = *predict(variant, bytes);
      if (cost < best_cost) {
        best_cost = cost;
        best = variant.descriptor.name;
      }
    }
    ASSERT_NE(table.lookup(bytes), nullptr);
    EXPECT_EQ(table.lookup(bytes)->variant, best) << "bytes=" << bytes;
  }
}

// ---------------------------------------------------------------------------
// History-model regression brackets monotone data
// ---------------------------------------------------------------------------

TEST_P(SeededProperty, RegressionInterpolatesWithinRecordedRange) {
  Rng rng(GetParam() * 31337);
  rt::HistoryModel model;
  const double a = rng.uniform(1e-10, 1e-7);
  const double b = rng.uniform(0.8, 1.8);
  std::vector<std::size_t> sizes;
  for (int i = 0; i < 6; ++i) {
    const std::size_t bytes = 1000u << i;
    sizes.push_back(bytes);
    model.record(bytes, bytes, a * std::pow(static_cast<double>(bytes), b));
  }
  // Interior estimates stay within the recorded extremes and within 2x of
  // the generating law.
  for (int probe = 0; probe < 10; ++probe) {
    const std::size_t bytes = 1000 + rng.next_below(31000);
    const auto estimate = model.regression_estimate(bytes);
    ASSERT_TRUE(estimate.has_value());
    const double truth = a * std::pow(static_cast<double>(bytes), b);
    EXPECT_GT(*estimate, truth * 0.5);
    EXPECT_LT(*estimate, truth * 2.0);
  }
}

}  // namespace
}  // namespace peppher
