// Data-management tests: MSI coherence across memory nodes, transfer
// accounting, partitioning, and the paper's Figure 3 scenario (2 copy
// operations instead of 7 thanks to lazy smart-container coherence).
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "runtime/engine.hpp"
#include "runtime/memory.hpp"
#include "support/error.hpp"

namespace peppher::rt {
namespace {

class MemoryTest : public ::testing::Test {
 protected:
  MemoryTest() : manager_(3, sim::LinkProfile::pcie2_x16()) {}  // host + 2 GPUs

  DataManager manager_;
};

TEST_F(MemoryTest, FreshHandleIsOwnedOnHost) {
  std::vector<float> data(16, 1.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  EXPECT_EQ(h->replica_state(kHostNode), ReplicaState::kOwned);
  EXPECT_EQ(h->replica_state(1), ReplicaState::kInvalid);
  EXPECT_EQ(h->bytes(), 64u);
  EXPECT_EQ(h->elements(), 16u);
}

TEST_F(MemoryTest, ReadAcquireCopiesAndShares) {
  std::vector<float> data(16);
  std::iota(data.begin(), data.end(), 0.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  VirtualTime ready = -1.0;
  auto* device_ptr = static_cast<float*>(h->acquire(1, AccessMode::kRead, &ready));
  EXPECT_GT(ready, 0.0);  // a transfer happened
  EXPECT_EQ(h->replica_state(kHostNode), ReplicaState::kShared);
  EXPECT_EQ(h->replica_state(1), ReplicaState::kShared);
  for (int i = 0; i < 16; ++i) EXPECT_FLOAT_EQ(device_ptr[i], data[i]);
  EXPECT_EQ(manager_.stats().host_to_device_count, 1u);
}

TEST_F(MemoryTest, SecondReadAcquireIsFree) {
  std::vector<float> data(16, 2.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  h->acquire(1, AccessMode::kRead, nullptr);
  const auto before = manager_.stats().total_count();
  VirtualTime ready = -1.0;
  h->acquire(1, AccessMode::kRead, &ready);
  EXPECT_EQ(manager_.stats().total_count(), before);
}

TEST_F(MemoryTest, WriteAcquireInvalidatesOthersWithoutTransfer) {
  std::vector<float> data(16, 3.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  h->acquire(1, AccessMode::kWrite, nullptr);
  EXPECT_EQ(manager_.stats().total_count(), 0u);  // W needs no fetch
  EXPECT_EQ(h->replica_state(1), ReplicaState::kOwned);
  EXPECT_EQ(h->replica_state(kHostNode), ReplicaState::kInvalid);
}

TEST_F(MemoryTest, ReadWriteFetchesThenOwns) {
  std::vector<float> data(16, 4.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  auto* ptr = static_cast<float*>(h->acquire(1, AccessMode::kReadWrite, nullptr));
  EXPECT_FLOAT_EQ(ptr[0], 4.0f);
  EXPECT_EQ(h->replica_state(1), ReplicaState::kOwned);
  EXPECT_EQ(h->replica_state(kHostNode), ReplicaState::kInvalid);
  EXPECT_EQ(manager_.stats().host_to_device_count, 1u);
}

TEST_F(MemoryTest, ModifiedDeviceDataFlowsBackToHost) {
  std::vector<float> data(8, 0.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  auto* device = static_cast<float*>(h->acquire(1, AccessMode::kWrite, nullptr));
  for (int i = 0; i < 8; ++i) device[i] = 9.0f;
  h->mark_written(1, 1.0);
  h->acquire(kHostNode, AccessMode::kRead, nullptr);
  for (float v : data) EXPECT_FLOAT_EQ(v, 9.0f);
  EXPECT_EQ(manager_.stats().device_to_host_count, 1u);
}

TEST_F(MemoryTest, DeviceToDeviceGoesThroughHost) {
  std::vector<float> data(8, 1.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  auto* d1 = static_cast<float*>(h->acquire(1, AccessMode::kReadWrite, nullptr));
  d1[0] = 42.0f;
  h->mark_written(1, 1.0);
  auto* d2 = static_cast<float*>(h->acquire(2, AccessMode::kRead, nullptr));
  EXPECT_FLOAT_EQ(d2[0], 42.0f);
  // One d2h (to host) + one h2d (to device 2).
  EXPECT_EQ(manager_.stats().device_to_host_count, 1u);
  EXPECT_EQ(manager_.stats().host_to_device_count, 2u);  // incl. first RW fetch
}

// The Figure 3 walk-through: 4 component calls on the GPU + 2 application
// accesses => exactly 2 copy operations (not 7).
TEST_F(MemoryTest, Figure3ScenarioNeedsOnlyTwoCopies) {
  std::vector<float> v0(1024, 0.0f);
  auto h = manager_.register_buffer(v0.data(), v0.size() * sizeof(float),
                                    sizeof(float));
  manager_.reset_stats();

  // line 4: comp1(v0, write) on GPU — allocation only, no copy.
  auto* d = static_cast<float*>(h->acquire(1, AccessMode::kWrite, nullptr));
  for (int i = 0; i < 1024; ++i) d[i] = 1.0f;
  h->mark_written(1, 1.0);

  // line 6: application reads an element — first copy (device -> host).
  h->acquire(kHostNode, AccessMode::kRead, nullptr);
  EXPECT_FLOAT_EQ(v0[7], 1.0f);

  // line 8: comp2(v0, readwrite) on GPU — device copy still valid, no copy.
  d = static_cast<float*>(h->acquire(1, AccessMode::kReadWrite, nullptr));
  for (int i = 0; i < 1024; ++i) d[i] += 1.0f;
  h->mark_written(1, 2.0);

  // lines 10, 12: comp3/comp4 read on GPU — no copies.
  h->acquire(1, AccessMode::kRead, nullptr);
  h->acquire(1, AccessMode::kRead, nullptr);

  // line 14: application writes — second copy (device -> host), then the
  // device replica is outdated.
  h->acquire(kHostNode, AccessMode::kReadWrite, nullptr);
  EXPECT_FLOAT_EQ(v0[7], 2.0f);
  v0[7] = 5.0f;

  EXPECT_EQ(manager_.stats().total_count(), 2u);
  EXPECT_EQ(manager_.stats().device_to_host_count, 2u);
  EXPECT_EQ(h->replica_state(1), ReplicaState::kInvalid);
}

// -- estimates -----------------------------------------------------------------

TEST_F(MemoryTest, FetchEstimateMatchesLinkModel) {
  std::vector<float> data(1 << 20, 0.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  const double est = h->estimate_fetch_seconds(1, AccessMode::kRead);
  EXPECT_NEAR(est, manager_.estimate_link_seconds(h->bytes()), 1e-12);
  EXPECT_DOUBLE_EQ(h->estimate_fetch_seconds(1, AccessMode::kWrite), 0.0);
  EXPECT_DOUBLE_EQ(h->estimate_fetch_seconds(kHostNode, AccessMode::kRead), 0.0);
}

TEST_F(MemoryTest, LinkContentionSerialisesTransfers) {
  const VirtualTime end1 = manager_.charge_link(8 << 20, 0.0);
  const VirtualTime end2 = manager_.charge_link(8 << 20, 0.0);
  EXPECT_GT(end2, end1);
  EXPECT_NEAR(end2, 2.0 * end1, end1 * 0.01 + 2e-5);
}

// -- partitioning ---------------------------------------------------------------

TEST_F(MemoryTest, PartitionSplitsElementsContiguously) {
  std::vector<float> data(10);
  std::iota(data.begin(), data.end(), 0.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  auto children = h->partition(3);
  ASSERT_EQ(children.size(), 3u);
  EXPECT_EQ(children[0]->elements(), 4u);  // 10 = 4 + 3 + 3
  EXPECT_EQ(children[1]->elements(), 3u);
  EXPECT_EQ(children[2]->elements(), 3u);
  EXPECT_TRUE(h->is_partitioned());

  auto* c1 = static_cast<float*>(children[1]->acquire(kHostNode,
                                                      AccessMode::kRead, nullptr));
  EXPECT_FLOAT_EQ(c1[0], 4.0f);  // second block starts at element 4
}

TEST_F(MemoryTest, ParentUnusableWhilePartitioned) {
  std::vector<float> data(8, 0.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  auto children = h->partition(2);
  EXPECT_THROW(h->acquire(kHostNode, AccessMode::kRead, nullptr), Error);
  EXPECT_THROW(h->partition(2), Error);
}

TEST_F(MemoryTest, UnpartitionGathersChildDeviceData) {
  std::vector<float> data(8, 0.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  auto children = h->partition(2);
  // Child 0 modified on device 1; child 1 modified on device 2.
  for (std::size_t c = 0; c < 2; ++c) {
    auto* p = static_cast<float*>(
        children[c]->acquire(static_cast<MemoryNodeId>(c + 1),
                             AccessMode::kWrite, nullptr));
    for (std::size_t i = 0; i < children[c]->elements(); ++i) {
      p[i] = static_cast<float>(c + 1);
    }
    children[c]->mark_written(static_cast<MemoryNodeId>(c + 1), 1.0);
  }
  h->unpartition();
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(data[i], 1.0f);
  for (int i = 4; i < 8; ++i) EXPECT_FLOAT_EQ(data[i], 2.0f);
  // Children are dead now.
  EXPECT_THROW(children[0]->acquire(kHostNode, AccessMode::kRead, nullptr), Error);
  // Parent works again.
  EXPECT_NO_THROW(h->acquire(kHostNode, AccessMode::kRead, nullptr));
}

TEST_F(MemoryTest, PartitionMoreThanElementsThrows) {
  std::vector<float> data(2, 0.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  EXPECT_THROW(h->partition(5), Error);
  EXPECT_THROW(h->partition(0), Error);
}

TEST_F(MemoryTest, NestedPartitionUnsupported) {
  std::vector<float> data(8, 0.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  auto children = h->partition(2);
  EXPECT_THROW(children[0]->partition(2), Error);
}

TEST_F(MemoryTest, RegisterRejectsBadArguments) {
  std::vector<float> data(4, 0.0f);
  EXPECT_THROW(manager_.register_buffer(nullptr, 16, 4), Error);
  EXPECT_THROW(manager_.register_buffer(data.data(), 0, 4), Error);
  EXPECT_THROW(manager_.register_buffer(data.data(), 15, 4), Error);  // not multiple
}

// -- device memory capacity & eviction (§IV-D) ---------------------------------

class EvictionTest : public ::testing::Test {
 protected:
  EvictionTest() : manager_(2, sim::LinkProfile::pcie2_x16()) {
    manager_.set_node_capacity(1, 1024);  // tiny device: 1 KiB
  }

  DataHandlePtr make_handle(std::vector<float>& storage, std::size_t floats) {
    storage.assign(floats, 1.0f);
    return manager_.register_buffer(storage.data(), floats * sizeof(float),
                                    sizeof(float));
  }

  DataManager manager_;
};

TEST_F(EvictionTest, UnpinnedReplicaIsEvictedUnderPressure) {
  std::vector<float> a_data, b_data;
  auto a = make_handle(a_data, 128);  // 512 B
  auto b = make_handle(b_data, 128);  // 512 B

  a->acquire(1, AccessMode::kRead, nullptr);
  a->release(1);
  EXPECT_EQ(manager_.node_allocated(1), 512u);

  b->acquire(1, AccessMode::kRead, nullptr);
  b->release(1);
  EXPECT_EQ(manager_.node_allocated(1), 1024u);  // exactly at capacity

  // A third 512 B allocation must evict the oldest resident (a).
  std::vector<float> c_data;
  auto c = make_handle(c_data, 128);
  c->acquire(1, AccessMode::kRead, nullptr);
  c->release(1);
  EXPECT_EQ(manager_.node_allocated(1), 1024u);
  EXPECT_EQ(a->replica_state(1), ReplicaState::kInvalid);
  EXPECT_EQ(b->replica_state(1), ReplicaState::kShared);
  EXPECT_EQ(manager_.stats().evictions, 1u);
  EXPECT_EQ(manager_.stats().overcommits, 0u);
}

TEST_F(EvictionTest, PinnedReplicasAreNeverEvicted) {
  std::vector<float> a_data, b_data;
  auto a = make_handle(a_data, 192);  // 768 B, stays pinned
  auto b = make_handle(b_data, 128);  // 512 B -> exceeds capacity
  a->acquire(1, AccessMode::kRead, nullptr);  // no release: pinned
  b->acquire(1, AccessMode::kRead, nullptr);
  EXPECT_EQ(a->replica_state(1), ReplicaState::kShared);  // survived
  EXPECT_EQ(manager_.stats().evictions, 0u);
  EXPECT_EQ(manager_.stats().overcommits, 1u);  // nothing evictable
  EXPECT_GT(manager_.node_allocated(1), 1024u);
  a->release(1);
  b->release(1);
}

TEST_F(EvictionTest, OwnedReplicaIsFlushedHomeBeforeEviction) {
  std::vector<float> a_data, b_data;
  auto a = make_handle(a_data, 192);
  auto* device = static_cast<float*>(a->acquire(1, AccessMode::kWrite, nullptr));
  for (int i = 0; i < 192; ++i) device[i] = 7.0f;
  a->mark_written(1, 1.0);
  a->release(1);

  // Pressure from a second handle evicts a's Owned replica: the data must
  // land back on the host, not be lost.
  auto b = make_handle(b_data, 128);
  b->acquire(1, AccessMode::kRead, nullptr);
  b->release(1);
  EXPECT_EQ(a->replica_state(1), ReplicaState::kInvalid);
  EXPECT_EQ(a->replica_state(kHostNode), ReplicaState::kOwned);
  for (float v : a_data) ASSERT_FLOAT_EQ(v, 7.0f);
  EXPECT_EQ(manager_.stats().evictions, 1u);
}

TEST_F(EvictionTest, EvictedDataIsRefetchedOnNextUse) {
  std::vector<float> a_data, b_data;
  auto a = make_handle(a_data, 192);
  a->acquire(1, AccessMode::kRead, nullptr);
  a->release(1);
  auto b = make_handle(b_data, 192);
  b->acquire(1, AccessMode::kRead, nullptr);
  b->release(1);
  ASSERT_EQ(a->replica_state(1), ReplicaState::kInvalid);  // evicted
  // Re-acquiring re-allocates and re-transfers (the §IV-D caveat).
  const auto before = manager_.stats().host_to_device_count;
  auto* ptr = static_cast<float*>(a->acquire(1, AccessMode::kRead, nullptr));
  EXPECT_FLOAT_EQ(ptr[0], 1.0f);
  EXPECT_EQ(manager_.stats().host_to_device_count, before + 1);
  a->release(1);
}

TEST_F(EvictionTest, DyingHandleReturnsItsAllocation) {
  std::vector<float> a_data;
  {
    auto a = make_handle(a_data, 128);
    a->acquire(1, AccessMode::kRead, nullptr);
    a->release(1);
    EXPECT_EQ(manager_.node_allocated(1), 512u);
  }
  EXPECT_EQ(manager_.node_allocated(1), 0u);
}

TEST_F(MemoryTest, StatsTrackBytes) {
  std::vector<float> data(256, 0.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  h->acquire(1, AccessMode::kRead, nullptr);
  EXPECT_EQ(manager_.stats().host_to_device_bytes, 1024u);
  manager_.reset_stats();
  EXPECT_EQ(manager_.stats().total_count(), 0u);
}

}  // namespace
}  // namespace peppher::rt
