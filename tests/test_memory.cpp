// Data-management tests: MSI coherence across memory nodes, transfer
// accounting, partitioning, and the paper's Figure 3 scenario (2 copy
// operations instead of 7 thanks to lazy smart-container coherence).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <thread>

#include "runtime/engine.hpp"
#include "runtime/memory.hpp"
#include "support/error.hpp"

namespace peppher::rt {
namespace {

class MemoryTest : public ::testing::Test {
 protected:
  MemoryTest() : manager_(3, sim::LinkProfile::pcie2_x16()) {}  // host + 2 GPUs

  DataManager manager_;
};

TEST_F(MemoryTest, FreshHandleIsOwnedOnHost) {
  std::vector<float> data(16, 1.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  EXPECT_EQ(h->replica_state(kHostNode), ReplicaState::kOwned);
  EXPECT_EQ(h->replica_state(1), ReplicaState::kInvalid);
  EXPECT_EQ(h->bytes(), 64u);
  EXPECT_EQ(h->elements(), 16u);
}

TEST_F(MemoryTest, ReadAcquireCopiesAndShares) {
  std::vector<float> data(16);
  std::iota(data.begin(), data.end(), 0.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  VirtualTime ready = -1.0;
  auto* device_ptr = static_cast<float*>(h->acquire(1, AccessMode::kRead, &ready));
  EXPECT_GT(ready, 0.0);  // a transfer happened
  EXPECT_EQ(h->replica_state(kHostNode), ReplicaState::kShared);
  EXPECT_EQ(h->replica_state(1), ReplicaState::kShared);
  for (int i = 0; i < 16; ++i) EXPECT_FLOAT_EQ(device_ptr[i], data[i]);
  EXPECT_EQ(manager_.stats().host_to_device_count, 1u);
}

TEST_F(MemoryTest, SecondReadAcquireIsFree) {
  std::vector<float> data(16, 2.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  h->acquire(1, AccessMode::kRead, nullptr);
  const auto before = manager_.stats().total_count();
  VirtualTime ready = -1.0;
  h->acquire(1, AccessMode::kRead, &ready);
  EXPECT_EQ(manager_.stats().total_count(), before);
}

TEST_F(MemoryTest, WriteAcquireInvalidatesOthersWithoutTransfer) {
  std::vector<float> data(16, 3.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  h->acquire(1, AccessMode::kWrite, nullptr);
  EXPECT_EQ(manager_.stats().total_count(), 0u);  // W needs no fetch
  EXPECT_EQ(h->replica_state(1), ReplicaState::kOwned);
  EXPECT_EQ(h->replica_state(kHostNode), ReplicaState::kInvalid);
}

TEST_F(MemoryTest, ReadWriteFetchesThenOwns) {
  std::vector<float> data(16, 4.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  auto* ptr = static_cast<float*>(h->acquire(1, AccessMode::kReadWrite, nullptr));
  EXPECT_FLOAT_EQ(ptr[0], 4.0f);
  EXPECT_EQ(h->replica_state(1), ReplicaState::kOwned);
  EXPECT_EQ(h->replica_state(kHostNode), ReplicaState::kInvalid);
  EXPECT_EQ(manager_.stats().host_to_device_count, 1u);
}

TEST_F(MemoryTest, ModifiedDeviceDataFlowsBackToHost) {
  std::vector<float> data(8, 0.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  auto* device = static_cast<float*>(h->acquire(1, AccessMode::kWrite, nullptr));
  for (int i = 0; i < 8; ++i) device[i] = 9.0f;
  h->mark_written(1, 1.0);
  h->acquire(kHostNode, AccessMode::kRead, nullptr);
  for (float v : data) EXPECT_FLOAT_EQ(v, 9.0f);
  EXPECT_EQ(manager_.stats().device_to_host_count, 1u);
}

TEST_F(MemoryTest, DeviceToDeviceGoesThroughHost) {
  std::vector<float> data(8, 1.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  auto* d1 = static_cast<float*>(h->acquire(1, AccessMode::kReadWrite, nullptr));
  d1[0] = 42.0f;
  h->mark_written(1, 1.0);
  auto* d2 = static_cast<float*>(h->acquire(2, AccessMode::kRead, nullptr));
  EXPECT_FLOAT_EQ(d2[0], 42.0f);
  // One d2h (to host) + one h2d (to device 2).
  EXPECT_EQ(manager_.stats().device_to_host_count, 1u);
  EXPECT_EQ(manager_.stats().host_to_device_count, 2u);  // incl. first RW fetch
}

// The Figure 3 walk-through: 4 component calls on the GPU + 2 application
// accesses => exactly 2 copy operations (not 7).
TEST_F(MemoryTest, Figure3ScenarioNeedsOnlyTwoCopies) {
  std::vector<float> v0(1024, 0.0f);
  auto h = manager_.register_buffer(v0.data(), v0.size() * sizeof(float),
                                    sizeof(float));
  manager_.reset_stats();

  // line 4: comp1(v0, write) on GPU — allocation only, no copy.
  auto* d = static_cast<float*>(h->acquire(1, AccessMode::kWrite, nullptr));
  for (int i = 0; i < 1024; ++i) d[i] = 1.0f;
  h->mark_written(1, 1.0);

  // line 6: application reads an element — first copy (device -> host).
  h->acquire(kHostNode, AccessMode::kRead, nullptr);
  EXPECT_FLOAT_EQ(v0[7], 1.0f);

  // line 8: comp2(v0, readwrite) on GPU — device copy still valid, no copy.
  d = static_cast<float*>(h->acquire(1, AccessMode::kReadWrite, nullptr));
  for (int i = 0; i < 1024; ++i) d[i] += 1.0f;
  h->mark_written(1, 2.0);

  // lines 10, 12: comp3/comp4 read on GPU — no copies.
  h->acquire(1, AccessMode::kRead, nullptr);
  h->acquire(1, AccessMode::kRead, nullptr);

  // line 14: application writes — second copy (device -> host), then the
  // device replica is outdated.
  h->acquire(kHostNode, AccessMode::kReadWrite, nullptr);
  EXPECT_FLOAT_EQ(v0[7], 2.0f);
  v0[7] = 5.0f;

  EXPECT_EQ(manager_.stats().total_count(), 2u);
  EXPECT_EQ(manager_.stats().device_to_host_count, 2u);
  EXPECT_EQ(h->replica_state(1), ReplicaState::kInvalid);
}

// -- estimates -----------------------------------------------------------------

TEST_F(MemoryTest, FetchEstimateMatchesLinkModel) {
  std::vector<float> data(1 << 20, 0.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  const double est = h->estimate_fetch_seconds(1, AccessMode::kRead);
  EXPECT_NEAR(est, manager_.estimate_link_seconds(h->bytes()), 1e-12);
  EXPECT_DOUBLE_EQ(h->estimate_fetch_seconds(1, AccessMode::kWrite), 0.0);
  EXPECT_DOUBLE_EQ(h->estimate_fetch_seconds(kHostNode, AccessMode::kRead), 0.0);
}

TEST_F(MemoryTest, LinkContentionSerialisesTransfers) {
  // Same direction, same device: the two transfers queue on one lane.
  const VirtualTime end1 = manager_.charge_link(kHostNode, 1, 8 << 20, 0.0);
  const VirtualTime end2 = manager_.charge_link(kHostNode, 1, 8 << 20, 0.0);
  EXPECT_GT(end2, end1);
  EXPECT_NEAR(end2, 2.0 * end1, end1 * 0.01 + 2e-5);
}

TEST_F(MemoryTest, DuplexLanesDoNotContend) {
  // Different devices and different directions each get their own lane, so
  // the four transfers all start at vtime 0 and finish together.
  const VirtualTime up1 = manager_.charge_link(kHostNode, 1, 8 << 20, 0.0);
  const VirtualTime up2 = manager_.charge_link(kHostNode, 2, 8 << 20, 0.0);
  const VirtualTime down1 = manager_.charge_link(1, kHostNode, 8 << 20, 0.0);
  const VirtualTime down2 = manager_.charge_link(2, kHostNode, 8 << 20, 0.0);
  EXPECT_DOUBLE_EQ(up1, up2);
  EXPECT_DOUBLE_EQ(up1, down1);
  EXPECT_DOUBLE_EQ(up1, down2);
  EXPECT_NEAR(up1, manager_.estimate_link_seconds(8 << 20), 1e-12);
}

TEST_F(MemoryTest, SharedBusModeKeepsOneClockForEverything) {
  DataManager shared(3, sim::LinkProfile::pcie2_x16_shared());
  const VirtualTime end1 = shared.charge_link(kHostNode, 1, 8 << 20, 0.0);
  const VirtualTime end2 = shared.charge_link(2, kHostNode, 8 << 20, 0.0);
  EXPECT_GT(end2, end1);  // opposite direction, other device: still queued
  EXPECT_NEAR(end2, 2.0 * end1, end1 * 0.01 + 2e-5);
}

TEST_F(MemoryTest, ContiguousChunksCoalesceIntoOneBurst) {
  // Two contiguous 1 MiB chunks of one host array moving to the same device:
  // the second charge continues the burst and pays no link latency.
  std::vector<float> data(1 << 19, 0.0f);  // 2 MiB
  const auto* base = reinterpret_cast<const std::byte*>(data.data());
  const std::size_t half = (1 << 20);
  const VirtualTime end1 = manager_.charge_link(kHostNode, 1, half, 0.0, base);
  const VirtualTime end2 =
      manager_.charge_link(kHostNode, 1, half, 0.0, base + half);
  const double latency = manager_.estimate_link_seconds(0);
  const double bandwidth_part = manager_.estimate_link_seconds(half) - latency;
  EXPECT_NEAR(end2 - end1, bandwidth_part, 1e-12);  // no second latency
  EXPECT_EQ(manager_.stats().coalesced_transfers, 1u);

  // A non-contiguous follow-up starts a fresh burst and pays latency again.
  const VirtualTime end3 = manager_.charge_link(kHostNode, 1, half, 0.0, base);
  EXPECT_NEAR(end3 - end2, latency + bandwidth_part, 1e-12);
  EXPECT_EQ(manager_.stats().coalesced_transfers, 1u);
}

TEST_F(MemoryTest, CoalescingRespectsTheIdleWindow) {
  std::vector<float> data(1 << 19, 0.0f);
  const auto* base = reinterpret_cast<const std::byte*>(data.data());
  const std::size_t half = (1 << 20);
  const VirtualTime end1 = manager_.charge_link(kHostNode, 1, half, 0.0, base);
  // Ready long after the burst went idle: the DMA engine has moved on.
  const double gap = manager_.link().coalesce_window_us * 1e-6 * 10.0;
  manager_.charge_link(kHostNode, 1, half, end1 + gap, base + half);
  EXPECT_EQ(manager_.stats().coalesced_transfers, 0u);
}

TEST_F(MemoryTest, PendingPrefetchZeroesTheFetchEstimate) {
  std::vector<float> data(1 << 20, 0.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  ASSERT_GT(h->estimate_fetch_seconds(1, AccessMode::kRead), 0.0);
  h->note_prefetch_queued(1);
  // In-flight prefetch: the transfer is already being paid for.
  EXPECT_DOUBLE_EQ(h->estimate_fetch_seconds(1, AccessMode::kRead), 0.0);
  // Other nodes still charge normally.
  EXPECT_GT(h->estimate_fetch_seconds(2, AccessMode::kRead), 0.0);
  h->note_prefetch_done(1);
  EXPECT_GT(h->estimate_fetch_seconds(1, AccessMode::kRead), 0.0);
}

// -- partitioning ---------------------------------------------------------------

TEST_F(MemoryTest, PartitionSplitsElementsContiguously) {
  std::vector<float> data(10);
  std::iota(data.begin(), data.end(), 0.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  auto children = h->partition(3);
  ASSERT_EQ(children.size(), 3u);
  EXPECT_EQ(children[0]->elements(), 4u);  // 10 = 4 + 3 + 3
  EXPECT_EQ(children[1]->elements(), 3u);
  EXPECT_EQ(children[2]->elements(), 3u);
  EXPECT_TRUE(h->is_partitioned());

  auto* c1 = static_cast<float*>(children[1]->acquire(kHostNode,
                                                      AccessMode::kRead, nullptr));
  EXPECT_FLOAT_EQ(c1[0], 4.0f);  // second block starts at element 4
}

TEST_F(MemoryTest, ParentUnusableWhilePartitioned) {
  std::vector<float> data(8, 0.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  auto children = h->partition(2);
  EXPECT_THROW(h->acquire(kHostNode, AccessMode::kRead, nullptr), Error);
  EXPECT_THROW(h->partition(2), Error);
}

TEST_F(MemoryTest, UnpartitionGathersChildDeviceData) {
  std::vector<float> data(8, 0.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  auto children = h->partition(2);
  // Child 0 modified on device 1; child 1 modified on device 2.
  for (std::size_t c = 0; c < 2; ++c) {
    auto* p = static_cast<float*>(
        children[c]->acquire(static_cast<MemoryNodeId>(c + 1),
                             AccessMode::kWrite, nullptr));
    for (std::size_t i = 0; i < children[c]->elements(); ++i) {
      p[i] = static_cast<float>(c + 1);
    }
    children[c]->mark_written(static_cast<MemoryNodeId>(c + 1), 1.0);
  }
  h->unpartition();
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(data[i], 1.0f);
  for (int i = 4; i < 8; ++i) EXPECT_FLOAT_EQ(data[i], 2.0f);
  // Children are dead now.
  EXPECT_THROW(children[0]->acquire(kHostNode, AccessMode::kRead, nullptr), Error);
  // Parent works again.
  EXPECT_NO_THROW(h->acquire(kHostNode, AccessMode::kRead, nullptr));
}

TEST_F(MemoryTest, PartitionMoreThanElementsThrows) {
  std::vector<float> data(2, 0.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  EXPECT_THROW(h->partition(5), Error);
  EXPECT_THROW(h->partition(0), Error);
}

TEST_F(MemoryTest, NestedPartitionUnsupported) {
  std::vector<float> data(8, 0.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  auto children = h->partition(2);
  EXPECT_THROW(children[0]->partition(2), Error);
}

TEST_F(MemoryTest, RegisterRejectsBadArguments) {
  std::vector<float> data(4, 0.0f);
  EXPECT_THROW(manager_.register_buffer(nullptr, 16, 4), Error);
  EXPECT_THROW(manager_.register_buffer(data.data(), 0, 4), Error);
  EXPECT_THROW(manager_.register_buffer(data.data(), 15, 4), Error);  // not multiple
}

// -- device memory capacity & eviction (§IV-D) ---------------------------------

class EvictionTest : public ::testing::Test {
 protected:
  EvictionTest() : manager_(2, sim::LinkProfile::pcie2_x16()) {
    manager_.set_node_capacity(1, 1024);  // tiny device: 1 KiB
  }

  DataHandlePtr make_handle(std::vector<float>& storage, std::size_t floats) {
    storage.assign(floats, 1.0f);
    return manager_.register_buffer(storage.data(), floats * sizeof(float),
                                    sizeof(float));
  }

  DataManager manager_;
};

TEST_F(EvictionTest, UnpinnedReplicaIsEvictedUnderPressure) {
  std::vector<float> a_data, b_data;
  auto a = make_handle(a_data, 128);  // 512 B
  auto b = make_handle(b_data, 128);  // 512 B

  a->acquire(1, AccessMode::kRead, nullptr);
  a->release(1);
  EXPECT_EQ(manager_.node_allocated(1), 512u);

  b->acquire(1, AccessMode::kRead, nullptr);
  b->release(1);
  EXPECT_EQ(manager_.node_allocated(1), 1024u);  // exactly at capacity

  // A third 512 B allocation must evict the oldest resident (a).
  std::vector<float> c_data;
  auto c = make_handle(c_data, 128);
  c->acquire(1, AccessMode::kRead, nullptr);
  c->release(1);
  EXPECT_EQ(manager_.node_allocated(1), 1024u);
  EXPECT_EQ(a->replica_state(1), ReplicaState::kInvalid);
  EXPECT_EQ(b->replica_state(1), ReplicaState::kShared);
  EXPECT_EQ(manager_.stats().evictions, 1u);
  EXPECT_EQ(manager_.stats().overcommits, 0u);
}

TEST_F(EvictionTest, PinnedReplicasAreNeverEvicted) {
  std::vector<float> a_data, b_data;
  auto a = make_handle(a_data, 192);  // 768 B, stays pinned
  auto b = make_handle(b_data, 128);  // 512 B -> exceeds capacity
  a->acquire(1, AccessMode::kRead, nullptr);  // no release: pinned
  b->acquire(1, AccessMode::kRead, nullptr);
  EXPECT_EQ(a->replica_state(1), ReplicaState::kShared);  // survived
  EXPECT_EQ(manager_.stats().evictions, 0u);
  EXPECT_EQ(manager_.stats().overcommits, 1u);  // nothing evictable
  EXPECT_GT(manager_.node_allocated(1), 1024u);
  a->release(1);
  b->release(1);
}

TEST_F(EvictionTest, OwnedReplicaIsFlushedHomeBeforeEviction) {
  std::vector<float> a_data, b_data;
  auto a = make_handle(a_data, 192);
  auto* device = static_cast<float*>(a->acquire(1, AccessMode::kWrite, nullptr));
  for (int i = 0; i < 192; ++i) device[i] = 7.0f;
  a->mark_written(1, 1.0);
  a->release(1);

  // Pressure from a second handle evicts a's Owned replica: the data must
  // land back on the host, not be lost.
  auto b = make_handle(b_data, 128);
  b->acquire(1, AccessMode::kRead, nullptr);
  b->release(1);
  EXPECT_EQ(a->replica_state(1), ReplicaState::kInvalid);
  EXPECT_EQ(a->replica_state(kHostNode), ReplicaState::kOwned);
  for (float v : a_data) ASSERT_FLOAT_EQ(v, 7.0f);
  EXPECT_EQ(manager_.stats().evictions, 1u);
}

TEST_F(EvictionTest, EvictedDataIsRefetchedOnNextUse) {
  std::vector<float> a_data, b_data;
  auto a = make_handle(a_data, 192);
  a->acquire(1, AccessMode::kRead, nullptr);
  a->release(1);
  auto b = make_handle(b_data, 192);
  b->acquire(1, AccessMode::kRead, nullptr);
  b->release(1);
  ASSERT_EQ(a->replica_state(1), ReplicaState::kInvalid);  // evicted
  // Re-acquiring re-allocates and re-transfers (the §IV-D caveat).
  const auto before = manager_.stats().host_to_device_count;
  auto* ptr = static_cast<float*>(a->acquire(1, AccessMode::kRead, nullptr));
  EXPECT_FLOAT_EQ(ptr[0], 1.0f);
  EXPECT_EQ(manager_.stats().host_to_device_count, before + 1);
  a->release(1);
}

TEST_F(EvictionTest, DyingHandleReturnsItsAllocation) {
  std::vector<float> a_data;
  {
    auto a = make_handle(a_data, 128);
    a->acquire(1, AccessMode::kRead, nullptr);
    a->release(1);
    EXPECT_EQ(manager_.node_allocated(1), 512u);
  }
  EXPECT_EQ(manager_.node_allocated(1), 0u);
}

TEST_F(MemoryTest, StatsTrackBytes) {
  std::vector<float> data(256, 0.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  h->acquire(1, AccessMode::kRead, nullptr);
  EXPECT_EQ(manager_.stats().host_to_device_bytes, 1024u);
  manager_.reset_stats();
  EXPECT_EQ(manager_.stats().total_count(), 0u);
}

// -- partition/unpartition transfer accounting (hybrid SpMV chunk pattern) ----

// The hybrid SpMV upload: contiguous sibling chunks stream to one device.
// Exact counts — every chunk is still one transfer, but all but the first
// coalesce into the running burst (one link latency for the whole upload).
TEST_F(MemoryTest, PartitionedChunkUploadsCoalesceExactly) {
  std::vector<float> data(4096, 1.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  auto children = h->partition(4);
  for (auto& child : children) {
    child->acquire(1, AccessMode::kRead, nullptr);
    child->release(1);
  }
  EXPECT_EQ(manager_.stats().host_to_device_count, 4u);
  EXPECT_EQ(manager_.stats().coalesced_transfers, 3u);
  EXPECT_EQ(manager_.stats().device_to_host_count, 0u);
  // Read-shared children leave the host copy valid: gathering needs no
  // transfers at all.
  h->unpartition();
  EXPECT_EQ(manager_.stats().device_to_host_count, 0u);
}

// Same pattern on the legacy shared bus: the single half-duplex clock still
// serialises everything and never merges bursts.
TEST(SharedBusAccounting, ChunkUploadsNeverCoalesce) {
  DataManager manager(2, sim::LinkProfile::pcie2_x16_shared());
  std::vector<float> data(4096, 1.0f);
  auto h = manager.register_buffer(data.data(), data.size() * sizeof(float),
                                   sizeof(float));
  auto children = h->partition(4);
  for (auto& child : children) {
    child->acquire(1, AccessMode::kRead, nullptr);
    child->release(1);
  }
  EXPECT_EQ(manager.stats().host_to_device_count, 4u);
  EXPECT_EQ(manager.stats().coalesced_transfers, 0u);
}

// Device-written chunks gathered by unpartition(): one download per chunk,
// and the downloads land on contiguous host addresses so they coalesce on
// the D2H lane too.
TEST_F(MemoryTest, UnpartitionWritebackCountsExactly) {
  std::vector<float> data(1024, 0.0f);
  auto h = manager_.register_buffer(data.data(), data.size() * sizeof(float),
                                    sizeof(float));
  auto children = h->partition(4);
  for (std::size_t c = 0; c < children.size(); ++c) {
    auto* p = static_cast<float*>(
        children[c]->acquire(1, AccessMode::kWrite, nullptr));
    for (std::size_t i = 0; i < children[c]->elements(); ++i) {
      p[i] = static_cast<float>(c);
    }
    children[c]->mark_written(1, 1.0);
    children[c]->release(1);
  }
  EXPECT_EQ(manager_.stats().host_to_device_count, 0u);  // kWrite fetches nothing
  h->unpartition();
  EXPECT_EQ(manager_.stats().device_to_host_count, 4u);
  EXPECT_EQ(manager_.stats().coalesced_transfers, 3u);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_FLOAT_EQ(data[i], static_cast<float>(i / 256));
  }
}

// -- prefetch semantics (engine-level) ----------------------------------------

EngineConfig prefetch_engine_config() {
  EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.machine.cpu_cores = 2;
  config.use_history_models = false;
  return config;
}

// A prefetch warms a replica but must not pin it: warmed data is the first
// thing to go under memory pressure.
TEST(PrefetchSemantics, PrefetchedReplicaIsEvictableNotPinned) {
  Engine engine(prefetch_engine_config());
  engine.set_node_capacity(1, 1024);
  std::vector<float> a_data(128, 1.0f), b_data(128, 2.0f), c_data(128, 3.0f);
  auto a = engine.register_buffer(a_data.data(), 512, sizeof(float));
  auto b = engine.register_buffer(b_data.data(), 512, sizeof(float));
  auto c = engine.register_buffer(c_data.data(), 512, sizeof(float));
  EXPECT_TRUE(engine.prefetch(a, 1));
  EXPECT_TRUE(engine.prefetch(b, 1));  // device now exactly full
  // The third prefetch must evict the oldest warmed replica (a), not
  // overcommit as it would for pinned operands.
  EXPECT_TRUE(engine.prefetch(c, 1));
  EXPECT_EQ(a->replica_state(1), ReplicaState::kInvalid);
  EXPECT_EQ(b->replica_state(1), ReplicaState::kShared);
  EXPECT_EQ(c->replica_state(1), ReplicaState::kShared);
  EXPECT_EQ(engine.transfer_stats().evictions, 1u);
  EXPECT_EQ(engine.transfer_stats().overcommits, 0u);
}

// A prefetch racing an in-flight writer is dropped, and the write leaves the
// device replica invalid — never resurrected with stale bits.
TEST(PrefetchSemantics, PrefetchRacedByWriterIsSkippedNotResurrected) {
  Engine engine(prefetch_engine_config());
  std::vector<float> data(64, 1.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * sizeof(float),
                                       sizeof(float));

  std::atomic<bool> started{false};
  std::atomic<bool> gate{false};
  Codelet codelet("gated_double");
  Implementation impl;
  impl.arch = Arch::kCpu;
  impl.name = "gated_double_cpu";
  impl.fn = [&](ExecContext& ctx) {
    started.store(true, std::memory_order_release);
    while (!gate.load(std::memory_order_acquire)) std::this_thread::yield();
    auto* d = ctx.buffer_as<float>(0);
    for (std::size_t i = 0; i < ctx.elements(0); ++i) d[i] *= 2.0f;
  };
  impl.cost = [](const std::vector<std::size_t>& bytes, const void*) {
    return sim::KernelCost{static_cast<double>(bytes[0]),
                           static_cast<double>(bytes[0]), 1.0};
  };
  codelet.add_impl(std::move(impl));

  TaskSpec spec;
  spec.codelet = &codelet;
  spec.operands = {{handle, AccessMode::kReadWrite}};
  engine.submit(std::move(spec));
  while (!started.load(std::memory_order_acquire)) std::this_thread::yield();

  EXPECT_FALSE(engine.prefetch(handle, 1));  // writer in flight: dropped
  EXPECT_EQ(handle->replica_state(1), ReplicaState::kInvalid);
  gate.store(true, std::memory_order_release);
  engine.wait_for_all();
  // The dropped prefetch stays dropped: no stale device replica appears.
  EXPECT_EQ(handle->replica_state(1), ReplicaState::kInvalid);
  // A fresh prefetch now sees the written data.
  EXPECT_TRUE(engine.prefetch(handle, 1));
  EXPECT_EQ(handle->replica_state(1), ReplicaState::kShared);
}

// Prefetch under capacity pressure must overcommit rather than evict the
// pinned operand of a task that is executing right now.
TEST(PrefetchSemantics, PrefetchPressureNeverEvictsPinnedOperandOfRunningTask) {
  Engine engine(prefetch_engine_config());
  engine.set_node_capacity(1, 1024);
  std::vector<float> a_data(192, 1.0f);  // 768 B: pinned while the task runs
  std::vector<float> b_data(128, 2.0f);  // 512 B: prefetch does not fit
  auto a = engine.register_buffer(a_data.data(), 768, sizeof(float));
  auto b = engine.register_buffer(b_data.data(), 512, sizeof(float));

  std::atomic<bool> started{false};
  std::atomic<bool> gate{false};
  Codelet codelet("gated_double");
  Implementation impl;
  impl.arch = Arch::kCuda;
  impl.name = "gated_double_cuda";
  impl.fn = [&](ExecContext& ctx) {
    started.store(true, std::memory_order_release);
    while (!gate.load(std::memory_order_acquire)) std::this_thread::yield();
    auto* d = ctx.buffer_as<float>(0);
    for (std::size_t i = 0; i < ctx.elements(0); ++i) d[i] *= 2.0f;
  };
  impl.cost = [](const std::vector<std::size_t>& bytes, const void*) {
    return sim::KernelCost{static_cast<double>(bytes[0]),
                           static_cast<double>(bytes[0]), 1.0};
  };
  codelet.add_impl(std::move(impl));

  TaskSpec spec;
  spec.codelet = &codelet;
  spec.operands = {{a, AccessMode::kReadWrite}};
  spec.forced_arch = Arch::kCuda;
  engine.submit(std::move(spec));
  while (!started.load(std::memory_order_acquire)) std::this_thread::yield();

  // a is pinned on node 1 by the running task; warming b must not touch it.
  engine.prefetch(b, 1);
  EXPECT_NE(a->replica_state(1), ReplicaState::kInvalid);
  EXPECT_EQ(engine.transfer_stats().evictions, 0u);
  EXPECT_GE(engine.transfer_stats().overcommits, 1u);

  gate.store(true, std::memory_order_release);
  engine.wait_for_all();
  engine.acquire_host(a, AccessMode::kRead);
  for (const float v : a_data) ASSERT_FLOAT_EQ(v, 2.0f);
}

}  // namespace
}  // namespace peppher::rt
