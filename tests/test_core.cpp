// Core public-API tests: runtime lifetime, the component registry, the
// invocation helpers and the raw-pointer consistency machinery the
// generated entry-wrappers rely on.
#include <gtest/gtest.h>

#include <cstring>

#include "core/peppher.hpp"
#include "support/error.hpp"

namespace peppher::core {
namespace {

rt::EngineConfig test_config() {
  rt::EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.machine.cpu_cores = 1;
  config.use_history_models = false;
  return config;
}

/// The whole file runs against one global runtime (like an application).
class CoreApi : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    if (!initialized()) initialize(test_config());
  }
};

// C-style task function doubling buffers[0] (float elements given by arg).
struct DoubleArgs {
  std::size_t count;
};
void double_task(void** buffers, const void* arg) {
  const auto* a = static_cast<const DoubleArgs*>(arg);
  auto* data = static_cast<float*>(buffers[0]);
  for (std::size_t i = 0; i < a->count; ++i) data[i] *= 2.0f;
}

TEST_F(CoreApi, InitializeIsExclusive) {
  EXPECT_TRUE(initialized());
  EXPECT_THROW(initialize(test_config()), Error);
  EXPECT_NO_THROW(engine());
}

TEST_F(CoreApi, RegistryCreatesFindsAndDisables) {
  auto& registry = ComponentRegistry::global();
  rt::Codelet& codelet = registry.get_or_create("core_test_component");
  EXPECT_EQ(&registry.get_or_create("core_test_component"), &codelet);
  EXPECT_EQ(registry.find("core_test_component"), &codelet);
  EXPECT_EQ(registry.find("never_registered"), nullptr);

  codelet.add_impl({rt::Arch::kCpu, "core_test_cpu", [](rt::ExecContext&) {},
                    nullptr});
  EXPECT_EQ(registry.disable_impls("core_test_cpu"), 1);
  EXPECT_FALSE(codelet.has_enabled_impl());
  registry.enable_all();
  EXPECT_TRUE(codelet.has_enabled_impl());

  const auto names = registry.component_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "core_test_component"),
            names.end());
}

TEST_F(CoreApi, InvokeUnknownComponentThrows) {
  EXPECT_THROW(invoke("no_such_component", {}), Error);
  EXPECT_THROW(invoke_async("no_such_component", {}), Error);
}

TEST_F(CoreApi, RegisterBackendAndInvoke) {
  register_backend("core_doubler", rt::Arch::kCpu, "core_doubler_cpu",
                   &double_task);
  register_backend("core_doubler", rt::Arch::kCuda, "core_doubler_cuda",
                   &double_task);

  std::vector<float> data(32, 3.0f);
  auto handle = engine().register_buffer(data.data(), data.size() * 4, 4);
  auto args = std::make_shared<DoubleArgs>(DoubleArgs{data.size()});
  invoke("core_doubler", {{handle, rt::AccessMode::kReadWrite}},
         std::shared_ptr<const void>(args, args.get()));
  engine().acquire_host(handle, rt::AccessMode::kRead);
  for (float v : data) EXPECT_FLOAT_EQ(v, 6.0f);
}

TEST_F(CoreApi, InvokeAsyncReturnsWaitableTask) {
  register_backend("core_doubler2", rt::Arch::kCpu, "core_doubler2_cpu",
                   &double_task);
  std::vector<float> data(8, 1.0f);
  auto handle = engine().register_buffer(data.data(), data.size() * 4, 4);
  auto args = std::make_shared<DoubleArgs>(DoubleArgs{data.size()});
  rt::TaskPtr task =
      invoke_async("core_doubler2", {{handle, rt::AccessMode::kReadWrite}},
                   std::shared_ptr<const void>(args, args.get()));
  engine().wait(task);
  EXPECT_EQ(task->state, rt::TaskState::kDone);
  EXPECT_EQ(task->executed_impl, "core_doubler2_cpu");
}

TEST_F(CoreApi, CallOptionsForceArchitecture) {
  register_backend("core_forced", rt::Arch::kCpu, "core_forced_cpu",
                   &double_task);
  register_backend("core_forced", rt::Arch::kCuda, "core_forced_cuda",
                   &double_task);
  std::vector<float> data(8, 1.0f);
  auto handle = engine().register_buffer(data.data(), data.size() * 4, 4);
  auto args = std::make_shared<DoubleArgs>(DoubleArgs{data.size()});
  CallOptions options;
  options.forced_arch = rt::Arch::kCuda;
  rt::TaskPtr task =
      invoke_async("core_forced", {{handle, rt::AccessMode::kReadWrite}},
                   std::shared_ptr<const void>(args, args.get()), options);
  engine().wait(task);
  EXPECT_EQ(task->executed_arch, rt::Arch::kCuda);
}

TEST_F(CoreApi, TransientOperandsCopyBackOnDestruction) {
  register_backend("core_transient", rt::Arch::kCuda, "core_transient_cuda",
                   &double_task);
  std::vector<float> data(16, 5.0f);
  auto args = std::make_shared<DoubleArgs>(DoubleArgs{data.size()});
  {
    TransientOperands operands;
    operands.add(data.data(), data.size(), sizeof(float),
                 rt::AccessMode::kReadWrite);
    invoke("core_transient", operands.operands(),
           std::shared_ptr<const void>(args, args.get()));
    // The GPU wrote the result; the host copy may still be stale here.
  }  // destructor: conservative copy-back (§IV-D raw-pointer rule)
  for (float v : data) EXPECT_FLOAT_EQ(v, 10.0f);
}

TEST_F(CoreApi, WrapCTaskAdaptsBuffersAndArg) {
  rt::ImplFn fn = wrap_c_task(&double_task);
  std::vector<float> payload(4, 2.0f);
  DoubleArgs args{4};
  std::vector<void*> buffers = {payload.data()};
  std::vector<std::size_t> bytes = {16};
  std::vector<std::size_t> elems = {4};
  rt::ExecContext ctx(rt::Arch::kCpu, 0, 1, buffers, bytes, elems, &args);
  fn(ctx);
  EXPECT_FLOAT_EQ(payload[0], 4.0f);
  EXPECT_THROW(wrap_c_task(nullptr), Error);
}

}  // namespace
}  // namespace peppher::core
