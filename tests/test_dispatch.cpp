// Static-composition dispatch-table tests: construction from predictions,
// compaction, lookup, serialisation, narrowing, and the history-backed
// predictor.
#include <gtest/gtest.h>

#include "compose/dispatch.hpp"
#include "support/error.hpp"

namespace peppher::compose {
namespace {

/// Component with a CPU and a CUDA variant.
ComponentNode make_component() {
  ComponentNode node;
  node.interface.name = "kernel";
  VariantNode cpu;
  cpu.descriptor.name = "kernel_cpu";
  cpu.descriptor.interface_name = "kernel";
  cpu.descriptor.language = "cpu";
  node.variants.push_back(cpu);
  VariantNode cuda;
  cuda.descriptor.name = "kernel_cuda";
  cuda.descriptor.interface_name = "kernel";
  cuda.descriptor.language = "cuda";
  node.variants.push_back(cuda);
  return node;
}

/// CPU: 1 ns/byte. CUDA: 100 us + 0.01 ns/byte => crossover at ~101 KB.
Predictor crossover_predictor() {
  return [](const VariantNode& variant, std::size_t bytes) -> std::optional<double> {
    if (variant.arch() == rt::Arch::kCpu) return 1e-9 * static_cast<double>(bytes);
    return 100e-6 + 1e-11 * static_cast<double>(bytes);
  };
}

TEST(DispatchTable, PicksWinnerPerScenarioAndCompacts) {
  const ComponentNode node = make_component();
  const DispatchTable table = DispatchTable::build(
      node, {1'000, 10'000, 100'000, 1'000'000, 10'000'000}, crossover_predictor());
  // Three small sizes choose CPU (merged into one entry), two large choose
  // CUDA (merged into one entry).
  ASSERT_EQ(table.entries().size(), 2u);
  EXPECT_EQ(table.entries()[0].variant, "kernel_cpu");
  EXPECT_EQ(table.entries()[0].upper_bytes, 100'000u);
  EXPECT_EQ(table.entries()[1].variant, "kernel_cuda");
  EXPECT_EQ(table.entries()[1].arch, rt::Arch::kCuda);
}

TEST(DispatchTable, LookupSelectsByFootprint) {
  const ComponentNode node = make_component();
  const DispatchTable table = DispatchTable::build(
      node, {1'000, 100'000, 10'000'000}, crossover_predictor());
  EXPECT_EQ(table.lookup(500)->variant, "kernel_cpu");
  EXPECT_EQ(table.lookup(100'000)->variant, "kernel_cpu");
  EXPECT_EQ(table.lookup(5'000'000)->variant, "kernel_cuda");
  // Beyond the largest scenario the last entry still applies.
  EXPECT_EQ(table.lookup(1'000'000'000)->variant, "kernel_cuda");
}

TEST(DispatchTable, EmptyWhenNothingPredictable) {
  const ComponentNode node = make_component();
  const DispatchTable table = DispatchTable::build(
      node, {100, 200},
      [](const VariantNode&, std::size_t) { return std::nullopt; });
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.lookup(100), nullptr);
}

TEST(DispatchTable, SkipsDisabledVariants) {
  ComponentNode node = make_component();
  node.variants[0].enabled = false;  // CPU gone
  const DispatchTable table =
      DispatchTable::build(node, {1'000}, crossover_predictor());
  ASSERT_EQ(table.entries().size(), 1u);
  EXPECT_EQ(table.entries()[0].variant, "kernel_cuda");
}

TEST(DispatchTable, SerializeRoundTrip) {
  const ComponentNode node = make_component();
  const DispatchTable table = DispatchTable::build(
      node, {1'000, 10'000'000}, crossover_predictor());
  const DispatchTable copy = DispatchTable::deserialize(table.serialize());
  ASSERT_EQ(copy.entries().size(), table.entries().size());
  EXPECT_EQ(copy.entries()[0].variant, table.entries()[0].variant);
  EXPECT_EQ(copy.entries()[0].upper_bytes, table.entries()[0].upper_bytes);
  EXPECT_EQ(copy.entries()[1].arch, table.entries()[1].arch);
}

TEST(DispatchTable, DeserializeRejectsGarbage) {
  EXPECT_THROW(DispatchTable::deserialize("1 2\n"), Error);
  EXPECT_NO_THROW(DispatchTable::deserialize(""));
}

TEST(DispatchNarrowing, DisablesNeverChosenVariants) {
  ComponentNode node = make_component();
  // Only large scenarios: CUDA always wins; CPU should be narrowed away.
  const DispatchTable table = DispatchTable::build(
      node, {10'000'000, 100'000'000}, crossover_predictor());
  const int disabled = narrow_with_table(node, table);
  EXPECT_EQ(disabled, 1);
  ASSERT_EQ(node.enabled_variants().size(), 1u);
  EXPECT_EQ(node.enabled_variants()[0]->descriptor.name, "kernel_cuda");
}

TEST(DispatchNarrowing, EmptyTableIsNoOp) {
  ComponentNode node = make_component();
  EXPECT_EQ(narrow_with_table(node, DispatchTable{}), 0);
  EXPECT_EQ(node.enabled_variants().size(), 2u);
}

TEST(DispatchNarrowing, MultiVariantTableKeepsCandidateSet) {
  // Mixed scenarios keep both variants registered (multi-stage composition:
  // the runtime takes the final choice).
  ComponentNode node = make_component();
  const DispatchTable table = DispatchTable::build(
      node, {1'000, 10'000'000}, crossover_predictor());
  EXPECT_EQ(narrow_with_table(node, table), 0);
  EXPECT_EQ(node.enabled_variants().size(), 2u);
}

TEST(ProfileForArch, MapsToMachineDevices) {
  const sim::MachineConfig machine = sim::MachineConfig::platform_c2050();
  EXPECT_EQ(profile_for_arch(machine, rt::Arch::kCpu).name, "XeonE5520-core");
  EXPECT_EQ(profile_for_arch(machine, rt::Arch::kCuda).name, "TeslaC2050");
  const auto combined = profile_for_arch(machine, rt::Arch::kCpuOmp);
  EXPECT_GT(combined.peak_gflops, machine.cpu_core.peak_gflops * 3);
  EXPECT_THROW(profile_for_arch(machine, rt::Arch::kOpenCl), Error);
  EXPECT_THROW(profile_for_arch(sim::MachineConfig::cpu_only(), rt::Arch::kCuda),
               Error);
}

TEST(HistoryPredictor, UsesRegressionOverRecordedSizes) {
  rt::PerfRegistry registry;
  // CPU times linear in bytes, 1e-9 s/B, at 5 distinct sizes.
  for (std::size_t bytes : {1000u, 2000u, 4000u, 8000u, 16000u}) {
    registry.record("kernel", rt::Arch::kCpu, bytes, bytes,
                    1e-9 * static_cast<double>(bytes));
  }
  const Predictor predict = history_predictor(registry, "kernel");
  const ComponentNode node = make_component();
  const auto cpu_estimate = predict(node.variants[0], 32'000);
  ASSERT_TRUE(cpu_estimate.has_value());
  EXPECT_NEAR(*cpu_estimate, 32e-6, 5e-6);
  // No CUDA history: unpredictable.
  EXPECT_FALSE(predict(node.variants[1], 32'000).has_value());
}

}  // namespace
}  // namespace peppher::compose
