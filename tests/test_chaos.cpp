// Chaos test: hundreds of dependent tasks under random transient faults, on
// every scheduler. Everything must still complete with exactly correct
// numerics, and the summary counters must agree with the trace records.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "runtime/engine.hpp"
#include "sim/device.hpp"
#include "support/error.hpp"

namespace peppher::rt {
namespace {

constexpr int kChains = 8;
constexpr int kChainLength = 40;

Codelet make_chaos_codelet() {
  Codelet codelet("chaos_add");
  const auto body = [](ExecContext& ctx) {
    auto* data = ctx.buffer_as<float>(0);
    for (std::size_t i = 0; i < ctx.elements(0); ++i) data[i] += 1.0f;
  };
  const auto cost = [](const std::vector<std::size_t>&, const void*) {
    return sim::KernelCost{5e7, 1e5, 1.0};
  };
  codelet.add_impl({Arch::kCpu, "chaos_cpu", body, cost});
  codelet.add_impl({Arch::kCpuOmp, "chaos_omp", body, cost});
  codelet.add_impl({Arch::kCuda, "chaos_cuda", body, cost});
  return codelet;
}

class ChaosUnderFaults : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllSchedulers, ChaosUnderFaults,
                         ::testing::Values("eager", "random", "ws", "dmda",
                                           "lookahead"),
                         [](const auto& info) { return info.param; });

TEST_P(ChaosUnderFaults, DependentChainsCompleteCorrectly) {
  sim::FaultPlan plan;
  plan.kernel_failure_rate = 0.25;  // every 4th GPU kernel dies, roughly
  plan.seed = 99;

  EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.machine.cpu_cores = 2;
  config.scheduler = GetParam();
  config.use_history_models = false;
  config.enable_trace = true;
  config.max_retries = 4;
  config.accelerator_faults = {plan};
  Engine engine(config);
  Codelet codelet = make_chaos_codelet();

  // kChains independent RW chains of kChainLength tasks each: plenty of
  // inter-task dependencies, plenty of parallelism across chains.
  std::vector<std::vector<float>> buffers(kChains,
                                          std::vector<float>(32, 0.0f));
  std::vector<DataHandlePtr> handles;
  for (auto& buffer : buffers) {
    handles.push_back(engine.register_buffer(
        buffer.data(), buffer.size() * sizeof(float), sizeof(float)));
  }
  for (int step = 0; step < kChainLength; ++step) {
    for (int chain = 0; chain < kChains; ++chain) {
      TaskSpec spec;
      spec.codelet = &codelet;
      spec.operands = {{handles[chain], AccessMode::kReadWrite}};
      spec.name = "c" + std::to_string(chain) + "s" + std::to_string(step);
      engine.submit(std::move(spec));
    }
  }
  engine.wait_for_all();

  for (const auto& handle : handles) engine.acquire_host(handle, AccessMode::kRead);
  for (const auto& buffer : buffers) {
    for (float v : buffer) {
      EXPECT_FLOAT_EQ(v, static_cast<float>(kChainLength));
    }
  }

  constexpr std::uint64_t kTotalTasks = kChains * kChainLength;
  const FaultStats stats = engine.fault_stats();
  EXPECT_EQ(stats.tasks_failed, 0u);
  if (GetParam() == "dmda" || GetParam() == "random" ||
      GetParam() == "lookahead") {
    // These route by cost estimates / seeded draws, so the GPU
    // deterministically receives work and draws faults. eager and ws race
    // real worker threads for tasks: the GPU may legitimately get none.
    EXPECT_GT(stats.injected_kernel_faults, 0u);
  }
  EXPECT_EQ(stats.failed_attempts, stats.injected_kernel_faults);
  EXPECT_EQ(stats.retries, stats.failed_attempts);

  // Per-worker counters must add up: every task succeeded exactly once.
  std::uint64_t executed = 0;
  std::uint64_t failed_attempts = 0;
  for (const auto& desc : engine.workers()) {
    executed += engine.worker_stats(desc.id).tasks_executed;
    failed_attempts += engine.worker_stats(desc.id).failed_attempts;
  }
  EXPECT_EQ(executed, kTotalTasks);
  EXPECT_EQ(failed_attempts, stats.failed_attempts);

  // ...and the trace must tell the same story, record for record.
  std::uint64_t success_records = 0;
  std::uint64_t failed_records = 0;
  for (const auto& record : engine.trace().records()) {
    if (record.failed) {
      ++failed_records;
    } else {
      ++success_records;
    }
  }
  EXPECT_EQ(success_records, kTotalTasks);
  EXPECT_EQ(failed_records, stats.failed_attempts);

  const std::string summary = engine.summary();
  EXPECT_NE(summary.find("retries"), std::string::npos);
  EXPECT_NE(summary.find(std::to_string(stats.retries) + " retries"),
            std::string::npos);

  // Retry bookkeeping, per task: every failed attempt must be matched by a
  // later record for the same task (its retry), attempts numbered
  // contiguously, and exactly one successful record closes the story.
  std::map<std::uint64_t, std::vector<TaskRecord>> by_sequence;
  for (const auto& record : engine.trace().records()) {
    by_sequence[record.sequence].push_back(record);
  }
  EXPECT_EQ(by_sequence.size(), kTotalTasks);
  for (auto& [sequence, records] : by_sequence) {
    std::sort(records.begin(), records.end(),
              [](const TaskRecord& a, const TaskRecord& b) {
                return a.attempt < b.attempt;
              });
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(records[i].attempt, static_cast<int>(i))
          << "task " << sequence << " has a gap in its attempt numbering";
      EXPECT_EQ(records[i].failed, i + 1 < records.size())
          << "task " << sequence
          << ": every failed attempt needs a matching retry record and "
             "only the last attempt may succeed";
    }
  }
}

// A device that dies after N successes must go silent: its trace records
// stop at exactly N (no failed attempt — die_after_tasks blacklists after
// the Nth success), and the drained tasks complete elsewhere.
TEST(ChaosBlacklist, DeadDeviceEmitsNoEventsAfterDrain) {
  constexpr std::uint64_t kDeathAfter = 5;
  sim::FaultPlan plan;
  plan.die_after_tasks = kDeathAfter;

  EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.machine.cpu_cores = 2;
  config.scheduler = "dmda";  // routes by cost: the GPU reliably gets work
  config.use_history_models = false;
  config.enable_trace = true;
  config.max_retries = 4;
  config.accelerator_faults = {plan};
  Engine engine(config);
  Codelet codelet = make_chaos_codelet();

  std::vector<std::vector<float>> buffers(kChains,
                                          std::vector<float>(32, 0.0f));
  std::vector<DataHandlePtr> handles;
  for (auto& buffer : buffers) {
    handles.push_back(engine.register_buffer(
        buffer.data(), buffer.size() * sizeof(float), sizeof(float)));
  }
  for (int step = 0; step < kChainLength; ++step) {
    for (int chain = 0; chain < kChains; ++chain) {
      TaskSpec spec;
      spec.codelet = &codelet;
      spec.operands = {{handles[chain], AccessMode::kReadWrite}};
      spec.name = "c" + std::to_string(chain) + "s" + std::to_string(step);
      engine.submit(std::move(spec));
    }
  }
  engine.wait_for_all();

  WorkerId cuda_worker = -1;
  for (const auto& desc : engine.workers()) {
    if (!desc.archs.empty() && desc.archs.front() == Arch::kCuda) {
      cuda_worker = desc.id;
    }
  }
  ASSERT_GE(cuda_worker, 0);
  ASSERT_TRUE(engine.worker_blacklisted(cuda_worker));
  EXPECT_EQ(engine.fault_stats().workers_blacklisted, 1u);
  EXPECT_EQ(engine.fault_stats().tasks_failed, 0u);

  std::uint64_t device_successes = 0;
  for (const auto& record : engine.trace().records()) {
    if (record.worker != cuda_worker) continue;
    EXPECT_FALSE(record.failed)
        << "die_after_tasks blacklists after a success; no attempt fails";
    ++device_successes;
  }
  EXPECT_EQ(device_successes, kDeathAfter);
  EXPECT_EQ(engine.worker_stats(cuda_worker).tasks_executed, kDeathAfter);

  // Everything else completed on the surviving workers, and correctly.
  for (const auto& handle : handles) {
    engine.acquire_host(handle, AccessMode::kRead);
  }
  for (const auto& buffer : buffers) {
    for (float v : buffer) {
      EXPECT_FLOAT_EQ(v, static_cast<float>(kChainLength));
    }
  }
}

// Device death mid-run under the windowed scheduler: tasks staged for a
// joint window or already planned onto the dying GPU must be re-planned
// onto the survivors — nothing lost, nothing failed, numerics exact.
TEST(ChaosBlacklist, LookaheadReplansWindowAfterDeviceDeath) {
  constexpr std::uint64_t kDeathAfter = 5;
  sim::FaultPlan plan;
  plan.die_after_tasks = kDeathAfter;

  EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.machine.cpu_cores = 2;
  config.scheduler = "lookahead";  // windows over the 8 parallel chains
  config.use_history_models = false;
  config.enable_trace = true;
  config.max_retries = 4;
  config.accelerator_faults = {plan};
  Engine engine(config);
  Codelet codelet = make_chaos_codelet();

  std::vector<std::vector<float>> buffers(kChains,
                                          std::vector<float>(32, 0.0f));
  std::vector<DataHandlePtr> handles;
  for (auto& buffer : buffers) {
    handles.push_back(engine.register_buffer(
        buffer.data(), buffer.size() * sizeof(float), sizeof(float)));
  }
  for (int step = 0; step < kChainLength; ++step) {
    for (int chain = 0; chain < kChains; ++chain) {
      TaskSpec spec;
      spec.codelet = &codelet;
      spec.operands = {{handles[chain], AccessMode::kReadWrite}};
      spec.name = "c" + std::to_string(chain) + "s" + std::to_string(step);
      engine.submit(std::move(spec));
    }
  }
  engine.wait_for_all();

  WorkerId cuda_worker = -1;
  for (const auto& desc : engine.workers()) {
    if (!desc.archs.empty() && desc.archs.front() == Arch::kCuda) {
      cuda_worker = desc.id;
    }
  }
  ASSERT_GE(cuda_worker, 0);
  ASSERT_TRUE(engine.worker_blacklisted(cuda_worker));
  EXPECT_EQ(engine.fault_stats().workers_blacklisted, 1u);
  EXPECT_EQ(engine.fault_stats().tasks_failed, 0u);
  EXPECT_EQ(engine.worker_stats(cuda_worker).tasks_executed, kDeathAfter);

  // Every task completed exactly once, none on the dead device after the
  // blacklist, and the chains' numerics survived the mid-window re-plan.
  std::uint64_t executed = 0;
  for (const auto& desc : engine.workers()) {
    executed += engine.worker_stats(desc.id).tasks_executed;
  }
  EXPECT_EQ(executed, static_cast<std::uint64_t>(kChains * kChainLength));
  for (const auto& handle : handles) {
    engine.acquire_host(handle, AccessMode::kRead);
  }
  for (const auto& buffer : buffers) {
    for (float v : buffer) {
      EXPECT_FLOAT_EQ(v, static_cast<float>(kChainLength));
    }
  }
}

/// First accelerator worker living on simulated node `sim_node`.
WorkerId accelerator_on(const Engine& engine, int sim_node) {
  for (const auto& desc : engine.workers()) {
    if (desc.sim_node != sim_node || desc.archs.empty()) continue;
    if (desc.archs.front() == Arch::kCuda ||
        desc.archs.front() == Arch::kOpenCl) {
      return desc.id;
    }
  }
  return -1;
}

// A hard-failing inter-node link: a task pinned to a remote accelerator
// can never fetch its operand across the link, so its attempt fails with
// the injected I/O error — but the engine survives and keeps running work
// that stays off the broken link.
TEST(ChaosInterNode, LinkFaultFailsRemoteFetchButEngineSurvives) {
  EngineConfig config;
  config.cluster = sim::ClusterConfig::uniform(
      2, sim::MachineConfig::platform_c2050());
  config.scheduler = "eager";
  config.use_history_models = false;
  config.max_retries = 0;  // first failure is terminal
  config.internode_fault.transfer_failure_rate = 1.0;
  Engine engine(config);
  Codelet codelet = make_chaos_codelet();

  std::vector<float> data(32, 1.0f);
  auto handle = engine.register_buffer(data.data(),
                                       data.size() * sizeof(float),
                                       sizeof(float));
  const WorkerId remote = accelerator_on(engine, 1);
  ASSERT_GE(remote, 0);

  TaskSpec spec;
  spec.codelet = &codelet;
  spec.operands = {{handle, AccessMode::kReadWrite}};
  spec.forced_worker = remote;
  auto task = engine.submit(std::move(spec));
  EXPECT_THROW(engine.wait(task), Error);

  const FaultStats stats = engine.fault_stats();
  EXPECT_GE(stats.injected_transfer_faults, 1u);
  EXPECT_EQ(stats.tasks_failed, 1u);

  // The failed fetch left the host replica untouched and the engine alive:
  // node-0 work (which never touches the link) still completes.
  engine.acquire_host(handle, AccessMode::kRead);
  for (float v : data) EXPECT_FLOAT_EQ(v, 1.0f);

  std::vector<float> local(32, 0.0f);
  auto local_handle = engine.register_buffer(
      local.data(), local.size() * sizeof(float), sizeof(float));
  TaskSpec local_spec;
  local_spec.codelet = &codelet;
  local_spec.operands = {{local_handle, AccessMode::kReadWrite}};
  local_spec.forced_worker = accelerator_on(engine, 0);
  engine.wait(engine.submit(std::move(local_spec)));
  engine.acquire_host(local_handle, AccessMode::kRead);
  for (float v : local) EXPECT_FLOAT_EQ(v, 1.0f);
}

// Whole-node death: after N successful kernels anywhere on the node, every
// one of its workers is blacklisted at once, and all later work lands on
// the surviving node with exact numerics.
TEST(ChaosNodeDeath, WholeNodeBlacklistsAllItsWorkers) {
  constexpr std::uint64_t kDeathAfter = 3;
  sim::FaultPlan plan;
  plan.die_after_tasks = kDeathAfter;

  EngineConfig config;
  config.cluster = sim::ClusterConfig::uniform(
      2, sim::MachineConfig::platform_c2050());
  config.scheduler = "dmda";
  config.use_history_models = false;
  config.max_retries = 4;
  config.node_faults = {sim::FaultPlan{}, plan};  // only node 1 dies
  Engine engine(config);
  Codelet codelet = make_chaos_codelet();

  // Phase 1: a serialised trigger chain pinned to node 1's accelerator
  // reaches the death count exactly; the node dies on the last success,
  // so the trigger chain itself still completes.
  std::vector<float> trigger(32, 0.0f);
  auto trigger_handle = engine.register_buffer(
      trigger.data(), trigger.size() * sizeof(float), sizeof(float));
  const WorkerId remote = accelerator_on(engine, 1);
  ASSERT_GE(remote, 0);
  TaskPtr last;
  for (std::uint64_t i = 0; i < kDeathAfter; ++i) {
    TaskSpec spec;
    spec.codelet = &codelet;
    spec.operands = {{trigger_handle, AccessMode::kReadWrite}};
    spec.forced_worker = remote;
    last = engine.submit(std::move(spec));
  }
  engine.wait(last);

  // Every worker of node 1 — CPU cores, combined worker, accelerator — is
  // now blacklisted; node 0's workers are untouched.
  std::uint64_t node1_workers = 0;
  for (const auto& desc : engine.workers()) {
    if (desc.sim_node == 1) {
      EXPECT_TRUE(engine.worker_blacklisted(desc.id)) << "worker " << desc.id;
      ++node1_workers;
    } else {
      EXPECT_FALSE(engine.worker_blacklisted(desc.id)) << "worker " << desc.id;
    }
  }
  EXPECT_GT(node1_workers, 1u);
  EXPECT_EQ(engine.fault_stats().workers_blacklisted, node1_workers);

  // Phase 2: the regular chain load now runs entirely on the survivor.
  std::vector<std::vector<float>> buffers(kChains,
                                          std::vector<float>(32, 0.0f));
  std::vector<DataHandlePtr> handles;
  for (auto& buffer : buffers) {
    handles.push_back(engine.register_buffer(
        buffer.data(), buffer.size() * sizeof(float), sizeof(float)));
  }
  for (int step = 0; step < kChainLength; ++step) {
    for (int chain = 0; chain < kChains; ++chain) {
      TaskSpec spec;
      spec.codelet = &codelet;
      spec.operands = {{handles[chain], AccessMode::kReadWrite}};
      engine.submit(std::move(spec));
    }
  }
  engine.wait_for_all();

  EXPECT_EQ(engine.fault_stats().tasks_failed, 0u);
  std::uint64_t node1_executed = 0;
  std::uint64_t executed = 0;
  for (const auto& desc : engine.workers()) {
    executed += engine.worker_stats(desc.id).tasks_executed;
    if (desc.sim_node == 1) {
      node1_executed += engine.worker_stats(desc.id).tasks_executed;
    }
  }
  EXPECT_EQ(node1_executed, kDeathAfter);  // nothing ran there after death
  EXPECT_EQ(executed,
            kDeathAfter + static_cast<std::uint64_t>(kChains * kChainLength));

  engine.acquire_host(trigger_handle, AccessMode::kRead);
  for (float v : trigger) EXPECT_FLOAT_EQ(v, static_cast<float>(kDeathAfter));
  for (const auto& handle : handles) {
    engine.acquire_host(handle, AccessMode::kRead);
  }
  for (const auto& buffer : buffers) {
    for (float v : buffer) {
      EXPECT_FLOAT_EQ(v, static_cast<float>(kChainLength));
    }
  }
}

}  // namespace
}  // namespace peppher::rt
