// Distributed simulation tests: cluster topologies, the third coherence
// level (remote hosts), partitioned containers, the Jacobi / SpMV
// distributed workloads, and — most importantly — the differential guard:
// an Engine configured with a one-node cluster must be bitwise-equivalent
// to the same Engine configured with the plain machine, for every
// scheduling policy. The cluster support is a strict generalisation; the
// single-host fast path must not drift.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/distributed.hpp"
#include "containers/partitioned.hpp"
#include "runtime/engine.hpp"
#include "runtime/topology.hpp"
#include "sim/topology.hpp"
#include "support/error.hpp"

namespace peppher::rt {
namespace {

// ---------------------------------------------------------------------------
// Partitioning / PartitionedVector
// ---------------------------------------------------------------------------

TEST(Partitioning, BlockSplitsNearEqually) {
  const auto p = cont::Partitioning::block(10, 3);
  ASSERT_EQ(p.parts.size(), 3u);
  EXPECT_EQ(p.parts[0].owned, (cont::Slice{0, 4}));
  EXPECT_EQ(p.parts[1].owned, (cont::Slice{4, 7}));
  EXPECT_EQ(p.parts[2].owned, (cont::Slice{7, 10}));
  for (int n = 0; n < 3; ++n) {
    EXPECT_EQ(p.parts[static_cast<std::size_t>(n)].node, n);
    ASSERT_EQ(p.parts[static_cast<std::size_t>(n)].slices.size(), 1u);
  }
  EXPECT_THROW(cont::Partitioning::block(2, 3), Error);
}

TEST(Partitioning, WithHaloAddsClampedGhostSlices) {
  const auto p = cont::Partitioning::block(12, 3).with_halo(2);
  EXPECT_EQ(p.halo, 2u);
  // First partition: no ghost above, 2 below.
  ASSERT_EQ(p.parts[0].slices.size(), 2u);
  EXPECT_EQ(p.parts[0].slices[1], (cont::Slice{4, 6}));
  // Middle partition: ghosts on both sides.
  ASSERT_EQ(p.parts[1].slices.size(), 3u);
  EXPECT_EQ(p.parts[1].slices[1], (cont::Slice{2, 4}));
  EXPECT_EQ(p.parts[1].slices[2], (cont::Slice{8, 10}));
  // Last partition: no ghost below.
  ASSERT_EQ(p.parts[2].slices.size(), 2u);
  EXPECT_EQ(p.parts[2].slices[1], (cont::Slice{6, 8}));
  // Owned ranges are untouched by the halo derivation.
  const auto base = cont::Partitioning::block(12, 3);
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_EQ(p.parts[n].owned, base.parts[n].owned);
  }
  // A halo wider than the neighbour clamps at the container bounds.
  const auto wide = cont::Partitioning::block(6, 3).with_halo(5);
  EXPECT_EQ(wide.parts[0].slices[1], (cont::Slice{2, 6}));
  EXPECT_EQ(wide.parts[2].slices[1], (cont::Slice{0, 4}));
}

TEST(PartitionedVector, RepartitionKeepsDeviceReplicas) {
  EngineConfig config;
  config.cluster = sim::ClusterConfig::uniform(
      2, sim::MachineConfig::platform_c2050());
  config.enable_prefetch = false;
  Engine engine(config);

  cont::PartitionedVector<float> vec(&engine,
                                     cont::Partitioning::block(64, 2), 1.0f);
  const auto handles = vec.partition_handles(1);
  ASSERT_EQ(handles.size(), 1u);
  EXPECT_EQ(vec.registered_slices(), 1u);  // only partition 1 materialised

  // Warm partition 1's owned slice on its node's accelerator.
  const MemoryNodeId dev1 = engine.topo().device_node(1);
  ASSERT_TRUE(engine.prefetch(handles[0], dev1));
  const auto before = engine.transfer_stats();
  EXPECT_GE(before.host_to_device_count, 1u);

  // Repartitioning to the halo layout keeps every owned slice (same
  // bounds), so the device replica survives: re-prefetching is a no-op.
  vec.repartition(cont::Partitioning::block(64, 2).with_halo(4));
  const auto& kept = vec.partition_handles(1);
  EXPECT_EQ(kept[0].get(), handles[0].get());
  ASSERT_TRUE(engine.prefetch(handles[0], dev1));
  const auto after = engine.transfer_stats();
  EXPECT_EQ(after.host_to_device_count, before.host_to_device_count);
  EXPECT_EQ(after.device_to_host_count, before.device_to_host_count);

  // Repartitioning to an incompatible layout drops the old slices.
  vec.repartition(cont::Partitioning::block(64, 4));
  EXPECT_EQ(vec.registered_slices(), 0u);
}

TEST(PartitionedVector, HostAccessSeesTaskResults) {
  EngineConfig config;
  config.cluster = sim::ClusterConfig::uniform(
      2, sim::MachineConfig::platform_c2050());
  Engine engine(config);
  cont::PartitionedVector<float> vec(&engine,
                                     cont::Partitioning::block(16, 2), 3.0f);
  auto view = vec.host_access(AccessMode::kRead);
  ASSERT_EQ(view.size(), 16u);
  for (const float v : view) EXPECT_EQ(v, 3.0f);
}

// ---------------------------------------------------------------------------
// Cluster topology: parser, memory layout, routing
// ---------------------------------------------------------------------------

TEST(ClusterTopology, ParserHappyPathAndRoundTrip) {
  const std::string text =
      "peppher-cluster v1\n"
      "internode latency_us 80 bandwidth_gbs 2.5\n"
      "node 0 machine c2050 cpu_cores 4\n"
      "node 1 machine cpu_only cpu_cores 8\n"
      "end\n";
  const sim::ClusterConfig cluster = sim::parse_cluster(text);
  ASSERT_EQ(cluster.nodes.size(), 2u);
  EXPECT_EQ(cluster.internode.latency_us, 80.0);
  EXPECT_EQ(cluster.internode.bandwidth_gbs, 2.5);
  EXPECT_EQ(cluster.nodes[0].machine.cpu_cores, 4);
  EXPECT_EQ(cluster.nodes[0].machine.accelerators.size(), 1u);
  EXPECT_EQ(cluster.nodes[1].machine.cpu_cores, 8);
  EXPECT_TRUE(cluster.nodes[1].machine.accelerators.empty());

  const sim::ClusterConfig again = sim::parse_cluster(sim::to_text(cluster));
  ASSERT_EQ(again.nodes.size(), cluster.nodes.size());
  EXPECT_EQ(again.internode.latency_us, cluster.internode.latency_us);
  EXPECT_EQ(again.internode.bandwidth_gbs, cluster.internode.bandwidth_gbs);
  EXPECT_EQ(again.nodes[1].machine.cpu_cores, 8);
}

TEST(ClusterTopology, MemoryLayoutHostsFirstPerNode) {
  const auto cluster = sim::ClusterConfig::uniform(
      2, sim::MachineConfig::platform_dual_c2050());
  const MemTopology topo = MemTopology::of_cluster(cluster);
  // [host0, dev0, dev1, host1, dev2, dev3]
  EXPECT_EQ(topo.node_count(), 6);
  EXPECT_EQ(topo.sim_node_count(), 2);
  EXPECT_EQ(topo.device_count(), 4);
  EXPECT_TRUE(topo.multi_node());
  EXPECT_TRUE(topo.is_host(0));
  EXPECT_TRUE(topo.is_host(3));
  EXPECT_EQ(topo.host_of(0), 0);
  EXPECT_EQ(topo.host_of(1), 3);
  EXPECT_EQ(topo.sim_node(2), 0);
  EXPECT_EQ(topo.sim_node(4), 1);
  EXPECT_EQ(topo.device_node(2), 4);
  EXPECT_EQ(topo.home_host(5), 3);
}

TEST(ClusterTopology, RoutesChainThroughHosts) {
  const auto cluster = sim::ClusterConfig::uniform(
      2, sim::MachineConfig::platform_c2050());
  const MemTopology topo = MemTopology::of_cluster(cluster);
  // [host0, dev0, host1, dev1]
  EXPECT_TRUE(topo.direct(0, 2));   // host <-> host: inter-node link
  EXPECT_TRUE(topo.direct(1, 0));   // device <-> own host: PCIe
  EXPECT_FALSE(topo.direct(1, 2));  // device to remote host
  EXPECT_FALSE(topo.direct(1, 3));  // device to remote device
  // dev0 -> dev1 drains to host0 first, then host0 -> dev1 goes via host1.
  EXPECT_EQ(topo.route_via(1, 3), 0);
  EXPECT_EQ(topo.route_via(0, 3), 2);
  EXPECT_EQ(topo.route_via(1, 0), -1);
  // The single-host layout is the degenerate case.
  const MemTopology single = MemTopology::single_host(2);
  EXPECT_FALSE(single.multi_node());
  EXPECT_EQ(single.route_via(1, 0), -1);
}

// ---------------------------------------------------------------------------
// Differential guard: one-node cluster == plain machine, bitwise
// ---------------------------------------------------------------------------

/// x <- 3*x + 1 elementwise; runnable on every worker kind.
Codelet make_affine_codelet() {
  Codelet codelet("dist_affine");
  auto body = [](ExecContext& ctx) {
    auto* data = ctx.buffer_as<std::uint64_t>(0);
    for (std::size_t i = 0; i < ctx.elements(0); ++i) {
      data[i] = 3 * data[i] + 1;
    }
  };
  auto cost = [](const std::vector<std::size_t>& bytes, const void*) {
    return sim::KernelCost{static_cast<double>(bytes[0]),
                           static_cast<double>(bytes[0]), 1.0};
  };
  for (const Arch arch :
       {Arch::kCpu, Arch::kCpuOmp, Arch::kCuda, Arch::kOpenCl}) {
    codelet.add_impl(Implementation(
        arch, "dist_affine_" + to_string(arch), body, cost));
  }
  return codelet;
}

struct Snapshot {
  std::vector<WorkerDesc> descs;
  std::vector<WorkerStats> stats;
  std::array<std::uint64_t, kArchCount> arch_counts{};
  TransferStats transfers;
  double makespan = 0.0;
  std::uint64_t submitted = 0;
  std::string summary;
};

/// Runs one forced-placement chain per worker (combined-CPU workers in a
/// separate phase, so their host-group clock coupling with the per-core
/// workers resolves at a quiesced, deterministic point) and snapshots
/// every counter the engine exposes.
Snapshot run_pinned_chains(EngineConfig config) {
  config.use_history_models = false;
  config.enable_prefetch = false;
  Engine engine(std::move(config));
  const Codelet codelet = make_affine_codelet();
  const auto& workers = engine.workers();

  std::vector<std::vector<std::uint64_t>> buffers(
      workers.size(), std::vector<std::uint64_t>(32, 1));
  std::vector<DataHandlePtr> handles;
  for (auto& buffer : buffers) {
    handles.push_back(engine.register_buffer(
        buffer.data(), buffer.size() * sizeof(std::uint64_t),
        sizeof(std::uint64_t)));
  }

  const auto submit_chain = [&](bool combined_phase) {
    for (std::size_t w = 0; w < workers.size(); ++w) {
      if (workers[w].is_combined_cpu != combined_phase) continue;
      for (int step = 0; step < 5; ++step) {
        TaskSpec spec;
        spec.codelet = &codelet;
        spec.operands = {{handles[w], AccessMode::kReadWrite}};
        spec.forced_worker = workers[w].id;
        engine.submit(std::move(spec));
      }
    }
    engine.wait_for_all();
  };
  submit_chain(false);
  submit_chain(true);
  for (const auto& handle : handles) {
    engine.acquire_host(handle, AccessMode::kRead);
  }

  Snapshot snap;
  snap.descs = workers;
  for (const auto& desc : workers) snap.stats.push_back(engine.worker_stats(desc.id));
  snap.arch_counts = engine.arch_task_counts();
  snap.transfers = engine.transfer_stats();
  snap.makespan = engine.virtual_makespan();
  snap.submitted = engine.tasks_submitted();
  snap.summary = engine.summary();

  // The numerics themselves must be exact too.
  for (const auto& buffer : buffers) {
    for (const std::uint64_t v : buffer) EXPECT_EQ(v, 364u);  // 5x affine(1)
  }
  return snap;
}

void expect_bitwise_equal(const Snapshot& a, const Snapshot& b) {
  ASSERT_EQ(a.descs.size(), b.descs.size());
  for (std::size_t w = 0; w < a.descs.size(); ++w) {
    EXPECT_EQ(a.descs[w].id, b.descs[w].id);
    EXPECT_EQ(a.descs[w].archs, b.descs[w].archs);
    EXPECT_EQ(a.descs[w].node, b.descs[w].node);
    EXPECT_EQ(a.descs[w].sim_node, b.descs[w].sim_node);
    EXPECT_EQ(a.descs[w].is_combined_cpu, b.descs[w].is_combined_cpu);
    EXPECT_EQ(a.stats[w].tasks_executed, b.stats[w].tasks_executed) << w;
    EXPECT_EQ(a.stats[w].failed_attempts, b.stats[w].failed_attempts) << w;
    // Bitwise, not approximate: the one-node cluster must take the exact
    // same arithmetic path through the cost model as the single host.
    EXPECT_EQ(a.stats[w].busy_vtime, b.stats[w].busy_vtime) << w;
    EXPECT_EQ(a.stats[w].energy_joules, b.stats[w].energy_joules) << w;
  }
  EXPECT_EQ(a.arch_counts, b.arch_counts);
  EXPECT_EQ(a.transfers.host_to_device_count, b.transfers.host_to_device_count);
  EXPECT_EQ(a.transfers.device_to_host_count, b.transfers.device_to_host_count);
  EXPECT_EQ(a.transfers.host_to_device_bytes, b.transfers.host_to_device_bytes);
  EXPECT_EQ(a.transfers.device_to_host_bytes, b.transfers.device_to_host_bytes);
  EXPECT_EQ(a.transfers.internode_count, b.transfers.internode_count);
  EXPECT_EQ(a.transfers.internode_bytes, b.transfers.internode_bytes);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.summary, b.summary);
}

class SingleNodeDifferential : public ::testing::TestWithParam<std::string> {};

TEST_P(SingleNodeDifferential, OneNodeClusterMatchesMachineBitwise) {
  sim::MachineConfig machine = sim::MachineConfig::platform_c2050();
  machine.cpu_cores = 2;

  EngineConfig host_config;
  host_config.machine = machine;
  host_config.scheduler = GetParam();

  EngineConfig cluster_config;
  cluster_config.cluster = sim::ClusterConfig::single(machine);
  cluster_config.scheduler = GetParam();

  const Snapshot host_snap = run_pinned_chains(host_config);
  const Snapshot cluster_snap = run_pinned_chains(cluster_config);
  expect_bitwise_equal(host_snap, cluster_snap);
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, SingleNodeDifferential,
                         ::testing::Values("eager", "random", "ws", "dmda",
                                           "lookahead"),
                         [](const auto& info) { return info.param; });

TEST(SingleNodeDifferential, DualDeviceMachineMatchesBitwise) {
  sim::MachineConfig machine = sim::MachineConfig::platform_dual_c2050();
  machine.cpu_cores = 2;
  EngineConfig host_config;
  host_config.machine = machine;
  EngineConfig cluster_config;
  cluster_config.cluster = sim::ClusterConfig::single(machine);
  expect_bitwise_equal(run_pinned_chains(host_config),
                       run_pinned_chains(cluster_config));
}

// ---------------------------------------------------------------------------
// Multi-node execution: routing, coherence, shadow checker
// ---------------------------------------------------------------------------

/// First accelerator worker on `sim_node`.
WorkerId accelerator_on(const Engine& engine, int sim_node) {
  for (const auto& desc : engine.workers()) {
    if (desc.sim_node != sim_node || desc.archs.empty()) continue;
    if (desc.archs.front() == Arch::kCuda ||
        desc.archs.front() == Arch::kOpenCl) {
      return desc.id;
    }
  }
  ADD_FAILURE() << "no accelerator on sim node " << sim_node;
  return kNoWorkerHint;
}

TEST(MultiNode, RemoteDeviceTaskRoutesOverInternodeLink) {
  EngineConfig config;
  config.cluster = sim::ClusterConfig::uniform(
      2, sim::MachineConfig::platform_c2050());
  config.enable_prefetch = false;
  Engine engine(config);
  const Codelet codelet = make_affine_codelet();

  std::vector<std::uint64_t> data(16, 1);
  auto handle = engine.register_buffer(
      data.data(), data.size() * sizeof(std::uint64_t), sizeof(std::uint64_t));

  // Force the task onto node 1's accelerator: the operand must travel
  // host0 -> host1 -> dev1, i.e. one inter-node hop plus one PCIe hop.
  TaskSpec spec;
  spec.codelet = &codelet;
  spec.operands = {{handle, AccessMode::kReadWrite}};
  spec.forced_worker = accelerator_on(engine, 1);
  engine.submit(std::move(spec));
  engine.wait_for_all();

  auto stats = engine.transfer_stats();
  EXPECT_EQ(stats.internode_count, 1u);
  EXPECT_EQ(stats.internode_bytes, data.size() * sizeof(std::uint64_t));
  EXPECT_GE(stats.host_to_device_count, 1u);

  // Pulling the result home crosses the link again: dev1 -> host1 -> host0.
  engine.acquire_host(handle, AccessMode::kRead);
  stats = engine.transfer_stats();
  EXPECT_EQ(stats.internode_count, 2u);
  for (const std::uint64_t v : data) EXPECT_EQ(v, 4u);

  // The inter-node link is meaningfully slower than PCIe: the cluster hop
  // must dominate the virtual cost of this tiny transfer.
  EXPECT_GT(engine.virtual_makespan(),
            engine.cluster().internode.latency_us * 1e-6);
}

TEST(MultiNode, ShadowCheckerCleanAcrossThreeLevels) {
  EngineConfig config;
  config.cluster = sim::ClusterConfig::uniform(
      2, sim::MachineConfig::platform_c2050());
  config.verify_shadow = true;
  Engine engine(config);
  const Codelet codelet = make_affine_codelet();

  std::vector<std::uint64_t> data(8, 1);
  auto handle = engine.register_buffer(
      data.data(), data.size() * sizeof(std::uint64_t), sizeof(std::uint64_t));

  // Ping-pong the handle between the two nodes' accelerators: every
  // transition exercises host-local, device-local and remote replicas.
  for (int round = 0; round < 4; ++round) {
    TaskSpec spec;
    spec.codelet = &codelet;
    spec.operands = {{handle, AccessMode::kReadWrite}};
    spec.forced_worker = accelerator_on(engine, round % 2);
    engine.submit(std::move(spec));
  }
  engine.wait_for_all();
  engine.acquire_host(handle, AccessMode::kRead);

  EXPECT_GT(engine.shadow_checks(), 0u);
  for (const std::uint64_t v : data) {
    EXPECT_EQ(v, 121u);  // affine applied 4 times to 1
  }
}

// ---------------------------------------------------------------------------
// Distributed workloads
// ---------------------------------------------------------------------------

TEST(DistributedJacobi, MatchesReferenceBitwiseOnTwoNodes) {
  EngineConfig config;
  config.cluster = sim::ClusterConfig::uniform(
      2, sim::MachineConfig::platform_c2050());
  Engine engine(config);

  apps::dist::JacobiConfig jacobi;
  jacobi.rows = 24;
  jacobi.cols = 12;
  jacobi.iterations = 5;
  const auto result = apps::dist::run_jacobi(engine, jacobi);
  const auto expected = apps::dist::jacobi_reference(jacobi);
  ASSERT_EQ(result.grid.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(result.grid[i], expected[i]) << "cell " << i;
  }
  EXPECT_GT(result.transfers.internode_count, 0u);
  EXPECT_GT(result.virtual_seconds, 0.0);
}

TEST(DistributedJacobi, MatchesReferenceOnSingleHostAndWideHalo) {
  EngineConfig config;  // plain single machine, no cluster
  Engine engine(config);
  apps::dist::JacobiConfig jacobi;
  jacobi.rows = 16;
  jacobi.cols = 8;
  jacobi.iterations = 3;
  jacobi.halo = 2;
  const auto result = apps::dist::run_jacobi(engine, jacobi);
  const auto expected = apps::dist::jacobi_reference(jacobi);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(result.grid[i], expected[i]) << "cell " << i;
  }
  EXPECT_EQ(result.transfers.internode_count, 0u);
}

TEST(DistributedJacobi, OverlappedExchangeBeatsBlocking) {
  const auto cluster = sim::ClusterConfig::uniform(
      4, sim::MachineConfig::platform_c2050());
  // Large enough that the interior band outlasts the ~80us ghost chain
  // (inter-node latency dominates small grids): only then can overlap hide
  // the exchange, and the comparison is robust to worker-thread timing.
  apps::dist::JacobiConfig jacobi;
  jacobi.rows = 2048;
  jacobi.cols = 2048;
  jacobi.iterations = 4;

  apps::dist::JacobiResult overlapped, blocking;
  {
    EngineConfig config;
    config.cluster = cluster;
    config.use_history_models = false;
    config.enable_prefetch = false;
    Engine engine(config);
    jacobi.overlap = true;
    overlapped = apps::dist::run_jacobi(engine, jacobi);
  }
  {
    EngineConfig config;
    config.cluster = cluster;
    config.use_history_models = false;
    config.enable_prefetch = false;
    Engine engine(config);
    jacobi.overlap = false;
    blocking = apps::dist::run_jacobi(engine, jacobi);
  }
  // Identical work and traffic; only the dependency shape differs.
  EXPECT_EQ(overlapped.transfers.internode_count,
            blocking.transfers.internode_count);
  const auto expected = apps::dist::jacobi_reference(jacobi);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(overlapped.grid[i], expected[i]);
    ASSERT_EQ(blocking.grid[i], expected[i]);
  }
  // Overlapping the exchange with interior compute must shorten the
  // critical path.
  EXPECT_LT(overlapped.virtual_seconds, blocking.virtual_seconds);
}

TEST(DistributedJacobi, ExchangeWorkerDistinctFromCompute) {
  EngineConfig config;
  config.cluster = sim::ClusterConfig::uniform(
      2, sim::MachineConfig::platform_c2050());
  Engine engine(config);
  for (int node = 0; node < 2; ++node) {
    const WorkerId compute = apps::dist::compute_worker(engine, node);
    const WorkerId exchange = apps::dist::exchange_worker(engine, node);
    EXPECT_NE(compute, exchange);
    EXPECT_EQ(engine.workers()[static_cast<std::size_t>(compute)].sim_node,
              node);
    EXPECT_EQ(engine.workers()[static_cast<std::size_t>(exchange)].sim_node,
              node);
  }
}

TEST(DistributedSpmv, MatchesReferenceAcrossNodes) {
  EngineConfig config;
  config.cluster = sim::ClusterConfig::uniform(
      2, sim::MachineConfig::platform_c2050());
  Engine engine(config);

  const auto problem = apps::spmv::make_problem(
      apps::sparse::MatrixClass::kHB, 0.05);
  const auto result = apps::dist::run_distributed_spmv(engine, problem);
  const auto expected = apps::spmv::reference(problem);
  ASSERT_EQ(result.y.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(result.y[i], expected[i]) << "row " << i;
  }
  // x fans out to the remote node over the link exactly once.
  EXPECT_GT(result.transfers.internode_count, 0u);
}

}  // namespace
}  // namespace peppher::rt
