// Command-line driver tests: argument parsing and the two end-to-end flows
// of §V-A — `compose -generateCompFiles="spmv.h"` then `compose main.xml`.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "compose/tool.hpp"
#include "support/error.hpp"
#include "support/fs.hpp"

#include "temp_dir.hpp"

namespace peppher::compose {
namespace {

TEST(ToolArgs, ParsesBuildMode) {
  const ToolOptions options = parse_arguments(
      {"main.xml", "-disableImpls=a,b", "-useHistoryModels=false",
       "-scheduler=eager", "-machine=c1060", "-outdir=/tmp/x", "-verbose"});
  EXPECT_EQ(options.main_descriptor, "main.xml");
  EXPECT_EQ(options.recipe.disable_impls,
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(options.recipe.use_history_models, false);
  EXPECT_EQ(options.recipe.scheduler.value(), "eager");
  EXPECT_EQ(options.recipe.machine.name, "xeon-e5520+c1060");
  EXPECT_EQ(options.output_dir, "/tmp/x");
  EXPECT_TRUE(options.verbose);
}

TEST(ToolArgs, ParsesUtilityMode) {
  const ToolOptions options =
      parse_arguments({"-generateCompFiles=\"spmv.h\"", "-backends=cpu,cuda"});
  EXPECT_EQ(options.generate_comp_files, "spmv.h");
  EXPECT_EQ(options.skeleton.backends,
            (std::vector<std::string>{"cpu", "cuda"}));
}

TEST(ToolArgs, ParsesBindings) {
  const ToolOptions options =
      parse_arguments({"main.xml", "-bind=T=float,double", "-bind=U=int"});
  ASSERT_EQ(options.recipe.bindings.size(), 2u);
  EXPECT_EQ(options.recipe.bindings[0].first, "T");
  EXPECT_EQ(options.recipe.bindings[0].second,
            (std::vector<std::string>{"float", "double"}));
  EXPECT_EQ(options.recipe.bindings[1].first, "U");
}

TEST(ToolArgs, RejectsBadInput) {
  EXPECT_THROW(parse_arguments({}), Error);
  EXPECT_THROW(parse_arguments({"-unknownSwitch=1"}), Error);
  EXPECT_THROW(parse_arguments({"a.xml", "b.xml"}), Error);
  EXPECT_THROW(parse_arguments({"main.xml", "-bind=Tfloat"}), Error);
  EXPECT_THROW(parse_arguments({"main.xml", "-machine=abacus"}), Error);
  EXPECT_THROW(parse_arguments({"--help"}), Error);
}

class ToolEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = peppher::testing::unique_temp_dir("peppher_tool_e2e");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  int run(const std::vector<std::string>& args) {
    const ToolOptions options = parse_arguments(args);
    return run_tool(options, out_, err_);
  }

  std::filesystem::path dir_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(ToolEndToEnd, UtilityModeThenBuildMode) {
  // Step 1 (§V-A): generate skeletons from the header.
  fs::write_file(dir_ / "spmv.h",
                 "void spmv(const float* values, int nnz, int nrows, "
                 "const float* x, float* y);");
  ASSERT_EQ(run({"-generateCompFiles=" + (dir_ / "spmv.h").string(),
                 "-outdir=" + dir_.string()}),
            0)
      << err_.str();
  ASSERT_TRUE(std::filesystem::exists(dir_ / "spmv" / "spmv.xml"));
  ASSERT_TRUE(std::filesystem::exists(dir_ / "main.xml"));

  // Step 2: compose the application from the generated descriptors.
  ASSERT_EQ(run({(dir_ / "main.xml").string(), "-verbose"}), 0) << err_.str();
  EXPECT_TRUE(std::filesystem::exists(dir_ / "spmv_wrapper.cpp"));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "peppher.h"));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "Makefile"));
  EXPECT_NE(out_.str().find("composed 1 component(s)"), std::string::npos);

  // The generated wrapper registers the cpu/openmp/cuda skeleton variants.
  const std::string wrapper = fs::read_file(dir_ / "spmv_wrapper.cpp");
  EXPECT_NE(wrapper.find("spmv_cpu"), std::string::npos);
  EXPECT_NE(wrapper.find("spmv_openmp"), std::string::npos);
  EXPECT_NE(wrapper.find("spmv_cuda"), std::string::npos);
}

TEST_F(ToolEndToEnd, DisableImplsNarrowsGeneratedCode) {
  fs::write_file(dir_ / "k.h", "void k(const float* in, float* out, int n);");
  ASSERT_EQ(run({"-generateCompFiles=" + (dir_ / "k.h").string(),
                 "-outdir=" + dir_.string()}),
            0);
  ASSERT_EQ(run({(dir_ / "main.xml").string(), "-disableImpls=cuda"}), 0)
      << err_.str();
  const std::string wrapper = fs::read_file(dir_ / "k_wrapper.cpp");
  EXPECT_EQ(wrapper.find("k_cuda"), std::string::npos);
  EXPECT_NE(wrapper.find("k_cpu"), std::string::npos);
}

TEST_F(ToolEndToEnd, DumpIrPrintsTheComponentTree) {
  fs::write_file(dir_ / "k.h", "void k(const float* in, float* out, int n);\n");
  ASSERT_EQ(run({"-generateCompFiles=" + (dir_ / "k.h").string(),
                 "-outdir=" + dir_.string()}),
            0);
  ASSERT_EQ(run({(dir_ / "main.xml").string(), "-dumpIR",
                 "-disableImpls=k_openmp"}),
            0)
      << err_.str();
  const std::string text = out_.str();
  EXPECT_NE(text.find("component tree for application"), std::string::npos);
  EXPECT_NE(text.find("component k"), std::string::npos);
  EXPECT_NE(text.find("[x] k_cpu"), std::string::npos);
  EXPECT_NE(text.find("[ ] k_openmp"), std::string::npos);
  EXPECT_NE(text.find("disableImpls"), std::string::npos);
}

TEST_F(ToolEndToEnd, MissingMainReportsError) {
  EXPECT_EQ(run({(dir_ / "nope.xml").string()}), 1);
  EXPECT_NE(err_.str().find("compose:"), std::string::npos);
}

TEST_F(ToolEndToEnd, CpuOnlyMachineDropsCudaVariant) {
  fs::write_file(dir_ / "k.h", "void k(const float* in, float* out, int n);");
  ASSERT_EQ(run({"-generateCompFiles=" + (dir_ / "k.h").string(),
                 "-outdir=" + dir_.string()}),
            0);
  ASSERT_EQ(run({(dir_ / "main.xml").string(), "-machine=cpu"}), 0);
  const std::string wrapper = fs::read_file(dir_ / "k_wrapper.cpp");
  EXPECT_EQ(wrapper.find("Arch::kCuda"), std::string::npos);
}

}  // namespace
}  // namespace peppher::compose
