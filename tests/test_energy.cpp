// Energy model tests: per-worker energy accounting and the "energy"
// optimization goal (§II: the main module descriptor states "the overall
// optimization goal"; PEPPHER targets performance *and* energy).
#include <gtest/gtest.h>

#include "compose/ir.hpp"
#include "runtime/engine.hpp"

namespace peppher {
namespace {

/// Busy-work codelet with both CPU and CUDA variants whose declared costs
/// make the GPU a bit faster but far more power-hungry.
rt::Codelet make_burner() {
  rt::Codelet codelet("burner");
  for (rt::Arch arch : {rt::Arch::kCpuOmp, rt::Arch::kCuda}) {
    rt::Implementation impl;
    impl.arch = arch;
    impl.name = "burner_" + rt::to_string(arch);
    impl.fn = [](rt::ExecContext& ctx) {
      auto* data = ctx.buffer_as<float>(0);
      for (std::size_t i = 0; i < ctx.elements(0); ++i) data[i] += 1.0f;
    };
    impl.cost = [](const std::vector<std::size_t>& bytes, const void*) {
      // Moderately compute-heavy: GPU wins on time but not by a huge factor.
      return sim::KernelCost{static_cast<double>(bytes[0]) * 50.0,
                             static_cast<double>(bytes[0]), 1.0};
    };
    codelet.add_impl(std::move(impl));
  }
  return codelet;
}

rt::EngineConfig config(rt::Objective objective) {
  rt::EngineConfig c;
  c.machine = sim::MachineConfig::platform_c2050();
  c.machine.cpu_cores = 4;
  c.use_history_models = false;
  c.objective = objective;
  return c;
}

TEST(Energy, AccountingMatchesBusyTimeTimesWatts) {
  rt::Engine engine(config(rt::Objective::kTime));
  rt::Codelet codelet = make_burner();
  std::vector<float> data(1 << 16, 0.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * 4, 4);
  rt::TaskSpec spec;
  spec.codelet = &codelet;
  spec.operands = {{handle, rt::AccessMode::kReadWrite}};
  spec.forced_arch = rt::Arch::kCuda;
  spec.synchronous = true;
  rt::TaskPtr task = engine.submit(std::move(spec));

  const double expected = task->exec_seconds * 238.0;  // C2050 board TDP
  EXPECT_NEAR(engine.energy_joules(), expected, expected * 1e-9);
  // The GPU worker carries all of it.
  double gpu_energy = 0.0;
  for (const auto& desc : engine.workers()) {
    if (desc.node != rt::kHostNode) {
      gpu_energy += engine.worker_stats(desc.id).energy_joules;
    }
  }
  EXPECT_DOUBLE_EQ(gpu_energy, engine.energy_joules());
}

TEST(Energy, ObjectiveFlipsPlacementFromGpuToCpu) {
  // Time objective: the GPU wins (faster). Energy objective: the CPU wins
  // when the GPU's speed advantage is smaller than its power disadvantage —
  // exaggerate the accelerator's draw so the flip is unambiguous (the real
  // C2050 is usually *more* efficient than 4 Nehalem cores).
  rt::Codelet codelet = make_burner();
  auto run = [&](rt::Objective objective) {
    rt::EngineConfig c = config(objective);
    c.machine.accelerators[0].busy_watts = 50'000.0;
    rt::Engine engine(c);
    std::vector<float> data(1 << 18, 0.0f);
    auto handle = engine.register_buffer(data.data(), data.size() * 4, 4);
    rt::TaskSpec spec;
    spec.codelet = &codelet;
    spec.operands = {{handle, rt::AccessMode::kReadWrite}};
    spec.synchronous = true;
    return engine.submit(std::move(spec))->executed_arch;
  };
  EXPECT_EQ(run(rt::Objective::kTime), rt::Arch::kCuda);
  EXPECT_EQ(run(rt::Objective::kEnergy), rt::Arch::kCpuOmp);
}

TEST(Energy, EnergyObjectiveCostsMoreTimeButLessEnergy) {
  rt::Codelet codelet = make_burner();
  double time_makespan = 0, time_energy = 0, energy_makespan = 0,
         energy_energy = 0;
  for (rt::Objective objective : {rt::Objective::kTime, rt::Objective::kEnergy}) {
    rt::EngineConfig c = config(objective);
    c.machine.accelerators[0].busy_watts = 50'000.0;  // see the flip test
    rt::Engine engine(c);
    std::vector<float> data(1 << 18, 0.0f);
    auto handle = engine.register_buffer(data.data(), data.size() * 4, 4);
    for (int i = 0; i < 4; ++i) {
      rt::TaskSpec spec;
      spec.codelet = &codelet;
      spec.operands = {{handle, rt::AccessMode::kReadWrite}};
      engine.submit(std::move(spec));
    }
    engine.wait_for_all();
    if (objective == rt::Objective::kTime) {
      time_makespan = engine.virtual_makespan();
      time_energy = engine.energy_joules();
    } else {
      energy_makespan = engine.virtual_makespan();
      energy_energy = engine.energy_joules();
    }
  }
  EXPECT_LT(energy_energy, time_energy);      // the point of the objective
  EXPECT_GT(energy_makespan, time_makespan);  // the price paid
}

TEST(Energy, EngineConfigFromTreeMapsTheGoal) {
  desc::Repository repo;
  repo.load_text(R"(<peppher-interface name="k">
      <function returnType="void"/></peppher-interface>)");
  repo.load_text(R"(<peppher-implementation name="k_cpu" interface="k">
      <platform language="cpu"/></peppher-implementation>)");
  repo.load_text(R"(<peppher-main name="app">
      <goal metric="energy"/>
      <uses interface="k"/>
      <composition useHistoryModels="false" scheduler="eager"/>
    </peppher-main>)");
  const compose::ComponentTree tree = compose::build_tree(repo, compose::Recipe{});
  const rt::EngineConfig config = compose::engine_config(tree);
  EXPECT_EQ(config.objective, rt::Objective::kEnergy);
  EXPECT_EQ(config.scheduler, "eager");
  EXPECT_FALSE(config.use_history_models);
  EXPECT_EQ(config.machine.name, "xeon-e5520+c2050");
}

TEST(Energy, SummaryIncludesEnergyLine) {
  rt::Engine engine(config(rt::Objective::kTime));
  EXPECT_NE(engine.summary().find("energy:"), std::string::npos);
}

}  // namespace
}  // namespace peppher
