// The strongest end-to-end test in the suite: the complete §V-A
// PEPPHER-ization flow producing a *running executable*.
//
//   1. utility mode generates component skeletons from a C header;
//   2. the "programmer" fills in the implementation variants;
//   3. build mode generates wrappers, peppher.h and the Makefile;
//   4. the generated Makefile compiles and links everything against this
//      repository's libraries;
//   5. the resulting binary runs and prints the correct result.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "compose/tool.hpp"
#include "support/fs.hpp"
#include "support/strings.hpp"

#include "temp_dir.hpp"

namespace peppher {
namespace {

class FullBuild : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = peppher::testing::unique_temp_dir("peppher_full_build");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  int run_compose(const std::vector<std::string>& args) {
    std::ostringstream out, err;
    const int rc = compose::run_tool(compose::parse_arguments(args), out, err);
    if (rc != 0) ADD_FAILURE() << err.str();
    return rc;
  }

  /// Runs a shell command, capturing stdout+stderr into `log`.
  int shell(const std::string& command, std::string* log) {
    const auto log_path = dir_ / "shell.log";
    const int rc =
        std::system((command + " > " + log_path.string() + " 2>&1").c_str());
    *log = fs::read_file(log_path);
    return rc;
  }

  /// The make invocation pointing the generated Makefile at this
  /// repository's headers and libraries. When the test binary itself is a
  /// sanitized build the generated application links against instrumented
  /// static libraries, so the sanitizer flag must ride along in CXXFLAGS.
  std::string make_command() const {
    const std::string src_root = std::string(PEPPHER_SOURCE_ROOT) + "/src";
    const std::string bin_root(PEPPHER_BINARY_ROOT);
    std::string cxxflags =
        "-O1 -std=c++20 -I" + dir_.string() + " -I" + src_root;
    const std::string sanitize(PEPPHER_SANITIZE_FLAG);
    if (!sanitize.empty()) cxxflags += " " + sanitize;
    std::string libs;
    for (const char* lib : {"core", "runtime", "sim", "support"}) {
      libs += " -L" + bin_root + "/src/" + lib;
    }
    libs +=
        " -lpeppher_core -lpeppher_runtime -lpeppher_sim -lpeppher_support "
        "-lpthread";
    return "make -C " + dir_.string() + " CXXFLAGS=\"" + cxxflags +
           "\" PEPPHER_LIBS=\"" + libs + "\"";
  }

  std::filesystem::path dir_;
};

TEST_F(FullBuild, GeneratedApplicationBuildsAndRuns) {
  // -- 1. the header the PEPPHER-ization starts from -------------------------
  fs::write_file(dir_ / "saxpy.h",
                 "void saxpy(float a, const float* x, float* y, int n);\n");
  ASSERT_EQ(run_compose({"-generateCompFiles=" + (dir_ / "saxpy.h").string(),
                         "-outdir=" + dir_.string(),
                         "-backends=cpu,openmp"}),
            0);

  // -- 2. fill in the implementation variants (the programmer's job) --------
  fs::write_file(dir_ / "saxpy" / "cpu" / "saxpy_cpu.cpp",
                 "void saxpy_cpu(float a, const float* x, float* y, int n) {\n"
                 "  for (int i = 0; i < n; ++i) y[i] += a * x[i];\n"
                 "}\n");
  fs::write_file(dir_ / "saxpy" / "openmp" / "saxpy_openmp.cpp",
                 "void saxpy_openmp(float a, const float* x, float* y, int n) {\n"
                 "  for (int i = 0; i < n; ++i) y[i] += a * x[i];\n"
                 "}\n");

  // -- 3. the application's main module --------------------------------------
  fs::write_file(dir_ / "main.cpp",
                 "#include \"peppher.h\"\n"
                 "#include <cstdio>\n"
                 "int main() {\n"
                 "  PEPPHER_INITIALIZE();\n"
                 "  float x[256], y[256];\n"
                 "  for (int i = 0; i < 256; ++i) { x[i] = 1.0f; y[i] = 2.0f; }\n"
                 "  saxpy(3.0f, x, y, 256);\n"
                 "  double sum = 0.0;\n"
                 "  for (int i = 0; i < 256; ++i) sum += y[i];\n"
                 "  std::printf(\"sum=%.1f\\n\", sum);\n"
                 "  PEPPHER_SHUTDOWN();\n"
                 "  return 0;\n"
                 "}\n");

  // -- 4. compose and build with the generated Makefile ----------------------
  ASSERT_EQ(run_compose({(dir_ / "main.xml").string(), "-machine=cpu"}), 0);
  ASSERT_TRUE(std::filesystem::exists(dir_ / "Makefile"));
  ASSERT_TRUE(std::filesystem::exists(dir_ / "peppher.h"));

  std::string log;
  ASSERT_EQ(shell(make_command(), &log), 0) << log;
  ASSERT_TRUE(std::filesystem::exists(dir_ / "saxpy_app"));

  // -- 5. run it: y = 2 + 3*1 = 5 per element, 256 elements -------------------
  ASSERT_EQ(shell((dir_ / "saxpy_app").string(), &log), 0) << log;
  EXPECT_NE(log.find("sum=1280.0"), std::string::npos) << log;
}

TEST_F(FullBuild, ContainerComponentWithAsyncWrapper) {
  // Smart-container operands: the generated code lowers Vector<float>& to
  // (float*, std::size_t) for the implementation, and emits both the
  // synchronous entry wrapper and the _async one.
  fs::write_file(dir_ / "vscale.h",
                 "void vscale(Vector<float>& data, float factor);\n");
  ASSERT_EQ(run_compose({"-generateCompFiles=" + (dir_ / "vscale.h").string(),
                         "-outdir=" + dir_.string(), "-backends=cpu"}),
            0);
  fs::write_file(
      dir_ / "vscale" / "cpu" / "vscale_cpu.cpp",
      "#include <cstddef>\n"
      "void vscale_cpu(float* data, std::size_t data_count, float factor) {\n"
      "  for (std::size_t i = 0; i < data_count; ++i) data[i] *= factor;\n"
      "}\n");
  fs::write_file(dir_ / "main.cpp",
                 "#include \"peppher.h\"\n"
                 "#include <cstdio>\n"
                 "int main() {\n"
                 "  PEPPHER_INITIALIZE();\n"
                 "  {\n"
                 "    peppher::cont::Vector<float> v(&peppher::core::engine(),\n"
                 "                                   64, 1.0f);\n"
                 "    vscale(v, 2.0f);                 // synchronous wrapper\n"
                 "    auto task = vscale_async(v, 4.0f);  // async wrapper\n"
                 "    peppher::core::engine().wait(task);\n"
                 "    std::printf(\"v0=%.1f\\n\", static_cast<float>(v[0]));\n"
                 "  }\n"
                 "  PEPPHER_SHUTDOWN();\n"
                 "  return 0;\n"
                 "}\n");
  ASSERT_EQ(run_compose({(dir_ / "main.xml").string(), "-machine=cpu"}), 0);

  std::string log;
  ASSERT_EQ(shell(make_command(), &log), 0) << log;
  ASSERT_EQ(shell((dir_ / "vscale_app").string(), &log), 0) << log;
  EXPECT_NE(log.find("v0=8.0"), std::string::npos) << log;  // 1 * 2 * 4
}

TEST_F(FullBuild, DisabledVariantNeverRuns) {
  // Same flow, but disableImpls removes the openmp variant; the binary must
  // still build and run with only the cpu variant registered.
  fs::write_file(dir_ / "scale.h", "void scale(float f, float* v, int n);\n");
  ASSERT_EQ(run_compose({"-generateCompFiles=" + (dir_ / "scale.h").string(),
                         "-outdir=" + dir_.string(),
                         "-backends=cpu,openmp"}),
            0);
  fs::write_file(dir_ / "scale" / "cpu" / "scale_cpu.cpp",
                 "void scale_cpu(float f, float* v, int n) {\n"
                 "  for (int i = 0; i < n; ++i) v[i] *= f;\n"
                 "}\n");
  fs::write_file(dir_ / "main.cpp",
                 "#include \"peppher.h\"\n"
                 "#include <cstdio>\n"
                 "int main() {\n"
                 "  PEPPHER_INITIALIZE();\n"
                 "  float v[8] = {1, 1, 1, 1, 1, 1, 1, 1};\n"
                 "  scale(4.0f, v, 8);\n"
                 "  std::printf(\"v0=%.1f\\n\", v[0]);\n"
                 "  PEPPHER_SHUTDOWN();\n"
                 "  return 0;\n"
                 "}\n");
  ASSERT_EQ(run_compose({(dir_ / "main.xml").string(), "-machine=cpu",
                         "-disableImpls=scale_openmp"}),
            0);
  // The openmp variant's source was never written: only composition-time
  // narrowing keeps the build working.
  std::string log;
  ASSERT_EQ(shell(make_command(), &log), 0) << log;
  ASSERT_EQ(shell((dir_ / "scale_app").string(), &log), 0) << log;
  EXPECT_NE(log.find("v0=4.0"), std::string::npos) << log;
}

}  // namespace
}  // namespace peppher
