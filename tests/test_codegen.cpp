// Code-generation tests: wrapper structure (entry-wrapper, backend
// wrappers, registration), peppher.h, Makefile — plus a compilation check
// that pipes a generated wrapper through the host compiler.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "compose/codegen.hpp"
#include "compose/expand.hpp"
#include "compose/ir.hpp"
#include "support/error.hpp"
#include "support/fs.hpp"

#include "temp_dir.hpp"

namespace peppher::compose {
namespace {

desc::Repository raw_pointer_repo() {
  desc::Repository repo;
  repo.load_text(R"(<peppher-interface name="spmv">
      <function returnType="void">
        <param name="values" type="const float*" accessMode="read" size="nnz"/>
        <param name="nnz" type="int" accessMode="read"/>
        <param name="nrows" type="int" accessMode="read"/>
        <param name="x" type="const float*" accessMode="read" size="nrows"/>
        <param name="y" type="float*" accessMode="write" size="nrows"/>
      </function>
    </peppher-interface>)");
  repo.load_text(R"(<peppher-implementation name="spmv_cpu" interface="spmv">
      <platform language="cpu"/>
      <sources><source file="cpu/spmv_cpu.cpp"/></sources>
      <compilation command="g++" options="-O2"/>
    </peppher-implementation>)");
  repo.load_text(R"(<peppher-implementation name="spmv_cusp" interface="spmv">
      <platform language="cuda"/>
      <sources><source file="cuda/spmv_cusp.cu"/></sources>
      <compilation command="nvcc" options="-O3"/>
    </peppher-implementation>)");
  repo.load_text(R"(<peppher-main name="spmv_app" source="main.cpp">
      <uses interface="spmv"/></peppher-main>)");
  return repo;
}

desc::Repository container_repo() {
  desc::Repository repo;
  repo.load_text(R"(<peppher-interface name="vscale">
      <function returnType="void">
        <param name="data" type="Vector&lt;float&gt;&amp;" accessMode="readwrite"/>
        <param name="factor" type="float" accessMode="read"/>
      </function>
    </peppher-interface>)");
  repo.load_text(R"(<peppher-implementation name="vscale_cpu" interface="vscale">
      <platform language="cpu"/>
      <sources><source file="cpu/vscale_cpu.cpp"/></sources>
    </peppher-implementation>)");
  repo.load_text(R"(<peppher-main name="vapp"><uses interface="vscale"/></peppher-main>)");
  return repo;
}

TEST(Codegen, WrapperContainsBackendWrappersAndRegistration) {
  ComponentTree tree = build_tree(raw_pointer_repo(), Recipe{});
  const std::string wrapper = generate_wrapper_file(tree.components[0]);

  // extern declarations of the actual implementations.
  EXPECT_NE(wrapper.find("extern void spmv_cpu(const float* values"),
            std::string::npos);
  EXPECT_NE(wrapper.find("extern void spmv_cusp("), std::string::npos);
  // Backend wrappers with the runtime's C task-function signature.
  EXPECT_NE(wrapper.find("_peppher_spmv_cpu_task(void** buffers, const void* arg)"),
            std::string::npos);
  EXPECT_NE(wrapper.find("_peppher_spmv_cusp_task"), std::string::npos);
  // Registration of both variants.
  EXPECT_NE(wrapper.find("register_backend(\"spmv\""), std::string::npos);
  EXPECT_NE(wrapper.find("peppher::rt::Arch::kCuda"), std::string::npos);
  // Entry wrapper with the interface's exact signature.
  EXPECT_NE(wrapper.find("void spmv(const float* values, int nnz"),
            std::string::npos);
  // Raw-pointer operands: transient registration with the declared size
  // expressions.
  EXPECT_NE(wrapper.find("static_cast<std::size_t>(nnz)"), std::string::npos);
  EXPECT_NE(wrapper.find("static_cast<std::size_t>(nrows)"), std::string::npos);
  // Raw pointers => synchronous only, no async wrapper.
  EXPECT_EQ(wrapper.find("spmv_async"), std::string::npos);
}

TEST(Codegen, DisabledVariantsAreNotRegistered) {
  Recipe recipe;
  recipe.disable_impls = {"spmv_cusp"};
  ComponentTree tree = build_tree(raw_pointer_repo(), recipe);
  apply_static_narrowing(tree);
  const std::string wrapper = generate_wrapper_file(tree.components[0]);
  EXPECT_EQ(wrapper.find("spmv_cusp"), std::string::npos);
  EXPECT_NE(wrapper.find("spmv_cpu"), std::string::npos);
}

TEST(Codegen, ContainerComponentGetsAsyncWrapper) {
  ComponentTree tree = build_tree(container_repo(), Recipe{});
  const std::string wrapper = generate_wrapper_file(tree.components[0]);
  EXPECT_NE(wrapper.find("void vscale(peppher::cont::Vector<float>& data, "
                         "float factor)"),
            std::string::npos);
  EXPECT_NE(wrapper.find("peppher::rt::TaskPtr vscale_async("), std::string::npos);
  // The lowered implementation signature passes pointer + count.
  EXPECT_NE(wrapper.find("extern void vscale_cpu(float* data, std::size_t "
                         "data_count, float factor)"),
            std::string::npos);
  // Geometry travels through the argument block.
  EXPECT_NE(wrapper.find("data_count = data.size()"), std::string::npos);
}

TEST(Codegen, MissingSizeExpressionThrows) {
  desc::Repository repo;
  repo.load_text(R"(<peppher-interface name="bad">
      <function returnType="void">
        <param name="p" type="float*" accessMode="readwrite"/>
      </function>
    </peppher-interface>)");
  repo.load_text(R"(<peppher-implementation name="bad_cpu" interface="bad">
      <platform language="cpu"/></peppher-implementation>)");
  repo.load_text(R"(<peppher-main name="app"><uses interface="bad"/></peppher-main>)");
  ComponentTree tree = build_tree(repo, Recipe{});
  EXPECT_THROW(generate_wrapper_file(tree.components[0]), Error);
}

TEST(Codegen, NonVoidInterfaceUnsupported) {
  desc::Repository repo;
  repo.load_text(R"(<peppher-interface name="ret">
      <function returnType="int"/>
    </peppher-interface>)");
  repo.load_text(R"(<peppher-implementation name="ret_cpu" interface="ret">
      <platform language="cpu"/></peppher-implementation>)");
  repo.load_text(R"(<peppher-main name="app"><uses interface="ret"/></peppher-main>)");
  ComponentTree tree = build_tree(repo, Recipe{});
  EXPECT_THROW(generate_wrapper_file(tree.components[0]), Error);
}

TEST(Codegen, PredictionFunctionsAreWiredIntoRegistration) {
  desc::Repository repo = raw_pointer_repo();
  repo.load_text(R"(<peppher-implementation name="spmv_pred" interface="spmv">
      <platform language="cuda"/>
      <prediction function="spmv_pred_cost"/>
    </peppher-implementation>)");
  ComponentTree tree = build_tree(repo, Recipe{});
  const std::string wrapper = generate_wrapper_file(tree.components[0]);
  EXPECT_NE(wrapper.find("extern peppher::sim::KernelCost spmv_pred_cost("),
            std::string::npos);
  EXPECT_NE(wrapper.find("&_peppher_spmv_pred_task, &spmv_pred_cost)"),
            std::string::npos);
  // Variants without a prediction function register without one.
  EXPECT_NE(wrapper.find("\"spmv_cpu\", &_peppher_spmv_cpu_task);"),
            std::string::npos);
}

TEST(Codegen, TunableExpandedVariantsCompileToDistinctObjects) {
  desc::Repository repo = raw_pointer_repo();
  repo.load_text(R"(<peppher-implementation name="spmv_tiled" interface="spmv">
      <platform language="cuda"/>
      <sources><source file="cuda/spmv_tiled.cu"/></sources>
      <compilation command="nvcc" options="-O3"/>
      <tunables><tunable name="block_size" values="64,128"/></tunables>
    </peppher-implementation>)");
  ComponentTree tree = build_tree(repo, Recipe{});
  expand_tunables(tree);
  const std::string makefile = generate_makefile(tree);
  EXPECT_NE(makefile.find("spmv_tiled__block_size_64_cuda_spmv_tiled.o"),
            std::string::npos);
  EXPECT_NE(makefile.find("spmv_tiled__block_size_128_cuda_spmv_tiled.o"),
            std::string::npos);
  EXPECT_NE(makefile.find("-DBLOCK_SIZE=128"), std::string::npos);
}

TEST(Codegen, ConstraintsBecomeSelectabilityPredicates) {
  desc::Repository repo = raw_pointer_repo();
  repo.load_text(R"(<peppher-implementation name="spmv_bigonly" interface="spmv">
      <platform language="cuda"/>
      <constraints>
        <constraint param="nnz" min="1024"/>
        <constraint param="nrows" max="1000000"/>
      </constraints>
    </peppher-implementation>)");
  ComponentTree tree = build_tree(repo, Recipe{});
  const std::string wrapper = generate_wrapper_file(tree.components[0]);
  EXPECT_NE(wrapper.find("_peppher_spmv_bigonly_selectable"), std::string::npos);
  EXPECT_NE(wrapper.find("a->nnz) >= 1024"), std::string::npos);
  EXPECT_NE(wrapper.find("a->nrows) <= 1"), std::string::npos);  // 1e6 spelled out
  EXPECT_NE(wrapper.find(", nullptr, &_peppher_spmv_bigonly_selectable)"),
            std::string::npos);
  // Unconstrained variants register without a predicate.
  EXPECT_NE(wrapper.find("\"spmv_cpu\", &_peppher_spmv_cpu_task);"),
            std::string::npos);
}

TEST(Codegen, HeaderDeclaresEveryEntryWrapper) {
  ComponentTree tree = build_tree(raw_pointer_repo(), Recipe{});
  const std::string header = generate_header(tree);
  EXPECT_NE(header.find("#pragma once"), std::string::npos);
  EXPECT_NE(header.find("core/peppher.hpp"), std::string::npos);
  EXPECT_NE(header.find("void spmv(const float* values"), std::string::npos);
}

TEST(Codegen, MakefileHasPerVariantCompileRules) {
  ComponentTree tree = build_tree(raw_pointer_repo(), Recipe{});
  const std::string makefile = generate_makefile(tree);
  EXPECT_NE(makefile.find("spmv_app: $(OBJS)"), std::string::npos);
  EXPECT_NE(makefile.find("main.o: main.cpp"), std::string::npos);
  EXPECT_NE(makefile.find("spmv_wrapper.o: spmv_wrapper.cpp"), std::string::npos);
  // The CUDA variant keeps its descriptor-specified compiler and options.
  EXPECT_NE(makefile.find("nvcc -O3"), std::string::npos);
  EXPECT_NE(makefile.find("spmv_cusp_cuda_spmv_cusp.o: cuda/spmv_cusp.cu"),
            std::string::npos);
  EXPECT_NE(makefile.find("clean:"), std::string::npos);
}

TEST(Codegen, GenerateProducesAllFiles) {
  ComponentTree tree = build_tree(raw_pointer_repo(), Recipe{});
  const CodegenResult result = generate(tree);
  ASSERT_EQ(result.files.size(), 3u);  // wrapper + peppher.h + Makefile
  EXPECT_EQ(result.files[0].path, "spmv_wrapper.cpp");
  EXPECT_EQ(result.files[1].path, "peppher.h");
  EXPECT_EQ(result.files[2].path, "Makefile");
}

TEST(Codegen, WriteFilesCreatesTree) {
  ComponentTree tree = build_tree(raw_pointer_repo(), Recipe{});
  const auto dir = peppher::testing::unique_temp_dir("peppher_gen_test");
  write_files(generate(tree), dir);
  EXPECT_TRUE(std::filesystem::exists(dir / "spmv_wrapper.cpp"));
  EXPECT_TRUE(std::filesystem::exists(dir / "peppher.h"));
  EXPECT_TRUE(std::filesystem::exists(dir / "Makefile"));
  std::filesystem::remove_all(dir);
}

TEST(Codegen, LoweredSignatureConventions) {
  desc::InterfaceDescriptor iface;
  iface.name = "k";
  desc::ParamDesc vec;
  vec.name = "v";
  vec.type = "Vector<double>&";
  iface.params.push_back(vec);
  desc::ParamDesc mat;
  mat.name = "m";
  mat.type = "Matrix<float>&";
  iface.params.push_back(mat);
  desc::ParamDesc scalar;
  scalar.name = "s";
  scalar.type = "Scalar<int>&";
  iface.params.push_back(scalar);
  desc::ParamDesc value;
  value.name = "alpha";
  value.type = "float";
  iface.params.push_back(value);
  EXPECT_EQ(lowered_impl_signature(iface, "k_cpu"),
            "void k_cpu(double* v, std::size_t v_count, float* m, std::size_t "
            "m_rows, std::size_t m_cols, int* s, float alpha)");
}

// Generated wrappers must actually compile: syntax-check the generated
// wrapper and header with the host compiler against the real core API.
TEST(Codegen, GeneratedWrapperCompiles) {
  for (bool containers : {false, true}) {
    ComponentTree tree =
        build_tree(containers ? container_repo() : raw_pointer_repo(), Recipe{});
    const auto dir = peppher::testing::unique_temp_dir(
        containers ? "peppher_cc_cont" : "peppher_cc_raw");
    write_files(generate(tree), dir);
    const std::string src_root = std::string(PEPPHER_SOURCE_ROOT) + "/src";
    const std::string command = "g++ -std=c++20 -fsyntax-only -I" + dir.string() +
                                " -I" + src_root + " " +
                                (dir / (containers ? "vscale_wrapper.cpp"
                                                   : "spmv_wrapper.cpp"))
                                    .string() +
                                " 2> " + (dir / "cc.log").string();
    const int rc = std::system(command.c_str());
    EXPECT_EQ(rc, 0) << fs::read_file(dir / "cc.log");
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace peppher::compose
