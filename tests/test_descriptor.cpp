// Descriptor tests: XML round-trips of all four descriptor kinds, the
// repository, bottom-up ordering and validation diagnostics.
#include <gtest/gtest.h>

#include <filesystem>

#include "descriptor/descriptor.hpp"
#include "support/error.hpp"
#include "support/fs.hpp"
#include "xml/xml.hpp"

#include "temp_dir.hpp"

namespace peppher::desc {
namespace {

const char* const kSpmvInterface = R"(
<peppher-interface name="spmv">
  <function returnType="void">
    <param name="values" type="const float*" accessMode="read" size="nnz"/>
    <param name="nnz" type="int" accessMode="read"/>
    <param name="nrows" type="int" accessMode="read"/>
    <param name="x" type="const float*" accessMode="read" size="nrows"/>
    <param name="y" type="float*" accessMode="write" size="nrows"/>
  </function>
  <performanceMetrics><metric name="avg_exec_time"/></performanceMetrics>
  <contextParams><contextParam name="nnz" min="0" max="1e9"/></contextParams>
</peppher-interface>
)";

const char* const kCpuImpl = R"(
<peppher-implementation name="spmv_cpu" interface="spmv">
  <platform language="cpu"/>
  <sources><source file="cpu/spmv_cpu.cpp"/></sources>
  <compilation command="g++" options="-O2"/>
</peppher-implementation>
)";

const char* const kCudaImpl = R"(
<peppher-implementation name="spmv_cusp" interface="spmv">
  <platform language="cuda" target="TeslaC2050"/>
  <sources><source file="cuda/spmv_cusp.cu"/></sources>
  <compilation command="nvcc" options="-O3 -arch=sm_20"/>
  <resources minMemoryMB="1" maxMemoryMB="2048"/>
  <prediction function="spmv_cusp_predict"/>
  <tunables><tunable name="block_size" values="64,128,256" default="128"/></tunables>
  <constraints><constraint param="nnz" min="1024"/></constraints>
</peppher-implementation>
)";

TEST(InterfaceDescriptor, ParsesAllFields) {
  const xml::Document doc = xml::parse(kSpmvInterface);
  const InterfaceDescriptor iface = InterfaceDescriptor::from_xml(*doc.root);
  EXPECT_EQ(iface.name, "spmv");
  ASSERT_EQ(iface.params.size(), 5u);
  EXPECT_EQ(iface.params[0].type, "const float*");
  EXPECT_EQ(iface.params[0].access, rt::AccessMode::kRead);
  EXPECT_EQ(iface.params[0].size_expr, "nnz");
  EXPECT_TRUE(iface.params[0].is_operand());
  EXPECT_FALSE(iface.params[1].is_operand());
  EXPECT_EQ(iface.params[4].access, rt::AccessMode::kWrite);
  ASSERT_EQ(iface.performance_metrics.size(), 1u);
  ASSERT_EQ(iface.context_params.size(), 1u);
  EXPECT_DOUBLE_EQ(iface.context_params[0].max.value(), 1e9);
  EXPECT_FALSE(iface.is_generic());
}

TEST(InterfaceDescriptor, RoundTrip) {
  const xml::Document doc = xml::parse(kSpmvInterface);
  const InterfaceDescriptor iface = InterfaceDescriptor::from_xml(*doc.root);
  const InterfaceDescriptor again =
      InterfaceDescriptor::from_xml(*iface.to_xml());
  EXPECT_EQ(again.name, iface.name);
  EXPECT_EQ(again.params.size(), iface.params.size());
  EXPECT_EQ(again.params[0].size_expr, "nnz");
  EXPECT_EQ(again.context_params.size(), iface.context_params.size());
}

TEST(InterfaceDescriptor, PrototypeRendersSignature) {
  const xml::Document doc = xml::parse(kSpmvInterface);
  const InterfaceDescriptor iface = InterfaceDescriptor::from_xml(*doc.root);
  const std::string proto = iface.prototype();
  EXPECT_NE(proto.find("void spmv("), std::string::npos);
  EXPECT_NE(proto.find("const float* values"), std::string::npos);
}

TEST(InterfaceDescriptor, GenericTemplateParams) {
  const xml::Document doc = xml::parse(R"(
    <peppher-interface name="sort">
      <function returnType="void">
        <param name="data" type="Vector&lt;T&gt;&amp;" accessMode="readwrite"/>
      </function>
      <templateParam name="T"/>
    </peppher-interface>)");
  const InterfaceDescriptor iface = InterfaceDescriptor::from_xml(*doc.root);
  EXPECT_TRUE(iface.is_generic());
  EXPECT_EQ(iface.params[0].type, "Vector<T>&");
  EXPECT_TRUE(iface.params[0].is_container());
  EXPECT_EQ(iface.params[0].element_type(), "T");
}

TEST(ParamDesc, ElementTypeExtraction) {
  ParamDesc p;
  p.type = "const float*";
  EXPECT_EQ(p.element_type(), "float");
  p.type = "Vector<unsigned long>&";
  EXPECT_EQ(p.element_type(), "unsigned long");
  p.type = "int";
  EXPECT_EQ(p.element_type(), "");
}

TEST(ImplementationDescriptor, ParsesAllFields) {
  const xml::Document doc = xml::parse(kCudaImpl);
  const ImplementationDescriptor impl =
      ImplementationDescriptor::from_xml(*doc.root);
  EXPECT_EQ(impl.name, "spmv_cusp");
  EXPECT_EQ(impl.interface_name, "spmv");
  EXPECT_EQ(impl.arch(), rt::Arch::kCuda);
  EXPECT_EQ(impl.target_platform, "TeslaC2050");
  ASSERT_EQ(impl.sources.size(), 1u);
  EXPECT_EQ(impl.compile_command, "nvcc");
  EXPECT_DOUBLE_EQ(impl.max_memory_mb, 2048.0);
  EXPECT_EQ(impl.prediction_function.value(), "spmv_cusp_predict");
  ASSERT_EQ(impl.tunables.size(), 1u);
  EXPECT_EQ(impl.tunables[0].values.size(), 3u);
  EXPECT_EQ(impl.tunables[0].default_value, "128");
  ASSERT_EQ(impl.constraints.size(), 1u);
  EXPECT_TRUE(impl.constraints[0].admits(2048.0));
  EXPECT_FALSE(impl.constraints[0].admits(100.0));
}

TEST(ImplementationDescriptor, RoundTrip) {
  const xml::Document doc = xml::parse(kCudaImpl);
  const ImplementationDescriptor impl =
      ImplementationDescriptor::from_xml(*doc.root);
  const ImplementationDescriptor again =
      ImplementationDescriptor::from_xml(*impl.to_xml());
  EXPECT_EQ(again.name, impl.name);
  EXPECT_EQ(again.tunables[0].values, impl.tunables[0].values);
  EXPECT_EQ(again.prediction_function, impl.prediction_function);
}

TEST(ImplementationDescriptor, BadLanguageThrows) {
  EXPECT_THROW(ImplementationDescriptor::from_xml(
                   *xml::parse(R"(<peppher-implementation name="x" interface="i">
                      <platform language="fortran"/>
                    </peppher-implementation>)")
                        .root),
               Error);
}

TEST(PlatformDescriptor, PropertiesLookup) {
  const xml::Document doc = xml::parse(R"(
    <peppher-platform name="TeslaC2050" kind="cuda">
      <property name="peak_gflops" value="1030"/>
      <property name="memory_gb" value="3"/>
      <property name="vendor" value="NVIDIA"/>
    </peppher-platform>)");
  const PlatformDescriptor platform = PlatformDescriptor::from_xml(*doc.root);
  EXPECT_EQ(platform.kind, "cuda");
  EXPECT_DOUBLE_EQ(platform.numeric_property("peak_gflops").value(), 1030.0);
  EXPECT_FALSE(platform.numeric_property("vendor").has_value());
  EXPECT_FALSE(platform.numeric_property("missing").has_value());
  const PlatformDescriptor again = PlatformDescriptor::from_xml(*platform.to_xml());
  EXPECT_EQ(again.properties.size(), 3u);
}

TEST(MainDescriptor, ParsesCompositionSwitches) {
  const xml::Document doc = xml::parse(R"(
    <peppher-main name="spmv_app" source="main.cpp">
      <target platform="xeon-e5520+c2050"/>
      <goal metric="exec_time"/>
      <uses interface="spmv"/>
      <composition useHistoryModels="false" scheduler="eager">
        <disableImpls name="spmv_slow"/>
        <disableImpls name="opencl"/>
      </composition>
    </peppher-main>)");
  const MainDescriptor main = MainDescriptor::from_xml(*doc.root);
  EXPECT_EQ(main.name, "spmv_app");
  EXPECT_EQ(main.target_platform, "xeon-e5520+c2050");
  EXPECT_FALSE(main.use_history_models);
  EXPECT_EQ(main.scheduler, "eager");
  ASSERT_EQ(main.disabled_impls.size(), 2u);
  const MainDescriptor again = MainDescriptor::from_xml(*main.to_xml());
  EXPECT_EQ(again.disabled_impls, main.disabled_impls);
  EXPECT_FALSE(again.use_history_models);
}

// -- repository -----------------------------------------------------------------

TEST(Repository, LoadAndQuery) {
  Repository repo;
  repo.load_text(kSpmvInterface);
  repo.load_text(kCpuImpl);
  repo.load_text(kCudaImpl);
  ASSERT_NE(repo.find_interface("spmv"), nullptr);
  EXPECT_EQ(repo.implementations_of("spmv").size(), 2u);
  EXPECT_NE(repo.find_implementation("spmv_cusp"), nullptr);
  EXPECT_EQ(repo.find_interface("nope"), nullptr);
  EXPECT_EQ(repo.main_module(), nullptr);
}

TEST(Repository, ScanDirectoryTree) {
  const auto dir = peppher::testing::unique_temp_dir("peppher_repo_test");
  fs::write_file(dir / "spmv" / "spmv.xml", kSpmvInterface);
  fs::write_file(dir / "spmv" / "cpu" / "spmv_cpu.xml", kCpuImpl);
  fs::write_file(dir / "spmv" / "cuda" / "spmv_cusp.xml", kCudaImpl);
  fs::write_file(dir / "unrelated.xml", "<other-root/>");

  Repository repo;
  repo.scan(dir);
  EXPECT_NE(repo.find_interface("spmv"), nullptr);
  EXPECT_EQ(repo.implementations_of("spmv").size(), 2u);
  EXPECT_EQ(repo.origin_of("spmv_cpu"), dir / "spmv" / "cpu");
  std::filesystem::remove_all(dir);
}

TEST(Repository, BottomUpOrderRespectsRequires) {
  Repository repo;
  repo.load_text(R"(<peppher-interface name="top">
      <function returnType="void"/></peppher-interface>)");
  repo.load_text(R"(<peppher-interface name="mid">
      <function returnType="void"/></peppher-interface>)");
  repo.load_text(R"(<peppher-interface name="leaf">
      <function returnType="void"/></peppher-interface>)");
  repo.load_text(R"(<peppher-implementation name="top_cpu" interface="top">
      <platform language="cpu"/>
      <requires><interface name="mid"/></requires>
    </peppher-implementation>)");
  repo.load_text(R"(<peppher-implementation name="mid_cpu" interface="mid">
      <platform language="cpu"/>
      <requires><interface name="leaf"/></requires>
    </peppher-implementation>)");
  repo.load_text(R"(<peppher-implementation name="leaf_cpu" interface="leaf">
      <platform language="cpu"/></peppher-implementation>)");

  const auto order = repo.interfaces_bottom_up();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0]->name, "leaf");
  EXPECT_EQ(order[1]->name, "mid");
  EXPECT_EQ(order[2]->name, "top");
}

TEST(Repository, CycleInRequiresThrows) {
  Repository repo;
  repo.load_text(R"(<peppher-interface name="a">
      <function returnType="void"/></peppher-interface>)");
  repo.load_text(R"(<peppher-interface name="b">
      <function returnType="void"/></peppher-interface>)");
  repo.load_text(R"(<peppher-implementation name="a_cpu" interface="a">
      <platform language="cpu"/>
      <requires><interface name="b"/></requires>
    </peppher-implementation>)");
  repo.load_text(R"(<peppher-implementation name="b_cpu" interface="b">
      <platform language="cpu"/>
      <requires><interface name="a"/></requires>
    </peppher-implementation>)");
  EXPECT_THROW(repo.interfaces_bottom_up(), Error);
}

TEST(Repository, ValidateFindsDanglingReferences) {
  Repository repo;
  repo.load_text(kSpmvInterface);  // no implementations -> problem
  repo.load_text(R"(<peppher-implementation name="ghost" interface="nothing">
      <platform language="cpu"/></peppher-implementation>)");
  const auto problems = repo.validate();
  ASSERT_GE(problems.size(), 2u);
  bool found_unknown_interface = false, found_no_variants = false;
  for (const std::string& p : problems) {
    if (p.find("unknown interface 'nothing'") != std::string::npos) {
      found_unknown_interface = true;
    }
    if (p.find("no implementation variants") != std::string::npos) {
      found_no_variants = true;
    }
  }
  EXPECT_TRUE(found_unknown_interface);
  EXPECT_TRUE(found_no_variants);
}

TEST(Repository, ValidateAcceptsConsistentRepo) {
  Repository repo;
  repo.load_text(kSpmvInterface);
  repo.load_text(kCpuImpl);
  repo.load_text(kCudaImpl);
  // The cuda impl references platform TeslaC2050: add it.
  repo.load_text(R"(<peppher-platform name="TeslaC2050" kind="cuda"/>)");
  EXPECT_TRUE(repo.validate().empty());
}

}  // namespace
}  // namespace peppher::desc
