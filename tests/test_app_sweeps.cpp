// Parameterised application sweeps: correctness of every kernel across the
// workload dimensions the evaluation varies — matrix classes, problem
// shapes, step counts, chunk counts — on the performance-aware scheduler
// (no forced architecture: placement is free, results must not change).
#include <gtest/gtest.h>

#include <tuple>

#include "apps/common.hpp"
#include "apps/hotspot.hpp"
#include "apps/nw.hpp"
#include "apps/ode.hpp"
#include "apps/pathfinder.hpp"
#include "apps/sgemm.hpp"
#include "apps/sparse.hpp"
#include "apps/spmv.hpp"
#include "runtime/engine.hpp"

namespace peppher::apps {
namespace {

rt::Engine& shared_engine() {
  static rt::Engine engine = [] {
    rt::EngineConfig config;
    config.machine = sim::MachineConfig::platform_c2050();
    config.machine.cpu_cores = 2;
    config.use_history_models = false;
    return rt::Engine(config);
  }();
  return engine;
}

// ---------------------------------------------------------------------------
// SpMV across every §V-A matrix class, single and hybrid
// ---------------------------------------------------------------------------

class SpmvSweep : public ::testing::TestWithParam<sparse::MatrixClass> {};

INSTANTIATE_TEST_SUITE_P(
    MatrixClasses, SpmvSweep,
    ::testing::Values(sparse::MatrixClass::kStructural, sparse::MatrixClass::kHB,
                      sparse::MatrixClass::kConvex, sparse::MatrixClass::kSimulation,
                      sparse::MatrixClass::kNetwork, sparse::MatrixClass::kChemistry),
    [](const auto& info) {
      for (const auto& spec : sparse::uf_matrix_table()) {
        if (spec.matrix_class == info.param) return spec.short_name;
      }
      return std::string("unknown");
    });

TEST_P(SpmvSweep, SingleInvocationMatchesReference) {
  const auto problem = spmv::make_problem(GetParam(), 0.01);
  const auto expected = spmv::reference(problem);
  const auto result = spmv::run_single(shared_engine(), problem);
  EXPECT_LT(max_abs_diff(result.y, expected), 1e-4);
}

TEST_P(SpmvSweep, HybridMatchesReferenceAcrossChunkCounts) {
  const auto problem = spmv::make_problem(GetParam(), 0.01);
  const auto expected = spmv::reference(problem);
  for (int chunks : {1, 3, 7}) {
    const auto result = spmv::run_hybrid(shared_engine(), problem, chunks);
    EXPECT_LT(max_abs_diff(result.y, expected), 1e-4) << "chunks=" << chunks;
  }
}

// ---------------------------------------------------------------------------
// SGEMM across shapes (square, tall, wide, deep) and block counts
// ---------------------------------------------------------------------------

class SgemmSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t,
                                                 std::uint32_t>> {};

INSTANTIATE_TEST_SUITE_P(Shapes, SgemmSweep,
                         ::testing::Values(std::make_tuple(16u, 16u, 16u),
                                           std::make_tuple(64u, 8u, 8u),
                                           std::make_tuple(8u, 64u, 8u),
                                           std::make_tuple(8u, 8u, 64u),
                                           std::make_tuple(33u, 17u, 29u),
                                           std::make_tuple(1u, 48u, 48u)),
                         [](const auto& info) {
                           return "m" + std::to_string(std::get<0>(info.param)) +
                                  "n" + std::to_string(std::get<1>(info.param)) +
                                  "k" + std::to_string(std::get<2>(info.param));
                         });

TEST_P(SgemmSweep, SingleMatchesReference) {
  const auto [m, n, k] = GetParam();
  const auto problem = sgemm::make_problem(m, n, k);
  EXPECT_LT(max_abs_diff(sgemm::run_single(shared_engine(), problem).C,
                         sgemm::reference(problem)),
            1e-3);
}

TEST_P(SgemmSweep, BlockedMatchesReference) {
  const auto [m, n, k] = GetParam();
  const auto problem = sgemm::make_problem(m, n, k);
  const auto expected = sgemm::reference(problem);
  for (int blocks : {2, 5}) {
    if (static_cast<std::uint32_t>(blocks) > m) continue;
    EXPECT_LT(max_abs_diff(sgemm::run_blocked(shared_engine(), problem, blocks).C,
                           expected),
              1e-3)
        << "blocks=" << blocks;
  }
}

// ---------------------------------------------------------------------------
// Hotspot across grid shapes and step parities
// ---------------------------------------------------------------------------

class HotspotSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t, int>> {};

INSTANTIATE_TEST_SUITE_P(Grids, HotspotSweep,
                         ::testing::Combine(::testing::Values(8u, 31u),
                                            ::testing::Values(8u, 17u),
                                            ::testing::Values(1, 2, 5)),
                         [](const auto& info) {
                           return "r" + std::to_string(std::get<0>(info.param)) +
                                  "c" + std::to_string(std::get<1>(info.param)) +
                                  "s" + std::to_string(std::get<2>(info.param));
                         });

TEST_P(HotspotSweep, MatchesReference) {
  const auto [rows, cols, steps] = GetParam();
  const auto problem = hotspot::make_problem(rows, cols, steps);
  EXPECT_LT(max_abs_diff(hotspot::run(shared_engine(), problem).temp,
                         hotspot::reference(problem)),
            1e-3);
}

// ---------------------------------------------------------------------------
// NW and pathfinder across sizes (exact integer results)
// ---------------------------------------------------------------------------

class SizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

INSTANTIATE_TEST_SUITE_P(Sizes, SizeSweep,
                         ::testing::Values(1u, 2u, 17u, 64u, 129u),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST_P(SizeSweep, NwExactAcrossSizes) {
  const auto problem = nw::make_problem(GetParam());
  EXPECT_EQ(nw::run_single(shared_engine(), problem).score,
            nw::reference(problem));
}

TEST_P(SizeSweep, PathfinderExactAcrossShapes) {
  const auto problem = pathfinder::make_problem(2 + GetParam() % 37, GetParam() + 3);
  EXPECT_EQ(pathfinder::run_single(shared_engine(), problem).result,
            pathfinder::reference(problem));
}

TEST_P(SizeSweep, OdeMatchesReferenceAcrossSizes) {
  const auto problem = ode::make_problem(4 + GetParam(), 6);
  EXPECT_LT(max_abs_diff(ode::run_tool(shared_engine(), problem).y,
                         ode::reference(problem)),
            1e-4);
}

// ---------------------------------------------------------------------------
// OpenCL platform: every application has a fourth backend (§IV-C lists
// CPU/OpenMP, CUDA, OpenCL as the supported platform types)
// ---------------------------------------------------------------------------

TEST(OpenClPlatform, AppsRunCorrectlyOnOpenClBackend) {
  rt::EngineConfig config;
  config.machine = sim::MachineConfig::platform_opencl();
  config.machine.cpu_cores = 1;
  config.use_history_models = false;
  rt::Engine engine(config);

  const auto spmv_problem = spmv::make_problem(sparse::MatrixClass::kHB, 0.01);
  const auto spmv_result =
      spmv::run_single(engine, spmv_problem, rt::Arch::kOpenCl);
  EXPECT_LT(max_abs_diff(spmv_result.y, spmv::reference(spmv_problem)), 1e-4);

  const auto sgemm_problem = sgemm::make_problem(24, 24, 24);
  EXPECT_LT(max_abs_diff(
                sgemm::run_single(engine, sgemm_problem, rt::Arch::kOpenCl).C,
                sgemm::reference(sgemm_problem)),
            1e-3);

  const auto nw_problem = nw::make_problem(48);
  EXPECT_EQ(nw::run_single(engine, nw_problem, rt::Arch::kOpenCl).score,
            nw::reference(nw_problem));

  const auto ode_problem = ode::make_problem(16, 8);
  EXPECT_LT(max_abs_diff(ode::run_tool(engine, ode_problem, rt::Arch::kOpenCl).y,
                         ode::reference(ode_problem)),
            1e-4);
}

TEST(OpenClPlatform, DynamicSelectionUsesTheOpenClDevice) {
  rt::EngineConfig config;
  config.machine = sim::MachineConfig::platform_opencl();
  config.use_history_models = false;
  rt::Engine engine(config);
  // Compute-bound GEMM: the OpenCL accelerator must win unforced.
  const auto problem = sgemm::make_problem(128, 128, 128);
  sgemm::run_single(engine, problem);
  const auto counts = engine.arch_task_counts();
  EXPECT_GT(counts[static_cast<std::size_t>(rt::Arch::kOpenCl)], 0u);
}

}  // namespace
}  // namespace peppher::apps
