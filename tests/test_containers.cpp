// Smart-container tests: plain-container behaviour outside PEPPHER, lazy
// coherence with proxy-based read/write detection, implicit blocking on
// in-flight tasks, and row-block partitioning.
#include <gtest/gtest.h>

#include <numeric>

#include "containers/containers.hpp"
#include "core/peppher.hpp"
#include "runtime/engine.hpp"

namespace peppher::cont {
namespace {

rt::EngineConfig test_config() {
  rt::EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.machine.cpu_cores = 2;
  config.use_history_models = false;
  return config;
}

/// Doubles operand 0 in place.
rt::Codelet make_double_codelet(rt::Arch arch) {
  rt::Codelet codelet("cont_double");
  rt::Implementation impl;
  impl.arch = arch;
  impl.name = "cont_double";
  impl.fn = [](rt::ExecContext& ctx) {
    auto* data = ctx.buffer_as<float>(0);
    // Iterate floats regardless of the handle's element granularity (row
    // blocks have row-sized elements).
    for (std::size_t i = 0; i < ctx.buffer_bytes(0) / sizeof(float); ++i) {
      data[i] *= 2.0f;
    }
  };
  codelet.add_impl(std::move(impl));
  return codelet;
}

// -- unmanaged: regular C++ containers (the paper: "function as regular C++
// containers outside the PEPPHER context") ------------------------------------

TEST(VectorContainer, UnmanagedActsAsPlainContainer) {
  Vector<float> v(8, 1.5f);
  EXPECT_EQ(v.size(), 8u);
  EXPECT_FLOAT_EQ(v[3], 1.5f);
  v[3] = 4.0f;
  EXPECT_FLOAT_EQ(v[3], 4.0f);
  EXPECT_FALSE(v.managed());
}

TEST(MatrixContainer, UnmanagedIndexing) {
  Matrix<int> m(3, 4, 7);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  m(2, 3) = 9;
  EXPECT_EQ(m(2, 3), 9);
  EXPECT_EQ(m(0, 0), 7);
}

TEST(ScalarContainer, UnmanagedGetSet) {
  Scalar<double> s(2.5);
  EXPECT_DOUBLE_EQ(s.get(), 2.5);
  s.set(3.5);
  EXPECT_DOUBLE_EQ(s.get(), 3.5);
}

TEST(VectorContainer, OutOfRangeThrows) {
  Vector<float> v(4);
  EXPECT_THROW(v[4], Error);
  Matrix<float> m(2, 2);
  EXPECT_THROW(m(2, 0), Error);
}

// -- managed -------------------------------------------------------------------

TEST(VectorContainer, TaskResultVisibleThroughProxyRead) {
  rt::Engine engine(test_config());
  Vector<float> v(&engine, 32, 1.0f);
  rt::Codelet codelet = make_double_codelet(rt::Arch::kCuda);

  rt::TaskSpec spec;
  spec.codelet = &codelet;
  spec.operands = {{v.handle(), rt::AccessMode::kReadWrite}};
  engine.submit(std::move(spec));
  // No explicit wait: the element read must block and fetch from the GPU.
  EXPECT_FLOAT_EQ(v[0], 2.0f);
  EXPECT_FLOAT_EQ(v[31], 2.0f);
}

TEST(VectorContainer, ReadAccessKeepsDeviceCopyValid) {
  rt::Engine engine(test_config());
  Vector<float> v(&engine, 64, 1.0f);
  rt::Codelet codelet = make_double_codelet(rt::Arch::kCuda);

  auto run_task = [&] {
    rt::TaskSpec spec;
    spec.codelet = &codelet;
    spec.operands = {{v.handle(), rt::AccessMode::kReadWrite}};
    spec.synchronous = true;
    engine.submit(std::move(spec));
  };
  run_task();
  engine.reset_transfer_stats();
  (void)v.read_access();  // d2h copy (1 transfer)
  (void)v.read_access();  // cached, no transfer
  const float x = v[5];   // proxy read, still cached
  EXPECT_FLOAT_EQ(x, 2.0f);
  EXPECT_EQ(engine.transfer_stats().total_count(), 1u);

  // A second task on the GPU can reuse the device copy (reads only happened
  // since): no new h2d transfer for the fetch, device copy was never
  // invalidated.
  run_task();
  engine.acquire_host(v.handle(), rt::AccessMode::kRead);
  EXPECT_EQ(engine.transfer_stats().host_to_device_count, 0u);
}

TEST(VectorContainer, ProxyWriteInvalidatesDeviceCopy) {
  rt::Engine engine(test_config());
  Vector<float> v(&engine, 16, 1.0f);
  rt::Codelet codelet = make_double_codelet(rt::Arch::kCuda);
  rt::TaskSpec spec;
  spec.codelet = &codelet;
  spec.operands = {{v.handle(), rt::AccessMode::kReadWrite}};
  spec.synchronous = true;
  engine.submit(std::move(spec));

  v[0] = 100.0f;  // write access: fetches, then invalidates the GPU copy
  engine.reset_transfer_stats();

  rt::TaskSpec spec2;
  spec2.codelet = &codelet;
  spec2.operands = {{v.handle(), rt::AccessMode::kReadWrite}};
  spec2.synchronous = true;
  engine.submit(std::move(spec2));
  // The fresh host write must flow to the device again.
  EXPECT_EQ(engine.transfer_stats().host_to_device_count, 1u);
  EXPECT_FLOAT_EQ(v[0], 200.0f);
}

TEST(VectorContainer, CompoundAssignmentThroughProxy) {
  rt::Engine engine(test_config());
  Vector<float> v(&engine, 4, 10.0f);
  v[1] += 5.0f;
  v[2] *= 3.0f;
  EXPECT_FLOAT_EQ(v[1], 15.0f);
  EXPECT_FLOAT_EQ(v[2], 30.0f);
}

TEST(MatrixContainer, ManagedTaskRoundTrip) {
  rt::Engine engine(test_config());
  Matrix<float> m(&engine, 8, 8, 1.0f);
  rt::Codelet codelet = make_double_codelet(rt::Arch::kCpu);
  rt::TaskSpec spec;
  spec.codelet = &codelet;
  spec.operands = {{m.handle(), rt::AccessMode::kReadWrite}};
  spec.synchronous = true;
  engine.submit(std::move(spec));
  EXPECT_FLOAT_EQ(m(7, 7), 2.0f);
}

TEST(MatrixContainer, RowBlockPartitioning) {
  rt::Engine engine(test_config());
  Matrix<float> m(&engine, 6, 4, 0.0f);
  {
    auto view = m.write_access();
    std::iota(view.begin(), view.end(), 0.0f);
  }
  auto blocks = m.partition_rows(3);
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0]->elements(), 2u);  // 2 rows each, element = row
  EXPECT_EQ(blocks[0]->bytes(), 2u * 4u * sizeof(float));

  rt::Codelet codelet = make_double_codelet(rt::Arch::kCuda);
  for (auto& block : blocks) {
    rt::TaskSpec spec;
    spec.codelet = &codelet;
    spec.operands = {{block, rt::AccessMode::kReadWrite}};
    engine.submit(std::move(spec));
  }
  engine.wait_for_all();
  m.unpartition_rows();
  EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(m(5, 3), 46.0f);  // 23 * 2
}

TEST(ScalarContainer, ManagedReduction) {
  rt::Engine engine(test_config());
  Vector<float> v(&engine, 100, 1.0f);
  Scalar<float> total(&engine);

  rt::Codelet codelet("sum");
  rt::Implementation impl;
  impl.arch = rt::Arch::kCuda;
  impl.name = "sum_cuda";
  impl.fn = [](rt::ExecContext& ctx) {
    const auto* in = ctx.buffer_as<const float>(0);
    auto* out = ctx.buffer_as<float>(1);
    float acc = 0.0f;
    for (std::size_t i = 0; i < ctx.elements(0); ++i) acc += in[i];
    out[0] = acc;
  };
  codelet.add_impl(std::move(impl));

  rt::TaskSpec spec;
  spec.codelet = &codelet;
  spec.operands = {{v.handle(), rt::AccessMode::kRead},
                   {total.handle(), rt::AccessMode::kWrite}};
  engine.submit(std::move(spec));
  EXPECT_FLOAT_EQ(total.get(), 100.0f);  // blocks + fetches implicitly
}

}  // namespace
}  // namespace peppher::cont
