// Cross-module integration tests: hybrid execution, dynamic
// performance-aware selection (the TGPA behaviour of Figure 6), repetitive
// execution data residency (§IV-H), inter-component parallelism (§IV-E),
// and the Figure 5/7 mechanisms at test scale.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/common.hpp"
#include "apps/ode.hpp"
#include "apps/sgemm.hpp"
#include "apps/sparse.hpp"
#include "apps/spmv.hpp"
#include "apps/suite.hpp"
#include "core/peppher.hpp"
#include "runtime/engine.hpp"

namespace peppher {
namespace {

rt::EngineConfig machine_config(sim::MachineConfig machine,
                                bool history = false) {
  rt::EngineConfig config;
  config.machine = std::move(machine);
  config.use_history_models = history;
  return config;
}

// -- hybrid execution (Figure 5 mechanism) -------------------------------------

TEST(Hybrid, SpmvHybridMatchesReference) {
  rt::Engine engine(machine_config(sim::MachineConfig::platform_c2050()));
  const auto problem = apps::spmv::make_problem(apps::sparse::MatrixClass::kStructural, 0.02);
  const auto expected = apps::spmv::reference(problem);
  const auto result = apps::spmv::run_hybrid(engine, problem, 6);
  EXPECT_LT(apps::max_abs_diff(result.y, expected), 1e-4);
}

TEST(Hybrid, HybridBeatsGpuOnlyInVirtualTime) {
  // The Figure 5 headline: splitting the work reduces both computation and
  // PCIe traffic, so hybrid beats direct-CUDA.
  const auto problem = apps::spmv::make_problem(apps::sparse::MatrixClass::kStructural, 0.1);
  rt::Engine gpu_engine(machine_config(sim::MachineConfig::platform_c2050()));
  const auto gpu_only =
      apps::spmv::run_single(gpu_engine, problem, rt::Arch::kCuda);
  rt::Engine hybrid_engine(machine_config(sim::MachineConfig::platform_c2050()));
  const auto hybrid = apps::spmv::run_hybrid(hybrid_engine, problem, 10);
  EXPECT_LT(hybrid.virtual_seconds, gpu_only.virtual_seconds);
}

TEST(Hybrid, HybridMovesFewerBytesToTheGpu) {
  const auto problem = apps::spmv::make_problem(apps::sparse::MatrixClass::kConvex, 0.05);
  rt::Engine gpu_engine(machine_config(sim::MachineConfig::platform_c2050()));
  const auto gpu_only =
      apps::spmv::run_single(gpu_engine, problem, rt::Arch::kCuda);
  rt::Engine hybrid_engine(machine_config(sim::MachineConfig::platform_c2050()));
  const auto hybrid = apps::spmv::run_hybrid(hybrid_engine, problem, 10);
  EXPECT_LT(hybrid.transfers.host_to_device_bytes,
            gpu_only.transfers.host_to_device_bytes);
}

TEST(Hybrid, BlockedSgemmIsCorrectUnderDynamicPlacement) {
  rt::Engine engine(machine_config(sim::MachineConfig::platform_c2050()));
  const auto problem = apps::sgemm::make_problem(64, 48, 32);
  const auto expected = apps::sgemm::reference(problem);
  const auto result = apps::sgemm::run_blocked(engine, problem, 8);
  EXPECT_LT(apps::max_abs_diff(result.C, expected), 1e-3);
}

TEST(Hybrid, SpmvChunksSpreadAcrossCpuAndGpu) {
  // Bandwidth-bound SpMV with a big PCIe bill: rational placement spreads
  // the chunks across CPU cores *and* the GPU (Figure 5's hybrid mode),
  // unlike compute-bound GEMM where the GPU dominates outright.
  rt::Engine engine(machine_config(sim::MachineConfig::platform_c2050()));
  const auto problem =
      apps::spmv::make_problem(apps::sparse::MatrixClass::kStructural, 0.2);
  apps::spmv::run_hybrid(engine, problem, 12);
  const auto counts = engine.arch_task_counts();
  EXPECT_GT(counts[static_cast<std::size_t>(rt::Arch::kCpu)] +
                counts[static_cast<std::size_t>(rt::Arch::kCpuOmp)],
            0u);
  EXPECT_GT(counts[static_cast<std::size_t>(rt::Arch::kCuda)], 0u);
}

// -- dynamic performance-aware selection (Figure 6 mechanism) --------------------

TEST(DynamicSelection, TracksBestVariantPerPlatform) {
  // Compute-heavy regular kernel: GPU should win on both platforms.
  const auto problem = apps::sgemm::make_problem(96, 96, 96);
  for (const auto& machine : {sim::MachineConfig::platform_c2050(),
                              sim::MachineConfig::platform_c1060()}) {
    rt::Engine engine(machine_config(machine));
    const auto omp = apps::sgemm::run_single(engine, problem, rt::Arch::kCpuOmp);
    const auto cuda = apps::sgemm::run_single(engine, problem, rt::Arch::kCuda);
    const auto dynamic = apps::sgemm::run_single(engine, problem);
    const double best = std::min(omp.virtual_seconds, cuda.virtual_seconds);
    // TGPA must be within a small factor of the best static choice.
    EXPECT_LT(dynamic.virtual_seconds, best * 1.25) << machine.name;
  }
}

TEST(DynamicSelection, IrregularWorkloadPicksCpuOnC1060) {
  // The Figure 6(b) adaptation: on the cache-less C1060, an irregular
  // workload must not be placed on the GPU by the cost-aware scheduler.
  const auto problem = apps::spmv::make_problem(apps::sparse::MatrixClass::kNetwork, 0.2);
  rt::Engine engine(machine_config(sim::MachineConfig::platform_c1060()));
  const auto omp = apps::spmv::run_single(engine, problem, rt::Arch::kCpuOmp);
  const auto cuda = apps::spmv::run_single(engine, problem, rt::Arch::kCuda);
  EXPECT_LT(omp.virtual_seconds, cuda.virtual_seconds);
  const auto dynamic = apps::spmv::run_single(engine, problem);
  EXPECT_LE(dynamic.virtual_seconds, omp.virtual_seconds * 1.25);
}

TEST(DynamicSelection, HistoryModelsConvergeAfterCalibration) {
  // With history models on, the first runs explore; later runs must settle
  // on the fast variant.
  rt::EngineConfig config =
      machine_config(sim::MachineConfig::platform_c2050(), /*history=*/true);
  config.calibration_samples = 2;
  rt::Engine engine(config);
  const auto problem = apps::sgemm::make_problem(96, 96, 96);
  apps::sgemm::RunResult last;
  for (int round = 0; round < 8; ++round) {
    last = apps::sgemm::run_single(engine, problem);
  }
  const auto cuda = apps::sgemm::run_single(engine, problem, rt::Arch::kCuda);
  EXPECT_LT(last.virtual_seconds, cuda.virtual_seconds * 1.5);
  // The history should now know both variants at this footprint.
  EXPECT_GT(engine.perf().sample_count(
                "sgemm", rt::Arch::kCuda,
                rt::footprint_of({problem.A.size() * 4, problem.B.size() * 4,
                                  problem.C.size() * 4})),
            0u);
}

// -- repetitive execution & residency (§IV-H) -----------------------------------

TEST(Residency, RepeatedGpuInvocationsTransferInputsOnlyOnce) {
  rt::Engine engine(machine_config(sim::MachineConfig::platform_c2050()));
  const auto problem = apps::ode::make_problem(32, 25);
  const auto result = apps::ode::run_tool(engine, problem, rt::Arch::kCuda);
  // J (the big operand) must cross PCIe exactly once even though it is read
  // by 100 rhs tasks; stage vectors stay resident.
  const std::uint64_t jacobian_bytes = problem.jacobian.size() * sizeof(float);
  EXPECT_LT(result.transfers.host_to_device_bytes, jacobian_bytes * 1.5);
  EXPECT_LT(result.transfers.device_to_host_count, 4u);
}

// -- runtime overhead (Figure 7 mechanism) ----------------------------------------

TEST(Overhead, ToolPathCloseToDirectPathInVirtualTime) {
  rt::Engine engine(machine_config(sim::MachineConfig::platform_c2050()));
  const auto problem = apps::ode::make_problem(64, 30);
  const auto tool = apps::ode::run_tool(engine, problem, rt::Arch::kCuda);
  const auto direct = apps::ode::run_direct(problem, rt::Arch::kCuda,
                                            sim::MachineConfig::platform_c2050());
  // Virtual time of the runtime path must be within ~30% of the
  // hand-written sequence (the tight-dependency adversarial case).
  EXPECT_LT(tool.virtual_seconds, direct.virtual_seconds * 1.3);
  EXPECT_GT(tool.virtual_seconds, direct.virtual_seconds * 0.5);
}

TEST(Overhead, GpuBeatsSerialCpuOnOdeAtPaperSizes)
{
  const auto problem = apps::ode::make_problem(250, 12);
  const auto cpu = apps::ode::run_direct(problem, rt::Arch::kCpu,
                                         sim::MachineConfig::platform_c2050());
  const auto cuda = apps::ode::run_direct(problem, rt::Arch::kCuda,
                                          sim::MachineConfig::platform_c2050());
  EXPECT_GT(cpu.virtual_seconds, cuda.virtual_seconds * 2.0);
}

// -- inter-component parallelism (§IV-E) -------------------------------------------

TEST(InterComponent, IndependentCallsOverlapInVirtualTime) {
  rt::Engine engine(machine_config(sim::MachineConfig::platform_c2050()));
  // Two independent sgemm invocations on disjoint data: the makespan must
  // be clearly less than the sum of the two serialized makespans.
  const auto p1 = apps::sgemm::make_problem(96, 96, 96, 1);
  const auto p2 = apps::sgemm::make_problem(96, 96, 96, 2);
  const double t1 = apps::sgemm::run_single(engine, p1, rt::Arch::kCuda).virtual_seconds;
  const double t2 = apps::sgemm::run_single(engine, p2, rt::Arch::kCpuOmp).virtual_seconds;

  // Now submit both without forcing, interleaved, in one virtual epoch.
  apps::sgemm::register_components();
  rt::Codelet* codelet = core::ComponentRegistry::global().find("sgemm");
  engine.reset_virtual_time();
  std::vector<float> c1(p1.C.size(), 0.0f), c2(p2.C.size(), 0.0f);
  auto submit_one = [&](const apps::sgemm::Problem& p, std::vector<float>& c) {
    auto h_a = engine.register_buffer(const_cast<float*>(p.A.data()),
                                      p.A.size() * 4, 4);
    auto h_b = engine.register_buffer(const_cast<float*>(p.B.data()),
                                      p.B.size() * 4, 4);
    auto h_c = engine.register_buffer(c.data(), c.size() * 4, 4);
    auto args = std::make_shared<apps::sgemm::SgemmArgs>();
    args->m = p.m;
    args->n = p.n;
    args->k = p.k;
    args->alpha = p.alpha;
    args->beta = p.beta;
    rt::TaskSpec spec;
    spec.codelet = codelet;
    spec.operands = {{h_a, rt::AccessMode::kRead},
                     {h_b, rt::AccessMode::kRead},
                     {h_c, rt::AccessMode::kReadWrite}};
    spec.arg = std::shared_ptr<const void>(args, args.get());
    engine.submit(std::move(spec));
  };
  submit_one(p1, c1);
  submit_one(p2, c2);
  engine.wait_for_all();
  EXPECT_LT(engine.virtual_makespan(), (t1 + t2) * 0.95);
}

// -- the Figure 6 headline as a regression guard ---------------------------------

TEST(Figure6Guard, TgpaTracksBestVariantOnSmallSuiteApps) {
  // A cut-down version of bench_fig6: on the smallest sweep size of three
  // cheap suite apps, converged TGPA must be within 30% of the best static
  // variant. Guards the reproduction's headline result against scheduler
  // regressions.
  const auto& suite = apps::figure6_suite();
  for (const std::string name : {"bfs", "pathfinder", "sgemm"}) {
    const auto it = std::find_if(suite.begin(), suite.end(),
                                 [&](const auto& app) { return app.name == name; });
    ASSERT_NE(it, suite.end());
    const int size = it->sizes.front();

    rt::EngineConfig forced_config =
        machine_config(sim::MachineConfig::platform_c2050());
    rt::Engine forced(forced_config);
    const double omp = it->run(forced, size, rt::Arch::kCpuOmp).virtual_seconds;
    const double cuda = it->run(forced, size, rt::Arch::kCuda).virtual_seconds;

    rt::EngineConfig dyn_config =
        machine_config(sim::MachineConfig::platform_c2050(), /*history=*/true);
    dyn_config.calibration_samples = 1;
    rt::Engine dynamic(dyn_config);
    apps::SuiteRunResult result;
    for (int round = 0; round < 6; ++round) {
      result = it->run(dynamic, size, std::nullopt);
    }
    EXPECT_LT(result.virtual_seconds, std::min(omp, cuda) * 1.3) << name;
  }
}

TEST(EngineSummary, ReportsWorkersArchesAndTraffic) {
  rt::Engine engine(machine_config(sim::MachineConfig::platform_c2050()));
  const auto problem = apps::sgemm::make_problem(48, 48, 48);
  apps::sgemm::run_single(engine, problem, rt::Arch::kCuda);
  const std::string summary = engine.summary();
  EXPECT_NE(summary.find("xeon-e5520+c2050"), std::string::npos);
  EXPECT_NE(summary.find("TeslaC2050"), std::string::npos);
  EXPECT_NE(summary.find("cuda=1"), std::string::npos);
  EXPECT_NE(summary.find("h2d"), std::string::npos);
}

}  // namespace
}  // namespace peppher
