// End-to-end static composition (§III steps 2-3, §IV-A): training
// executions record performance history; the composition tool derives a
// dispatch table from the history via regression; the table narrows the
// candidate set (or pins a single variant), and the narrowed composition is
// both correct and fast. Also covers the sampling-directory persistence
// that makes training survive across tool invocations (like StarPU's
// ~/.starpu/sampling).
#include <gtest/gtest.h>

#include <filesystem>

#include "apps/common.hpp"
#include "apps/sgemm.hpp"
#include "apps/sparse.hpp"
#include "apps/spmv.hpp"
#include "compose/dispatch.hpp"
#include "compose/ir.hpp"
#include "compose/training.hpp"
#include "core/peppher.hpp"
#include "runtime/engine.hpp"

#include "temp_dir.hpp"

namespace peppher {
namespace {

rt::EngineConfig training_config() {
  rt::EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.machine.cpu_cores = 2;
  config.use_history_models = true;
  config.calibration_samples = 1;
  return config;
}

/// Trains the sgemm component at several sizes by forcing each variant
/// (training executions, §III step 2).
void train_sgemm(rt::Engine& engine, const std::vector<std::uint32_t>& sizes) {
  for (std::uint32_t n : sizes) {
    const auto problem = apps::sgemm::make_problem(n, n, n);
    for (rt::Arch arch : {rt::Arch::kCpu, rt::Arch::kCpuOmp, rt::Arch::kCuda}) {
      apps::sgemm::run_single(engine, problem, arch);
    }
  }
}

compose::ComponentNode sgemm_component() {
  compose::ComponentNode node;
  node.interface.name = "sgemm";
  for (const char* lang : {"cpu", "openmp", "cuda"}) {
    compose::VariantNode variant;
    variant.descriptor.name = std::string("sgemm_") + lang;
    variant.descriptor.interface_name = "sgemm";
    variant.descriptor.language = lang;
    node.variants.push_back(std::move(variant));
  }
  return node;
}

TEST(StaticComposition, TrainingThenDispatchTablePinsGpuForLargeGemm) {
  rt::Engine engine(training_config());
  // 5 training sizes give the regression enough distinct footprints.
  train_sgemm(engine, {16, 24, 32, 48, 64});

  compose::ComponentNode node = sgemm_component();
  const compose::Predictor predict =
      compose::history_predictor(engine.perf(), "sgemm");

  // Large-context scenarios only: GEMM is compute-bound, the GPU must win
  // every scenario, so static composition narrows to a single candidate
  // ("in the extreme case to one possible candidate per call").
  std::vector<std::size_t> big_scenarios;
  for (std::uint32_t n : {256u, 384u, 512u}) {
    big_scenarios.push_back(3u * n * n * sizeof(float));
  }
  const compose::DispatchTable table =
      compose::DispatchTable::build(node, big_scenarios, predict);
  ASSERT_FALSE(table.empty());
  EXPECT_EQ(table.variants_used(), std::vector<std::string>{"sgemm_cuda"});
  EXPECT_EQ(compose::narrow_with_table(node, table), 2);
  ASSERT_EQ(node.enabled_variants().size(), 1u);
  EXPECT_EQ(node.enabled_variants()[0]->arch(), rt::Arch::kCuda);
}

TEST(StaticComposition, MixedScenariosKeepMultipleCandidates) {
  rt::Engine engine(training_config());
  train_sgemm(engine, {16, 24, 32, 48, 64});
  compose::ComponentNode node = sgemm_component();
  const compose::Predictor predict =
      compose::history_predictor(engine.perf(), "sgemm");

  // Tiny scenarios favour the CPU (GPU launch overhead + transfers), large
  // ones the GPU: the table keeps both registered for the runtime's final
  // choice (multi-stage composition).
  std::vector<std::size_t> scenarios = {64, 256, 1024};
  for (std::uint32_t n : {256u, 512u}) {
    scenarios.push_back(3u * n * n * sizeof(float));
  }
  const compose::DispatchTable table =
      compose::DispatchTable::build(node, scenarios, predict);
  ASSERT_FALSE(table.empty());
  EXPECT_GE(table.variants_used().size(), 2u);
  compose::narrow_with_table(node, table);
  EXPECT_GE(node.enabled_variants().size(), 2u);
}

TEST(StaticComposition, NarrowedCompositionStaysCorrect) {
  // Simulate the user-guided narrowing result: only the CUDA variant stays
  // enabled; results must match the reference.
  rt::Engine engine(training_config());
  apps::sgemm::register_components();
  rt::Codelet* codelet = core::ComponentRegistry::global().find("sgemm");
  ASSERT_NE(codelet, nullptr);
  codelet->disable_impls("cpu");
  codelet->disable_impls("openmp");
  const auto problem = apps::sgemm::make_problem(20, 20, 20);
  const auto result = apps::sgemm::run_single(engine, problem);
  const auto expected = apps::sgemm::reference(problem);
  codelet->enable_all();  // restore for other tests
  EXPECT_LT(apps::max_abs_diff(result.C, expected), 1e-3);
}

TEST(StaticComposition, PerformanceModelsPersistAcrossEngines) {
  const auto dir = peppher::testing::unique_temp_dir("peppher_sampling_test");

  // First "tool invocation": train and persist.
  {
    rt::EngineConfig config = training_config();
    config.sampling_dir = dir;
    rt::Engine engine(config);
    train_sgemm(engine, {16, 24, 32, 48, 64});
  }  // destructor saves the models

  // Second invocation: a cold engine loads the history; the regression
  // predictor works without any new training runs.
  {
    rt::EngineConfig config = training_config();
    config.sampling_dir = dir;
    rt::Engine engine(config);
    const compose::Predictor predict =
        compose::history_predictor(engine.perf(), "sgemm");
    compose::ComponentNode node = sgemm_component();
    const auto estimate = predict(node.variants[2], 3u * 256u * 256u * 4u);
    ASSERT_TRUE(estimate.has_value());
    EXPECT_GT(*estimate, 0.0);
  }
  std::filesystem::remove_all(dir);
}

// -- the packaged training API (§III step 2) ----------------------------------

namespace {

/// Training factory for sgemm: scenario = square matrix dimension.
compose::TrainingTaskFactory sgemm_factory(
    std::vector<std::shared_ptr<apps::sgemm::Problem>>& problems) {
  return [&problems](rt::Engine& engine, std::size_t scenario,
                     std::vector<rt::DataHandlePtr>& keepalive) {
    apps::sgemm::register_components();
    auto problem = std::make_shared<apps::sgemm::Problem>(
        apps::sgemm::make_problem(static_cast<std::uint32_t>(scenario),
                                  static_cast<std::uint32_t>(scenario),
                                  static_cast<std::uint32_t>(scenario)));
    problems.push_back(problem);  // operands must outlive the task
    auto h_A = engine.register_buffer(problem->A.data(),
                                      problem->A.size() * 4, 4);
    auto h_B = engine.register_buffer(problem->B.data(),
                                      problem->B.size() * 4, 4);
    auto h_C = engine.register_buffer(problem->C.data(),
                                      problem->C.size() * 4, 4);
    keepalive = {h_A, h_B, h_C};
    auto args = std::make_shared<apps::sgemm::SgemmArgs>();
    args->m = args->n = args->k = static_cast<std::uint32_t>(scenario);
    rt::TaskSpec spec;
    spec.codelet = core::ComponentRegistry::global().find("sgemm");
    spec.operands = {{h_A, rt::AccessMode::kRead},
                     {h_B, rt::AccessMode::kRead},
                     {h_C, rt::AccessMode::kReadWrite}};
    spec.arg = std::shared_ptr<const void>(args, args.get());
    return spec;
  };
}

}  // namespace

TEST(Training, TrainComponentCoversEveryArchAndScenario) {
  apps::sgemm::register_components();
  rt::Engine engine(training_config());
  rt::Codelet* codelet = core::ComponentRegistry::global().find("sgemm");
  ASSERT_NE(codelet, nullptr);
  std::vector<std::shared_ptr<apps::sgemm::Problem>> problems;
  const auto report = compose::train_component(
      engine, *codelet, sgemm_factory(problems), {8, 16, 24, 32, 48}, 2);
  EXPECT_EQ(report.component, "sgemm");
  // 5 scenarios x 3 architectures (cpu, openmp, cuda on the C2050 machine).
  EXPECT_EQ(report.samples.size(), 15u);
  EXPECT_EQ(report.scenario_bytes().size(), 5u);
  for (const auto& sample : report.samples) {
    EXPECT_EQ(sample.runs, 2u);
    EXPECT_GT(sample.seconds, 0.0);
    EXPECT_GT(sample.total_bytes, 0u);
  }
  // The engine's registry now answers regression queries per architecture.
  EXPECT_TRUE(engine.perf()
                  .regression_estimate("sgemm", rt::Arch::kCuda, 1 << 20)
                  .has_value());
}

TEST(Training, TrainAndBuildTablePinsTheWinner) {
  apps::sgemm::register_components();
  rt::Engine engine(training_config());
  rt::Codelet* codelet = core::ComponentRegistry::global().find("sgemm");
  ASSERT_NE(codelet, nullptr);
  compose::ComponentNode node = sgemm_component();
  std::vector<std::shared_ptr<apps::sgemm::Problem>> problems;
  const auto table = compose::train_and_build_table(
      engine, node, *codelet, sgemm_factory(problems), {8, 16, 24, 32, 48}, 2);
  ASSERT_FALSE(table.empty());
  // At these tiny sizes a CPU-side variant must win the smallest scenario
  // (GPU launch overhead dominates).
  const auto* smallest = table.lookup(1);
  ASSERT_NE(smallest, nullptr);
  EXPECT_NE(smallest->arch, rt::Arch::kCuda);
  // Every table entry names a variant of this component.
  for (const auto& entry : table.entries()) {
    bool known = false;
    for (const auto& variant : node.variants) {
      known = known || variant.descriptor.name == entry.variant;
    }
    EXPECT_TRUE(known) << entry.variant;
  }
}

TEST(StaticComposition, SpmvNetworkMatrixNarrowsAwayFromGpuOnC1060) {
  // The platform-adaptation story as a static-composition decision: train
  // spmv on the cache-less C1060 with a skewed matrix; the dispatch table
  // must not select the CUDA variant.
  rt::EngineConfig config = training_config();
  config.machine = sim::MachineConfig::platform_c1060();
  rt::Engine engine(config);

  std::vector<std::size_t> scenario_bytes;
  for (double scale : {0.02, 0.035, 0.05, 0.075, 0.1}) {
    const auto problem =
        apps::spmv::make_problem(apps::sparse::MatrixClass::kNetwork, scale);
    for (rt::Arch arch : {rt::Arch::kCpuOmp, rt::Arch::kCuda}) {
      apps::spmv::run_single(engine, problem, arch);
    }
    scenario_bytes.push_back(problem.A.values.size() * 4 +
                             problem.A.colidx.size() * 4 +
                             problem.A.rowptr.size() * 4 +
                             problem.x.size() * 4 + problem.A.nrows * 4);
  }

  compose::ComponentNode node;
  node.interface.name = "spmv";
  for (const char* lang : {"openmp", "cuda"}) {
    compose::VariantNode variant;
    variant.descriptor.name = std::string("spmv_") + lang;
    variant.descriptor.interface_name = "spmv";
    variant.descriptor.language = lang;
    node.variants.push_back(std::move(variant));
  }
  const compose::DispatchTable table = compose::DispatchTable::build(
      node, scenario_bytes, compose::history_predictor(engine.perf(), "spmv"));
  ASSERT_FALSE(table.empty());
  for (const std::string& used : table.variants_used()) {
    EXPECT_NE(used, "spmv_cuda");
  }
}

}  // namespace
}  // namespace peppher
