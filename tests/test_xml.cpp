// XML parser/serialiser tests, including error reporting and round-trips.
#include <gtest/gtest.h>

#include "support/error.hpp"
#include "xml/xml.hpp"

namespace peppher::xml {
namespace {

TEST(Xml, ParsesSimpleElement) {
  const Document doc = parse("<root/>");
  EXPECT_EQ(doc.root->name(), "root");
  EXPECT_EQ(doc.root->child_count(), 0u);
}

TEST(Xml, ParsesAttributes) {
  const Document doc = parse(R"(<a x="1" y='two'/>)");
  EXPECT_EQ(doc.root->attribute("x").value(), "1");
  EXPECT_EQ(doc.root->attribute("y").value(), "two");
  EXPECT_FALSE(doc.root->attribute("z").has_value());
}

TEST(Xml, RequiredAttributeThrowsWhenMissing) {
  const Document doc = parse("<a x=\"1\"/>");
  EXPECT_EQ(doc.root->required_attribute("x"), "1");
  EXPECT_THROW(doc.root->required_attribute("nope"), Error);
}

TEST(Xml, ParsesNestedChildrenInOrder) {
  const Document doc = parse("<r><a/><b/><a/></r>");
  EXPECT_EQ(doc.root->child_count(), 3u);
  EXPECT_EQ(doc.root->children("a").size(), 2u);
  EXPECT_EQ(doc.root->all_children()[1]->name(), "b");
}

TEST(Xml, ParsesTextContentTrimmed) {
  const Document doc = parse("<r>  hello world \n</r>");
  EXPECT_EQ(doc.root->text(), "hello world");
}

TEST(Xml, DecodesEntities) {
  const Document doc = parse("<r a=\"&lt;&gt;&amp;&quot;&apos;\">&#65;&#x42;</r>");
  EXPECT_EQ(doc.root->attribute("a").value(), "<>&\"'");
  EXPECT_EQ(doc.root->text(), "AB");
}

TEST(Xml, DecodesMultibyteCharacterReference) {
  const Document doc = parse("<r>&#x20AC;</r>");  // euro sign
  EXPECT_EQ(doc.root->text(), "\xE2\x82\xAC");
}

TEST(Xml, SkipsCommentsAndDeclaration) {
  const Document doc = parse(
      "<?xml version=\"1.0\"?><!-- hi --><r><!-- inner --><a/></r>");
  EXPECT_EQ(doc.declaration, "version=\"1.0\"");
  EXPECT_EQ(doc.root->child_count(), 1u);
}

TEST(Xml, ParsesCdata) {
  const Document doc = parse("<r><![CDATA[a < b && c]]></r>");
  EXPECT_EQ(doc.root->text(), "a < b && c");
}

TEST(Xml, FindPathWalksHierarchy) {
  const Document doc = parse("<r><a><b><c x=\"1\"/></b></a></r>");
  const Element* c = doc.root->find_path("a/b/c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->attribute("x").value(), "1");
  EXPECT_EQ(doc.root->find_path("a/nope"), nullptr);
}

TEST(Xml, ChildTextFallback) {
  const Document doc = parse("<r><k>v</k></r>");
  EXPECT_EQ(doc.root->child_text("k"), "v");
  EXPECT_EQ(doc.root->child_text("missing", "dflt"), "dflt");
}

// -- error cases -------------------------------------------------------------

TEST(Xml, RejectsMismatchedTags) {
  EXPECT_THROW(parse("<a></b>"), ParseError);
}

TEST(Xml, RejectsUnterminatedElement) {
  EXPECT_THROW(parse("<a><b></b>"), ParseError);
}

TEST(Xml, RejectsDuplicateAttribute) {
  EXPECT_THROW(parse("<a x=\"1\" x=\"2\"/>"), ParseError);
}

TEST(Xml, RejectsUnknownEntity) {
  EXPECT_THROW(parse("<a>&nope;</a>"), ParseError);
}

TEST(Xml, RejectsEmptyDocument) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("   \n "), ParseError);
}

TEST(Xml, RejectsTrailingContent) {
  EXPECT_THROW(parse("<a/><b/>"), ParseError);
}

TEST(Xml, ErrorMentionsLineNumber) {
  try {
    parse("<a>\n\n<b></c></a>");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

// -- building & serialisation -------------------------------------------------

TEST(Xml, BuildAndSerialize) {
  Element root("peppher-interface");
  root.set_attribute("name", "spmv");
  Element& fn = root.append_child("function");
  fn.set_attribute("returnType", "void");
  fn.append_child("param").set_attribute("name", "x");
  const std::string text = serialize(root);
  EXPECT_NE(text.find("<?xml"), std::string::npos);
  EXPECT_NE(text.find("<peppher-interface name=\"spmv\">"), std::string::npos);
  EXPECT_NE(text.find("<param name=\"x\"/>"), std::string::npos);
}

TEST(Xml, SerializeEscapesSpecials) {
  Element root("r");
  root.set_attribute("a", "x<y&\"z\"");
  root.set_text("1 < 2");
  const std::string text = serialize(root, false);
  EXPECT_NE(text.find("x&lt;y&amp;&quot;z&quot;"), std::string::npos);
  EXPECT_NE(text.find("1 &lt; 2"), std::string::npos);
}

TEST(Xml, RoundTripPreservesStructure) {
  const std::string original =
      "<r a=\"1\"><x b=\"&amp;2\"><y/></x><x/>some text</r>";
  const Document doc1 = parse(original);
  const std::string text = serialize(*doc1.root);
  const Document doc2 = parse(text);
  EXPECT_EQ(doc2.root->name(), "r");
  EXPECT_EQ(doc2.root->attribute("a").value(), "1");
  EXPECT_EQ(doc2.root->children("x").size(), 2u);
  EXPECT_EQ(doc2.root->children("x")[0]->attribute("b").value(), "&2");
  EXPECT_EQ(doc2.root->text(), "some text");
}

TEST(Xml, SetAttributeOverwrites) {
  Element e("a");
  e.set_attribute("k", "1");
  e.set_attribute("k", "2");
  EXPECT_EQ(e.attribute("k").value(), "2");
  EXPECT_EQ(e.attributes().size(), 1u);
}

TEST(Xml, ToleratesDoctype) {
  const Document doc = parse("<!DOCTYPE whatever><r/>");
  EXPECT_EQ(doc.root->name(), "r");
}

}  // namespace
}  // namespace peppher::xml
