// Declaration-parser tests, including the paper's spmv signature and
// access-mode inference from const / by-reference semantics.
#include <gtest/gtest.h>

#include "cdecl/cdecl.hpp"
#include "support/error.hpp"

namespace peppher::cdecl_parser {
namespace {

TEST(Cdecl, ParsesSimpleFunction) {
  const FunctionDecl decl = parse_declaration("void f(int a, float b);");
  EXPECT_EQ(decl.name, "f");
  EXPECT_EQ(decl.return_type.spelling(), "void");
  ASSERT_EQ(decl.params.size(), 2u);
  EXPECT_EQ(decl.params[0].name, "a");
  EXPECT_EQ(decl.params[0].type.spelling(), "int");
  EXPECT_EQ(decl.params[1].type.spelling(), "float");
}

TEST(Cdecl, ParsesThePaperSpmvSignature) {
  const FunctionDecl decl = parse_declaration(
      "void spmv(float* values, int nnz, int nrows, int ncols, int first, "
      "size_t* colidxs, size_t* rowPtr, float* x, float* y);");
  EXPECT_EQ(decl.name, "spmv");
  ASSERT_EQ(decl.params.size(), 9u);
  EXPECT_EQ(decl.params[0].type.pointer_depth, 1);
  EXPECT_EQ(decl.params[5].type.base, "size_t");
  EXPECT_EQ(decl.params[8].name, "y");
}

TEST(Cdecl, ParsesConstPointers) {
  const FunctionDecl decl =
      parse_declaration("void f(const float* in, float* out);");
  EXPECT_TRUE(decl.params[0].type.is_const);
  EXPECT_FALSE(decl.params[1].type.is_const);
  EXPECT_EQ(decl.params[0].type.spelling(), "const float*");
}

TEST(Cdecl, ParsesTrailingConstQualifier) {
  const FunctionDecl decl = parse_declaration("void f(float const* in);");
  EXPECT_TRUE(decl.params[0].type.is_const);
}

TEST(Cdecl, ParsesReferences) {
  const FunctionDecl decl =
      parse_declaration("void f(const Vector<float>& in, Matrix<double>& out);");
  EXPECT_TRUE(decl.params[0].type.is_reference);
  EXPECT_EQ(decl.params[0].type.base, "Vector<float>");
  EXPECT_EQ(decl.params[1].type.base, "Matrix<double>");
}

TEST(Cdecl, ParsesMultiWordBuiltins) {
  const FunctionDecl decl =
      parse_declaration("void f(unsigned long long n, long double x);");
  EXPECT_EQ(decl.params[0].type.base, "unsigned long long");
  EXPECT_EQ(decl.params[1].type.base, "long double");
}

TEST(Cdecl, ParsesQualifiedNames) {
  const FunctionDecl decl = parse_declaration("void f(std::size_t n);");
  EXPECT_EQ(decl.params[0].type.base, "std::size_t");
}

TEST(Cdecl, ParsesTemplatePrefix) {
  const FunctionDecl decl =
      parse_declaration("template <typename T, class U> void f(T* data, U n);");
  EXPECT_TRUE(decl.is_generic());
  ASSERT_EQ(decl.template_params.size(), 2u);
  EXPECT_EQ(decl.template_params[0], "T");
  EXPECT_EQ(decl.template_params[1], "U");
}

TEST(Cdecl, ArraySuffixBecomesPointer) {
  const FunctionDecl decl = parse_declaration("void f(float x[], int y[16]);");
  EXPECT_EQ(decl.params[0].type.pointer_depth, 1);
  EXPECT_EQ(decl.params[1].type.pointer_depth, 1);
}

TEST(Cdecl, UnnamedParamsGetSynthesisedNames) {
  const FunctionDecl decl = parse_declaration("void f(int, float*);");
  EXPECT_EQ(decl.params[0].name, "arg0");
  EXPECT_EQ(decl.params[1].name, "arg1");
}

TEST(Cdecl, DoublePointer) {
  const FunctionDecl decl = parse_declaration("void f(char** argv);");
  EXPECT_EQ(decl.params[0].type.pointer_depth, 2);
}

TEST(Cdecl, MissingSemicolonIsTolerated) {
  const FunctionDecl decl = parse_declaration("void f(int x)");
  EXPECT_EQ(decl.name, "f");
}

TEST(Cdecl, RejectsGarbage) {
  EXPECT_THROW(parse_declaration("not a declaration"), ParseError);
  EXPECT_THROW(parse_declaration(""), ParseError);
  EXPECT_THROW(parse_declaration("void (int x);"), ParseError);
}

// -- access inference (the paper: const & pass-by-reference analysis) --------

TEST(CdeclAccess, ValueParamsAreRead) {
  const FunctionDecl decl = parse_declaration("void f(int n, float x);");
  EXPECT_EQ(decl.params[0].inferred_access(), Access::kRead);
  EXPECT_EQ(decl.params[1].inferred_access(), Access::kRead);
}

TEST(CdeclAccess, ConstPointerIsRead) {
  const FunctionDecl decl = parse_declaration("void f(const float* in);");
  EXPECT_EQ(decl.params[0].inferred_access(), Access::kRead);
}

TEST(CdeclAccess, NonConstPointerIsReadWrite) {
  const FunctionDecl decl = parse_declaration("void f(float* data);");
  EXPECT_EQ(decl.params[0].inferred_access(), Access::kReadWrite);
}

TEST(CdeclAccess, OutNamingConventionIsWrite) {
  const FunctionDecl decl =
      parse_declaration("void f(float* out_y, float* y_out, float* out);");
  for (const Param& p : decl.params) {
    EXPECT_EQ(p.inferred_access(), Access::kWrite) << p.name;
  }
}

TEST(CdeclAccess, ConstReferenceIsRead) {
  const FunctionDecl decl = parse_declaration("void f(const Vector<float>& v);");
  EXPECT_EQ(decl.params[0].inferred_access(), Access::kRead);
}

// -- header scanning -----------------------------------------------------------

TEST(CdeclHeader, FindsAllDeclarations) {
  const auto decls = parse_header(R"(
    #pragma once
    #include <cstddef>
    // a comment
    void first(int a);
    /* block comment */
    void second(const float* x, float* y);
    using weird = int;
    int not_parsed_variable;
  )");
  ASSERT_EQ(decls.size(), 2u);
  EXPECT_EQ(decls[0].name, "first");
  EXPECT_EQ(decls[1].name, "second");
}

TEST(CdeclHeader, SkipsFunctionBodies) {
  const auto decls = parse_header(R"(
    void declared(int a);
    inline int defined(int b) { return b + 1; }
  )");
  ASSERT_EQ(decls.size(), 1u);
  EXPECT_EQ(decls[0].name, "declared");
}

TEST(CdeclHeader, TemplateDeclInHeader) {
  const auto decls = parse_header(
      "template <typename T> void sort(T* data, size_t n);");
  ASSERT_EQ(decls.size(), 1u);
  EXPECT_TRUE(decls[0].is_generic());
}

TEST(CdeclHeader, EmptyHeaderYieldsNothing) {
  EXPECT_TRUE(parse_header("// nothing here\n#define X 1\n").empty());
}

}  // namespace
}  // namespace peppher::cdecl_parser
