// Concurrency stress tests for the lock-light engine: several producer
// threads submitting, waiting and prefetching against one Engine at once.
// Correctness here means (a) every submitted task runs exactly once with
// its per-handle dependency order intact — checked through bitwise-exact
// results of non-commutative update chains — and (b) the engine's counters
// add up. Run these under TSan (PEPPHER_SANITIZE=thread, see
// tools/run_sanitizers.sh) to validate the memory-ordering arguments in
// docs/runtime.md.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "runtime/engine.hpp"
#include "sim/device.hpp"
#include "support/error.hpp"

namespace peppher::rt {
namespace {

// Small thread/task counts by default so the TSan run (which serialises
// heavily) stays fast; the interleavings of interest need contention, not
// volume.
constexpr int kProducers = 4;
constexpr int kTasksPerProducer = 64;

EngineConfig stress_config(const std::string& scheduler) {
  EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.machine.cpu_cores = 2;
  config.scheduler = scheduler;
  config.use_history_models = false;
  return config;
}

/// x <- 3*x + 1 elementwise: non-commutative, so any reordering or lost
/// execution in a dependency chain changes the final bits.
Codelet make_affine_codelet(bool with_cuda = true) {
  Codelet codelet("affine");
  auto body = [](ExecContext& ctx) {
    auto* data = ctx.buffer_as<std::uint64_t>(0);
    for (std::size_t i = 0; i < ctx.elements(0); ++i) {
      data[i] = 3 * data[i] + 1;
    }
  };
  auto cost = [](const std::vector<std::size_t>& bytes, const void*) {
    return sim::KernelCost{static_cast<double>(bytes[0]),
                           static_cast<double>(bytes[0]), 1.0};
  };
  codelet.add_impl(Implementation(Arch::kCpu, "affine_cpu", body, cost));
  if (with_cuda) {
    codelet.add_impl(Implementation(Arch::kCuda, "affine_cuda", body, cost));
  }
  return codelet;
}

std::uint64_t affine_applied(std::uint64_t x, int times) {
  for (int i = 0; i < times; ++i) x = 3 * x + 1;
  return x;
}

class EngineStress : public ::testing::TestWithParam<std::string> {};

// Each producer thread owns a buffer and submits a dependency chain of RW
// tasks on it, interleaving wait() on intermediate tasks. Bitwise-exact
// final values prove no execution was lost, duplicated or reordered.
TEST_P(EngineStress, PrivateChainsFromManyProducers) {
  Engine engine(stress_config(GetParam()));
  const Codelet codelet = make_affine_codelet();

  std::vector<std::vector<std::uint64_t>> buffers(
      kProducers, std::vector<std::uint64_t>(32, 1));
  std::vector<DataHandlePtr> handles;
  for (auto& buffer : buffers) {
    handles.push_back(engine.register_buffer(
        buffer.data(), buffer.size() * sizeof(std::uint64_t),
        sizeof(std::uint64_t)));
  }

  std::atomic<std::uint64_t> callbacks{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      TaskPtr last;
      for (int i = 0; i < kTasksPerProducer; ++i) {
        TaskSpec spec;
        spec.codelet = &codelet;
        spec.operands = {{handles[static_cast<std::size_t>(p)],
                          AccessMode::kReadWrite}};
        spec.on_complete = [&](const Task&) {
          callbacks.fetch_add(1, std::memory_order_relaxed);
        };
        last = engine.submit(std::move(spec));
        if (i % 16 == 7) engine.wait(last);  // interleave waits mid-stream
      }
      engine.wait(last);
      EXPECT_EQ(last->state, TaskState::kDone);
    });
  }
  for (auto& thread : producers) thread.join();
  engine.wait_for_all();

  EXPECT_EQ(callbacks.load(),
            static_cast<std::uint64_t>(kProducers) * kTasksPerProducer);
  EXPECT_EQ(engine.tasks_submitted(),
            static_cast<std::uint64_t>(kProducers) * kTasksPerProducer);
  const auto counts = engine.arch_task_counts();
  std::uint64_t executed = 0;
  for (const auto count : counts) executed += count;
  EXPECT_EQ(executed, static_cast<std::uint64_t>(kProducers) * kTasksPerProducer);

  const std::uint64_t expected = affine_applied(1, kTasksPerProducer);
  for (int p = 0; p < kProducers; ++p) {
    engine.acquire_host(handles[static_cast<std::size_t>(p)], AccessMode::kRead);
    for (const std::uint64_t v : buffers[static_cast<std::size_t>(p)]) {
      ASSERT_EQ(v, expected) << "producer " << p;
    }
  }
}

// All producers hammer ONE handle: the dependency graph serialises every
// task into a single global chain whose length is exact iff no submission
// raced the graph bookkeeping.
TEST_P(EngineStress, SharedHandleSerialisesAcrossProducers) {
  Engine engine(stress_config(GetParam()));
  const Codelet codelet = make_affine_codelet();

  std::vector<std::uint64_t> buffer(16, 1);
  auto handle = engine.register_buffer(
      buffer.data(), buffer.size() * sizeof(std::uint64_t),
      sizeof(std::uint64_t));

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        TaskSpec spec;
        spec.codelet = &codelet;
        spec.operands = {{handle, AccessMode::kReadWrite}};
        engine.submit(std::move(spec));
      }
    });
  }
  for (auto& thread : producers) thread.join();
  engine.wait_for_all();

  // 3x+1 applied N times is the same no matter how the N submissions from
  // the producers interleaved — but only if every task ran exactly once.
  const std::uint64_t expected =
      affine_applied(1, kProducers * kTasksPerProducer);
  engine.acquire_host(handle, AccessMode::kRead);
  for (const std::uint64_t v : buffer) ASSERT_EQ(v, expected);
  EXPECT_GT(engine.virtual_makespan(), 0.0);
}

// Producers mix readers and writers on a shared input plus prefetches and
// wait_for_all from a separate thread — the full public surface at once.
TEST_P(EngineStress, MixedReadersWritersPrefetchAndWaitForAll) {
  Engine engine(stress_config(GetParam()));
  const Codelet affine = make_affine_codelet();

  // log[arg] <- in[0]: records the shared value this read observed, so the
  // assertions below can check each observation bitwise against the writer
  // chain's trajectory.
  Codelet observe("observe");
  observe.add_impl(Implementation(
      Arch::kCpu, "observe_cpu",
      [](ExecContext& ctx) {
        const auto* in = ctx.buffer_as<const std::uint64_t>(0);
        auto* log = ctx.buffer_as<std::uint64_t>(1);
        log[ctx.arg<int>()] = in[0];
      },
      [](const std::vector<std::size_t>& bytes, const void*) {
        return sim::KernelCost{8.0, static_cast<double>(bytes[0] + bytes[1]),
                               1.0};
      }));

  std::vector<std::uint64_t> shared(8, 1);
  auto shared_handle = engine.register_buffer(
      shared.data(), shared.size() * sizeof(std::uint64_t),
      sizeof(std::uint64_t));
  std::vector<std::vector<std::uint64_t>> logs(
      kProducers, std::vector<std::uint64_t>(kTasksPerProducer, 0));
  std::vector<DataHandlePtr> log_handles;
  for (auto& log : logs) {
    log_handles.push_back(engine.register_buffer(
        log.data(), log.size() * sizeof(std::uint64_t),
        sizeof(std::uint64_t)));
  }

  std::atomic<bool> stop{false};
  std::thread waiter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      engine.wait_for_all();
      engine.prefetch(shared_handle, MemoryNodeId{1});
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        TaskSpec spec;
        if (p == 0) {  // one writer chain mutates the shared input
          spec.codelet = &affine;
          spec.operands = {{shared_handle, AccessMode::kReadWrite}};
        } else {  // the rest read it, logging what they saw
          spec.codelet = &observe;
          spec.operands = {{shared_handle, AccessMode::kRead},
                           {log_handles[static_cast<std::size_t>(p)],
                            AccessMode::kReadWrite}};
          spec.arg = std::make_shared<int>(i);
        }
        spec.synchronous = (i % 32 == 31);
        engine.submit(std::move(spec));
      }
    });
  }
  for (auto& thread : producers) thread.join();
  engine.wait_for_all();
  stop.store(true, std::memory_order_relaxed);
  waiter.join();

  EXPECT_EQ(engine.tasks_submitted(),
            static_cast<std::uint64_t>(kProducers) * kTasksPerProducer);
  // The writer chain ran exactly kTasksPerProducer times in order.
  engine.acquire_host(shared_handle, AccessMode::kRead);
  EXPECT_EQ(shared[0], affine_applied(1, kTasksPerProducer));
  // Every reader saw a bitwise-exact point of the writer chain's
  // trajectory (never a torn or stale-replica value), and, because one
  // producer's submissions order against the writer chain per handle, each
  // reader's successive observations move monotonically down the chain.
  std::vector<std::uint64_t> trajectory{1};
  for (int k = 0; k < kTasksPerProducer; ++k) {
    trajectory.push_back(3 * trajectory.back() + 1);
  }
  auto position = [&](std::uint64_t value) {
    for (std::size_t k = 0; k < trajectory.size(); ++k) {
      if (trajectory[k] == value) return static_cast<int>(k);
    }
    return -1;
  };
  for (int p = 1; p < kProducers; ++p) {
    engine.acquire_host(log_handles[static_cast<std::size_t>(p)],
                        AccessMode::kRead);
    int last_pos = 0;
    for (int i = 0; i < kTasksPerProducer; ++i) {
      const int pos = position(logs[static_cast<std::size_t>(p)]
                                   [static_cast<std::size_t>(i)]);
      ASSERT_GE(pos, 0) << "reader " << p << " observation " << i
                        << " is not on the writer trajectory";
      EXPECT_GE(pos, last_pos) << "reader " << p << " went back in time at "
                               << i;
      last_pos = pos;
    }
  }
}

// The automatic-prefetch path under churn: a dual-GPU machine where dmda's
// commit hints fire background prefetches of the shared input while (a) a
// writer chain keeps invalidating it — racing the in-flight-writer check in
// the prefetch service thread — (b) a separate thread sprays explicit
// prefetch hints at both devices, and (c) device memories are tight enough
// that warmed replicas keep getting evicted. Bitwise trajectory checks prove
// no reader ever saw a stale resurrected replica.
TEST_P(EngineStress, PrefetchChurnOnDualGpuWithTinyMemory) {
  EngineConfig config = stress_config(GetParam());
  config.machine = sim::MachineConfig::platform_dual_c2050();
  config.machine.cpu_cores = 2;
  Engine engine(config);
  engine.set_node_capacity(1, 512);
  engine.set_node_capacity(2, 512);

  const Codelet affine = make_affine_codelet();
  auto observe_body = [](ExecContext& ctx) {
    const auto* in = ctx.buffer_as<const std::uint64_t>(0);
    auto* log = ctx.buffer_as<std::uint64_t>(1);
    log[ctx.arg<int>()] = in[0];
  };
  auto observe_cost = [](const std::vector<std::size_t>& bytes, const void*) {
    return sim::KernelCost{8.0, static_cast<double>(bytes[0] + bytes[1]), 1.0};
  };
  Codelet observe("observe");
  observe.add_impl(
      Implementation(Arch::kCpu, "observe_cpu", observe_body, observe_cost));
  observe.add_impl(
      Implementation(Arch::kCuda, "observe_cuda", observe_body, observe_cost));

  std::vector<std::uint64_t> shared(8, 1);
  auto shared_handle = engine.register_buffer(
      shared.data(), shared.size() * sizeof(std::uint64_t),
      sizeof(std::uint64_t));
  std::vector<std::vector<std::uint64_t>> logs(
      kProducers, std::vector<std::uint64_t>(kTasksPerProducer, 1));
  std::vector<DataHandlePtr> log_handles;
  for (auto& log : logs) {
    log_handles.push_back(engine.register_buffer(
        log.data(), log.size() * sizeof(std::uint64_t),
        sizeof(std::uint64_t)));
  }

  std::atomic<bool> stop{false};
  std::thread hinter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      engine.prefetch(shared_handle, MemoryNodeId{1});
      engine.prefetch(shared_handle, MemoryNodeId{2});
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        TaskSpec spec;
        if (p == 0) {  // the writer chain racing the prefetches
          spec.codelet = &affine;
          spec.operands = {{shared_handle, AccessMode::kReadWrite}};
        } else {
          spec.codelet = &observe;
          spec.operands = {{shared_handle, AccessMode::kRead},
                           {log_handles[static_cast<std::size_t>(p)],
                            AccessMode::kReadWrite}};
          spec.arg = std::make_shared<int>(i);
        }
        engine.submit(std::move(spec));
      }
    });
  }
  for (auto& thread : producers) thread.join();
  engine.wait_for_all();
  stop.store(true, std::memory_order_relaxed);
  hinter.join();
  engine.drain_prefetches();

  EXPECT_EQ(engine.tasks_submitted(),
            static_cast<std::uint64_t>(kProducers) * kTasksPerProducer);
  // Every queued automatic prefetch was accounted for exactly once.
  const Engine::PrefetchStats prefetches = engine.prefetch_stats();
  EXPECT_EQ(prefetches.completed + prefetches.skipped, prefetches.enqueued);

  // Every observation is a bitwise-exact point of the writer trajectory:
  // an eviction-resurrected or prefetch-raced stale replica would produce a
  // value that is not on it.
  engine.acquire_host(shared_handle, AccessMode::kRead);
  EXPECT_EQ(shared[0], affine_applied(1, kTasksPerProducer));
  std::vector<std::uint64_t> trajectory{1};
  for (int k = 0; k < kTasksPerProducer; ++k) {
    trajectory.push_back(3 * trajectory.back() + 1);
  }
  for (int p = 1; p < kProducers; ++p) {
    engine.acquire_host(log_handles[static_cast<std::size_t>(p)],
                        AccessMode::kRead);
    for (int i = 0; i < kTasksPerProducer; ++i) {
      const std::uint64_t seen =
          logs[static_cast<std::size_t>(p)][static_cast<std::size_t>(i)];
      ASSERT_NE(std::find(trajectory.begin(), trajectory.end(), seen),
                trajectory.end())
          << "reader " << p << " observation " << i
          << " is not on the writer trajectory: " << seen;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, EngineStress,
                         ::testing::Values("eager", "random", "ws", "dmda"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace peppher::rt
