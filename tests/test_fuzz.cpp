// Robustness fuzzing (deterministic, seed-parameterised): the XML parser
// and the C-declaration parser must either succeed or throw ParseError on
// arbitrary mutated input — never crash, hang or corrupt memory.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "cdecl/cdecl.hpp"
#include "descriptor/descriptor.hpp"
#include "perf/trace.hpp"
#include "runtime/perfmodel.hpp"
#include "sim/topology.hpp"
#include "support/error.hpp"
#include "support/fs.hpp"
#include "support/rng.hpp"
#include "xml/xml.hpp"

namespace peppher {
namespace {

class FuzzSeed : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u, 606u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

/// Applies `count` random byte mutations (replace / insert / delete).
std::string mutate(std::string text, Rng& rng, int count) {
  const std::string alphabet = "<>/=\"'&;abcXY _\n\t#?!-[]";
  for (int i = 0; i < count && !text.empty(); ++i) {
    const std::size_t pos = rng.next_below(text.size());
    switch (rng.next_below(3)) {
      case 0:
        text[pos] = alphabet[rng.next_below(alphabet.size())];
        break;
      case 1:
        text.insert(pos, 1, alphabet[rng.next_below(alphabet.size())]);
        break;
      default:
        text.erase(pos, 1);
        break;
    }
  }
  return text;
}

const char* const kSeedXml = R"(<peppher-implementation name="spmv_cusp" interface="spmv">
  <platform language="cuda" target="TeslaC2050"/>
  <sources><source file="cuda/spmv_cusp.cu"/></sources>
  <compilation command="nvcc" options="-O3 -arch=sm_20"/>
  <tunables><tunable name="bs" values="64,128" default="128"/></tunables>
  <constraints><constraint param="nnz" min="1024"/></constraints>
</peppher-implementation>)";

TEST_P(FuzzSeed, XmlParserNeverCrashesOnMutatedDescriptors) {
  Rng rng(GetParam());
  for (int round = 0; round < 300; ++round) {
    const std::string mutated =
        mutate(kSeedXml, rng, 1 + static_cast<int>(rng.next_below(12)));
    try {
      const xml::Document doc = xml::parse(mutated);
      // Parsed: the tree must be internally consistent enough to serialise
      // and reparse.
      const std::string text = xml::serialize(*doc.root);
      EXPECT_NO_THROW(xml::parse(text)) << mutated;
    } catch (const ParseError&) {
      // Expected for most mutations.
    }
  }
}

TEST_P(FuzzSeed, DescriptorLoaderNeverCrashesOnMutatedInput) {
  Rng rng(GetParam() * 31);
  for (int round = 0; round < 200; ++round) {
    const std::string mutated =
        mutate(kSeedXml, rng, 1 + static_cast<int>(rng.next_below(10)));
    desc::Repository repo;
    try {
      repo.load_text(mutated);
    } catch (const Error&) {
      // ParseError / kNotFound / kInvalidArgument are all acceptable.
    }
  }
}

const char* const kSeedDecl =
    "template <typename T> void spmv(const float* values, int nnz, "
    "Vector<T>& x, float* y, size_t n);";

TEST_P(FuzzSeed, CdeclParserNeverCrashesOnMutatedDeclarations) {
  Rng rng(GetParam() * 47);
  for (int round = 0; round < 300; ++round) {
    const std::string mutated =
        mutate(kSeedDecl, rng, 1 + static_cast<int>(rng.next_below(8)));
    try {
      const auto decl = cdecl_parser::parse_declaration(mutated);
      EXPECT_FALSE(decl.name.empty());
    } catch (const ParseError&) {
      // Expected for most mutations.
    }
  }
}

TEST_P(FuzzSeed, HeaderScannerToleratesArbitraryText) {
  Rng rng(GetParam() * 89);
  std::string blob;
  for (int i = 0; i < 600; ++i) {
    blob += static_cast<char>(32 + rng.next_below(95));
    if (rng.next_double() < 0.05) blob += '\n';
  }
  // parse_header skips everything it cannot parse; it must simply return.
  EXPECT_NO_THROW({ (void)cdecl_parser::parse_header(blob); });
}

// ---------------------------------------------------------------------------
// Targeted malformed-descriptor cases (not random mutations): inputs a user
// plausibly produces by hand that must yield diagnostics, never crashes.
// ---------------------------------------------------------------------------

TEST(MalformedDescriptors, TruncatedInputNeverCrashesTheLoader) {
  const std::string seed = kSeedXml;
  // Every prefix, including ones that cut an attribute or tag name in half.
  for (std::size_t len = 0; len <= seed.size(); ++len) {
    desc::Repository repo;
    try {
      repo.load_text(seed.substr(0, len));
    } catch (const Error&) {
      // ParseError etc. are fine; crashing or hanging is not.
    }
  }
}

TEST(MalformedDescriptors, DuplicateImplementationNamesAreDiagnosed) {
  desc::Repository repo;
  repo.load_text(R"(<peppher-interface name="spmv">
      <function returnType="void">
        <param name="y" type="float*" accessMode="write" size="n"/>
      </function></peppher-interface>)");
  repo.load_text(R"(<peppher-implementation name="twin" interface="spmv">
      <platform language="cpu"/></peppher-implementation>)");
  repo.load_text(R"(<peppher-implementation name="twin" interface="spmv">
      <platform language="openmp"/></peppher-implementation>)");
  const auto problems = repo.validate();
  bool clash_reported = false;
  for (const std::string& p : problems) {
    if (p.find("twin") != std::string::npos) clash_reported = true;
  }
  EXPECT_TRUE(clash_reported);
  // Lookup must still resolve to exactly one of the two, not crash.
  EXPECT_NE(repo.find_implementation("twin"), nullptr);
}

TEST(MalformedDescriptors, InvalidArchStringsAreRejectedAtLoad) {
  // The loader validates the platform language eagerly so the error points
  // at the offending descriptor instead of surfacing at composition time.
  // (parse_arch trims/lowercases, so "CUDA " or "c++" are legal aliases;
  // these are the genuinely unknown ones.)
  for (const char* bogus : {"fortran", "", "x86_64", "cuda9", "open cl"}) {
    desc::Repository repo;
    EXPECT_THROW(
        repo.load_text(std::string(
                           R"(<peppher-implementation name="i" interface="f">
          <platform language=")") +
                       bogus + R"("/></peppher-implementation>)"),
        Error)
        << "language '" << bogus << "'";
    // The rejected descriptor must not be half-registered.
    EXPECT_EQ(repo.find_implementation("i"), nullptr);
  }
}

// ---------------------------------------------------------------------------
// Malformed control flow in the <calls> section: every fixture must raise a
// ParseError carrying the offending element's line/column — never crash,
// and never leave a half-registered main module behind.
// ---------------------------------------------------------------------------

std::string main_with(const std::string& calls) {
  return "<peppher-main name=\"app\" source=\"main.cpp\">\n<calls>\n" + calls +
         "\n</calls>\n</peppher-main>\n";
}

TEST(MalformedControlFlow, BadStatementsRaiseLocatedParseErrors) {
  struct Fixture {
    const char* label;
    std::string xml;
  };
  const Fixture fixtures[] = {
      {"zero trip count", main_with("<loop count=\"0\"/>")},
      {"negative trip count",
       main_with("<loop count=\"-3\"><call interface=\"f\"/></loop>")},
      {"non-integer trip count", main_with("<loop count=\"2.5\"/>")},
      {"non-numeric trip count", main_with("<loop count=\"many\"/>")},
      {"missing trip count", main_with("<loop><call interface=\"f\"/></loop>")},
      {"else outside if", main_with("<else><call interface=\"f\"/></else>")},
      {"else not last",
       main_with("<if><else/><call interface=\"f\"/></if>")},
      {"else inside loop",
       main_with("<loop count=\"2\"><else/></loop>")},
      {"zero partition parts", main_with("<partition data=\"d\" parts=\"0\"/>")},
      {"partition without data", main_with("<partition parts=\"2\"/>")},
      {"unpartition without data", main_with("<unpartition/>")},
      {"bad prefetch target",
       main_with("<prefetch data=\"d\" on=\"gpu2\"/>")},
      {"unknown statement", main_with("<while count=\"2\"/>")},
  };
  for (const Fixture& fixture : fixtures) {
    desc::Repository repo;
    try {
      repo.load_text(fixture.xml, {}, "main.xml");
      FAIL() << fixture.label << ": expected a ParseError";
    } catch (const ParseError& e) {
      EXPECT_GT(e.line(), 1) << fixture.label;  // inside <calls>, not line 1
      EXPECT_GT(e.column(), 0) << fixture.label;
    }
    EXPECT_EQ(repo.main_module(), nullptr) << fixture.label;
  }
}

TEST(MalformedControlFlow, BadDistributedFormsRaiseLocatedParseErrors) {
  // Truncated or self-contradictory <partitioned>/<exchange>/<repartition>/
  // <gather> forms (docs/descriptors.md): each must be rejected with the
  // offending element's location, and the main module must not half-load.
  struct Fixture {
    const char* label;
    std::string xml;
  };
  const Fixture fixtures[] = {
      {"partitioned without data", main_with("<partitioned nodes=\"2\"/>")},
      {"partitioned without nodes", main_with("<partitioned data=\"d\"/>")},
      {"zero partitioned nodes",
       main_with("<partitioned data=\"d\" nodes=\"0\"/>")},
      {"negative partitioned nodes",
       main_with("<partitioned data=\"d\" nodes=\"-2\"/>")},
      {"non-integer partitioned nodes",
       main_with("<partitioned data=\"d\" nodes=\"two\"/>")},
      {"negative halo",
       main_with("<partitioned data=\"d\" nodes=\"2\" halo=\"-1\"/>")},
      {"slice node outside the partitioning",
       main_with("<partitioned data=\"d\" nodes=\"2\" elements=\"8\">"
                 "<slice node=\"2\" begin=\"0\" end=\"8\"/></partitioned>")},
      {"negative slice node",
       main_with("<partitioned data=\"d\" nodes=\"2\" elements=\"8\">"
                 "<slice node=\"-1\" begin=\"0\" end=\"8\"/></partitioned>")},
      {"empty slice range",
       main_with("<partitioned data=\"d\" nodes=\"2\" elements=\"8\">"
                 "<slice node=\"0\" begin=\"4\" end=\"4\"/></partitioned>")},
      {"inverted slice range",
       main_with("<partitioned data=\"d\" nodes=\"2\" elements=\"8\">"
                 "<slice node=\"0\" begin=\"6\" end=\"2\"/></partitioned>")},
      {"negative slice begin",
       main_with("<partitioned data=\"d\" nodes=\"2\" elements=\"8\">"
                 "<slice node=\"0\" begin=\"-1\" end=\"4\"/></partitioned>")},
      {"slice beyond the declared elements",
       main_with("<partitioned data=\"d\" nodes=\"2\" elements=\"8\">"
                 "<slice node=\"0\" begin=\"0\" end=\"9\"/></partitioned>")},
      {"slice missing begin",
       main_with("<partitioned data=\"d\" nodes=\"2\" elements=\"8\">"
                 "<slice node=\"0\" end=\"8\"/></partitioned>")},
      {"slices without elements",
       main_with("<partitioned data=\"d\" nodes=\"2\">"
                 "<slice node=\"0\" begin=\"0\" end=\"8\"/></partitioned>")},
      {"elements without slices",
       main_with("<partitioned data=\"d\" nodes=\"2\" elements=\"8\"/>")},
      {"zero elements",
       main_with("<partitioned data=\"d\" nodes=\"2\" elements=\"0\">"
                 "<slice node=\"0\" begin=\"0\" end=\"1\"/></partitioned>")},
      {"exchange without data", main_with("<exchange width=\"1\"/>")},
      {"negative exchange width",
       main_with("<exchange data=\"d\" width=\"-1\"/>")},
      {"repartition without nodes", main_with("<repartition data=\"d\"/>")},
      {"zero repartition nodes",
       main_with("<repartition data=\"d\" nodes=\"0\"/>")},
      {"gather without data", main_with("<gather/>")},
  };
  for (const Fixture& fixture : fixtures) {
    desc::Repository repo;
    try {
      repo.load_text(fixture.xml, {}, "main.xml");
      FAIL() << fixture.label << ": expected a ParseError";
    } catch (const ParseError& e) {
      EXPECT_GT(e.line(), 1) << fixture.label;  // inside <calls>, not line 1
      EXPECT_GT(e.column(), 0) << fixture.label;
    }
    EXPECT_EQ(repo.main_module(), nullptr) << fixture.label;
  }
}

TEST(MalformedControlFlow, UnclosedAndMisNestedElementsRaiseParseErrors) {
  const std::string fixtures[] = {
      // Unclosed <loop>: the document ends inside the statement list.
      "<peppher-main name=\"a\" source=\"m.cpp\">\n<calls>\n"
      "<loop count=\"2\">\n<call interface=\"f\"/>\n",
      // </if> closes <loop>: mis-nested close tags.
      main_with("<loop count=\"2\"><call interface=\"f\"/></if>"),
      // <else> opened but never closed before </calls>.
      "<peppher-main name=\"a\" source=\"m.cpp\">\n<calls>\n"
      "<if><call interface=\"f\"/><else>\n</calls>\n</peppher-main>\n",
  };
  for (const std::string& xml : fixtures) {
    desc::Repository repo;
    EXPECT_THROW(repo.load_text(xml), ParseError) << xml;
    EXPECT_EQ(repo.main_module(), nullptr) << xml;
  }
}

TEST_P(FuzzSeed, ControlFlowMainNeverCrashesUnderMutation) {
  const std::string seed = main_with(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<loop count=\"4\">\n"
      "  <if>\n"
      "    <call interface=\"axpy\"><arg param=\"x\" data=\"v\"/></call>\n"
      "  <else>\n"
      "    <prefetch data=\"v\" on=\"device\"/>\n"
      "  </else>\n"
      "  </if>\n"
      "  <partition data=\"v\" parts=\"2\"/>\n"
      "  <unpartition data=\"v\"/>\n"
      "</loop>\n"
      "<partitioned data=\"v\" nodes=\"2\" halo=\"1\" elements=\"8\">\n"
      "  <slice node=\"0\" begin=\"0\" end=\"4\"/>\n"
      "  <slice node=\"1\" begin=\"4\" end=\"8\"/>\n"
      "</partitioned>\n"
      "<exchange data=\"v\" width=\"1\"/>\n"
      "<call interface=\"axpy\" node=\"1\" radius=\"1\">"
      "<arg param=\"x\" data=\"v\"/></call>\n"
      "<repartition data=\"v\" nodes=\"2\"/>\n"
      "<gather data=\"v\"/>\n");
  Rng rng(GetParam() * 17);
  for (int round = 0; round < 300; ++round) {
    const std::string mutated =
        mutate(seed, rng, 1 + static_cast<int>(rng.next_below(8)));
    desc::Repository repo;
    try {
      repo.load_text(mutated);
    } catch (const Error&) {
      // ParseError and schema errors are fine; crashing or hanging is not.
    }
  }
}

// ---------------------------------------------------------------------------
// Trace ingestion (peppher-perf, docs/perf.md): truncated documents,
// unknown event types / sections, schema-version mismatches and
// non-monotonic timelines must all raise located ParseErrors — the
// analyzer never crashes on a damaged trace.
// ---------------------------------------------------------------------------

const char* const kSeedTrace = R"({
  "schema": "peppher-trace",
  "version": 1,
  "machine": "unit",
  "scheduler": "dmda",
  "makespan": 1.0,
  "workers": [
    {"id": 0, "name": "core", "arch": "cpu", "node": 0, "combined": false},
    {"id": 1, "name": "gpu", "arch": "cuda", "node": 1, "combined": false}
  ],
  "tasks": [
    {"sequence": 0, "name": "a", "impl": "a_cpu", "arch": "cpu", "worker": 0,
     "vstart": 0, "vend": 0.5, "exec": 0.5, "attempt": 0, "failed": false,
     "point": 3, "data": [1]},
    {"sequence": 1, "name": "b", "impl": "b_cuda", "arch": "cuda", "worker": 1,
     "vstart": 0.5, "vend": 0.9, "exec": 0.4, "attempt": 0, "failed": false,
     "point": -1, "data": [1, 2]}
  ],
  "transfers": [
    {"lane": 0, "order": 0, "from": 0, "to": 1, "bytes": 4096, "vstart": 0.1,
     "vend": 0.2, "coalesced": false, "burst": 1, "data": 1},
    {"lane": 0, "order": 1, "from": 0, "to": 1, "bytes": 512, "vstart": 0.2,
     "vend": 0.3, "coalesced": true, "burst": 1, "data": 2}
  ],
  "prefetches": [
    {"event": "enqueued", "reason": "none", "task": 1, "node": 1, "data": 2,
     "bytes": 512},
    {"event": "skipped", "reason": "writer_race", "task": 1, "node": 1,
     "data": 2, "bytes": 512}
  ],
  "decisions": [
    {"task": 1, "worker": 1, "explored": false, "estimate": 0.9,
     "arch_estimate": {"cpu": 1.4, "cuda": 0.9}}
  ],
  "phases": [
    {"label": "run", "vtime": 0}
  ]
})";

TEST(MalformedTraces, SeedTraceItselfParses) {
  const perf::Trace trace = perf::parse_trace(kSeedTrace);
  EXPECT_EQ(trace.tasks.size(), 2u);
  EXPECT_EQ(trace.transfers.size(), 2u);
  EXPECT_EQ(trace.tasks[0].point, 3);
}

TEST(MalformedTraces, TruncatedTraceRaisesLocatedErrors) {
  const std::string seed = kSeedTrace;
  // Every prefix, including ones that cut a string or number in half.
  for (std::size_t len = 0; len < seed.size(); ++len) {
    try {
      (void)perf::parse_trace(seed.substr(0, len));
      // A prefix that happens to parse as a complete document would be a
      // parser bug: the seed has no nested complete sub-document.
      FAIL() << "prefix of length " << len << " parsed as a full trace";
    } catch (const ParseError& e) {
      EXPECT_GT(e.line(), 0) << "prefix length " << len;
      EXPECT_GT(e.column(), 0) << "prefix length " << len;
    }
  }
}

TEST(MalformedTraces, TargetedCorruptionsRaiseLocatedParseErrors) {
  struct Fixture {
    const char* label;
    const char* needle;       // substring of the seed to replace...
    const char* replacement;  // ...with this
  };
  const Fixture fixtures[] = {
      {"wrong schema tag", "\"peppher-trace\"", "\"chrome-trace\""},
      {"future schema version", "\"version\": 1", "\"version\": 2"},
      {"unknown top-level section", "\"phases\"", "\"spans\""},
      {"unknown prefetch event", "\"enqueued\"", "\"requested\""},
      {"unknown skip reason", "\"writer_race\"", "\"cosmic_ray\""},
      {"non-monotonic task interval", "\"vend\": 0.5", "\"vend\": -0.5"},
      {"non-monotonic lane order", "\"order\": 1", "\"order\": 0"},
      {"type mismatch", "\"worker\": 0", "\"worker\": \"zero\""},
      {"fractional integer", "\"sequence\": 0", "\"sequence\": 0.25"},
      {"missing required field", "\"lane\": 0, ", ""},
  };
  for (const Fixture& fixture : fixtures) {
    std::string text = kSeedTrace;
    const std::size_t pos = text.find(fixture.needle);
    ASSERT_NE(pos, std::string::npos) << fixture.label;
    text.replace(pos, std::string(fixture.needle).size(), fixture.replacement);
    try {
      (void)perf::parse_trace(text);
      FAIL() << fixture.label << ": expected a ParseError";
    } catch (const ParseError& e) {
      EXPECT_GT(e.line(), 0) << fixture.label;
      EXPECT_GT(e.column(), 0) << fixture.label;
    }
  }
}

TEST(MalformedTraces, TrailingGarbageAndWrongRootAreRejected) {
  EXPECT_THROW((void)perf::parse_trace(std::string(kSeedTrace) + " []"),
               ParseError);
  EXPECT_THROW((void)perf::parse_trace("[]"), ParseError);
  EXPECT_THROW((void)perf::parse_trace(""), ParseError);
  EXPECT_THROW((void)perf::parse_trace("{\"schema\": \"peppher-trace\"}"),
               ParseError);
  // Deep nesting must be a located error, not a stack overflow.
  EXPECT_THROW((void)perf::parse_trace(std::string(5000, '[')), ParseError);
}

TEST_P(FuzzSeed, TraceParserNeverCrashesOnMutatedTraces) {
  Rng rng(GetParam() * 193);
  for (int round = 0; round < 200; ++round) {
    const std::string mutated =
        mutate(kSeedTrace, rng, 1 + static_cast<int>(rng.next_below(10)));
    try {
      (void)perf::parse_trace(mutated);
      // Some mutations (e.g. inside a string literal) stay valid traces.
    } catch (const ParseError&) {
      // Expected for most mutations.
    }
  }
}

TEST(MalformedTraces, NodeFieldsParseAndRejectCorruption) {
  // The v1-additive node ids on transfer / worker / prefetch rows: absent
  // means single-host (0), present must be a non-negative integer.
  std::string text = kSeedTrace;
  const std::size_t pos = text.find("\"from\": 0,");
  ASSERT_NE(pos, std::string::npos);
  text.insert(pos, "\"from_node\": 1, \"to_node\": 0, ");
  const perf::Trace trace = perf::parse_trace(text);
  EXPECT_EQ(trace.transfers[0].from_node, 1);
  EXPECT_EQ(trace.transfers[0].to_node, 0);
  EXPECT_EQ(trace.transfers[1].from_node, 0);  // absent -> 0
  EXPECT_EQ(trace.workers[0].sim_node, 0);
  EXPECT_EQ(trace.prefetches[0].sim_node, 0);

  const struct {
    const char* label;
    const char* inject;
  } fixtures[] = {
      {"negative from_node", "\"from_node\": -1, "},
      {"fractional to_node", "\"to_node\": 0.5, "},
      {"non-numeric from_node", "\"from_node\": \"zero\", "},
  };
  for (const auto& fixture : fixtures) {
    std::string bad = kSeedTrace;
    bad.insert(bad.find("\"from\": 0,"), fixture.inject);
    try {
      (void)perf::parse_trace(bad);
      FAIL() << fixture.label << ": expected a ParseError";
    } catch (const ParseError& e) {
      EXPECT_GT(e.line(), 0) << fixture.label;
      EXPECT_GT(e.column(), 0) << fixture.label;
    }
  }
  // The same contract on the worker table's sim_node.
  std::string bad_worker = kSeedTrace;
  bad_worker.insert(bad_worker.find("\"id\": 0,"), "\"sim_node\": -2, ");
  EXPECT_THROW((void)perf::parse_trace(bad_worker), ParseError);
}

// ---------------------------------------------------------------------------
// Malformed cluster topology profiles (peppher-cluster v1, sim/topology.hpp):
// negative bandwidth, duplicate node ids, truncation and friends must all
// raise located ParseErrors — the reader never crashes or half-loads.
// ---------------------------------------------------------------------------

const char* const kSeedCluster =
    "peppher-cluster v1\n"
    "name testbed\n"
    "internode latency_us 50 bandwidth_gbs 1.25\n"
    "node 0 machine c2050 cpu_cores 4\n"
    "node 1 machine cpu_only cpu_cores 8\n"
    "end\n";

TEST(MalformedClusters, SeedClusterItselfParses) {
  const sim::ClusterConfig cluster = sim::parse_cluster(kSeedCluster);
  EXPECT_EQ(cluster.name, "testbed");
  ASSERT_EQ(cluster.nodes.size(), 2u);
  EXPECT_EQ(cluster.internode.bandwidth_gbs, 1.25);
}

TEST(MalformedClusters, TruncationRaisesLocatedParseErrors) {
  const std::string seed = kSeedCluster;
  // Until the final 'end' token is complete, every prefix is a truncated
  // document (or cuts a keyword/number in half) and must be rejected with
  // a located error; once 'end' is complete, the document is whole.
  const std::size_t end_complete = seed.rfind("end") + 3;
  for (std::size_t len = 0; len <= seed.size(); ++len) {
    try {
      (void)sim::parse_cluster(seed.substr(0, len));
      EXPECT_GE(len, end_complete) << "prefix of length " << len
                                   << " parsed as a full cluster";
    } catch (const ParseError& e) {
      EXPECT_LT(len, end_complete) << "full document rejected at " << len;
      EXPECT_GT(e.line(), 0) << "prefix length " << len;
      EXPECT_GT(e.column(), 0) << "prefix length " << len;
    }
  }
}

TEST(MalformedClusters, TargetedCorruptionsRaiseLocatedParseErrors) {
  struct Fixture {
    const char* label;
    const char* needle;
    const char* replacement;
  };
  const Fixture fixtures[] = {
      {"wrong document tag", "peppher-cluster", "peppher-machine"},
      {"future version", "v1", "v2"},
      {"negative bandwidth", "bandwidth_gbs 1.25", "bandwidth_gbs -1.25"},
      {"zero bandwidth", "bandwidth_gbs 1.25", "bandwidth_gbs 0"},
      {"negative latency", "latency_us 50", "latency_us -50"},
      {"non-numeric latency", "latency_us 50", "latency_us fast"},
      {"unknown link field", "latency_us 50", "jitter_us 50"},
      {"duplicate node id", "node 1", "node 0"},
      {"non-dense node ids", "node 1", "node 7"},
      {"negative node id", "node 1", "node -1"},
      {"unknown machine preset", "machine c2050", "machine k80"},
      {"unknown node field", "cpu_cores 4", "gpu_cores 4"},
      {"missing keyword value", "cpu_cores 8\n", "cpu_cores\n"},
      {"non-integer cpu_cores", "cpu_cores 4", "cpu_cores 4.5"},
      {"negative cpu_cores", "cpu_cores 4", "cpu_cores -4"},
      {"unknown keyword", "name testbed", "rack testbed"},
      {"content after end", "end\n", "end\nnode 2\n"},
      {"trailing tokens after end", "end\n", "end now\n"},
  };
  for (const Fixture& fixture : fixtures) {
    std::string text = kSeedCluster;
    const std::size_t pos = text.find(fixture.needle);
    ASSERT_NE(pos, std::string::npos) << fixture.label;
    text.replace(pos, std::string(fixture.needle).size(), fixture.replacement);
    try {
      (void)sim::parse_cluster(text);
      FAIL() << fixture.label << ": expected a ParseError";
    } catch (const ParseError& e) {
      EXPECT_GT(e.line(), 0) << fixture.label;
      EXPECT_GT(e.column(), 0) << fixture.label;
    }
  }
  EXPECT_THROW((void)sim::parse_cluster(""), ParseError);
  EXPECT_THROW((void)sim::parse_cluster("peppher-cluster v1\nend\n"),
               ParseError);  // no nodes
}

TEST_P(FuzzSeed, ClusterParserNeverCrashesOnMutatedProfiles) {
  Rng rng(GetParam() * 211);
  for (int round = 0; round < 300; ++round) {
    const std::string mutated =
        mutate(kSeedCluster, rng, 1 + static_cast<int>(rng.next_below(8)));
    try {
      const sim::ClusterConfig cluster = sim::parse_cluster(mutated);
      // Survivors must round-trip through the writer.
      EXPECT_NO_THROW((void)sim::parse_cluster(sim::to_text(cluster)))
          << mutated;
    } catch (const ParseError&) {
      // Expected for most mutations.
    }
  }
}

// ---------------------------------------------------------------------------
// Targeted malformed .model files (peppher-predict --models input): each
// fixture must raise a located ParseError — never crash and never load a
// half-parsed model. PerfRegistry::load additionally names the file.
// ---------------------------------------------------------------------------

TEST(MalformedModels, TruncatedFilesRaiseLocatedParseErrors) {
  rt::HistoryModel seed_model;
  for (const std::size_t bytes : {1000, 2000, 4000, 8000, 16000}) {
    seed_model.record(rt::footprint_of({bytes}), bytes,
                      1e-9 * static_cast<double>(bytes));
  }
  ASSERT_TRUE(seed_model.multi_term_fit().has_value());
  const std::string serialized = seed_model.serialize();
  // Every proper prefix that cuts a line in half must be rejected; prefixes
  // ending on a line boundary are legitimately shorter files.
  for (std::size_t cut = 1; cut < serialized.size(); ++cut) {
    const std::string prefix = serialized.substr(0, cut);
    if (prefix.back() == '\n') continue;
    rt::HistoryModel model;
    try {
      model.deserialize(prefix);
      // A cut inside the final digits of a number can still parse.
    } catch (const ParseError& e) {
      EXPECT_GT(e.line(), 0) << prefix;
    }
  }
}

TEST(MalformedModels, NonFiniteAndNegativeTimesAreRejected) {
  const char* const fixtures[] = {
      "1 4096 2 nan 0.0 0.4 0.6\n",     // NaN mean
      "1 4096 2 inf 0.0 0.4 0.6\n",     // infinite mean
      "1 4096 2 -0.5 0.0 0.4 0.6\n",    // negative mean
      "1 4096 2 0.5 -1.0 0.4 0.6\n",    // negative variance accumulator
      "1 4096 2 0.5 0.0 -0.4 0.6\n",    // negative minimum
      "1 4096 2 0.5 0.0 0.6 0.4\n",     // min > max
      "1 4096 0 0.5 0.0 0.4 0.6\n",     // zero sample count
  };
  for (const char* text : fixtures) {
    rt::HistoryModel model;
    EXPECT_THROW(model.deserialize(text), ParseError) << text;
    EXPECT_EQ(model.entry_count(), 0u) << text;
  }
}

TEST(MalformedModels, DuplicateFootprintKeysAreRejected) {
  rt::HistoryModel model;
  try {
    model.deserialize(
        "peppher-model v2\n"
        "1 4096 2 0.5 0.0 0.4 0.6\n"
        "1 8192 3 0.7 0.0 0.6 0.8\n");
    FAIL() << "duplicate key accepted";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

TEST(MalformedModels, RegistryLoadNamesTheOffendingFile) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "peppher_bad_models";
  std::filesystem::create_directories(dir);
  fs::write_file(dir / "spmv.cpu.model", "1 4096 2 0.5 0.0 0.4 garbage\n");
  rt::PerfRegistry registry;
  try {
    registry.load(dir);
    FAIL() << "malformed model file accepted";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("spmv.cpu.model"), std::string::npos)
        << e.what();
    EXPECT_EQ(e.line(), 1);
  }
  std::filesystem::remove_all(dir);
}

TEST_P(FuzzSeed, PerfModelDeserializeRejectsMutations) {
  Rng rng(GetParam() * 131);
  rt::HistoryModel seed_model;
  seed_model.record(42, 4096, 0.5);
  seed_model.record(77, 65536, 1.5);
  const std::string serialized = seed_model.serialize();
  for (int round = 0; round < 200; ++round) {
    const std::string mutated =
        mutate(serialized, rng, 1 + static_cast<int>(rng.next_below(6)));
    rt::HistoryModel model;
    try {
      model.deserialize(mutated);
    } catch (const ParseError&) {
    }
  }
}

}  // namespace
}  // namespace peppher
