// Utility-mode (skeleton generation) tests — the paper's Figure 4 flow:
// from a C/C++ header to a component directory tree with pre-filled XML
// descriptors and implementation stubs.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "compose/skeleton.hpp"
#include "support/error.hpp"
#include "support/fs.hpp"
#include "xml/xml.hpp"

#include "temp_dir.hpp"

namespace peppher::compose {
namespace {

const char* const kSpmvHeader =
    "void spmv(float* values, int nnz, int nrows, int ncols, int first, "
    "size_t* colidxs, size_t* rowPtr, float* x, float* y);";

TEST(Skeleton, InterfaceFromDeclarationInfersAccessModes) {
  const auto decl = cdecl_parser::parse_declaration(
      "void f(const float* in, float* out_y, int n);");
  const desc::InterfaceDescriptor iface = interface_from_declaration(decl);
  EXPECT_EQ(iface.name, "f");
  EXPECT_EQ(iface.params[0].access, rt::AccessMode::kRead);
  EXPECT_EQ(iface.params[1].access, rt::AccessMode::kWrite);
  EXPECT_EQ(iface.params[2].access, rt::AccessMode::kRead);
  // n is an integer value parameter => suggested as context parameter.
  ASSERT_EQ(iface.context_params.size(), 1u);
  EXPECT_EQ(iface.context_params[0].name, "n");
}

TEST(Skeleton, SizeExpressionGuessing) {
  const auto decl = cdecl_parser::parse_declaration(
      "void g(float* data, int ndata, float* aux, int aux_count);");
  const desc::InterfaceDescriptor iface = interface_from_declaration(decl);
  EXPECT_EQ(iface.params[0].size_expr, "ndata");      // n<name> convention
  EXPECT_EQ(iface.params[2].size_expr, "aux_count");  // <name>_count convention
}

TEST(Skeleton, SizeGuessFallsBackToFirstInteger) {
  const auto decl = cdecl_parser::parse_declaration("void h(float* p, int m);");
  const desc::InterfaceDescriptor iface = interface_from_declaration(decl);
  EXPECT_EQ(iface.params[0].size_expr, "m");
}

TEST(Skeleton, NoIntegerParamsGuessesOne) {
  const auto decl = cdecl_parser::parse_declaration("void h(float* p);");
  const desc::InterfaceDescriptor iface = interface_from_declaration(decl);
  EXPECT_EQ(iface.params[0].size_expr, "1");
}

TEST(Skeleton, GeneratesFigure4FileLayout) {
  const CodegenResult result = generate_skeleton(kSpmvHeader);
  std::set<std::string> paths;
  for (const GeneratedFile& f : result.files) paths.insert(f.path);
  // The paper's "After" directory tree.
  EXPECT_TRUE(paths.count("spmv/spmv.xml"));
  EXPECT_TRUE(paths.count("spmv/cpu/spmv_cpu.xml"));
  EXPECT_TRUE(paths.count("spmv/cpu/spmv_cpu.cpp"));
  EXPECT_TRUE(paths.count("spmv/openmp/spmv_openmp.xml"));
  EXPECT_TRUE(paths.count("spmv/openmp/spmv_openmp.cpp"));
  EXPECT_TRUE(paths.count("spmv/cuda/spmv_cuda.xml"));
  EXPECT_TRUE(paths.count("spmv/cuda/spmv_cuda.cu"));
  EXPECT_TRUE(paths.count("main.xml"));
}

TEST(Skeleton, GeneratedDescriptorsParseBack) {
  const CodegenResult result = generate_skeleton(kSpmvHeader);
  for (const GeneratedFile& f : result.files) {
    if (f.path.find(".xml") == std::string::npos) continue;
    const xml::Document doc = xml::parse(f.content);
    if (f.path == "spmv/spmv.xml") {
      const auto iface = desc::InterfaceDescriptor::from_xml(*doc.root);
      EXPECT_EQ(iface.name, "spmv");
      EXPECT_EQ(iface.params.size(), 9u);
      // 'const'/pointer analysis: non-const pointers default to readwrite.
      EXPECT_EQ(iface.params[0].access, rt::AccessMode::kReadWrite);
    } else if (f.path == "spmv/cuda/spmv_cuda.xml") {
      const auto impl = desc::ImplementationDescriptor::from_xml(*doc.root);
      EXPECT_EQ(impl.interface_name, "spmv");
      EXPECT_EQ(impl.arch(), rt::Arch::kCuda);
      EXPECT_EQ(impl.compile_command, "nvcc");
    } else if (f.path == "main.xml") {
      const auto main = desc::MainDescriptor::from_xml(*doc.root);
      EXPECT_EQ(main.uses.size(), 1u);
    }
  }
}

TEST(Skeleton, ImplementationStubsHaveLoweredSignature) {
  const CodegenResult result = generate_skeleton(kSpmvHeader);
  for (const GeneratedFile& f : result.files) {
    if (f.path == "spmv/cpu/spmv_cpu.cpp") {
      EXPECT_NE(f.content.find("void spmv_cpu(float* values"), std::string::npos);
      EXPECT_NE(f.content.find("TODO"), std::string::npos);
    }
  }
}

TEST(Skeleton, DetectsTemplateParameters) {
  const CodegenResult result = generate_skeleton(
      "template <typename T> void sort(T* data, size_t n);");
  for (const GeneratedFile& f : result.files) {
    if (f.path == "sort/sort.xml") {
      const auto iface =
          desc::InterfaceDescriptor::from_xml(*xml::parse(f.content).root);
      ASSERT_EQ(iface.template_params.size(), 1u);
      EXPECT_EQ(iface.template_params[0], "T");
    }
    if (f.path == "sort/cpu/sort_cpu.cpp") {
      EXPECT_NE(f.content.find("template <typename T>"), std::string::npos);
    }
  }
}

TEST(Skeleton, MultipleDeclarationsMakeMultipleComponents) {
  const CodegenResult result = generate_skeleton(
      "void a(int n);\nvoid b(float* x, int n);", SkeletonOptions{{"cpu"}, true});
  std::set<std::string> paths;
  for (const GeneratedFile& f : result.files) paths.insert(f.path);
  EXPECT_TRUE(paths.count("a/a.xml"));
  EXPECT_TRUE(paths.count("b/b.xml"));
}

TEST(Skeleton, CustomBackendList) {
  const CodegenResult result = generate_skeleton(
      "void k(int n);", SkeletonOptions{{"cpu", "opencl"}, false});
  std::set<std::string> paths;
  for (const GeneratedFile& f : result.files) paths.insert(f.path);
  EXPECT_TRUE(paths.count("k/opencl/k_opencl.xml"));
  EXPECT_FALSE(paths.count("k/cuda/k_cuda.xml"));
  EXPECT_FALSE(paths.count("main.xml"));
}

TEST(Skeleton, EmptyHeaderThrows) {
  EXPECT_THROW(generate_skeleton("// nothing\n"), Error);
}

TEST(Skeleton, WritesFilesToDisk) {
  const auto dir = peppher::testing::unique_temp_dir("peppher_skel_test");
  fs::write_file(dir / "spmv.h", kSpmvHeader);
  generate_skeleton_from_file(dir / "spmv.h", dir);
  EXPECT_TRUE(std::filesystem::exists(dir / "spmv" / "spmv.xml"));
  EXPECT_TRUE(std::filesystem::exists(dir / "spmv" / "cuda" / "spmv_cuda.cu"));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace peppher::compose
