// Coherence verifier tests (analyze/verify.hpp): CFG lowering + fixpoint
// behaviour, one positive and one negative case per PL060..PL069 code, and
// the cross-validation of the runtime's verify_shadow observation log
// against the verifier's abstract per-program-point states.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analyze/lint.hpp"
#include "analyze/verify.hpp"
#include "descriptor/descriptor.hpp"
#include "runtime/engine.hpp"
#include "runtime/memory.hpp"
#include "sim/device.hpp"
#include "sim/topology.hpp"
#include "support/error.hpp"

namespace peppher {
namespace {

using analyze::LintOptions;
using analyze::VerifyResult;
using analyze::verify_main;

// ---------------------------------------------------------------------------
// Fixture: a repository assembled from inline descriptor strings
// ---------------------------------------------------------------------------

// init(y): pure producer. axpy(x, y): consumer/accumulator. consume(x):
// pure reader. sneaky(x): declared read through a mutable type (the hidden
// write the PL065 check hunts).
constexpr const char* kProducer =
    "<peppher-interface name=\"init\">\n"
    "  <function returnType=\"void\">\n"
    "    <param name=\"n\" type=\"int\" accessMode=\"read\"/>\n"
    "    <param name=\"y\" type=\"float*\" accessMode=\"write\" size=\"n\"/>\n"
    "  </function>\n"
    "</peppher-interface>\n";

constexpr const char* kAxpy =
    "<peppher-interface name=\"axpy\">\n"
    "  <function returnType=\"void\">\n"
    "    <param name=\"n\" type=\"int\" accessMode=\"read\"/>\n"
    "    <param name=\"x\" type=\"const float*\" accessMode=\"read\" size=\"n\"/>\n"
    "    <param name=\"y\" type=\"float*\" accessMode=\"readwrite\" size=\"n\"/>\n"
    "  </function>\n"
    "</peppher-interface>\n";

constexpr const char* kConsumer =
    "<peppher-interface name=\"consume\">\n"
    "  <function returnType=\"void\">\n"
    "    <param name=\"n\" type=\"int\" accessMode=\"read\"/>\n"
    "    <param name=\"x\" type=\"const float*\" accessMode=\"read\" size=\"n\"/>\n"
    "  </function>\n"
    "</peppher-interface>\n";

constexpr const char* kSneaky =
    "<peppher-interface name=\"sneaky\">\n"
    "  <function returnType=\"void\">\n"
    "    <param name=\"n\" type=\"int\" accessMode=\"read\"/>\n"
    "    <param name=\"x\" type=\"float*\" accessMode=\"read\" size=\"n\"/>\n"
    "  </function>\n"
    "</peppher-interface>\n";

// stencil(x, y): pure producer from a read input — the distributed sweep
// shape (reads x with a declared radius, writes y).
constexpr const char* kStencil =
    "<peppher-interface name=\"stencil\">\n"
    "  <function returnType=\"void\">\n"
    "    <param name=\"n\" type=\"int\" accessMode=\"read\"/>\n"
    "    <param name=\"x\" type=\"const float*\" accessMode=\"read\" size=\"n\"/>\n"
    "    <param name=\"y\" type=\"float*\" accessMode=\"write\" size=\"n\"/>\n"
    "  </function>\n"
    "</peppher-interface>\n";

std::string impl_xml(const std::string& name, const std::string& iface,
                     const std::string& language) {
  return "<peppher-implementation name=\"" + name + "\" interface=\"" + iface +
         "\">\n  <platform language=\"" + language +
         "\"/>\n</peppher-implementation>\n";
}

/// Repository with all four interfaces, each with a host (cpu) variant
/// unless remapped: `device_ifaces` get a cuda variant *instead*.
desc::Repository make_repo(const std::string& main_xml,
                           const std::vector<std::string>& device_ifaces = {}) {
  desc::Repository repo;
  repo.load_text(kProducer);
  repo.load_text(kAxpy);
  repo.load_text(kConsumer);
  repo.load_text(kSneaky);
  repo.load_text(kStencil);
  for (const char* iface : {"init", "axpy", "consume", "sneaky", "stencil"}) {
    const bool device = std::find(device_ifaces.begin(), device_ifaces.end(),
                                  iface) != device_ifaces.end();
    repo.load_text(impl_xml(std::string(iface) + (device ? "_cuda" : "_cpu"),
                            iface, device ? "cuda" : "cpu"));
  }
  repo.load_text(main_xml, {}, "main.xml");
  return repo;
}

std::string main_with_calls(const std::string& calls) {
  return "<peppher-main name=\"app\" source=\"main.cpp\">\n<calls>\n" + calls +
         "</calls>\n</peppher-main>\n";
}

int count_code(const VerifyResult& result, const std::string& code) {
  int n = 0;
  for (const diag::Diagnostic& d : result.bag.diagnostics()) {
    if (d.code == code) ++n;
  }
  return n;
}

VerifyResult verify(const std::string& calls,
                    const std::vector<std::string>& device_ifaces = {}) {
  const desc::Repository repo = make_repo(main_with_calls(calls), device_ifaces);
  return verify_main(repo);
}

// ---------------------------------------------------------------------------
// Fixpoint behaviour
// ---------------------------------------------------------------------------

TEST(Verify, EmptyRepositoryVerifiesClean) {
  desc::Repository repo;
  const VerifyResult result = verify_main(repo);
  EXPECT_TRUE(result.bag.empty());
  EXPECT_TRUE(result.fixpoint_reached);
}

TEST(Verify, StraightLineProgramVerifiesClean) {
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<call interface=\"axpy\"><arg param=\"x\" data=\"v\"/>"
      "<arg param=\"y\" data=\"out\"/></call>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"out\"/></call>\n");
  EXPECT_TRUE(result.bag.empty()) << result.bag.format_text();
  EXPECT_TRUE(result.fixpoint_reached);
  EXPECT_GT(result.steps, 0);
}

TEST(Verify, NestedControlFlowReachesFixpointClean) {
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<loop count=\"8\">\n"
      "  <if>\n"
      "    <call interface=\"axpy\"><arg param=\"x\" data=\"v\"/>"
      "<arg param=\"y\" data=\"acc\"/></call>\n"
      "  <else>\n"
      "    <loop count=\"2\">\n"
      "      <call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n"
      "    </loop>\n"
      "  </else>\n"
      "  </if>\n"
      "</loop>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n");
  EXPECT_TRUE(result.bag.empty()) << result.bag.format_text();
  EXPECT_TRUE(result.fixpoint_reached);
}

TEST(Verify, MixedPlacementForksWorldsAndStaysClean) {
  // consume has only a cuda variant: the read forces a device fetch; the
  // host-pinned producer then writes again. Straight-line, correct, and the
  // abstract state must cover both the fetched and re-invalidated worlds.
  const VerifyResult result =
      verify("<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
             "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n"
             "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
             "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n",
             {"consume"});
  EXPECT_TRUE(result.bag.empty()) << result.bag.format_text();
}

// ---------------------------------------------------------------------------
// PL060 — branch-divergent initialisation
// ---------------------------------------------------------------------------

TEST(Verify, PL060FlagsReadOfBranchDependentInit) {
  const VerifyResult result = verify(
      "<if>\n"
      "  <call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "</if>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n");
  EXPECT_EQ(count_code(result, "PL060"), 1) << result.bag.format_text();
}

TEST(Verify, PL060SilentWhenBothBranchesInitialise) {
  const VerifyResult result = verify(
      "<if>\n"
      "  <call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<else>\n"
      "  <call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "</else>\n"
      "</if>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n");
  EXPECT_EQ(count_code(result, "PL060"), 0) << result.bag.format_text();
}

TEST(Verify, PL060SilentForAppInitialisedAccumulator) {
  // No pure write ever touches 'acc': the application initialises it, and
  // the loop's readwrite accumulation is the intended pattern.
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<loop count=\"4\">\n"
      "  <call interface=\"axpy\"><arg param=\"x\" data=\"v\"/>"
      "<arg param=\"y\" data=\"acc\"/></call>\n"
      "</loop>\n");
  EXPECT_EQ(count_code(result, "PL060"), 0) << result.bag.format_text();
}

// ---------------------------------------------------------------------------
// PL061 — redundant prefetch
// ---------------------------------------------------------------------------

TEST(Verify, PL061FlagsPrefetchOfAlreadyValidReplica) {
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<prefetch data=\"v\" on=\"host\"/>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n");
  EXPECT_EQ(count_code(result, "PL061"), 1) << result.bag.format_text();
}

TEST(Verify, PL061SilentForUsefulPrefetch) {
  // The host-side producer leaves the device replica invalid; warming it
  // ahead of the device-only consumer is exactly what <prefetch> is for.
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<prefetch data=\"v\" on=\"device\"/>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n",
      {"consume"});
  EXPECT_EQ(count_code(result, "PL061"), 0) << result.bag.format_text();
}

// ---------------------------------------------------------------------------
// PL062 — dead write on every path
// ---------------------------------------------------------------------------

TEST(Verify, PL062FlagsWriteOverwrittenOnEveryPath) {
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<if>\n"
      "  <call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<else>\n"
      "  <call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "</else>\n"
      "</if>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n");
  EXPECT_EQ(count_code(result, "PL062"), 1) << result.bag.format_text();
}

TEST(Verify, PL062SilentWhenSomePathReadsTheWrite) {
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<if>\n"
      "  <call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n"
      "</if>\n"
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n");
  EXPECT_EQ(count_code(result, "PL062"), 0) << result.bag.format_text();
}

TEST(Verify, PL062SilentForFinalOutputWrite) {
  // The last write of a program is its output; unread is not dead.
  const VerifyResult result = verify(
      "<loop count=\"2\">\n"
      "  <call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "  <call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n"
      "</loop>\n"
      "<call interface=\"init\"><arg param=\"y\" data=\"out\"/></call>\n");
  EXPECT_EQ(count_code(result, "PL062"), 0) << result.bag.format_text();
}

// ---------------------------------------------------------------------------
// PL063 — partition without unpartition
// ---------------------------------------------------------------------------

TEST(Verify, PL063FlagsUnclosedPartitionOnSomePath) {
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<partition data=\"v\" parts=\"4\"/>\n"
      "<if>\n"
      "  <unpartition data=\"v\"/>\n"
      "</if>\n");
  EXPECT_EQ(count_code(result, "PL063"), 1) << result.bag.format_text();
}

TEST(Verify, PL063SilentForBalancedPartition) {
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<partition data=\"v\" parts=\"4\"/>\n"
      "<unpartition data=\"v\"/>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n");
  EXPECT_EQ(count_code(result, "PL063"), 0) << result.bag.format_text();
  EXPECT_EQ(count_code(result, "PL066"), 0) << result.bag.format_text();
}

// ---------------------------------------------------------------------------
// PL064 — loop-carried cross-architecture ping-pong
// ---------------------------------------------------------------------------

TEST(Verify, PL064FlagsLoopCarriedPingPong) {
  // Host-pinned producer, device-pinned consumer, every iteration: the
  // replica bounces across the link and prefetch can never hide it.
  const VerifyResult result = verify(
      "<loop count=\"10\">\n"
      "  <call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "  <call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n"
      "</loop>\n",
      {"consume"});
  EXPECT_EQ(count_code(result, "PL064"), 1) << result.bag.format_text();
}

TEST(Verify, PL064SilentWhenCoLocated) {
  const VerifyResult result = verify(
      "<loop count=\"10\">\n"
      "  <call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "  <call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n"
      "</loop>\n");
  EXPECT_EQ(count_code(result, "PL064"), 0) << result.bag.format_text();
}

// ---------------------------------------------------------------------------
// PL065 — path-dependent hidden-write race
// ---------------------------------------------------------------------------

TEST(Verify, PL065FlagsHiddenWriteJoiningReadWindow) {
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<if>\n"
      "  <call interface=\"sneaky\"><arg param=\"x\" data=\"v\"/></call>\n"
      "</if>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n");
  EXPECT_EQ(count_code(result, "PL065"), 1) << result.bag.format_text();
}

TEST(Verify, PL065SilentWithoutHiddenWrites) {
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<if>\n"
      "  <call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n"
      "</if>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n");
  EXPECT_EQ(count_code(result, "PL065"), 0) << result.bag.format_text();
}

// ---------------------------------------------------------------------------
// PL066 — partition protocol violations
// ---------------------------------------------------------------------------

TEST(Verify, PL066FlagsAccessWhilePartitioned) {
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<partition data=\"v\" parts=\"2\"/>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n"
      "<unpartition data=\"v\"/>\n");
  EXPECT_EQ(count_code(result, "PL066"), 1) << result.bag.format_text();
}

TEST(Verify, PL066FlagsDoublePartitionAndStrayUnpartition) {
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<partition data=\"v\" parts=\"2\"/>\n"
      "<partition data=\"v\" parts=\"2\"/>\n"
      "<unpartition data=\"v\"/>\n"
      "<unpartition data=\"v\"/>\n"
      "<unpartition data=\"v\"/>\n");
  EXPECT_GE(count_code(result, "PL066"), 2) << result.bag.format_text();
}

TEST(Verify, PL066SilentForProperLifecycle) {
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<partition data=\"v\" parts=\"2\"/>\n"
      "<unpartition data=\"v\"/>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n");
  EXPECT_EQ(count_code(result, "PL066"), 0) << result.bag.format_text();
}

// ---------------------------------------------------------------------------
// PL069 — fixpoint budget
// ---------------------------------------------------------------------------

TEST(Verify, PL069FiresWhenBudgetExhausted) {
  const desc::Repository repo = make_repo(main_with_calls(
      "<loop count=\"4\">\n"
      "  <call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "  <call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n"
      "</loop>\n"));
  LintOptions options;
  options.verify_max_steps = 1;
  const VerifyResult result = verify_main(repo, options);
  EXPECT_EQ(count_code(result, "PL069"), 1) << result.bag.format_text();
  EXPECT_FALSE(result.fixpoint_reached);
}

TEST(Verify, PL069SilentUnderTheDefaultBudget) {
  const VerifyResult result = verify(
      "<loop count=\"4\">\n"
      "  <loop count=\"4\">\n"
      "    <call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "    <call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n"
      "  </loop>\n"
      "</loop>\n");
  EXPECT_EQ(count_code(result, "PL069"), 0) << result.bag.format_text();
  EXPECT_TRUE(result.fixpoint_reached);
}

// ---------------------------------------------------------------------------
// run_lint integration: opt-in for straight lines, automatic for control flow
// ---------------------------------------------------------------------------

TEST(Verify, RunLintRunsVerifierAutomaticallyForControlFlow) {
  const desc::Repository repo = make_repo(main_with_calls(
      "<if>\n"
      "  <call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "</if>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n"));
  LintOptions options;
  options.check_sources = false;
  const diag::DiagnosticBag bag = analyze::run_lint(repo, options);
  int pl060 = 0;
  for (const diag::Diagnostic& d : bag.diagnostics()) {
    if (d.code == "PL060") ++pl060;
  }
  EXPECT_EQ(pl060, 1) << bag.format_text();
}

TEST(Verify, RunLintNeedsOptInForStraightLine) {
  const desc::Repository repo = make_repo(main_with_calls(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<prefetch data=\"v\" on=\"host\"/>\n"));
  LintOptions options;
  options.check_sources = false;
  // Wait — a <prefetch> is a statement, not control flow; the descriptor
  // stays straight-line and the verifier must not run un-asked.
  diag::DiagnosticBag bag = analyze::run_lint(repo, options);
  EXPECT_TRUE(std::none_of(
      bag.diagnostics().begin(), bag.diagnostics().end(),
      [](const diag::Diagnostic& d) { return d.code == "PL061"; }))
      << bag.format_text();
  options.verify = true;
  bag = analyze::run_lint(repo, options);
  EXPECT_TRUE(std::any_of(
      bag.diagnostics().begin(), bag.diagnostics().end(),
      [](const diag::Diagnostic& d) { return d.code == "PL061"; }))
      << bag.format_text();
}

// ---------------------------------------------------------------------------
// Distributed verification (PL080..PL087): the abstract machine gains one
// host + one accelerator slot per cluster node and <partitioned>/<exchange>/
// <repartition>/<gather> drive per-slice sub-machines.
// ---------------------------------------------------------------------------

VerifyResult verify_cluster(int nodes, const std::string& calls,
                            const std::vector<std::string>& device_ifaces = {}) {
  const desc::Repository repo = make_repo(main_with_calls(calls), device_ifaces);
  LintOptions options;
  options.cluster =
      sim::ClusterConfig::uniform(nodes, sim::MachineConfig::platform_c2050());
  return verify_main(repo, options);
}

TEST(VerifyDistributed, PL080FlagsHaloNarrowerThanStencilRadius) {
  const VerifyResult result = verify_cluster(
      2,
      "<call interface=\"init\"><arg param=\"y\" data=\"u\"/></call>\n"
      "<partitioned data=\"u\" nodes=\"2\" halo=\"0\"/>\n"
      "<exchange data=\"u\"/>\n"
      "<call interface=\"consume\" radius=\"1\">"
      "<arg param=\"x\" data=\"u\"/></call>\n"
      "<gather data=\"u\"/>\n");
  EXPECT_EQ(count_code(result, "PL080"), 1) << result.bag.format_text();
  EXPECT_EQ(count_code(result, "PL081"), 0) << result.bag.format_text();
}

TEST(VerifyDistributed, PL080SilentWhenHaloCoversRadius) {
  const VerifyResult result = verify_cluster(
      2,
      "<call interface=\"init\"><arg param=\"y\" data=\"u\"/></call>\n"
      "<partitioned data=\"u\" nodes=\"2\" halo=\"1\"/>\n"
      "<exchange data=\"u\"/>\n"
      "<call interface=\"consume\" radius=\"1\">"
      "<arg param=\"x\" data=\"u\"/></call>\n"
      "<gather data=\"u\"/>\n");
  EXPECT_EQ(count_code(result, "PL080"), 0) << result.bag.format_text();
  EXPECT_EQ(count_code(result, "PL081"), 0) << result.bag.format_text();
}

TEST(VerifyDistributed, PL081FlagsStencilReadWithoutExchange) {
  const VerifyResult result = verify_cluster(
      2,
      "<call interface=\"init\"><arg param=\"y\" data=\"u\"/></call>\n"
      "<partitioned data=\"u\" nodes=\"2\" halo=\"1\"/>\n"
      "<call interface=\"consume\" radius=\"1\">"
      "<arg param=\"x\" data=\"u\"/></call>\n"
      "<gather data=\"u\"/>\n");
  EXPECT_EQ(count_code(result, "PL081"), 1) << result.bag.format_text();
  EXPECT_EQ(count_code(result, "PL080"), 0) << result.bag.format_text();
}

TEST(VerifyDistributed, PL081SilentWhenExchangeDominatesTheRead) {
  const VerifyResult result = verify_cluster(
      2,
      "<call interface=\"init\"><arg param=\"y\" data=\"u\"/></call>\n"
      "<partitioned data=\"u\" nodes=\"2\" halo=\"1\"/>\n"
      "<exchange data=\"u\"/>\n"
      "<call interface=\"consume\" radius=\"1\">"
      "<arg param=\"x\" data=\"u\"/></call>\n"
      "<gather data=\"u\"/>\n");
  EXPECT_EQ(count_code(result, "PL081"), 0) << result.bag.format_text();
}

TEST(VerifyDistributed, PL081ArmsEvenWithoutAClusterProfile) {
  // The distributed forms are meaningful on a single host too (the abstract
  // machine simply has one node); the protocol checks must not need --cluster.
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"u\"/></call>\n"
      "<partitioned data=\"u\" nodes=\"2\" halo=\"1\"/>\n"
      "<call interface=\"consume\" radius=\"1\">"
      "<arg param=\"x\" data=\"u\"/></call>\n"
      "<gather data=\"u\"/>\n");
  EXPECT_EQ(count_code(result, "PL081"), 1) << result.bag.format_text();
}

TEST(VerifyDistributed, PL082FlagsLoopCarriedInternodePingPong) {
  const VerifyResult result = verify_cluster(
      2,
      "<loop count=\"10\">\n"
      "  <call interface=\"init\" node=\"0\">"
      "<arg param=\"y\" data=\"v\"/></call>\n"
      "  <call interface=\"consume\" node=\"1\">"
      "<arg param=\"x\" data=\"v\"/></call>\n"
      "</loop>\n");
  EXPECT_EQ(count_code(result, "PL082"), 1) << result.bag.format_text();
  // The n2n twin must not double-report as a same-node PCIe ping-pong.
  EXPECT_EQ(count_code(result, "PL064"), 0) << result.bag.format_text();
}

TEST(VerifyDistributed, PL082SilentWhenCoLocatedOnOneNode) {
  const VerifyResult result = verify_cluster(
      2,
      "<loop count=\"10\">\n"
      "  <call interface=\"init\" node=\"0\">"
      "<arg param=\"y\" data=\"v\"/></call>\n"
      "  <call interface=\"consume\" node=\"0\">"
      "<arg param=\"x\" data=\"v\"/></call>\n"
      "</loop>\n");
  EXPECT_EQ(count_code(result, "PL082"), 0) << result.bag.format_text();
  EXPECT_EQ(count_code(result, "PL064"), 0) << result.bag.format_text();
}

TEST(VerifyDistributed, PL083FlagsRepartitionEvictingDeviceReplicas) {
  const VerifyResult result = verify_cluster(
      4,
      "<call interface=\"init\"><arg param=\"y\" data=\"u\"/></call>\n"
      "<partitioned data=\"u\" nodes=\"2\" halo=\"1\"/>\n"
      "<call interface=\"consume\" node=\"0\">"
      "<arg param=\"x\" data=\"u\"/></call>\n"
      "<repartition data=\"u\" nodes=\"4\" halo=\"1\"/>\n"
      "<gather data=\"u\"/>\n",
      {"consume"});
  EXPECT_EQ(count_code(result, "PL083"), 1) << result.bag.format_text();
}

TEST(VerifyDistributed, PL083SilentWhenTheShapeIsUnchanged) {
  const VerifyResult result = verify_cluster(
      4,
      "<call interface=\"init\"><arg param=\"y\" data=\"u\"/></call>\n"
      "<partitioned data=\"u\" nodes=\"2\" halo=\"1\"/>\n"
      "<call interface=\"consume\" node=\"0\">"
      "<arg param=\"x\" data=\"u\"/></call>\n"
      "<repartition data=\"u\" nodes=\"2\" halo=\"2\"/>\n"
      "<gather data=\"u\"/>\n",
      {"consume"});
  EXPECT_EQ(count_code(result, "PL083"), 0) << result.bag.format_text();
}

TEST(VerifyDistributed, PL084FlagsSliceCoverageGap) {
  const VerifyResult result = verify_cluster(
      2,
      "<call interface=\"init\"><arg param=\"y\" data=\"u\"/></call>\n"
      "<partitioned data=\"u\" nodes=\"2\" halo=\"1\" elements=\"100\">\n"
      "  <slice node=\"0\" begin=\"0\" end=\"40\"/>\n"
      "  <slice node=\"1\" begin=\"60\" end=\"100\"/>\n"
      "</partitioned>\n"
      "<gather data=\"u\"/>\n");
  EXPECT_GE(count_code(result, "PL084"), 1) << result.bag.format_text();
}

TEST(VerifyDistributed, PL084FlagsSliceOverlap) {
  const VerifyResult result = verify_cluster(
      2,
      "<call interface=\"init\"><arg param=\"y\" data=\"u\"/></call>\n"
      "<partitioned data=\"u\" nodes=\"2\" halo=\"1\" elements=\"100\">\n"
      "  <slice node=\"0\" begin=\"0\" end=\"60\"/>\n"
      "  <slice node=\"1\" begin=\"40\" end=\"100\"/>\n"
      "</partitioned>\n"
      "<gather data=\"u\"/>\n");
  EXPECT_GE(count_code(result, "PL084"), 1) << result.bag.format_text();
}

TEST(VerifyDistributed, PL084FlagsNodePinOutsideTheProfile) {
  const VerifyResult result = verify_cluster(
      2,
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<call interface=\"consume\" node=\"5\">"
      "<arg param=\"x\" data=\"v\"/></call>\n");
  EXPECT_GE(count_code(result, "PL084"), 1) << result.bag.format_text();
}

TEST(VerifyDistributed, PL084SilentForExactCoverage) {
  const VerifyResult result = verify_cluster(
      2,
      "<call interface=\"init\"><arg param=\"y\" data=\"u\"/></call>\n"
      "<partitioned data=\"u\" nodes=\"2\" halo=\"1\" elements=\"100\">\n"
      "  <slice node=\"0\" begin=\"0\" end=\"50\"/>\n"
      "  <slice node=\"1\" begin=\"50\" end=\"100\"/>\n"
      "</partitioned>\n"
      "<gather data=\"u\"/>\n");
  EXPECT_EQ(count_code(result, "PL084"), 0) << result.bag.format_text();
}

TEST(VerifyDistributed, PL085FlagsGatherDuringInFlightExchange) {
  const VerifyResult result = verify_cluster(
      2,
      "<call interface=\"init\"><arg param=\"y\" data=\"u\"/></call>\n"
      "<partitioned data=\"u\" nodes=\"2\" halo=\"1\"/>\n"
      "<exchange data=\"u\"/>\n"
      "<gather data=\"u\"/>\n");
  EXPECT_EQ(count_code(result, "PL085"), 1) << result.bag.format_text();
}

TEST(VerifyDistributed, PL085SilentOnceAReadQuiescesTheExchange) {
  const VerifyResult result = verify_cluster(
      2,
      "<call interface=\"init\"><arg param=\"y\" data=\"u\"/></call>\n"
      "<partitioned data=\"u\" nodes=\"2\" halo=\"1\"/>\n"
      "<exchange data=\"u\"/>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"u\"/></call>\n"
      "<gather data=\"u\"/>\n");
  EXPECT_EQ(count_code(result, "PL085"), 0) << result.bag.format_text();
}

TEST(VerifyDistributed, PL086FlagsNodeDivergentWorldsAtAJoin) {
  const VerifyResult result = verify_cluster(
      2,
      "<call interface=\"init\" node=\"0\">"
      "<arg param=\"y\" data=\"v\"/></call>\n"
      "<if>\n"
      "  <call interface=\"init\" node=\"1\">"
      "<arg param=\"y\" data=\"v\"/></call>\n"
      "</if>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n");
  EXPECT_EQ(count_code(result, "PL086"), 1) << result.bag.format_text();
}

TEST(VerifyDistributed, PL086SilentWhenEveryPathWritesOnOneNode) {
  const VerifyResult result = verify_cluster(
      2,
      "<call interface=\"init\" node=\"0\">"
      "<arg param=\"y\" data=\"v\"/></call>\n"
      "<if>\n"
      "  <call interface=\"init\" node=\"0\">"
      "<arg param=\"y\" data=\"v\"/></call>\n"
      "</if>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n");
  EXPECT_EQ(count_code(result, "PL086"), 0) << result.bag.format_text();
}

TEST(VerifyDistributed, PL087FlagsWriteRacingAnInFlightExchange) {
  const VerifyResult result = verify_cluster(
      2,
      "<call interface=\"init\"><arg param=\"y\" data=\"u\"/></call>\n"
      "<partitioned data=\"u\" nodes=\"2\" halo=\"1\"/>\n"
      "<exchange data=\"u\"/>\n"
      "<call interface=\"init\"><arg param=\"y\" data=\"u\"/></call>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"u\"/></call>\n"
      "<gather data=\"u\"/>\n");
  EXPECT_EQ(count_code(result, "PL087"), 1) << result.bag.format_text();
  EXPECT_EQ(count_code(result, "PL085"), 0) << result.bag.format_text();
}

TEST(VerifyDistributed, PL087SilentWhenTheExchangeDrainedFirst) {
  const VerifyResult result = verify_cluster(
      2,
      "<call interface=\"init\"><arg param=\"y\" data=\"u\"/></call>\n"
      "<partitioned data=\"u\" nodes=\"2\" halo=\"1\"/>\n"
      "<exchange data=\"u\"/>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"u\"/></call>\n"
      "<call interface=\"init\"><arg param=\"y\" data=\"u\"/></call>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"u\"/></call>\n"
      "<gather data=\"u\"/>\n");
  EXPECT_EQ(count_code(result, "PL087"), 0) << result.bag.format_text();
}

TEST(VerifyDistributed, PL063FlagsPartitioningWithoutGather) {
  const VerifyResult result = verify_cluster(
      2,
      "<call interface=\"init\"><arg param=\"y\" data=\"u\"/></call>\n"
      "<partitioned data=\"u\" nodes=\"2\" halo=\"0\"/>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"u\"/></call>\n");
  EXPECT_EQ(count_code(result, "PL063"), 1) << result.bag.format_text();
}

/// A canonical double-buffered Jacobi over `nodes` cluster nodes: device
/// sweeps read u (radius 1) into unew, host copy-back closes the iteration.
std::string jacobi_calls(int nodes) {
  const std::string n = std::to_string(nodes);
  std::string calls =
      "<call interface=\"init\"><arg param=\"y\" data=\"u\"/></call>\n"
      "<partitioned data=\"u\" nodes=\"" + n + "\" halo=\"1\"/>\n"
      "<partitioned data=\"unew\" nodes=\"" + n + "\" halo=\"1\"/>\n"
      "<loop count=\"3\">\n"
      "  <exchange data=\"u\"/>\n";
  for (int k = 0; k < nodes; ++k) {
    calls += "  <call interface=\"stencil\" node=\"" + std::to_string(k) +
             "\" radius=\"1\"><arg param=\"x\" data=\"u\"/>"
             "<arg param=\"y\" data=\"unew\"/></call>\n";
  }
  for (int k = 0; k < nodes; ++k) {
    calls += "  <call interface=\"axpy\" node=\"" + std::to_string(k) +
             "\"><arg param=\"x\" data=\"unew\"/>"
             "<arg param=\"y\" data=\"u\"/></call>\n";
  }
  calls +=
      "</loop>\n"
      "<gather data=\"u\"/>\n"
      "<gather data=\"unew\"/>\n";
  return calls;
}

TEST(VerifyDistributed, CleanJacobiVerifiesCleanOnTwoAndFourNodes) {
  for (int nodes : {2, 4}) {
    const VerifyResult result =
        verify_cluster(nodes, jacobi_calls(nodes), {"stencil"});
    EXPECT_TRUE(result.bag.empty())
        << "nodes=" << nodes << "\n" << result.bag.format_text();
    EXPECT_TRUE(result.fixpoint_reached);
  }
}

TEST(VerifyDistributed, OneNodeProfileIsIdenticalToSingleHostVerify) {
  // The differential guard of the issue: a one-node cluster profile must
  // take the exact same path as no profile at all — same diagnostics text,
  // same fixpoint step count — on programs without distributed forms.
  struct Program {
    const char* calls;
    std::vector<std::string> device;
  };
  const Program programs[] = {
      {"<loop count=\"10\">\n"
       "  <call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
       "  <call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n"
       "</loop>\n",
       {"consume"}},
      {"<if>\n"
       "  <call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
       "</if>\n"
       "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n",
       {}},
      {"<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
       "<prefetch data=\"v\" on=\"host\"/>\n"
       "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n",
       {}},
      {"<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
       "<partition data=\"v\" parts=\"4\"/>\n"
       "<if>\n"
       "  <unpartition data=\"v\"/>\n"
       "</if>\n",
       {}},
  };
  for (const Program& program : programs) {
    const desc::Repository repo =
        make_repo(main_with_calls(program.calls), program.device);
    const VerifyResult plain = verify_main(repo);
    LintOptions options;
    options.cluster =
        sim::ClusterConfig::single(sim::MachineConfig::platform_c2050());
    const VerifyResult clustered = verify_main(repo, options);
    EXPECT_EQ(plain.bag.format_text(), clustered.bag.format_text());
    EXPECT_EQ(plain.steps, clustered.steps);
    EXPECT_EQ(plain.fixpoint_reached, clustered.fixpoint_reached);
  }
}

// ---------------------------------------------------------------------------
// Abstract states and the verify_shadow cross-validation
// ---------------------------------------------------------------------------

TEST(Verify, PublishesAbstractStatesPerCallPoint) {
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n");
  ASSERT_TRUE(result.states.count(0));
  ASSERT_TRUE(result.states.count(1));
  // Before the first call every container sits host-Owned (registration).
  EXPECT_TRUE(result.admits(0, "v", 0, rt::ReplicaState::kOwned));
  EXPECT_FALSE(result.admits(0, "v", 0, rt::ReplicaState::kInvalid));
  // After the host-side producer the device replica is still invalid.
  EXPECT_TRUE(result.admits(1, "v", 1, rt::ReplicaState::kInvalid));
  // Unknown points and containers are never admitted.
  EXPECT_FALSE(result.admits(7, "v", 0, rt::ReplicaState::kOwned));
  EXPECT_FALSE(result.admits(0, "nope", 0, rt::ReplicaState::kOwned));
}

/// Builds the runtime counterpart of the two-call descriptor program and
/// checks every verify_shadow observation is admitted by the verifier's
/// abstract state for the same program point. Synchronous submission keeps
/// the concrete execution in program order, matching the CFG.
void cross_validate(rt::Arch arch, const std::vector<std::string>& device) {
  const desc::Repository repo = make_repo(main_with_calls(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<call interface=\"axpy\"><arg param=\"x\" data=\"v\"/>"
      "<arg param=\"y\" data=\"acc\"/></call>\n"),
      device);
  const VerifyResult abstract = verify_main(repo);
  ASSERT_TRUE(abstract.fixpoint_reached);

  rt::EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.machine.cpu_cores = 2;
  config.use_history_models = false;
  config.verify_shadow = true;
  rt::Engine engine(config);

  std::vector<float> v(32, 0.0f), acc(32, 1.0f);
  auto hv = engine.register_buffer(v.data(), v.size() * sizeof(float),
                                   sizeof(float));
  auto hacc = engine.register_buffer(acc.data(), acc.size() * sizeof(float),
                                     sizeof(float));

  rt::Codelet init("init");
  {
    rt::Implementation impl;
    impl.arch = arch;
    impl.name = "init_" + rt::to_string(arch);
    impl.fn = [](rt::ExecContext& ctx) {
      auto* y = ctx.buffer_as<float>(0);
      for (std::size_t i = 0; i < ctx.elements(0); ++i) y[i] = 2.0f;
    };
    init.add_impl(std::move(impl));
  }
  rt::Codelet axpy("axpy");
  {
    rt::Implementation impl;
    impl.arch = arch;
    impl.name = "axpy_" + rt::to_string(arch);
    impl.fn = [](rt::ExecContext& ctx) {
      const auto* x = ctx.buffer_as<const float>(0);
      auto* y = ctx.buffer_as<float>(1);
      for (std::size_t i = 0; i < ctx.elements(1); ++i) y[i] += x[i];
    };
    axpy.add_impl(std::move(impl));
  }

  rt::TaskSpec s0;
  s0.codelet = &init;
  s0.operands = {{hv, rt::AccessMode::kWrite}};
  s0.synchronous = true;
  s0.verify_point = 0;
  engine.submit(std::move(s0));

  rt::TaskSpec s1;
  s1.codelet = &axpy;
  s1.operands = {{hv, rt::AccessMode::kRead},
                 {hacc, rt::AccessMode::kReadWrite}};
  s1.synchronous = true;
  s1.verify_point = 1;
  engine.submit(std::move(s1));
  engine.wait_for_all();

  EXPECT_GT(engine.shadow_checks(), 0u);
  const std::vector<rt::ShadowRecord> log = engine.shadow_log();
  ASSERT_EQ(log.size(), 3u);  // one record per operand per task
  const char* const operand_names[2][2] = {{"v", nullptr}, {"v", "acc"}};
  for (const rt::ShadowRecord& record : log) {
    ASSERT_GE(record.verify_point, 0);
    ASSERT_LE(record.verify_point, 1);
    ASSERT_LT(record.operand, 2u);
    const char* data = operand_names[record.verify_point][record.operand];
    ASSERT_NE(data, nullptr);
    const int abstract_node = record.node == rt::kHostNode ? 0 : 1;
    EXPECT_TRUE(
        abstract.admits(record.verify_point, data, abstract_node, record.state))
        << "task " << record.task_name << " operand " << record.operand
        << " on node " << record.node << " observed '"
        << rt::to_string(record.state)
        << "' which no abstract world at point " << record.verify_point
        << " admits";
  }
}

TEST(Verify, ShadowLogMatchesAbstractStatesOnTheHost) {
  cross_validate(rt::Arch::kCpu, {});
}

TEST(Verify, ShadowLogMatchesAbstractStatesOnTheDevice) {
  cross_validate(rt::Arch::kCuda, {"init", "axpy"});
}

// ---------------------------------------------------------------------------
// Distributed shadow cross-validation: cluster runs confirm the abstract
// per-node worlds (the cluster profile has one accelerator per node, so the
// verifier's abstract topology coincides with the engine's real one).
// ---------------------------------------------------------------------------

/// First worker on `sim_node` of the requested kind (host CPU or
/// accelerator); mirrors the abstract host/device split per cluster node.
rt::WorkerId worker_on(const rt::Engine& engine, int sim_node, bool accel) {
  for (const auto& desc : engine.workers()) {
    if (desc.sim_node != sim_node || desc.archs.empty()) continue;
    const bool is_accel = desc.archs.front() == rt::Arch::kCuda ||
                          desc.archs.front() == rt::Arch::kOpenCl;
    if (is_accel == accel) return desc.id;
  }
  ADD_FAILURE() << "no " << (accel ? "accelerator" : "cpu")
                << " worker on sim node " << sim_node;
  return 0;
}

/// Checks every tagged verify_shadow observation against the abstract state
/// for that program point: `names[point][operand]` maps a record back to its
/// container (nullptr = outside the abstract model, e.g. ghost buffers).
void check_shadow_log(const rt::Engine& engine,
                      const analyze::VerifyResult& abstract,
                      const std::vector<std::vector<const char*>>& names) {
  const rt::MemTopology& topo = engine.topo();
  int checked = 0;
  for (const rt::ShadowRecord& record : engine.shadow_log()) {
    if (record.verify_point < 0) continue;
    ASSERT_LT(static_cast<std::size_t>(record.verify_point), names.size());
    const auto& operands = names[static_cast<std::size_t>(record.verify_point)];
    ASSERT_LT(record.operand, operands.size());
    const char* data = operands[record.operand];
    if (data == nullptr) continue;  // ghost buffers live outside the model
    const int abstract_node =
        2 * record.sim_node + (topo.is_host(record.node) ? 0 : 1);
    EXPECT_TRUE(
        abstract.admits(record.verify_point, data, abstract_node, record.state))
        << "task " << record.task_name << " operand " << record.operand
        << " on node " << record.node << " (sim node " << record.sim_node
        << ") observed '" << rt::to_string(record.state)
        << "' which no abstract world at point " << record.verify_point
        << " admits";
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

/// The runtime counterpart of jacobi_calls(nodes): per-slice handles homed
/// by a scatter write on their owner, halo exchange through dedicated ghost
/// buffers, device sweeps and host copy-backs pinned like the descriptor.
void cross_validate_jacobi(int nodes) {
  const desc::Repository repo =
      make_repo(main_with_calls(jacobi_calls(nodes)), {"stencil"});
  LintOptions options;
  options.cluster =
      sim::ClusterConfig::uniform(nodes, sim::MachineConfig::platform_c2050());
  const analyze::VerifyResult abstract = verify_main(repo, options);
  ASSERT_TRUE(abstract.fixpoint_reached);
  ASSERT_TRUE(abstract.bag.empty()) << abstract.bag.format_text();

  rt::EngineConfig config;
  config.cluster = *options.cluster;
  config.use_history_models = false;
  config.enable_prefetch = false;  // the abstract model has no <prefetch>
  config.verify_shadow = true;
  rt::Engine engine(config);
  ASSERT_EQ(engine.topo().sim_node_count(), nodes);

  constexpr std::size_t kSlice = 16;
  std::vector<std::vector<float>> u(static_cast<std::size_t>(nodes)),
      unew(static_cast<std::size_t>(nodes)),
      ghost(static_cast<std::size_t>(nodes));
  std::vector<rt::DataHandlePtr> hu, hunew, hghost;
  for (int k = 0; k < nodes; ++k) {
    u[static_cast<std::size_t>(k)].assign(kSlice, 0.0f);
    unew[static_cast<std::size_t>(k)].assign(kSlice, 0.0f);
    ghost[static_cast<std::size_t>(k)].assign(2, 0.0f);
    auto reg = [&engine](std::vector<float>& buf) {
      return engine.register_buffer(buf.data(), buf.size() * sizeof(float),
                                    sizeof(float));
    };
    hu.push_back(reg(u[static_cast<std::size_t>(k)]));
    hunew.push_back(reg(unew[static_cast<std::size_t>(k)]));
    hghost.push_back(reg(ghost[static_cast<std::size_t>(k)]));
  }

  auto cpu_impl = [](const char* name, void (*fn)(rt::ExecContext&)) {
    rt::Implementation impl;
    impl.arch = rt::Arch::kCpu;
    impl.name = name;
    impl.fn = fn;
    return impl;
  };
  rt::Codelet scatter("scatter");
  scatter.add_impl(cpu_impl("scatter_cpu", [](rt::ExecContext& ctx) {
    auto* y = ctx.buffer_as<float>(0);
    for (std::size_t i = 0; i < ctx.elements(0); ++i) y[i] = 1.0f;
  }));
  rt::Codelet halo("halo");  // reads the own slice, fills a neighbour ghost
  halo.add_impl(cpu_impl("halo_cpu", [](rt::ExecContext& ctx) {
    const auto* x = ctx.buffer_as<const float>(0);
    auto* g = ctx.buffer_as<float>(1);
    g[0] = x[0];
    g[1] = x[ctx.elements(0) - 1];
  }));
  rt::Codelet sweep("sweep");  // device: unew[i] = avg(u, ghosts at the rim)
  {
    rt::Implementation impl;
    impl.arch = rt::Arch::kCuda;
    impl.name = "sweep_cuda";
    impl.fn = [](rt::ExecContext& ctx) {
      const auto* x = ctx.buffer_as<const float>(0);
      const auto* g = ctx.buffer_as<const float>(1);
      auto* y = ctx.buffer_as<float>(2);
      const std::size_t n = ctx.elements(0);
      for (std::size_t i = 0; i < n; ++i) {
        const float left = i == 0 ? g[0] : x[i - 1];
        const float right = i + 1 == n ? g[1] : x[i + 1];
        y[i] = (left + x[i] + right) / 3.0f;
      }
    };
    sweep.add_impl(std::move(impl));
  }
  rt::Codelet copy("copyback");  // host: u <- relaxation of unew into u
  copy.add_impl(cpu_impl("copyback_cpu", [](rt::ExecContext& ctx) {
    const auto* x = ctx.buffer_as<const float>(0);
    auto* y = ctx.buffer_as<float>(1);
    for (std::size_t i = 0; i < ctx.elements(1); ++i) {
      y[i] = 0.5f * y[i] + 0.5f * x[i];
    }
  }));

  auto submit = [&engine](const rt::Codelet* codelet,
                          std::vector<rt::TaskOperand> operands,
                          rt::WorkerId worker, int point) {
    rt::TaskSpec spec;
    spec.codelet = codelet;
    spec.operands = std::move(operands);
    spec.forced_worker = worker;
    spec.synchronous = true;
    spec.verify_point = point;
    engine.submit(std::move(spec));
  };

  // <partitioned>: home each slice on its owner with an untagged write.
  for (int k = 0; k < nodes; ++k) {
    const rt::WorkerId host = worker_on(engine, k, false);
    const std::size_t sk = static_cast<std::size_t>(k);
    submit(&scatter, {{hu[sk], rt::AccessMode::kWrite}}, host, -1);
    submit(&scatter, {{hunew[sk], rt::AccessMode::kWrite}}, host, -1);
  }
  for (int iteration = 0; iteration < 3; ++iteration) {
    // <exchange data="u"/>: each owner reads its slice on its own host and
    // publishes the border into the neighbours' ghost buffers.
    for (int k = 0; k < nodes; ++k) {
      const rt::WorkerId host = worker_on(engine, k, false);
      const std::size_t sk = static_cast<std::size_t>(k);
      if (k > 0) {
        submit(&halo,
               {{hu[sk], rt::AccessMode::kRead},
                {hghost[sk - 1], rt::AccessMode::kWrite}},
               host, -1);
      }
      if (k + 1 < nodes) {
        submit(&halo,
               {{hu[sk], rt::AccessMode::kRead},
                {hghost[sk + 1], rt::AccessMode::kWrite}},
               host, -1);
      }
    }
    for (int k = 0; k < nodes; ++k) {  // device sweeps (points 1..nodes)
      const std::size_t sk = static_cast<std::size_t>(k);
      submit(&sweep,
             {{hu[sk], rt::AccessMode::kRead},
              {hghost[sk], rt::AccessMode::kRead},
              {hunew[sk], rt::AccessMode::kWrite}},
             worker_on(engine, k, true), 1 + k);
    }
    for (int k = 0; k < nodes; ++k) {  // host copy-backs (points nodes+1..2N)
      const std::size_t sk = static_cast<std::size_t>(k);
      submit(&copy,
             {{hunew[sk], rt::AccessMode::kRead},
              {hu[sk], rt::AccessMode::kReadWrite}},
             worker_on(engine, k, false), 1 + nodes + k);
    }
  }
  engine.wait_for_all();

  // point 0 is the init call (no tagged runtime task); then sweeps, copies.
  std::vector<std::vector<const char*>> names(
      1 + 2 * static_cast<std::size_t>(nodes));
  for (int k = 0; k < nodes; ++k) {
    names[static_cast<std::size_t>(1 + k)] = {"u", nullptr, "unew"};
    names[static_cast<std::size_t>(1 + nodes + k)] = {"unew", "u"};
  }
  EXPECT_GT(engine.shadow_checks(), 0u);
  check_shadow_log(engine, abstract, names);
}

TEST(VerifyDistributed, ShadowLogMatchesAbstractWorldsOnTwoNodeJacobi) {
  cross_validate_jacobi(2);
}

TEST(VerifyDistributed, ShadowLogMatchesAbstractWorldsOnFourNodeJacobi) {
  cross_validate_jacobi(4);
}

TEST(VerifyDistributed, ShadowLogMatchesAbstractWorldsOnDistributedSpmv) {
  // Distributed SpMV shape: a replicated input vector read by every node's
  // accelerator, a partitioned result vector gathered back for a host read.
  const int nodes = 2;
  std::string calls =
      "<call interface=\"init\"><arg param=\"y\" data=\"x\"/></call>\n"
      "<partitioned data=\"y\" nodes=\"2\" halo=\"0\"/>\n";
  for (int k = 0; k < nodes; ++k) {
    calls += "<call interface=\"stencil\" node=\"" + std::to_string(k) +
             "\"><arg param=\"x\" data=\"x\"/>"
             "<arg param=\"y\" data=\"y\"/></call>\n";
  }
  calls +=
      "<gather data=\"y\"/>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"y\"/></call>\n";
  const desc::Repository repo = make_repo(main_with_calls(calls), {"stencil"});
  LintOptions options;
  options.cluster =
      sim::ClusterConfig::uniform(nodes, sim::MachineConfig::platform_c2050());
  const analyze::VerifyResult abstract = verify_main(repo, options);
  ASSERT_TRUE(abstract.fixpoint_reached);
  ASSERT_TRUE(abstract.bag.empty()) << abstract.bag.format_text();

  rt::EngineConfig config;
  config.cluster = *options.cluster;
  config.use_history_models = false;
  config.enable_prefetch = false;  // the abstract model has no <prefetch>
  config.verify_shadow = true;
  rt::Engine engine(config);

  std::vector<float> x(32, 1.0f);
  std::vector<std::vector<float>> y(static_cast<std::size_t>(nodes),
                                    std::vector<float>(16, 0.0f));
  auto hx =
      engine.register_buffer(x.data(), x.size() * sizeof(float), sizeof(float));
  std::vector<rt::DataHandlePtr> hy;
  for (int k = 0; k < nodes; ++k) {
    auto& slice = y[static_cast<std::size_t>(k)];
    hy.push_back(engine.register_buffer(
        slice.data(), slice.size() * sizeof(float), sizeof(float)));
  }

  rt::Codelet scatter("scatter");
  {
    rt::Implementation impl;
    impl.arch = rt::Arch::kCpu;
    impl.name = "scatter_cpu";
    impl.fn = [](rt::ExecContext& ctx) {
      auto* out = ctx.buffer_as<float>(0);
      for (std::size_t i = 0; i < ctx.elements(0); ++i) out[i] = 0.0f;
    };
    scatter.add_impl(std::move(impl));
  }
  rt::Codelet spmv("spmv_part");
  {
    rt::Implementation impl;
    impl.arch = rt::Arch::kCuda;
    impl.name = "spmv_cuda";
    impl.fn = [](rt::ExecContext& ctx) {
      const auto* vec = ctx.buffer_as<const float>(0);
      auto* out = ctx.buffer_as<float>(1);
      for (std::size_t i = 0; i < ctx.elements(1); ++i) out[i] = 2.0f * vec[i];
    };
    spmv.add_impl(std::move(impl));
  }
  rt::Codelet reduce("reduce");
  {
    rt::Implementation impl;
    impl.arch = rt::Arch::kCpu;
    impl.name = "reduce_cpu";
    impl.fn = [](rt::ExecContext& ctx) {
      float sum = 0.0f;
      for (std::size_t op = 0; op < 2; ++op) {
        const auto* part = ctx.buffer_as<const float>(op);
        for (std::size_t i = 0; i < ctx.elements(op); ++i) sum += part[i];
      }
      EXPECT_GT(sum, 0.0f);
    };
    reduce.add_impl(std::move(impl));
  }

  auto submit = [&engine](const rt::Codelet* codelet,
                          std::vector<rt::TaskOperand> operands,
                          rt::WorkerId worker, int point) {
    rt::TaskSpec spec;
    spec.codelet = codelet;
    spec.operands = std::move(operands);
    spec.forced_worker = worker;
    spec.synchronous = true;
    spec.verify_point = point;
    engine.submit(std::move(spec));
  };

  for (int k = 0; k < nodes; ++k) {  // <partitioned data="y"/>
    submit(&scatter, {{hy[static_cast<std::size_t>(k)], rt::AccessMode::kWrite}},
           worker_on(engine, k, false), -1);
  }
  for (int k = 0; k < nodes; ++k) {  // per-node partial products
    submit(&spmv,
           {{hx, rt::AccessMode::kRead},
            {hy[static_cast<std::size_t>(k)], rt::AccessMode::kWrite}},
           worker_on(engine, k, true), 1 + k);
  }
  engine.wait_for_all();
  for (int k = 0; k < nodes; ++k) {  // <gather data="y"/>
    engine.acquire_host(hy[static_cast<std::size_t>(k)],
                        rt::AccessMode::kReadWrite);
  }
  submit(&reduce,
         {{hy[0], rt::AccessMode::kRead}, {hy[1], rt::AccessMode::kRead}},
         worker_on(engine, 0, false), 1 + nodes);
  engine.wait_for_all();

  std::vector<std::vector<const char*>> names(
      static_cast<std::size_t>(nodes) + 2);
  for (int k = 0; k < nodes; ++k) {
    names[static_cast<std::size_t>(1 + k)] = {"x", "y"};
  }
  names[static_cast<std::size_t>(1 + nodes)] = {"y", "y"};
  EXPECT_GT(engine.shadow_checks(), 0u);
  check_shadow_log(engine, abstract, names);
}

// ---------------------------------------------------------------------------
// verify_shadow runtime behaviour
// ---------------------------------------------------------------------------

TEST(VerifyShadow, CleanPipelineRunsWithoutDivergence) {
  rt::EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.machine.cpu_cores = 2;
  config.use_history_models = false;
  config.verify_shadow = true;
  rt::Engine engine(config);

  std::vector<float> data(64, 1.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * sizeof(float),
                                       sizeof(float));
  rt::Codelet codelet("scale");
  for (rt::Arch arch : {rt::Arch::kCpu, rt::Arch::kCuda}) {
    rt::Implementation impl;
    impl.arch = arch;
    impl.name = "scale_" + rt::to_string(arch);
    impl.fn = [](rt::ExecContext& ctx) {
      auto* d = ctx.buffer_as<float>(0);
      for (std::size_t i = 0; i < ctx.elements(0); ++i) d[i] *= 2.0f;
    };
    codelet.add_impl(std::move(impl));
  }
  for (int i = 0; i < 8; ++i) {
    rt::TaskSpec spec;
    spec.codelet = &codelet;
    spec.operands = {{handle, rt::AccessMode::kReadWrite}};
    spec.forced_arch = i % 2 == 0 ? rt::Arch::kCpu : rt::Arch::kCuda;
    engine.submit(std::move(spec));
  }
  engine.wait_for_all();
  engine.acquire_host(handle, rt::AccessMode::kRead);
  for (float vv : data) EXPECT_FLOAT_EQ(vv, 256.0f);  // 2^8
  EXPECT_GT(engine.shadow_checks(), 0u);
}

TEST(VerifyShadow, RejectsFaultInjectionCombination) {
  rt::EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.use_history_models = false;
  config.verify_shadow = true;
  sim::FaultPlan plan;
  plan.transfer_failure_rate = 0.5;
  config.accelerator_faults = {plan};
  try {
    rt::Engine engine(config);
    FAIL() << "verify_shadow + fault injection must be rejected";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnsupported);
  }
}

}  // namespace
}  // namespace peppher
