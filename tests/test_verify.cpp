// Coherence verifier tests (analyze/verify.hpp): CFG lowering + fixpoint
// behaviour, one positive and one negative case per PL060..PL069 code, and
// the cross-validation of the runtime's verify_shadow observation log
// against the verifier's abstract per-program-point states.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analyze/lint.hpp"
#include "analyze/verify.hpp"
#include "descriptor/descriptor.hpp"
#include "runtime/engine.hpp"
#include "runtime/memory.hpp"
#include "sim/device.hpp"
#include "support/error.hpp"

namespace peppher {
namespace {

using analyze::LintOptions;
using analyze::VerifyResult;
using analyze::verify_main;

// ---------------------------------------------------------------------------
// Fixture: a repository assembled from inline descriptor strings
// ---------------------------------------------------------------------------

// init(y): pure producer. axpy(x, y): consumer/accumulator. consume(x):
// pure reader. sneaky(x): declared read through a mutable type (the hidden
// write the PL065 check hunts).
constexpr const char* kProducer =
    "<peppher-interface name=\"init\">\n"
    "  <function returnType=\"void\">\n"
    "    <param name=\"n\" type=\"int\" accessMode=\"read\"/>\n"
    "    <param name=\"y\" type=\"float*\" accessMode=\"write\" size=\"n\"/>\n"
    "  </function>\n"
    "</peppher-interface>\n";

constexpr const char* kAxpy =
    "<peppher-interface name=\"axpy\">\n"
    "  <function returnType=\"void\">\n"
    "    <param name=\"n\" type=\"int\" accessMode=\"read\"/>\n"
    "    <param name=\"x\" type=\"const float*\" accessMode=\"read\" size=\"n\"/>\n"
    "    <param name=\"y\" type=\"float*\" accessMode=\"readwrite\" size=\"n\"/>\n"
    "  </function>\n"
    "</peppher-interface>\n";

constexpr const char* kConsumer =
    "<peppher-interface name=\"consume\">\n"
    "  <function returnType=\"void\">\n"
    "    <param name=\"n\" type=\"int\" accessMode=\"read\"/>\n"
    "    <param name=\"x\" type=\"const float*\" accessMode=\"read\" size=\"n\"/>\n"
    "  </function>\n"
    "</peppher-interface>\n";

constexpr const char* kSneaky =
    "<peppher-interface name=\"sneaky\">\n"
    "  <function returnType=\"void\">\n"
    "    <param name=\"n\" type=\"int\" accessMode=\"read\"/>\n"
    "    <param name=\"x\" type=\"float*\" accessMode=\"read\" size=\"n\"/>\n"
    "  </function>\n"
    "</peppher-interface>\n";

std::string impl_xml(const std::string& name, const std::string& iface,
                     const std::string& language) {
  return "<peppher-implementation name=\"" + name + "\" interface=\"" + iface +
         "\">\n  <platform language=\"" + language +
         "\"/>\n</peppher-implementation>\n";
}

/// Repository with all four interfaces, each with a host (cpu) variant
/// unless remapped: `device_ifaces` get a cuda variant *instead*.
desc::Repository make_repo(const std::string& main_xml,
                           const std::vector<std::string>& device_ifaces = {}) {
  desc::Repository repo;
  repo.load_text(kProducer);
  repo.load_text(kAxpy);
  repo.load_text(kConsumer);
  repo.load_text(kSneaky);
  for (const char* iface : {"init", "axpy", "consume", "sneaky"}) {
    const bool device = std::find(device_ifaces.begin(), device_ifaces.end(),
                                  iface) != device_ifaces.end();
    repo.load_text(impl_xml(std::string(iface) + (device ? "_cuda" : "_cpu"),
                            iface, device ? "cuda" : "cpu"));
  }
  repo.load_text(main_xml, {}, "main.xml");
  return repo;
}

std::string main_with_calls(const std::string& calls) {
  return "<peppher-main name=\"app\" source=\"main.cpp\">\n<calls>\n" + calls +
         "</calls>\n</peppher-main>\n";
}

int count_code(const VerifyResult& result, const std::string& code) {
  int n = 0;
  for (const diag::Diagnostic& d : result.bag.diagnostics()) {
    if (d.code == code) ++n;
  }
  return n;
}

VerifyResult verify(const std::string& calls,
                    const std::vector<std::string>& device_ifaces = {}) {
  const desc::Repository repo = make_repo(main_with_calls(calls), device_ifaces);
  return verify_main(repo);
}

// ---------------------------------------------------------------------------
// Fixpoint behaviour
// ---------------------------------------------------------------------------

TEST(Verify, EmptyRepositoryVerifiesClean) {
  desc::Repository repo;
  const VerifyResult result = verify_main(repo);
  EXPECT_TRUE(result.bag.empty());
  EXPECT_TRUE(result.fixpoint_reached);
}

TEST(Verify, StraightLineProgramVerifiesClean) {
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<call interface=\"axpy\"><arg param=\"x\" data=\"v\"/>"
      "<arg param=\"y\" data=\"out\"/></call>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"out\"/></call>\n");
  EXPECT_TRUE(result.bag.empty()) << result.bag.format_text();
  EXPECT_TRUE(result.fixpoint_reached);
  EXPECT_GT(result.steps, 0);
}

TEST(Verify, NestedControlFlowReachesFixpointClean) {
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<loop count=\"8\">\n"
      "  <if>\n"
      "    <call interface=\"axpy\"><arg param=\"x\" data=\"v\"/>"
      "<arg param=\"y\" data=\"acc\"/></call>\n"
      "  <else>\n"
      "    <loop count=\"2\">\n"
      "      <call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n"
      "    </loop>\n"
      "  </else>\n"
      "  </if>\n"
      "</loop>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n");
  EXPECT_TRUE(result.bag.empty()) << result.bag.format_text();
  EXPECT_TRUE(result.fixpoint_reached);
}

TEST(Verify, MixedPlacementForksWorldsAndStaysClean) {
  // consume has only a cuda variant: the read forces a device fetch; the
  // host-pinned producer then writes again. Straight-line, correct, and the
  // abstract state must cover both the fetched and re-invalidated worlds.
  const VerifyResult result =
      verify("<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
             "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n"
             "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
             "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n",
             {"consume"});
  EXPECT_TRUE(result.bag.empty()) << result.bag.format_text();
}

// ---------------------------------------------------------------------------
// PL060 — branch-divergent initialisation
// ---------------------------------------------------------------------------

TEST(Verify, PL060FlagsReadOfBranchDependentInit) {
  const VerifyResult result = verify(
      "<if>\n"
      "  <call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "</if>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n");
  EXPECT_EQ(count_code(result, "PL060"), 1) << result.bag.format_text();
}

TEST(Verify, PL060SilentWhenBothBranchesInitialise) {
  const VerifyResult result = verify(
      "<if>\n"
      "  <call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<else>\n"
      "  <call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "</else>\n"
      "</if>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n");
  EXPECT_EQ(count_code(result, "PL060"), 0) << result.bag.format_text();
}

TEST(Verify, PL060SilentForAppInitialisedAccumulator) {
  // No pure write ever touches 'acc': the application initialises it, and
  // the loop's readwrite accumulation is the intended pattern.
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<loop count=\"4\">\n"
      "  <call interface=\"axpy\"><arg param=\"x\" data=\"v\"/>"
      "<arg param=\"y\" data=\"acc\"/></call>\n"
      "</loop>\n");
  EXPECT_EQ(count_code(result, "PL060"), 0) << result.bag.format_text();
}

// ---------------------------------------------------------------------------
// PL061 — redundant prefetch
// ---------------------------------------------------------------------------

TEST(Verify, PL061FlagsPrefetchOfAlreadyValidReplica) {
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<prefetch data=\"v\" on=\"host\"/>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n");
  EXPECT_EQ(count_code(result, "PL061"), 1) << result.bag.format_text();
}

TEST(Verify, PL061SilentForUsefulPrefetch) {
  // The host-side producer leaves the device replica invalid; warming it
  // ahead of the device-only consumer is exactly what <prefetch> is for.
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<prefetch data=\"v\" on=\"device\"/>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n",
      {"consume"});
  EXPECT_EQ(count_code(result, "PL061"), 0) << result.bag.format_text();
}

// ---------------------------------------------------------------------------
// PL062 — dead write on every path
// ---------------------------------------------------------------------------

TEST(Verify, PL062FlagsWriteOverwrittenOnEveryPath) {
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<if>\n"
      "  <call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<else>\n"
      "  <call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "</else>\n"
      "</if>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n");
  EXPECT_EQ(count_code(result, "PL062"), 1) << result.bag.format_text();
}

TEST(Verify, PL062SilentWhenSomePathReadsTheWrite) {
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<if>\n"
      "  <call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n"
      "</if>\n"
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n");
  EXPECT_EQ(count_code(result, "PL062"), 0) << result.bag.format_text();
}

TEST(Verify, PL062SilentForFinalOutputWrite) {
  // The last write of a program is its output; unread is not dead.
  const VerifyResult result = verify(
      "<loop count=\"2\">\n"
      "  <call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "  <call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n"
      "</loop>\n"
      "<call interface=\"init\"><arg param=\"y\" data=\"out\"/></call>\n");
  EXPECT_EQ(count_code(result, "PL062"), 0) << result.bag.format_text();
}

// ---------------------------------------------------------------------------
// PL063 — partition without unpartition
// ---------------------------------------------------------------------------

TEST(Verify, PL063FlagsUnclosedPartitionOnSomePath) {
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<partition data=\"v\" parts=\"4\"/>\n"
      "<if>\n"
      "  <unpartition data=\"v\"/>\n"
      "</if>\n");
  EXPECT_EQ(count_code(result, "PL063"), 1) << result.bag.format_text();
}

TEST(Verify, PL063SilentForBalancedPartition) {
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<partition data=\"v\" parts=\"4\"/>\n"
      "<unpartition data=\"v\"/>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n");
  EXPECT_EQ(count_code(result, "PL063"), 0) << result.bag.format_text();
  EXPECT_EQ(count_code(result, "PL066"), 0) << result.bag.format_text();
}

// ---------------------------------------------------------------------------
// PL064 — loop-carried cross-architecture ping-pong
// ---------------------------------------------------------------------------

TEST(Verify, PL064FlagsLoopCarriedPingPong) {
  // Host-pinned producer, device-pinned consumer, every iteration: the
  // replica bounces across the link and prefetch can never hide it.
  const VerifyResult result = verify(
      "<loop count=\"10\">\n"
      "  <call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "  <call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n"
      "</loop>\n",
      {"consume"});
  EXPECT_EQ(count_code(result, "PL064"), 1) << result.bag.format_text();
}

TEST(Verify, PL064SilentWhenCoLocated) {
  const VerifyResult result = verify(
      "<loop count=\"10\">\n"
      "  <call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "  <call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n"
      "</loop>\n");
  EXPECT_EQ(count_code(result, "PL064"), 0) << result.bag.format_text();
}

// ---------------------------------------------------------------------------
// PL065 — path-dependent hidden-write race
// ---------------------------------------------------------------------------

TEST(Verify, PL065FlagsHiddenWriteJoiningReadWindow) {
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<if>\n"
      "  <call interface=\"sneaky\"><arg param=\"x\" data=\"v\"/></call>\n"
      "</if>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n");
  EXPECT_EQ(count_code(result, "PL065"), 1) << result.bag.format_text();
}

TEST(Verify, PL065SilentWithoutHiddenWrites) {
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<if>\n"
      "  <call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n"
      "</if>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n");
  EXPECT_EQ(count_code(result, "PL065"), 0) << result.bag.format_text();
}

// ---------------------------------------------------------------------------
// PL066 — partition protocol violations
// ---------------------------------------------------------------------------

TEST(Verify, PL066FlagsAccessWhilePartitioned) {
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<partition data=\"v\" parts=\"2\"/>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n"
      "<unpartition data=\"v\"/>\n");
  EXPECT_EQ(count_code(result, "PL066"), 1) << result.bag.format_text();
}

TEST(Verify, PL066FlagsDoublePartitionAndStrayUnpartition) {
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<partition data=\"v\" parts=\"2\"/>\n"
      "<partition data=\"v\" parts=\"2\"/>\n"
      "<unpartition data=\"v\"/>\n"
      "<unpartition data=\"v\"/>\n"
      "<unpartition data=\"v\"/>\n");
  EXPECT_GE(count_code(result, "PL066"), 2) << result.bag.format_text();
}

TEST(Verify, PL066SilentForProperLifecycle) {
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<partition data=\"v\" parts=\"2\"/>\n"
      "<unpartition data=\"v\"/>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n");
  EXPECT_EQ(count_code(result, "PL066"), 0) << result.bag.format_text();
}

// ---------------------------------------------------------------------------
// PL069 — fixpoint budget
// ---------------------------------------------------------------------------

TEST(Verify, PL069FiresWhenBudgetExhausted) {
  const desc::Repository repo = make_repo(main_with_calls(
      "<loop count=\"4\">\n"
      "  <call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "  <call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n"
      "</loop>\n"));
  LintOptions options;
  options.verify_max_steps = 1;
  const VerifyResult result = verify_main(repo, options);
  EXPECT_EQ(count_code(result, "PL069"), 1) << result.bag.format_text();
  EXPECT_FALSE(result.fixpoint_reached);
}

TEST(Verify, PL069SilentUnderTheDefaultBudget) {
  const VerifyResult result = verify(
      "<loop count=\"4\">\n"
      "  <loop count=\"4\">\n"
      "    <call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "    <call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n"
      "  </loop>\n"
      "</loop>\n");
  EXPECT_EQ(count_code(result, "PL069"), 0) << result.bag.format_text();
  EXPECT_TRUE(result.fixpoint_reached);
}

// ---------------------------------------------------------------------------
// run_lint integration: opt-in for straight lines, automatic for control flow
// ---------------------------------------------------------------------------

TEST(Verify, RunLintRunsVerifierAutomaticallyForControlFlow) {
  const desc::Repository repo = make_repo(main_with_calls(
      "<if>\n"
      "  <call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "</if>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n"));
  LintOptions options;
  options.check_sources = false;
  const diag::DiagnosticBag bag = analyze::run_lint(repo, options);
  int pl060 = 0;
  for (const diag::Diagnostic& d : bag.diagnostics()) {
    if (d.code == "PL060") ++pl060;
  }
  EXPECT_EQ(pl060, 1) << bag.format_text();
}

TEST(Verify, RunLintNeedsOptInForStraightLine) {
  const desc::Repository repo = make_repo(main_with_calls(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<prefetch data=\"v\" on=\"host\"/>\n"));
  LintOptions options;
  options.check_sources = false;
  // Wait — a <prefetch> is a statement, not control flow; the descriptor
  // stays straight-line and the verifier must not run un-asked.
  diag::DiagnosticBag bag = analyze::run_lint(repo, options);
  EXPECT_TRUE(std::none_of(
      bag.diagnostics().begin(), bag.diagnostics().end(),
      [](const diag::Diagnostic& d) { return d.code == "PL061"; }))
      << bag.format_text();
  options.verify = true;
  bag = analyze::run_lint(repo, options);
  EXPECT_TRUE(std::any_of(
      bag.diagnostics().begin(), bag.diagnostics().end(),
      [](const diag::Diagnostic& d) { return d.code == "PL061"; }))
      << bag.format_text();
}

// ---------------------------------------------------------------------------
// Abstract states and the verify_shadow cross-validation
// ---------------------------------------------------------------------------

TEST(Verify, PublishesAbstractStatesPerCallPoint) {
  const VerifyResult result = verify(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n");
  ASSERT_TRUE(result.states.count(0));
  ASSERT_TRUE(result.states.count(1));
  // Before the first call every container sits host-Owned (registration).
  EXPECT_TRUE(result.admits(0, "v", 0, rt::ReplicaState::kOwned));
  EXPECT_FALSE(result.admits(0, "v", 0, rt::ReplicaState::kInvalid));
  // After the host-side producer the device replica is still invalid.
  EXPECT_TRUE(result.admits(1, "v", 1, rt::ReplicaState::kInvalid));
  // Unknown points and containers are never admitted.
  EXPECT_FALSE(result.admits(7, "v", 0, rt::ReplicaState::kOwned));
  EXPECT_FALSE(result.admits(0, "nope", 0, rt::ReplicaState::kOwned));
}

/// Builds the runtime counterpart of the two-call descriptor program and
/// checks every verify_shadow observation is admitted by the verifier's
/// abstract state for the same program point. Synchronous submission keeps
/// the concrete execution in program order, matching the CFG.
void cross_validate(rt::Arch arch, const std::vector<std::string>& device) {
  const desc::Repository repo = make_repo(main_with_calls(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<call interface=\"axpy\"><arg param=\"x\" data=\"v\"/>"
      "<arg param=\"y\" data=\"acc\"/></call>\n"),
      device);
  const VerifyResult abstract = verify_main(repo);
  ASSERT_TRUE(abstract.fixpoint_reached);

  rt::EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.machine.cpu_cores = 2;
  config.use_history_models = false;
  config.verify_shadow = true;
  rt::Engine engine(config);

  std::vector<float> v(32, 0.0f), acc(32, 1.0f);
  auto hv = engine.register_buffer(v.data(), v.size() * sizeof(float),
                                   sizeof(float));
  auto hacc = engine.register_buffer(acc.data(), acc.size() * sizeof(float),
                                     sizeof(float));

  rt::Codelet init("init");
  {
    rt::Implementation impl;
    impl.arch = arch;
    impl.name = "init_" + rt::to_string(arch);
    impl.fn = [](rt::ExecContext& ctx) {
      auto* y = ctx.buffer_as<float>(0);
      for (std::size_t i = 0; i < ctx.elements(0); ++i) y[i] = 2.0f;
    };
    init.add_impl(std::move(impl));
  }
  rt::Codelet axpy("axpy");
  {
    rt::Implementation impl;
    impl.arch = arch;
    impl.name = "axpy_" + rt::to_string(arch);
    impl.fn = [](rt::ExecContext& ctx) {
      const auto* x = ctx.buffer_as<const float>(0);
      auto* y = ctx.buffer_as<float>(1);
      for (std::size_t i = 0; i < ctx.elements(1); ++i) y[i] += x[i];
    };
    axpy.add_impl(std::move(impl));
  }

  rt::TaskSpec s0;
  s0.codelet = &init;
  s0.operands = {{hv, rt::AccessMode::kWrite}};
  s0.synchronous = true;
  s0.verify_point = 0;
  engine.submit(std::move(s0));

  rt::TaskSpec s1;
  s1.codelet = &axpy;
  s1.operands = {{hv, rt::AccessMode::kRead},
                 {hacc, rt::AccessMode::kReadWrite}};
  s1.synchronous = true;
  s1.verify_point = 1;
  engine.submit(std::move(s1));
  engine.wait_for_all();

  EXPECT_GT(engine.shadow_checks(), 0u);
  const std::vector<rt::ShadowRecord> log = engine.shadow_log();
  ASSERT_EQ(log.size(), 3u);  // one record per operand per task
  const char* const operand_names[2][2] = {{"v", nullptr}, {"v", "acc"}};
  for (const rt::ShadowRecord& record : log) {
    ASSERT_GE(record.verify_point, 0);
    ASSERT_LE(record.verify_point, 1);
    ASSERT_LT(record.operand, 2u);
    const char* data = operand_names[record.verify_point][record.operand];
    ASSERT_NE(data, nullptr);
    const int abstract_node = record.node == rt::kHostNode ? 0 : 1;
    EXPECT_TRUE(
        abstract.admits(record.verify_point, data, abstract_node, record.state))
        << "task " << record.task_name << " operand " << record.operand
        << " on node " << record.node << " observed '"
        << rt::to_string(record.state)
        << "' which no abstract world at point " << record.verify_point
        << " admits";
  }
}

TEST(Verify, ShadowLogMatchesAbstractStatesOnTheHost) {
  cross_validate(rt::Arch::kCpu, {});
}

TEST(Verify, ShadowLogMatchesAbstractStatesOnTheDevice) {
  cross_validate(rt::Arch::kCuda, {"init", "axpy"});
}

// ---------------------------------------------------------------------------
// verify_shadow runtime behaviour
// ---------------------------------------------------------------------------

TEST(VerifyShadow, CleanPipelineRunsWithoutDivergence) {
  rt::EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.machine.cpu_cores = 2;
  config.use_history_models = false;
  config.verify_shadow = true;
  rt::Engine engine(config);

  std::vector<float> data(64, 1.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * sizeof(float),
                                       sizeof(float));
  rt::Codelet codelet("scale");
  for (rt::Arch arch : {rt::Arch::kCpu, rt::Arch::kCuda}) {
    rt::Implementation impl;
    impl.arch = arch;
    impl.name = "scale_" + rt::to_string(arch);
    impl.fn = [](rt::ExecContext& ctx) {
      auto* d = ctx.buffer_as<float>(0);
      for (std::size_t i = 0; i < ctx.elements(0); ++i) d[i] *= 2.0f;
    };
    codelet.add_impl(std::move(impl));
  }
  for (int i = 0; i < 8; ++i) {
    rt::TaskSpec spec;
    spec.codelet = &codelet;
    spec.operands = {{handle, rt::AccessMode::kReadWrite}};
    spec.forced_arch = i % 2 == 0 ? rt::Arch::kCpu : rt::Arch::kCuda;
    engine.submit(std::move(spec));
  }
  engine.wait_for_all();
  engine.acquire_host(handle, rt::AccessMode::kRead);
  for (float vv : data) EXPECT_FLOAT_EQ(vv, 256.0f);  // 2^8
  EXPECT_GT(engine.shadow_checks(), 0u);
}

TEST(VerifyShadow, RejectsFaultInjectionCombination) {
  rt::EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.use_history_models = false;
  config.verify_shadow = true;
  sim::FaultPlan plan;
  plan.transfer_failure_rate = 0.5;
  config.accelerator_faults = {plan};
  try {
    rt::Engine engine(config);
    FAIL() << "verify_shadow + fault injection must be rejected";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnsupported);
  }
}

}  // namespace
}  // namespace peppher
