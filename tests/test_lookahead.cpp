// Lookahead scheduler + static-composition replay: DispatchTable unit
// tests (keys, majority resolution, the ".dispatch" wire format and its
// located parse errors), the window-1 differential against dmda, and
// engine-level replay / window-tracing behaviour. The policy's decision
// rules at window > 1 are exercised end-to-end by bench_scheduler_lookahead
// and the chaos suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "perf/trace.hpp"
#include "runtime/engine.hpp"
#include "runtime/perfmodel.hpp"
#include "runtime/scheduler.hpp"
#include "support/error.hpp"
#include "support/fs.hpp"
#include "temp_dir.hpp"

namespace peppher::rt {
namespace {

// -- DispatchTable: keys -----------------------------------------------------

TEST(DispatchTableKey, PrefixFactorisationMatchesDirectKey) {
  const std::uint64_t prefix = DispatchTable::key_prefix("spmv_csr");
  EXPECT_EQ(DispatchTable::key_from_prefix(prefix, 42, 7),
            DispatchTable::key("spmv_csr", 42, 7));
  EXPECT_EQ(DispatchTable::key_from_prefix(prefix, 0, -1),
            DispatchTable::key("spmv_csr", 0, -1));
}

TEST(DispatchTableKey, DistinctFieldsGiveDistinctKeys) {
  std::set<std::uint64_t> keys;
  for (const char* codelet : {"a", "b", "spmv"}) {
    for (std::uint64_t footprint : {0ull, 1ull, 99ull}) {
      for (int point : {-1, 0, 1, 12}) {
        keys.insert(DispatchTable::key(codelet, footprint, point));
      }
    }
  }
  EXPECT_EQ(keys.size(), 3u * 3u * 4u);
}

// -- DispatchTable: training, resolution, wildcards --------------------------

TEST(DispatchTableResolve, MajorityVoteWinsPerKey) {
  DispatchTable table;
  table.train("k", 8, 0, Arch::kCpu, 3);
  table.train("k", 8, 0, Arch::kCuda, 5);
  table.finalize();
  const auto arch = table.lookup(DispatchTable::key("k", 8, 0));
  ASSERT_TRUE(arch.has_value());
  EXPECT_EQ(*arch, Arch::kCuda);
}

TEST(DispatchTableResolve, WildcardAggregatesCoverUntrainedProbes) {
  DispatchTable table;
  table.train("k", 8, 0, Arch::kCuda, 2);
  table.train("k", 16, 1, Arch::kCuda, 2);
  table.train("k", 16, 2, Arch::kCpu, 1);
  table.finalize();
  // Footprint collapsed (0 = any): point 1 trained only at footprint 16.
  EXPECT_EQ(table.lookup(DispatchTable::key("k", 0, 1)), Arch::kCuda);
  // Point collapsed (-1 = any): footprint 16 majority is cuda (2 vs 1).
  EXPECT_EQ(table.lookup(DispatchTable::key("k", 16, -1)), Arch::kCuda);
  // Both collapsed: global majority.
  EXPECT_EQ(table.lookup(DispatchTable::key("k", 0, -1)), Arch::kCuda);
  // A probe the training never saw in any projection misses.
  EXPECT_FALSE(table.lookup(DispatchTable::key("other", 0, -1)).has_value());
}

TEST(DispatchTableResolve, ZeroCountTrainIsIgnored) {
  DispatchTable table;
  table.train("k", 1, 0, Arch::kCpu, 0);
  EXPECT_TRUE(table.empty());
}

// -- DispatchTable: wire format ----------------------------------------------

TEST(DispatchTableFormat, SerialiseRoundTripsEntriesAndMachine) {
  DispatchTable table;
  table.set_machine("c2050");
  table.train("alpha", 8, 0, Arch::kCpu, 3);
  table.train("alpha", 8, 0, Arch::kCuda, 5);
  table.train("beta", 0, -1, Arch::kCpuOmp, 1);
  const std::string text = table.serialize();
  EXPECT_EQ(text.find("peppher-dispatch v1 c2050\n"), 0u);

  DispatchTable parsed;
  parsed.deserialize(text);
  EXPECT_EQ(parsed.machine(), "c2050");
  const auto a = table.entries();
  const auto b = parsed.entries();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].codelet, b[i].codelet);
    EXPECT_EQ(a[i].footprint, b[i].footprint);
    EXPECT_EQ(a[i].point, b[i].point);
    EXPECT_EQ(a[i].arch, b[i].arch);
    EXPECT_EQ(a[i].count, b[i].count);
  }
  // Fixpoint: a second round trip reproduces the text byte for byte.
  EXPECT_EQ(parsed.serialize(), text);
}

TEST(DispatchTableFormat, HeaderWithoutMachineDefaultsToUnknown) {
  DispatchTable table;
  table.deserialize("peppher-dispatch v1\nk 0 -1 cpu 4\n");
  EXPECT_EQ(table.machine(), "unknown");
  table.finalize();
  EXPECT_EQ(table.lookup(DispatchTable::key("k", 0, -1)), Arch::kCpu);
}

/// Expects `text` to fail parsing at exactly (line, column).
void expect_parse_error(const std::string& text, int line, int column) {
  DispatchTable table;
  try {
    table.deserialize(text);
    FAIL() << "expected ParseError for: " << text;
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), line) << e.what();
    EXPECT_EQ(e.column(), column) << e.what();
  }
}

TEST(DispatchTableFormat, MalformedInputsFailWithLocations) {
  const std::string head = "peppher-dispatch v1 m\n";
  expect_parse_error("", 1, 1);                          // empty: no header
  expect_parse_error("peppher-model v2\n", 1, 1);        // wrong schema tag
  expect_parse_error("peppher-dispatch v2 m\n", 1, 18);  // wrong version
  expect_parse_error("peppher-dispatch v1 m extra\n", 1, 23);  // trailing
  expect_parse_error(head + "k 0 -1 cpu\n", 2, 1);       // 4 fields
  expect_parse_error(head + "k x -1 cpu 1\n", 2, 3);     // bad footprint
  expect_parse_error(head + "k 0 -2 cpu 1\n", 2, 5);     // point < -1
  expect_parse_error(head + "k 0 -1 fpga 1\n", 2, 8);    // unknown arch
  expect_parse_error(head + "k 0 -1 cpu 0\n", 2, 12);    // zero count
  expect_parse_error(head + "k 0 -1 cpu 1\nk 0 -1 cpu 2\n", 3, 1);  // dup
}

TEST(DispatchTableFormat, LoadNamesTheFileInParseErrors) {
  const std::filesystem::path dir =
      peppher::testing::unique_temp_dir("peppher_dispatch_test");
  const std::filesystem::path file = dir / "broken.dispatch";
  fs::write_file(file, "not-a-dispatch-table\n");
  DispatchTable table;
  try {
    table.load(file);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("broken.dispatch"),
              std::string::npos)
        << e.what();
  }
  std::filesystem::remove_all(dir);
}

TEST(DispatchTableFormat, SaveLoadIsReadyForReplay) {
  const std::filesystem::path dir =
      peppher::testing::unique_temp_dir("peppher_dispatch_test");
  const std::filesystem::path file = dir / "table.dispatch";
  {
    DispatchTable table;
    table.set_machine("m1");
    table.train("k", 4, 2, Arch::kCuda, 7);
    table.save(file);
  }
  DispatchTable loaded;
  loaded.load(file);  // load() finalizes: lookups work immediately
  EXPECT_EQ(loaded.machine(), "m1");
  EXPECT_EQ(loaded.lookup(DispatchTable::key("k", 4, 2)), Arch::kCuda);
  EXPECT_EQ(loaded.lookup(DispatchTable::key("k", 0, -1)), Arch::kCuda);
  std::filesystem::remove_all(dir);
}

// -- window-1 differential: lookahead degenerates to dmda --------------------

/// Mock world mirroring test_scheduler_unit: 3 workers (2 CPU + 1 GPU),
/// table-driven eligibility and estimates.
class LookaheadDifferential : public ::testing::Test {
 protected:
  LookaheadDifferential() {
    for (int i = 0; i < 3; ++i) {
      WorkerDesc desc;
      desc.id = i;
      desc.archs = {i < 2 ? Arch::kCpu : Arch::kCuda};
      desc.node = i < 2 ? kHostNode : 1;
      desc.profile = i < 2 ? sim::DeviceProfile::xeon_e5520_core()
                           : sim::DeviceProfile::tesla_c2050();
      workers_.push_back(desc);
    }
    codelet_.add_impl({Arch::kCpu, "d_cpu", [](ExecContext&) {}, nullptr});
    codelet_.add_impl({Arch::kCuda, "d_cuda", [](ExecContext&) {}, nullptr});

    env_.workers = &workers_;
    env_.rng = &rng_;
    env_.calibration_min = 2;
    env_.window_size = 1;  // the degenerate window: dmda by construction
    env_.worker_ready_at = [this](WorkerId id) {
      return ready_[static_cast<std::size_t>(id)];
    };
    env_.eligible = [](const Task&, WorkerId) { return true; };
    env_.estimate_completion = [this](const Task&, WorkerId id) {
      return ready_[static_cast<std::size_t>(id)] +
             work_[static_cast<std::size_t>(id)];
    };
    env_.estimate_work = [this](const Task&, WorkerId id) {
      return work_[static_cast<std::size_t>(id)];
    };
    env_.sample_count = [this](const Task&, WorkerId id) {
      return samples_[static_cast<std::size_t>(id)];
    };
  }

  TaskPtr make_task() {
    TaskSpec spec;
    spec.codelet = &codelet_;
    return std::make_shared<Task>(std::move(spec), next_seq_++);
  }

  /// Pushes one task through `scheduler` and returns the worker whose
  /// queue received it.
  WorkerId placed_on(Scheduler& scheduler) {
    scheduler.push(make_task());
    for (int w = 0; w < 3; ++w) {
      if (scheduler.pop(w) != nullptr) return w;
    }
    return -1;
  }

  std::vector<WorkerDesc> workers_;
  Codelet codelet_{"differential"};
  Rng rng_{7};
  SchedEnv env_;
  std::vector<double> ready_{0.0, 0.0, 0.0};
  std::vector<double> work_{1.0, 1.0, 1.0};
  std::vector<std::uint64_t> samples_{100, 100, 100};  // calibrated
  std::uint64_t next_seq_ = 0;
};

TEST_F(LookaheadDifferential, WindowOnePlacesExactlyLikeDmda) {
  auto dmda = make_scheduler("dmda", env_);
  auto lookahead = make_scheduler("lookahead", env_);
  // A spread of readiness/work shapes, including ties (both policies must
  // break them identically: first minimal worker wins).
  const std::vector<std::pair<std::vector<double>, std::vector<double>>>
      shapes = {
          {{10.0, 5.0, 20.0}, {1.0, 1.0, 1.0}},
          {{0.0, 0.0, 0.0}, {3.0, 2.0, 1.0}},
          {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}},    // full tie
          {{5.0, 0.0, 2.0}, {0.5, 6.0, 0.5}},
          {{0.0, 100.0, 100.0}, {10.0, 1.0, 1.0}},
      };
  for (const auto& [ready, work] : shapes) {
    ready_ = ready;
    work_ = work;
    const WorkerId expected = placed_on(*dmda);
    EXPECT_EQ(placed_on(*lookahead), expected)
        << "ready={" << ready[0] << "," << ready[1] << "," << ready[2]
        << "} work={" << work[0] << "," << work[1] << "," << work[2] << "}";
  }
}

TEST_F(LookaheadDifferential, WindowOneExploresUncalibratedLikeDmda) {
  samples_ = {100, 100, 0};      // GPU variant unsampled
  ready_ = {0.0, 0.0, 1000.0};   // and apparently terrible
  auto dmda = make_scheduler("dmda", env_);
  auto lookahead = make_scheduler("lookahead", env_);
  EXPECT_EQ(placed_on(*dmda), 2);       // exploration overrides estimates
  EXPECT_EQ(placed_on(*lookahead), 2);  // identical at window 1
}

// -- engine-level replay -----------------------------------------------------

Codelet make_gpu_friendly_codelet() {
  Codelet codelet("replay_kernel");
  const auto body = [](ExecContext& ctx) {
    auto* data = ctx.buffer_as<float>(0);
    for (std::size_t i = 0; i < ctx.elements(0); ++i) data[i] += 1.0f;
  };
  // Heavy compute, trivial data: dynamic policies put this on the GPU.
  const auto cost = [](const std::vector<std::size_t>&, const void*) {
    return sim::KernelCost{5e9, 1e4, 1.0};
  };
  codelet.add_impl({Arch::kCpu, "replay_cpu", body, cost});
  codelet.add_impl({Arch::kCuda, "replay_cuda", body, cost});
  return codelet;
}

TEST(LookaheadReplay, TablePlacementOverridesTheModels) {
  constexpr int kTasks = 32;
  const std::filesystem::path dir =
      peppher::testing::unique_temp_dir("peppher_replay_test");
  const std::filesystem::path file = dir / "forced.dispatch";
  {
    // A table that pins the GPU-friendly kernel to the CPU: replay must
    // honour it without consulting any cost model.
    DispatchTable table;
    table.train("replay_kernel", 0, -1, Arch::kCpu, 1);
    table.save(file);
  }

  auto run = [&](bool with_table) {
    EngineConfig config;
    config.machine = sim::MachineConfig::platform_c2050();
    config.machine.cpu_cores = 2;
    config.scheduler = "lookahead";
    config.use_history_models = false;
    if (with_table) config.dispatch_table = file;
    Engine engine(config);
    Codelet codelet = make_gpu_friendly_codelet();
    std::vector<std::vector<float>> buffers(kTasks,
                                            std::vector<float>(8, 0.0f));
    std::vector<DataHandlePtr> handles;
    for (auto& buffer : buffers) {
      handles.push_back(engine.register_buffer(
          buffer.data(), buffer.size() * sizeof(float), sizeof(float)));
    }
    for (int i = 0; i < kTasks; ++i) {
      TaskSpec spec;
      spec.codelet = &codelet;
      spec.operands = {{handles[static_cast<std::size_t>(i)],
                        AccessMode::kReadWrite}};
      engine.submit(std::move(spec));
    }
    engine.wait_for_all();
    std::uint64_t on_gpu = 0;
    for (const auto& desc : engine.workers()) {
      if (!desc.archs.empty() && desc.archs.front() == Arch::kCuda) {
        on_gpu += engine.worker_stats(desc.id).tasks_executed;
      }
    }
    for (std::size_t i = 0; i < buffers.size(); ++i) {
      engine.acquire_host(handles[i], AccessMode::kRead);
      for (float v : buffers[i]) EXPECT_FLOAT_EQ(v, 1.0f);
    }
    return on_gpu;
  };

  EXPECT_GT(run(false), 0u) << "without the table the GPU gets work";
  EXPECT_EQ(run(true), 0u) << "the table pins every task to the CPU";
  std::filesystem::remove_all(dir);
}

TEST(LookaheadReplay, TrainingRunWritesALoadableTable) {
  constexpr int kTasks = 24;
  const std::filesystem::path dir =
      peppher::testing::unique_temp_dir("peppher_replay_test");
  const std::filesystem::path file = dir / "trained.dispatch";
  {
    EngineConfig config;
    config.machine = sim::MachineConfig::platform_c2050();
    config.scheduler = "lookahead";
    config.use_history_models = false;
    config.dispatch_out = file;
    Engine engine(config);
    Codelet codelet = make_gpu_friendly_codelet();
    std::vector<std::vector<float>> buffers(kTasks,
                                            std::vector<float>(8, 0.0f));
    for (auto& buffer : buffers) {
      TaskSpec spec;
      spec.codelet = &codelet;
      spec.operands = {{engine.register_buffer(buffer.data(),
                                               buffer.size() * sizeof(float),
                                               sizeof(float)),
                        AccessMode::kReadWrite}};
      engine.submit(std::move(spec));
    }
    engine.wait_for_all();
  }  // shutdown saves the table

  DispatchTable table;
  table.load(file);
  EXPECT_FALSE(table.empty());
  EXPECT_EQ(table.machine(), sim::MachineConfig::platform_c2050().name);
  // The GPU-friendly kernel's majority placement must be the GPU.
  const auto arch = table.lookup(DispatchTable::key("replay_kernel", 0, -1));
  ASSERT_TRUE(arch.has_value());
  EXPECT_EQ(*arch, Arch::kCuda);
  std::filesystem::remove_all(dir);
}

// -- engine-level window tracing ---------------------------------------------

TEST(LookaheadWindows, PlannedWindowsAreTracedAndExported) {
  constexpr int kTasks = 16;
  EngineConfig config;
  config.machine = sim::MachineConfig::platform_c2050();
  config.scheduler = "lookahead";
  config.use_history_models = false;
  config.enable_trace = true;
  config.window_size = 4;
  Engine engine(config);
  Codelet codelet = make_gpu_friendly_codelet();
  std::vector<std::vector<float>> buffers(kTasks, std::vector<float>(8, 0.0f));
  for (auto& buffer : buffers) {
    TaskSpec spec;
    spec.codelet = &codelet;
    spec.operands = {{engine.register_buffer(buffer.data(),
                                             buffer.size() * sizeof(float),
                                             sizeof(float)),
                      AccessMode::kReadWrite}};
    engine.submit(std::move(spec));
  }
  engine.wait_for_all();

  // Every independent task goes through the staging buffer exactly once
  // (no replay, no exploration), so the planned windows partition them.
  const std::vector<WindowRecord> windows = engine.trace().windows();
  ASSERT_FALSE(windows.empty());
  std::set<std::uint64_t> planned;
  for (const WindowRecord& window : windows) {
    EXPECT_GT(window.size, 0);
    EXPECT_LE(window.size, config.window_size);
    EXPECT_EQ(window.size, static_cast<int>(window.tasks.size()));
    for (const std::uint64_t task : window.tasks) {
      EXPECT_TRUE(planned.insert(task).second)
          << "task " << task << " planned twice";
    }
  }
  EXPECT_EQ(planned.size(), static_cast<std::size_t>(kTasks));

  // And the exported trace document round-trips the same windows.
  const perf::Trace trace = perf::parse_trace(engine.trace_json());
  ASSERT_EQ(trace.windows.size(), windows.size());
  std::uint64_t exported_tasks = 0;
  for (const auto& window : trace.windows) {
    exported_tasks += static_cast<std::uint64_t>(window.tasks.size());
  }
  EXPECT_EQ(exported_tasks, static_cast<std::uint64_t>(kTasks));
}

}  // namespace
}  // namespace peppher::rt
