// peppher-lint tests: seeded malformed fixtures with golden diagnostics
// (stable PL0xx codes plus line/column locations), output-format validity,
// lint-clean negative tests over generated skeleton sets, and the runtime's
// debug hazard check (EngineConfig::hazard_checks).
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analyze/lint.hpp"
#include "compose/skeleton.hpp"
#include "compose/tool.hpp"
#include "runtime/engine.hpp"
#include "support/error.hpp"
#include "support/fs.hpp"
#include "support/strings.hpp"
#include "xml/xml.hpp"

#include "temp_dir.hpp"

namespace peppher {
namespace {

using analyze::LintOptions;
using diag::Diagnostic;
using diag::DiagnosticBag;
using diag::Severity;

// ---------------------------------------------------------------------------
// Fixture: a temp directory of descriptor files, linted via lint_path.
// ---------------------------------------------------------------------------

// A consistent single-component repository the malformed fixtures perturb:
// axpy with one CPU variant whose source matches the lowered signature.
constexpr const char* kAxpyInterface =
    "<peppher-interface name=\"axpy\">\n"
    "  <function returnType=\"void\">\n"
    "    <param name=\"n\" type=\"int\" accessMode=\"read\"/>\n"
    "    <param name=\"a\" type=\"float\" accessMode=\"read\"/>\n"
    "    <param name=\"x\" type=\"const float*\" accessMode=\"read\" size=\"n\"/>\n"
    "    <param name=\"y\" type=\"float*\" accessMode=\"readwrite\" size=\"n\"/>\n"
    "  </function>\n"
    "</peppher-interface>\n";

constexpr const char* kAxpyImpl =
    "<peppher-implementation name=\"axpy_cpu\" interface=\"axpy\">\n"
    "  <platform language=\"cpu\"/>\n"
    "  <sources><source file=\"axpy_cpu.cpp\"/></sources>\n"
    "</peppher-implementation>\n";

constexpr const char* kAxpySource =
    "void axpy_cpu(int n, float a, const float* x, float* y);\n";

constexpr const char* kAxpyMain =
    "<peppher-main name=\"app\" source=\"main.cpp\">\n"
    "  <uses interface=\"axpy\"/>\n"
    "</peppher-main>\n";

class LintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = peppher::testing::unique_temp_dir("peppher_lint_test");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void write(const std::string& relative, const std::string& content) {
    fs::write_file(dir_ / relative, content);
  }

  void write_clean_axpy() {
    write("axpy.xml", kAxpyInterface);
    write("axpy_cpu.xml", kAxpyImpl);
    write("axpy_cpu.cpp", kAxpySource);
    write("main.xml", kAxpyMain);
  }

  DiagnosticBag lint(const LintOptions& options = {}) {
    return analyze::lint_path(dir_, options);
  }

  static const Diagnostic* find(const DiagnosticBag& bag,
                                const std::string& code) {
    for (const Diagnostic& d : bag.diagnostics()) {
      if (d.code == code) return &d;
    }
    return nullptr;
  }

  static std::vector<std::string> codes(const DiagnosticBag& bag) {
    std::vector<std::string> out;
    for (const Diagnostic& d : bag.diagnostics()) out.push_back(d.code);
    return out;
  }

  std::filesystem::path dir_;
};

// ---------------------------------------------------------------------------
// Negative tests: consistent repositories lint clean.
// ---------------------------------------------------------------------------

TEST_F(LintTest, CleanRepositoryHasNoDiagnostics) {
  write_clean_axpy();
  const DiagnosticBag bag = lint();
  EXPECT_TRUE(bag.empty()) << bag.format_text();
}

TEST_F(LintTest, GeneratedSkeletonSetLintsClean) {
  fs::write_file(dir_ / "spmv.h",
                 "void spmv(const float* values, int nnz, int nrows, "
                 "const float* x, float* y);");
  compose::generate_skeleton_from_file(dir_ / "spmv.h", dir_, {});
  const DiagnosticBag bag = lint();
  EXPECT_FALSE(bag.has_errors()) << bag.format_text();
}

TEST_F(LintTest, ComposeToolLintModeAcceptsCleanSkeletonSet) {
  fs::write_file(dir_ / "spmv.h",
                 "void spmv(const float* values, int nnz, int nrows, "
                 "const float* x, float* y);");
  compose::generate_skeleton_from_file(dir_ / "spmv.h", dir_, {});
  std::ostringstream out, err;
  const compose::ToolOptions options = compose::parse_arguments(
      {(dir_ / "main.xml").string(), "-lint", "-werror"});
  EXPECT_TRUE(options.lint_only);
  EXPECT_TRUE(options.werror);
  EXPECT_EQ(compose::run_tool(options, out, err), 0) << err.str();
}

// ---------------------------------------------------------------------------
// Seeded malformed fixtures, one PL0xx family at a time.
// ---------------------------------------------------------------------------

TEST_F(LintTest, UnparseableDescriptorIsPL000) {
  write_clean_axpy();
  write("broken.xml", "<peppher-interface name=\"oops\"");
  const DiagnosticBag bag = lint();
  const Diagnostic* d = find(bag, "PL000");
  ASSERT_NE(d, nullptr) << bag.format_text();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->location.file.find("broken.xml"), std::string::npos);
}

TEST_F(LintTest, ArityMismatchIsPL001) {
  write_clean_axpy();
  write("axpy_cpu.cpp", "void axpy_cpu(int n, float a, const float* x);\n");
  const DiagnosticBag bag = lint();
  const Diagnostic* d = find(bag, "PL001");
  ASSERT_NE(d, nullptr) << bag.format_text();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("3 parameter(s)"), std::string::npos);
  EXPECT_NE(d->message.find("lowers to 4"), std::string::npos);
}

TEST_F(LintTest, TypeMismatchIsPL002WithImplLocation) {
  write_clean_axpy();
  write("axpy_cpu.cpp", "void axpy_cpu(int n, float a, const float* x, double* y);\n");
  const DiagnosticBag bag = lint();
  const Diagnostic* d = find(bag, "PL002");
  ASSERT_NE(d, nullptr) << bag.format_text();
  EXPECT_EQ(d->severity, Severity::kError);
  // The diagnostic points at the implementation's root element: line 1,
  // column 1 of axpy_cpu.xml.
  EXPECT_NE(d->location.file.find("axpy_cpu.xml"), std::string::npos);
  EXPECT_EQ(d->location.line, 1);
  EXPECT_EQ(d->location.column, 1);
  EXPECT_NE(d->message.find("'double*'"), std::string::npos);
  EXPECT_NE(d->message.find("'float*'"), std::string::npos);
}

TEST_F(LintTest, ConstParamDeclaredWritableIsPL003) {
  write_clean_axpy();
  // The variant takes y as const although the interface declares readwrite.
  write("axpy_cpu.cpp",
        "void axpy_cpu(int n, float a, const float* x, const float* y);\n");
  const DiagnosticBag bag = lint();
  const Diagnostic* d = find(bag, "PL003");
  ASSERT_NE(d, nullptr) << bag.format_text();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("cannot write"), std::string::npos);
}

TEST_F(LintTest, WriteAccessThroughConstTypeIsPL004WithParamLocation) {
  write("bad.xml",
        "<peppher-interface name=\"bad\">\n"
        "  <function returnType=\"void\">\n"
        "    <param name=\"out\" type=\"const float*\" accessMode=\"write\" size=\"1\"/>\n"
        "  </function>\n"
        "</peppher-interface>\n");
  const DiagnosticBag bag = lint();
  const Diagnostic* d = find(bag, "PL004");
  ASSERT_NE(d, nullptr) << bag.format_text();
  EXPECT_EQ(d->severity, Severity::kError);
  // Golden rendering, including the <param> element's exact line/column.
  EXPECT_EQ(d->format(),
            (dir_ / "bad.xml").string() +
                ":3:5: error: parameter 'out' of interface 'bad' declares "
                "access mode 'write' but its type 'const float*' is const "
                "[PL004]");
}

TEST_F(LintTest, ReadAccessThroughMutablePointerIsPL005) {
  write("leaky.xml",
        "<peppher-interface name=\"leaky\">\n"
        "  <function returnType=\"void\">\n"
        "    <param name=\"p\" type=\"float*\" accessMode=\"read\" size=\"1\"/>\n"
        "  </function>\n"
        "</peppher-interface>\n");
  const DiagnosticBag bag = lint();
  const Diagnostic* d = find(bag, "PL005");
  ASSERT_NE(d, nullptr) << bag.format_text();
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->location.line, 3);
}

TEST_F(LintTest, MissingSourceFileIsPL007) {
  write_clean_axpy();
  std::filesystem::remove(dir_ / "axpy_cpu.cpp");
  const DiagnosticBag bag = lint();
  const Diagnostic* d = find(bag, "PL007");
  ASSERT_NE(d, nullptr) << bag.format_text();
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST_F(LintTest, WritableValueParameterIsPL008) {
  write("valw.xml",
        "<peppher-interface name=\"valw\">\n"
        "  <function returnType=\"void\">\n"
        "    <param name=\"n\" type=\"int\" accessMode=\"write\"/>\n"
        "  </function>\n"
        "</peppher-interface>\n");
  const DiagnosticBag bag = lint();
  const Diagnostic* d = find(bag, "PL008");
  ASSERT_NE(d, nullptr) << bag.format_text();
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST_F(LintTest, LanguagePlatformKindConflictIsPL010) {
  write_clean_axpy();
  write("host.xml", "<peppher-platform name=\"host\" kind=\"cpu\"/>\n");
  write("axpy_cuda.xml",
        "<peppher-implementation name=\"axpy_cuda\" interface=\"axpy\">\n"
        "  <platform language=\"cuda\" target=\"host\"/>\n"
        "</peppher-implementation>\n");
  const DiagnosticBag bag = lint();
  const Diagnostic* d = find(bag, "PL010");
  ASSERT_NE(d, nullptr) << bag.format_text();
  EXPECT_EQ(d->severity, Severity::kError);
}

TEST_F(LintTest, UnprovidedBackendIsPL011Warning) {
  write_clean_axpy();
  write("host.xml", "<peppher-platform name=\"host\" kind=\"cpu\"/>\n");
  write("axpy_cuda.xml",
        "<peppher-implementation name=\"axpy_cuda\" interface=\"axpy\">\n"
        "  <platform language=\"cuda\"/>\n"
        "</peppher-implementation>\n");
  const DiagnosticBag bag = lint();
  const Diagnostic* d = find(bag, "PL011");
  ASSERT_NE(d, nullptr) << bag.format_text();
  EXPECT_EQ(d->severity, Severity::kWarning);
  // Warnings fail only under --werror.
  EXPECT_FALSE(bag.fails(false));
  EXPECT_TRUE(bag.fails(true));
}

TEST_F(LintTest, AllVariantsDisabledIsPL012) {
  write_clean_axpy();
  LintOptions options;
  options.disable_impls = {"axpy_cpu"};
  const DiagnosticBag bag = lint(options);
  const Diagnostic* d = find(bag, "PL012");
  ASSERT_NE(d, nullptr) << bag.format_text();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("no viable implementation"), std::string::npos);
}

TEST_F(LintTest, UnknownMainTargetPlatformIsPL013) {
  write_clean_axpy();
  write("host.xml", "<peppher-platform name=\"host\" kind=\"cpu\"/>\n");
  write("main.xml",
        "<peppher-main name=\"app\" source=\"main.cpp\">\n"
        "  <target platform=\"warehouse\"/>\n"
        "  <uses interface=\"axpy\"/>\n"
        "</peppher-main>\n");
  const DiagnosticBag bag = lint();
  const Diagnostic* d = find(bag, "PL013");
  ASSERT_NE(d, nullptr) << bag.format_text();
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST_F(LintTest, DispatchTableProblemsArePL02x) {
  write_clean_axpy();
  // Unknown variant, descending bound, duplicate adjacent entries, and a
  // stale recorded architecture — one table seeding four findings.
  write("axpy.dispatch",
        "1024 axpy_ghost\n"
        "512 axpy_cpu\n"
        "2048 axpy_cpu\n"
        "4096 axpy_cpu cuda\n");
  const DiagnosticBag bag = lint();
  const Diagnostic* unknown = find(bag, "PL020");
  ASSERT_NE(unknown, nullptr) << bag.format_text();
  EXPECT_EQ(unknown->severity, Severity::kError);
  EXPECT_EQ(unknown->location.line, 1);
  const Diagnostic* unreachable = find(bag, "PL022");
  ASSERT_NE(unreachable, nullptr);
  EXPECT_EQ(unreachable->location.line, 2);
  const Diagnostic* duplicate = find(bag, "PL023");
  ASSERT_NE(duplicate, nullptr);
  EXPECT_EQ(duplicate->severity, Severity::kWarning);
  const Diagnostic* stale = find(bag, "PL024");
  ASSERT_NE(stale, nullptr);
  EXPECT_EQ(stale->location.line, 4);
}

TEST_F(LintTest, OrphanAndEmptyDispatchTablesArePL025AndPL027) {
  write_clean_axpy();
  write("nothing.dispatch", "# trained, but matches no interface\n");
  const DiagnosticBag bag = lint();
  EXPECT_NE(find(bag, "PL025"), nullptr) << bag.format_text();
  EXPECT_NE(find(bag, "PL027"), nullptr) << bag.format_text();
}

TEST_F(LintTest, DisabledVariantInDispatchTableIsPL026) {
  write_clean_axpy();
  write("axpy.dispatch", "1024 axpy_cpu\n");
  LintOptions options;
  options.disable_impls = {"axpy_cpu"};
  const DiagnosticBag bag = lint(options);
  const Diagnostic* d = find(bag, "PL026");
  ASSERT_NE(d, nullptr) << bag.format_text();
  EXPECT_NE(d->message.find("unreachable"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Task-graph hazard analysis over the main module's <calls> sequence.
// ---------------------------------------------------------------------------

TEST_F(LintTest, AliasedWriteBindingIsPL030) {
  write_clean_axpy();
  write("main.xml",
        "<peppher-main name=\"app\" source=\"main.cpp\">\n"
        "  <uses interface=\"axpy\"/>\n"
        "  <calls>\n"
        "    <call interface=\"axpy\">\n"
        "      <arg param=\"x\" data=\"D\"/>\n"
        "      <arg param=\"y\" data=\"D\"/>\n"
        "    </call>\n"
        "  </calls>\n"
        "</peppher-main>\n");
  const DiagnosticBag bag = lint();
  const Diagnostic* d = find(bag, "PL030");
  ASSERT_NE(d, nullptr) << bag.format_text();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->location.line, 4);  // the <call> element
}

TEST_F(LintTest, HiddenWriteRacingAReaderIsPL031) {
  // p is declared read but its type is mutable: the runtime would schedule
  // both calls concurrently although call #1 may write.
  write("scan.xml",
        "<peppher-interface name=\"scan\">\n"
        "  <function returnType=\"void\">\n"
        "    <param name=\"p\" type=\"float*\" accessMode=\"read\" size=\"1\"/>\n"
        "    <param name=\"q\" type=\"const float*\" accessMode=\"read\" size=\"1\"/>\n"
        "  </function>\n"
        "</peppher-interface>\n");
  write("main.xml",
        "<peppher-main name=\"app\" source=\"main.cpp\">\n"
        "  <uses interface=\"scan\"/>\n"
        "  <calls>\n"
        "    <call interface=\"scan\">\n"
        "      <arg param=\"p\" data=\"D\"/>\n"
        "      <arg param=\"q\" data=\"E\"/>\n"
        "    </call>\n"
        "    <call interface=\"scan\">\n"
        "      <arg param=\"p\" data=\"F\"/>\n"
        "      <arg param=\"q\" data=\"D\"/>\n"
        "    </call>\n"
        "  </calls>\n"
        "</peppher-main>\n");
  const DiagnosticBag bag = lint();
  const Diagnostic* d = find(bag, "PL031");
  ASSERT_NE(d, nullptr) << bag.format_text();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("read/write race on container 'D'"),
            std::string::npos);
}

TEST_F(LintTest, TwoHiddenWritersArePL032) {
  write("scan.xml",
        "<peppher-interface name=\"scan\">\n"
        "  <function returnType=\"void\">\n"
        "    <param name=\"p\" type=\"float*\" accessMode=\"read\" size=\"1\"/>\n"
        "  </function>\n"
        "</peppher-interface>\n");
  write("main.xml",
        "<peppher-main name=\"app\" source=\"main.cpp\">\n"
        "  <uses interface=\"scan\"/>\n"
        "  <calls>\n"
        "    <call interface=\"scan\"><arg param=\"p\" data=\"D\"/></call>\n"
        "    <call interface=\"scan\"><arg param=\"p\" data=\"D\"/></call>\n"
        "  </calls>\n"
        "</peppher-main>\n");
  const DiagnosticBag bag = lint();
  const Diagnostic* d = find(bag, "PL032");
  ASSERT_NE(d, nullptr) << bag.format_text();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("write/write race"), std::string::npos);
}

TEST_F(LintTest, OverwrittenUnreadResultIsPL033) {
  write("init.xml",
        "<peppher-interface name=\"init\">\n"
        "  <function returnType=\"void\">\n"
        "    <param name=\"o\" type=\"float*\" accessMode=\"write\" size=\"1\"/>\n"
        "  </function>\n"
        "</peppher-interface>\n");
  write("main.xml",
        "<peppher-main name=\"app\" source=\"main.cpp\">\n"
        "  <uses interface=\"init\"/>\n"
        "  <calls>\n"
        "    <call interface=\"init\"><arg param=\"o\" data=\"D\"/></call>\n"
        "    <call interface=\"init\"><arg param=\"o\" data=\"D\"/></call>\n"
        "  </calls>\n"
        "</peppher-main>\n");
  const DiagnosticBag bag = lint();
  const Diagnostic* d = find(bag, "PL033");
  ASSERT_NE(d, nullptr) << bag.format_text();
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find("dead write"), std::string::npos);
  EXPECT_EQ(d->location.line, 5);  // the second <call>
}

TEST_F(LintTest, CallToUnknownInterfaceIsPL034) {
  write_clean_axpy();
  write("main.xml",
        "<peppher-main name=\"app\" source=\"main.cpp\">\n"
        "  <uses interface=\"axpy\"/>\n"
        "  <calls>\n"
        "    <call interface=\"warp\"><arg param=\"p\" data=\"D\"/></call>\n"
        "  </calls>\n"
        "</peppher-main>\n");
  const DiagnosticBag bag = lint();
  const Diagnostic* d = find(bag, "PL034");
  ASSERT_NE(d, nullptr) << bag.format_text();
  EXPECT_EQ(d->severity, Severity::kError);
}

TEST_F(LintTest, BindingUnknownParameterIsPL035) {
  write_clean_axpy();
  write("main.xml",
        "<peppher-main name=\"app\" source=\"main.cpp\">\n"
        "  <uses interface=\"axpy\"/>\n"
        "  <calls>\n"
        "    <call interface=\"axpy\">\n"
        "      <arg param=\"x\" data=\"D\"/>\n"
        "      <arg param=\"zeta\" data=\"E\"/>\n"
        "      <arg param=\"y\" data=\"F\"/>\n"
        "    </call>\n"
        "  </calls>\n"
        "</peppher-main>\n");
  const DiagnosticBag bag = lint();
  const Diagnostic* d = find(bag, "PL035");
  ASSERT_NE(d, nullptr) << bag.format_text();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->location.line, 6);  // the <arg> element
}

TEST_F(LintTest, UnboundOperandParameterIsPL036) {
  write_clean_axpy();
  write("main.xml",
        "<peppher-main name=\"app\" source=\"main.cpp\">\n"
        "  <uses interface=\"axpy\"/>\n"
        "  <calls>\n"
        "    <call interface=\"axpy\"><arg param=\"x\" data=\"D\"/></call>\n"
        "  </calls>\n"
        "</peppher-main>\n");
  const DiagnosticBag bag = lint();
  const Diagnostic* d = find(bag, "PL036");
  ASSERT_NE(d, nullptr) << bag.format_text();
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find("'y'"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Repository-structural diagnostics surface through the same engine.
// ---------------------------------------------------------------------------

TEST_F(LintTest, DanglingInterfaceReferenceIsPL041) {
  write("ghost_impl.xml",
        "<peppher-implementation name=\"ghost_cpu\" interface=\"ghost\">\n"
        "  <platform language=\"cpu\"/>\n"
        "</peppher-implementation>\n");
  const DiagnosticBag bag = lint();
  const Diagnostic* d = find(bag, "PL041");
  ASSERT_NE(d, nullptr) << bag.format_text();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->location.line, 1);
}

TEST_F(LintTest, UndeclaredSizeExpressionParameterIsPL051) {
  write("sized.xml",
        "<peppher-interface name=\"sized\">\n"
        "  <function returnType=\"void\">\n"
        "    <param name=\"v\" type=\"const float*\" accessMode=\"read\" size=\"count\"/>\n"
        "  </function>\n"
        "</peppher-interface>\n");
  const DiagnosticBag bag = lint();
  const Diagnostic* d = find(bag, "PL051");
  ASSERT_NE(d, nullptr) << bag.format_text();
  EXPECT_NE(d->message.find("'count'"), std::string::npos);
}

TEST_F(LintTest, CrossArchReadPingPongIsPL052) {
  // D is produced on the accelerator (step has only a CUDA variant), read on
  // the host (observe has only a CPU variant), then written on the
  // accelerator again: the host replica is re-invalidated every iteration,
  // so prefetching it is always wasted.
  write("step.xml",
        "<peppher-interface name=\"step\">\n"
        "  <function returnType=\"void\">\n"
        "    <param name=\"d\" type=\"float*\" accessMode=\"readwrite\" size=\"1\"/>\n"
        "  </function>\n"
        "</peppher-interface>\n");
  write("step_cuda.xml",
        "<peppher-implementation name=\"step_cuda\" interface=\"step\">\n"
        "  <platform language=\"cuda\"/>\n"
        "  <sources><source file=\"step_cuda.cpp\"/></sources>\n"
        "</peppher-implementation>\n");
  write("step_cuda.cpp", "void step_cuda(float* d);\n");
  write("observe.xml",
        "<peppher-interface name=\"observe\">\n"
        "  <function returnType=\"void\">\n"
        "    <param name=\"d\" type=\"const float*\" accessMode=\"read\" size=\"1\"/>\n"
        "  </function>\n"
        "</peppher-interface>\n");
  write("observe_cpu.xml",
        "<peppher-implementation name=\"observe_cpu\" interface=\"observe\">\n"
        "  <platform language=\"cpu\"/>\n"
        "  <sources><source file=\"observe_cpu.cpp\"/></sources>\n"
        "</peppher-implementation>\n");
  write("observe_cpu.cpp", "void observe_cpu(const float* d);\n");
  write("main.xml",
        "<peppher-main name=\"app\" source=\"main.cpp\">\n"
        "  <uses interface=\"step\"/>\n"
        "  <uses interface=\"observe\"/>\n"
        "  <calls>\n"
        "    <call interface=\"step\"><arg param=\"d\" data=\"D\"/></call>\n"
        "    <call interface=\"observe\"><arg param=\"d\" data=\"D\"/></call>\n"
        "    <call interface=\"step\"><arg param=\"d\" data=\"D\"/></call>\n"
        "  </calls>\n"
        "</peppher-main>\n");
  const DiagnosticBag bag = lint();
  const Diagnostic* d = find(bag, "PL052");
  ASSERT_NE(d, nullptr) << bag.format_text();
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find("ping-pongs across the PCIe link"),
            std::string::npos);
  EXPECT_NE(d->message.find("container 'D'"), std::string::npos);
  EXPECT_EQ(d->location.line, 6);  // anchored at the cross-side read
}

TEST_F(LintTest, ReadWithAVariantOnBothSidesIsNotPL052) {
  // Same sequence, but observe also ships a CUDA variant: the runtime can
  // co-locate the read with the writer, so there is nothing to warn about.
  write("step.xml",
        "<peppher-interface name=\"step\">\n"
        "  <function returnType=\"void\">\n"
        "    <param name=\"d\" type=\"float*\" accessMode=\"readwrite\" size=\"1\"/>\n"
        "  </function>\n"
        "</peppher-interface>\n");
  write("step_cuda.xml",
        "<peppher-implementation name=\"step_cuda\" interface=\"step\">\n"
        "  <platform language=\"cuda\"/>\n"
        "  <sources><source file=\"step_cuda.cpp\"/></sources>\n"
        "</peppher-implementation>\n");
  write("step_cuda.cpp", "void step_cuda(float* d);\n");
  write("observe.xml",
        "<peppher-interface name=\"observe\">\n"
        "  <function returnType=\"void\">\n"
        "    <param name=\"d\" type=\"const float*\" accessMode=\"read\" size=\"1\"/>\n"
        "  </function>\n"
        "</peppher-interface>\n");
  write("observe_cpu.xml",
        "<peppher-implementation name=\"observe_cpu\" interface=\"observe\">\n"
        "  <platform language=\"cpu\"/>\n"
        "  <sources><source file=\"observe_cpu.cpp\"/></sources>\n"
        "</peppher-implementation>\n");
  write("observe_cpu.cpp", "void observe_cpu(const float* d);\n");
  write("observe_cuda.xml",
        "<peppher-implementation name=\"observe_cuda\" interface=\"observe\">\n"
        "  <platform language=\"cuda\"/>\n"
        "  <sources><source file=\"observe_cuda.cpp\"/></sources>\n"
        "</peppher-implementation>\n");
  write("observe_cuda.cpp", "void observe_cuda(const float* d);\n");
  write("main.xml",
        "<peppher-main name=\"app\" source=\"main.cpp\">\n"
        "  <uses interface=\"step\"/>\n"
        "  <uses interface=\"observe\"/>\n"
        "  <calls>\n"
        "    <call interface=\"step\"><arg param=\"d\" data=\"D\"/></call>\n"
        "    <call interface=\"observe\"><arg param=\"d\" data=\"D\"/></call>\n"
        "    <call interface=\"step\"><arg param=\"d\" data=\"D\"/></call>\n"
        "  </calls>\n"
        "</peppher-main>\n");
  const DiagnosticBag bag = lint();
  EXPECT_EQ(find(bag, "PL052"), nullptr) << bag.format_text();
}

TEST_F(LintTest, DisablingTheBalancingVariantRevealsPL052) {
  // -disableImpls can turn the clean both-sides repository into a
  // ping-pong: with observe_cuda disabled the read is host-pinned again.
  write("step.xml",
        "<peppher-interface name=\"step\">\n"
        "  <function returnType=\"void\">\n"
        "    <param name=\"d\" type=\"float*\" accessMode=\"readwrite\" size=\"1\"/>\n"
        "  </function>\n"
        "</peppher-interface>\n");
  write("step_cuda.xml",
        "<peppher-implementation name=\"step_cuda\" interface=\"step\">\n"
        "  <platform language=\"cuda\"/>\n"
        "  <sources><source file=\"step_cuda.cpp\"/></sources>\n"
        "</peppher-implementation>\n");
  write("step_cuda.cpp", "void step_cuda(float* d);\n");
  write("observe.xml",
        "<peppher-interface name=\"observe\">\n"
        "  <function returnType=\"void\">\n"
        "    <param name=\"d\" type=\"const float*\" accessMode=\"read\" size=\"1\"/>\n"
        "  </function>\n"
        "</peppher-interface>\n");
  write("observe_cpu.xml",
        "<peppher-implementation name=\"observe_cpu\" interface=\"observe\">\n"
        "  <platform language=\"cpu\"/>\n"
        "  <sources><source file=\"observe_cpu.cpp\"/></sources>\n"
        "</peppher-implementation>\n");
  write("observe_cpu.cpp", "void observe_cpu(const float* d);\n");
  write("observe_cuda.xml",
        "<peppher-implementation name=\"observe_cuda\" interface=\"observe\">\n"
        "  <platform language=\"cuda\"/>\n"
        "  <sources><source file=\"observe_cuda.cpp\"/></sources>\n"
        "</peppher-implementation>\n");
  write("observe_cuda.cpp", "void observe_cuda(const float* d);\n");
  write("main.xml",
        "<peppher-main name=\"app\" source=\"main.cpp\">\n"
        "  <uses interface=\"step\"/>\n"
        "  <uses interface=\"observe\"/>\n"
        "  <calls>\n"
        "    <call interface=\"step\"><arg param=\"d\" data=\"D\"/></call>\n"
        "    <call interface=\"observe\"><arg param=\"d\" data=\"D\"/></call>\n"
        "    <call interface=\"step\"><arg param=\"d\" data=\"D\"/></call>\n"
        "  </calls>\n"
        "</peppher-main>\n");
  LintOptions options;
  options.disable_impls = {"observe_cuda"};
  const DiagnosticBag bag = lint(options);
  EXPECT_NE(find(bag, "PL052"), nullptr) << bag.format_text();
}

// ---------------------------------------------------------------------------
// Output formats.
// ---------------------------------------------------------------------------

TEST_F(LintTest, TextOutputEndsWithSummaryLine) {
  write_clean_axpy();
  write("axpy_cpu.cpp", "void axpy_cpu(int n);\n");
  const std::string text = lint().format_text();
  EXPECT_NE(text.find("[PL001]"), std::string::npos);
  EXPECT_NE(text.find("1 error(s), 0 warning(s), 0 note(s)"),
            std::string::npos);
}

TEST_F(LintTest, JsonOutputCarriesAllFields) {
  write_clean_axpy();
  write("axpy_cpu.cpp", "void axpy_cpu(int n);\n");
  const std::string json(strings::trim(lint().format_json()));
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"code\": \"PL001\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos);
}

TEST_F(LintTest, SarifOutputIsWellFormed) {
  write_clean_axpy();
  write("axpy_cpu.cpp", "void axpy_cpu(int n);\n");
  const std::string sarif = lint().format_sarif();
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"peppher-lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"PL001\""), std::string::npos);
  EXPECT_NE(sarif.find("\"results\""), std::string::npos);
  // Every brace closes (cheap structural sanity; the rule registry and the
  // result serialisation share the escaping helper).
  EXPECT_EQ(std::count(sarif.begin(), sarif.end(), '{'),
            std::count(sarif.begin(), sarif.end(), '}'));
}

TEST_F(LintTest, DiagnosticsAreSortedByLocation) {
  write_clean_axpy();
  write("axpy.dispatch",
        "1024 axpy_ghost\n"
        "512 axpy_phantom\n");
  const DiagnosticBag bag = lint();
  const std::vector<std::string> got = codes(bag);
  ASSERT_GE(got.size(), 3u) << bag.format_text();
  // Same file: line 1 (PL020) before line 2 (PL020 then PL022 by code).
  EXPECT_EQ(bag.diagnostics()[0].location.line, 1);
  EXPECT_LE(bag.diagnostics()[0].location.line,
            bag.diagnostics()[1].location.line);
}

// ---------------------------------------------------------------------------
// Lowered-signature helper.
// ---------------------------------------------------------------------------

TEST(ExpectedImplSignature, LowersContainersLikeTheCodeGenerator) {
  desc::InterfaceDescriptor iface;
  iface.name = "mix";
  iface.params = {
      {"n", "int", rt::AccessMode::kRead, {}, ""},
      {"v", "Vector<float>&", rt::AccessMode::kReadWrite, {}, ""},
      {"m", "const Matrix<double>&", rt::AccessMode::kRead, {}, ""},
      {"s", "Scalar<float>&", rt::AccessMode::kWrite, {}, ""},
      {"raw", "const int*", rt::AccessMode::kRead, {}, "n"},
  };
  EXPECT_EQ(analyze::expected_impl_signature(iface, "mix_cpu"),
            "void mix_cpu(int n, float* v, std::size_t v_count, "
            "double* m, std::size_t m_rows, std::size_t m_cols, "
            "float* s, const int* raw)");
}

// ---------------------------------------------------------------------------
// XML line/column tracking (satellite: xml.cpp records source locations).
// ---------------------------------------------------------------------------

TEST(XmlLocations, ElementsRememberLineAndColumn) {
  const xml::Document doc = xml::parse(
      "<root>\n"
      "  <child attr=\"1\"/>\n"
      "  <other>\n"
      "    <nested/>\n"
      "  </other>\n"
      "</root>\n");
  EXPECT_EQ(doc.root->line(), 1);
  EXPECT_EQ(doc.root->column(), 1);
  const xml::Element* child = doc.root->child("child");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->line(), 2);
  EXPECT_EQ(child->column(), 3);
  const xml::Element* nested = doc.root->child("other")->child("nested");
  ASSERT_NE(nested, nullptr);
  EXPECT_EQ(nested->line(), 4);
  EXPECT_EQ(nested->column(), 5);
}

TEST(XmlLocations, ParseErrorsReportLineAndColumn) {
  try {
    xml::parse("<root>\n  <broken\n</root>");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line"), std::string::npos) << what;
    EXPECT_NE(what.find("column"), std::string::npos) << what;
  }
}

TEST(XmlLocations, LocationsFlowIntoDescriptors) {
  desc::Repository repo;
  repo.load_text(kAxpyInterface, {}, "axpy.xml");
  const desc::InterfaceDescriptor* iface = repo.find_interface("axpy");
  ASSERT_NE(iface, nullptr);
  EXPECT_EQ(iface->loc.file, "axpy.xml");
  EXPECT_EQ(iface->loc.line, 1);
  ASSERT_EQ(iface->params.size(), 4u);
  EXPECT_EQ(iface->params[0].loc.line, 3);
  EXPECT_EQ(iface->params[3].loc.line, 6);
  EXPECT_EQ(iface->params[0].loc.column, 5);
}

// ---------------------------------------------------------------------------
// Runtime debug hazard check (EngineConfig::hazard_checks): the dynamic
// counterpart of PL030.
// ---------------------------------------------------------------------------

rt::Codelet make_noop_codelet() {
  rt::Codelet codelet("noop");
  rt::Implementation impl;
  impl.arch = rt::Arch::kCpu;
  impl.name = "noop_cpu";
  impl.fn = [](rt::ExecContext&) {};
  impl.cost = [](const std::vector<std::size_t>&, const void*) {
    return sim::KernelCost{1.0, 1.0, 1.0};
  };
  codelet.add_impl(std::move(impl));
  return codelet;
}

TEST(EngineHazardChecks, RejectsAliasedWriteOperands) {
  rt::EngineConfig config;
  config.machine = sim::MachineConfig::cpu_only(2);
  config.hazard_checks = true;
  rt::Engine engine(config);
  std::vector<float> data(16, 0.0f);
  auto handle = engine.register_buffer(data.data(), data.size() * sizeof(float),
                                       sizeof(float));
  rt::Codelet codelet = make_noop_codelet();
  rt::TaskSpec spec;
  spec.codelet = &codelet;
  spec.operands = {{handle, rt::AccessMode::kRead},
                   {handle, rt::AccessMode::kWrite}};
  try {
    engine.submit(std::move(spec));
    FAIL() << "expected the hazard check to reject the task";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("PL030"), std::string::npos);
  }
}

TEST(EngineHazardChecks, AllowsAliasedReadsAndStaysOffByDefault) {
  {
    rt::EngineConfig config;
    config.machine = sim::MachineConfig::cpu_only(2);
    config.hazard_checks = true;
    rt::Engine engine(config);
    std::vector<float> data(16, 0.0f);
    auto handle = engine.register_buffer(
        data.data(), data.size() * sizeof(float), sizeof(float));
    rt::Codelet codelet = make_noop_codelet();
    rt::TaskSpec spec;
    spec.codelet = &codelet;
    spec.operands = {{handle, rt::AccessMode::kRead},
                     {handle, rt::AccessMode::kRead}};
    rt::TaskPtr task = engine.submit(std::move(spec));
    engine.wait(task);
    EXPECT_EQ(task->state, rt::TaskState::kDone);
  }
  {
    rt::EngineConfig config;  // hazard_checks defaults to false
    config.machine = sim::MachineConfig::cpu_only(2);
    rt::Engine engine(config);
    std::vector<float> data(16, 0.0f);
    auto handle = engine.register_buffer(
        data.data(), data.size() * sizeof(float), sizeof(float));
    rt::Codelet codelet = make_noop_codelet();
    rt::TaskSpec spec;
    spec.codelet = &codelet;
    spec.operands = {{handle, rt::AccessMode::kRead},
                     {handle, rt::AccessMode::kWrite}};
    rt::TaskPtr task = engine.submit(std::move(spec));
    engine.wait(task);
    EXPECT_EQ(task->state, rt::TaskState::kDone);
  }
}

// ---------------------------------------------------------------------------
// PL033 precision: a readwrite between two writes reads the first write, but
// its own written value can still die against the second write.
// ---------------------------------------------------------------------------

TEST_F(LintTest, WriteFollowedByReadWriteIsNotPL033) {
  write("init.xml",
        "<peppher-interface name=\"init\">\n"
        "  <function returnType=\"void\">\n"
        "    <param name=\"o\" type=\"float*\" accessMode=\"write\" size=\"1\"/>\n"
        "  </function>\n"
        "</peppher-interface>\n");
  write("bump.xml",
        "<peppher-interface name=\"bump\">\n"
        "  <function returnType=\"void\">\n"
        "    <param name=\"o\" type=\"float*\" accessMode=\"readwrite\" size=\"1\"/>\n"
        "  </function>\n"
        "</peppher-interface>\n");
  write("main.xml",
        "<peppher-main name=\"app\" source=\"main.cpp\">\n"
        "  <calls>\n"
        "    <call interface=\"init\"><arg param=\"o\" data=\"D\"/></call>\n"
        "    <call interface=\"bump\"><arg param=\"o\" data=\"D\"/></call>\n"
        "  </calls>\n"
        "</peppher-main>\n");
  const DiagnosticBag bag = lint();
  EXPECT_EQ(find(bag, "PL033"), nullptr) << bag.format_text();
}

TEST_F(LintTest, ReadWriteResultOverwrittenIsPL033) {
  write("init.xml",
        "<peppher-interface name=\"init\">\n"
        "  <function returnType=\"void\">\n"
        "    <param name=\"o\" type=\"float*\" accessMode=\"write\" size=\"1\"/>\n"
        "  </function>\n"
        "</peppher-interface>\n");
  write("bump.xml",
        "<peppher-interface name=\"bump\">\n"
        "  <function returnType=\"void\">\n"
        "    <param name=\"o\" type=\"float*\" accessMode=\"readwrite\" size=\"1\"/>\n"
        "  </function>\n"
        "</peppher-interface>\n");
  write("main.xml",
        "<peppher-main name=\"app\" source=\"main.cpp\">\n"
        "  <calls>\n"
        "    <call interface=\"init\"><arg param=\"o\" data=\"D\"/></call>\n"
        "    <call interface=\"bump\"><arg param=\"o\" data=\"D\"/></call>\n"
        "    <call interface=\"init\"><arg param=\"o\" data=\"D\"/></call>\n"
        "  </calls>\n"
        "</peppher-main>\n");
  const DiagnosticBag bag = lint();
  const Diagnostic* d = find(bag, "PL033");
  ASSERT_NE(d, nullptr) << bag.format_text();
  EXPECT_EQ(d->location.line, 5);  // the final overwriting <call>
}

// ---------------------------------------------------------------------------
// The code registry is the single source of truth: the docs tables and the
// SARIF rules section must stay in sync with it.
// ---------------------------------------------------------------------------

TEST(CodeRegistry, DocsTablesMatchTheRegistry) {
  // The families split across four files: structural lint codes in
  // docs/lint.md, coherence verification (PL060..PL069) in docs/verify.md,
  // trace analyses (PF0xx) in docs/perf.md, static cost prediction
  // (PL070..PL077) in docs/predict.md. Every registered code must appear in
  // exactly ONE of them — the tool-specific guide owns its codes, the
  // others point at it.
  struct Row {
    std::string file;
    std::string severity;
    std::string meaning;
  };
  std::map<std::string, Row> rows;
  for (const char* name : {"lint.md", "verify.md", "perf.md", "predict.md"}) {
    const std::string docs = fs::read_file(
        std::filesystem::path(PEPPHER_SOURCE_ROOT) / "docs" / name);
    std::istringstream stream(docs);
    std::string line;
    while (std::getline(stream, line)) {
      if (!strings::starts_with(line, "| PL") &&
          !strings::starts_with(line, "| PF")) {
        continue;
      }
      const std::vector<std::string> cells = strings::split(line, '|');
      ASSERT_GE(cells.size(), 4u) << "malformed table row: " << line;
      const std::string code(strings::trim(cells[1]));
      const auto [it, inserted] = rows.emplace(
          code, Row{name, std::string(strings::trim(cells[2])),
                    std::string(strings::trim(cells[3]))});
      EXPECT_TRUE(inserted) << code << " documented in both "
                            << it->second.file << " and " << name;
    }
  }
  for (const diag::CodeInfo& info : diag::all_codes()) {
    const auto it = rows.find(std::string(info.code));
    ASSERT_NE(it, rows.end()) << info.code << " missing from the docs";
    EXPECT_EQ(it->second.severity, diag::to_string(info.severity))
        << info.code << " severity diverges from the registry";
    // The verification, prediction and trace-analysis families document
    // the registry summary verbatim (older rows carry hand-written prose).
    if (info.code >= "PL060" || strings::starts_with(info.code, "PF")) {
      EXPECT_EQ(it->second.meaning, info.summary)
          << info.code << " summary diverges from the registry";
    }
  }
  for (const auto& [code, row] : rows) {
    EXPECT_NE(diag::find_code(code), nullptr)
        << code << " documented in " << row.file << " but not registered";
  }
  // Spot-check the family split itself.
  EXPECT_EQ(rows.at("PL060").file, "verify.md");
  EXPECT_EQ(rows.at("PL070").file, "predict.md");
  EXPECT_EQ(rows.at("PF001").file, "perf.md");
}

TEST(CodeRegistry, ExplainMetadataIsComplete) {
  for (const diag::CodeInfo& info : diag::all_codes()) {
    EXPECT_FALSE(info.summary.empty()) << info.code;
    EXPECT_FALSE(info.remediation.empty()) << info.code;
  }
  EXPECT_NE(diag::find_code("PL060"), nullptr);
  EXPECT_EQ(diag::find_code("PL059"), nullptr);
  EXPECT_EQ(diag::find_code(""), nullptr);
}

// ---------------------------------------------------------------------------
// SARIF golden file: the renderer's exact output is pinned so accidental
// format drift (field renames, escaping changes) shows up as a diff.
// ---------------------------------------------------------------------------

TEST(SarifGolden, RendererOutputIsPinned) {
  DiagnosticBag bag;
  bag.add("PL002", Severity::kError,
          "implementation 'axpy_cpu' parameter 2 ('x') has type 'double*' "
          "but interface 'axpy' expects 'const float*'",
          {"components/axpy/axpy_cpu.xml", 4, 5});
  bag.add("PL033", Severity::kWarning,
          "container 'D' written here is a dead write: overwritten before "
          "any read",
          {"main.xml", 5, 5});
  bag.add("PL061", Severity::kNote,
          "prefetch of 'v' to host is redundant: a valid replica already "
          "exists there on every path");
  bag.sort();
  const std::string expected = fs::read_file(
      std::filesystem::path(PEPPHER_SOURCE_ROOT) / "tests" / "golden" /
      "lint.sarif");
  EXPECT_EQ(bag.format_sarif(), expected)
      << "SARIF renderer output drifted; if intentional, regenerate "
         "tests/golden/lint.sarif";
}

}  // namespace
}  // namespace peppher
