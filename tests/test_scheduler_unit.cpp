// Direct unit tests of the scheduler policies against a mock environment
// (the engine-level behaviour is covered in test_engine.cpp; these pin down
// each policy's decision rule in isolation).
#include <gtest/gtest.h>

#include <limits>

#include "runtime/scheduler.hpp"
#include "support/error.hpp"

namespace peppher::rt {
namespace {

/// Mock world: 3 workers — two CPU cores and one GPU. Task eligibility and
/// per-worker estimates are table-driven.
class SchedulerUnit : public ::testing::Test {
 protected:
  SchedulerUnit() {
    for (int i = 0; i < 3; ++i) {
      WorkerDesc desc;
      desc.id = i;
      desc.archs = {i < 2 ? Arch::kCpu : Arch::kCuda};
      desc.node = i < 2 ? kHostNode : 1;
      desc.profile = i < 2 ? sim::DeviceProfile::xeon_e5520_core()
                           : sim::DeviceProfile::tesla_c2050();
      workers_.push_back(desc);
    }
    codelet_.add_impl({Arch::kCpu, "u_cpu", [](ExecContext&) {}, nullptr});
    codelet_.add_impl({Arch::kCuda, "u_cuda", [](ExecContext&) {}, nullptr});

    env_.workers = &workers_;
    env_.rng = &rng_;
    env_.calibration_min = 2;
    env_.worker_ready_at = [this](WorkerId id) {
      return ready_[static_cast<std::size_t>(id)];
    };
    env_.eligible = [this](const Task& task, WorkerId id) {
      if (cpu_only_task_ && id == 2) return false;
      (void)task;
      return true;
    };
    env_.estimate_completion = [this](const Task& task, WorkerId id) {
      if (!env_.eligible(task, id)) {
        return std::numeric_limits<double>::infinity();
      }
      return ready_[static_cast<std::size_t>(id)] +
             work_[static_cast<std::size_t>(id)];
    };
    env_.estimate_work = [this](const Task& task, WorkerId id) {
      if (!env_.eligible(task, id)) {
        return std::numeric_limits<double>::infinity();
      }
      return work_[static_cast<std::size_t>(id)];
    };
    env_.sample_count = [this](const Task&, WorkerId id) {
      return samples_[static_cast<std::size_t>(id)];
    };
  }

  TaskPtr make_task(int priority = 0) {
    TaskSpec spec;
    spec.codelet = &codelet_;
    spec.priority = priority;
    return std::make_shared<Task>(std::move(spec), next_seq_++);
  }

  std::vector<WorkerDesc> workers_;
  Codelet codelet_{"unit"};
  Rng rng_{7};
  SchedEnv env_;
  std::vector<double> ready_{0.0, 0.0, 0.0};
  std::vector<double> work_{1.0, 1.0, 1.0};
  std::vector<std::uint64_t> samples_{100, 100, 100};  // calibrated
  bool cpu_only_task_ = false;
  std::uint64_t next_seq_ = 0;
};

TEST_F(SchedulerUnit, FactoryKnowsAllPolicies) {
  for (const std::string& name : scheduler_names()) {
    auto scheduler = make_scheduler(name, env_);
    ASSERT_NE(scheduler, nullptr);
    EXPECT_EQ(scheduler->name(), name);
    EXPECT_EQ(scheduler->queued(), 0u);
  }
  EXPECT_THROW(make_scheduler("nope", env_), Error);
}

TEST_F(SchedulerUnit, EagerIsFifoAcrossWorkers) {
  auto scheduler = make_scheduler("eager", env_);
  auto t1 = make_task();
  auto t2 = make_task();
  scheduler->push(t1);
  scheduler->push(t2);
  EXPECT_EQ(scheduler->pop(2), t1);  // any worker takes the oldest
  EXPECT_EQ(scheduler->pop(0), t2);
  EXPECT_EQ(scheduler->pop(1), nullptr);
}

TEST_F(SchedulerUnit, EagerPrefersHigherPriority) {
  auto scheduler = make_scheduler("eager", env_);
  auto low = make_task(0);
  auto high = make_task(5);
  scheduler->push(low);
  scheduler->push(high);
  EXPECT_EQ(scheduler->pop(0), high);
  EXPECT_EQ(scheduler->pop(0), low);
}

TEST_F(SchedulerUnit, EagerSkipsIneligibleWorker) {
  auto scheduler = make_scheduler("eager", env_);
  cpu_only_task_ = true;
  auto task = make_task();
  scheduler->push(task);
  EXPECT_EQ(scheduler->pop(2), nullptr);  // GPU cannot take it
  EXPECT_EQ(scheduler->pop(1), task);
}

TEST_F(SchedulerUnit, DmdaPicksMinimalCompletion) {
  auto scheduler = make_scheduler("dmda", env_);
  ready_ = {10.0, 5.0, 20.0};
  work_ = {1.0, 1.0, 1.0};
  auto task = make_task();
  scheduler->push(task);
  EXPECT_EQ(scheduler->pop(1), task);  // worker 1: completion 6.0
  EXPECT_EQ(scheduler->pop(0), nullptr);
  EXPECT_EQ(scheduler->pop(2), nullptr);
}

TEST_F(SchedulerUnit, DmdaCountsQueuedWorkNotYetStarted) {
  auto scheduler = make_scheduler("dmda", env_);
  ready_ = {0.0, 100.0, 100.0};
  work_ = {10.0, 10.0, 10.0};
  // Twelve tasks pushed before any pops: with pending-work accounting they
  // cannot all pile up on worker 0.
  for (int i = 0; i < 12; ++i) scheduler->push(make_task());
  int on_worker0 = 0;
  while (scheduler->pop(0) != nullptr) ++on_worker0;
  EXPECT_LT(on_worker0, 12);
  EXPECT_GT(on_worker0, 0);
}

TEST_F(SchedulerUnit, DmdaExploresUncalibratedVariantsFirst) {
  auto scheduler = make_scheduler("dmda", env_);
  samples_ = {100, 100, 0};  // GPU variant never sampled
  ready_ = {0.0, 0.0, 1000.0};  // and apparently terrible
  auto task = make_task();
  scheduler->push(task);
  EXPECT_EQ(scheduler->pop(2), task);  // exploration overrides estimates
}

TEST_F(SchedulerUnit, DmdaStopsExploringAtCalibrationMin) {
  auto scheduler = make_scheduler("dmda", env_);
  samples_ = {2, 2, 2};  // exactly calibration_min
  ready_ = {1.0, 3.0, 2.0};
  auto task = make_task();
  scheduler->push(task);
  EXPECT_EQ(scheduler->pop(0), task);  // min completion, no exploration
}

TEST_F(SchedulerUnit, WorkStealingStealsOldestFromBusiest) {
  auto scheduler = make_scheduler("ws", env_);
  // All tasks land on worker 0 (shortest queue first fills round-robin-ish;
  // force determinism by checking relative behaviour instead).
  std::vector<TaskPtr> tasks;
  for (int i = 0; i < 6; ++i) {
    tasks.push_back(make_task());
    scheduler->push(tasks.back());
  }
  EXPECT_EQ(scheduler->queued(), 6u);
  // A worker with an empty queue can steal.
  int drained = 0;
  for (int w = 0; w < 3; ++w) {
    while (scheduler->pop(w) != nullptr) ++drained;
  }
  EXPECT_EQ(drained, 6);
  EXPECT_EQ(scheduler->queued(), 0u);
}

TEST_F(SchedulerUnit, WorkStealingThiefRespectsEligibility) {
  auto scheduler = make_scheduler("ws", env_);
  cpu_only_task_ = true;
  auto task = make_task();
  scheduler->push(task);
  EXPECT_EQ(scheduler->pop(2), nullptr);  // thief GPU can't take it
  TaskPtr got = scheduler->pop(0);
  if (got == nullptr) got = scheduler->pop(1);
  EXPECT_EQ(got, task);
}

TEST_F(SchedulerUnit, RandomDistributesByWeight) {
  auto scheduler = make_scheduler("random", env_);
  // GPU peak GFLOPS dwarfs the CPU cores: with 200 pushes the GPU queue
  // must receive the overwhelming majority.
  for (int i = 0; i < 200; ++i) scheduler->push(make_task());
  int gpu = 0;
  while (scheduler->pop(2) != nullptr) ++gpu;
  EXPECT_GT(gpu, 150);
}

TEST_F(SchedulerUnit, RandomHonoursEligibility) {
  auto scheduler = make_scheduler("random", env_);
  cpu_only_task_ = true;
  for (int i = 0; i < 50; ++i) scheduler->push(make_task());
  EXPECT_EQ(scheduler->pop(2), nullptr);
  int cpu = 0;
  while (scheduler->pop(0) != nullptr) ++cpu;
  while (scheduler->pop(1) != nullptr) ++cpu;
  EXPECT_EQ(cpu, 50);
}

}  // namespace
}  // namespace peppher::rt
