// Static cost predictor tests (analyze/predict.hpp, analyze/cost.hpp):
// multi-term model fitting and .model v2 round trips, the CostEvaluator
// estimate chain, one positive and one negative case per PL070..PL077
// code, what-if device-count queries, and the differential guard — on
// straight-line programs with fully-observed sizes the static per-task
// estimates must equal the dmda scheduler's online formula
// (PerfRegistry::estimate_exec) to within floating-point round-off.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "analyze/cost.hpp"
#include "analyze/predict.hpp"
#include "descriptor/descriptor.hpp"
#include "runtime/perfmodel.hpp"
#include "sim/device.hpp"
#include "support/error.hpp"

namespace peppher {
namespace {

using analyze::CostEvaluator;
using analyze::EstimateSource;
using analyze::PredictOptions;
using analyze::PredictResult;
using analyze::WhatIfResult;

// ---------------------------------------------------------------------------
// Fixture: a repository assembled from inline descriptor strings
// ---------------------------------------------------------------------------

// init(y): pure producer. work(x, y): consumer/producer. consume(x): pure
// reader. Each test picks which architectures implement them.
constexpr const char* kInit =
    "<peppher-interface name=\"init\">\n"
    "  <function returnType=\"void\">\n"
    "    <param name=\"n\" type=\"int\" accessMode=\"read\"/>\n"
    "    <param name=\"y\" type=\"float*\" accessMode=\"write\" size=\"n\"/>\n"
    "  </function>\n"
    "</peppher-interface>\n";

constexpr const char* kWork =
    "<peppher-interface name=\"work\">\n"
    "  <function returnType=\"void\">\n"
    "    <param name=\"n\" type=\"int\" accessMode=\"read\"/>\n"
    "    <param name=\"x\" type=\"const float*\" accessMode=\"read\" size=\"n\"/>\n"
    "    <param name=\"y\" type=\"float*\" accessMode=\"write\" size=\"n\"/>\n"
    "  </function>\n"
    "</peppher-interface>\n";

constexpr const char* kConsume =
    "<peppher-interface name=\"consume\">\n"
    "  <function returnType=\"void\">\n"
    "    <param name=\"n\" type=\"int\" accessMode=\"read\"/>\n"
    "    <param name=\"x\" type=\"const float*\" accessMode=\"read\" size=\"n\"/>\n"
    "  </function>\n"
    "</peppher-interface>\n";

std::string impl_xml(const std::string& name, const std::string& iface,
                     const std::string& language) {
  return "<peppher-implementation name=\"" + name + "\" interface=\"" + iface +
         "\">\n  <platform language=\"" + language +
         "\"/>\n</peppher-implementation>\n";
}

/// Repository with the three interfaces; `langs` maps each interface to the
/// platform languages it is implemented for.
desc::Repository make_repo(
    const std::string& main_xml,
    const std::vector<std::pair<std::string, std::vector<std::string>>>&
        langs = {{"init", {"cpu"}}, {"work", {"cpu"}}, {"consume", {"cpu"}}}) {
  desc::Repository repo;
  repo.load_text(kInit);
  repo.load_text(kWork);
  repo.load_text(kConsume);
  for (const auto& [iface, languages] : langs) {
    for (const std::string& lang : languages) {
      repo.load_text(impl_xml(iface + "_" + lang, iface, lang));
    }
  }
  repo.load_text(main_xml, {}, "main.xml");
  return repo;
}

std::string main_with_calls(const std::string& calls) {
  return "<peppher-main name=\"app\" source=\"main.cpp\">\n<calls>\n" + calls +
         "</calls>\n</peppher-main>\n";
}

int count_code(const diag::DiagnosticBag& bag, const std::string& code) {
  int n = 0;
  for (const diag::Diagnostic& d : bag.diagnostics()) {
    if (d.code == code) ++n;
  }
  return n;
}

/// Records `samples` executions of `seconds` each for a single-operand
/// footprint of `bytes`, so the exact-footprint mean is calibrated.
void calibrate(rt::PerfRegistry& models, const std::string& codelet,
               rt::Arch arch, std::size_t bytes, double seconds,
               int samples = 3) {
  const std::uint64_t footprint = rt::footprint_of({bytes});
  for (int i = 0; i < samples; ++i) {
    models.record(codelet, arch, footprint, bytes, seconds);
  }
}

/// Records one sample per size so regression / multi-term fitting kicks in.
void record_sizes(rt::PerfRegistry& models, const std::string& codelet,
                  rt::Arch arch, const std::vector<std::size_t>& sizes,
                  double (*time_of)(double)) {
  for (const std::size_t bytes : sizes) {
    models.record(codelet, arch, rt::footprint_of({bytes}), bytes,
                  time_of(static_cast<double>(bytes)));
  }
}

// ---------------------------------------------------------------------------
// Multi-term fitting (rt::HistoryModel / rt::MultiTermModel)
// ---------------------------------------------------------------------------

TEST(MultiTerm, FitsAffineBehaviourThePowerLawCannot) {
  // 2 ms launch overhead + 1 ns/byte: a power law time = a*n^b cannot
  // express the additive constant, a {1, n} multi-term model can.
  rt::HistoryModel model;
  for (const std::size_t bytes : {1000, 2000, 4000, 8000, 16000, 32000}) {
    model.record(rt::footprint_of({bytes}), bytes,
                 2e-3 + 1e-9 * static_cast<double>(bytes));
  }
  const auto fit = model.multi_term_fit();
  ASSERT_TRUE(fit.has_value());
  EXPECT_TRUE(fit->usable());
  EXPECT_LT(fit->cv_error, 0.05);
  // Interpolated and mildly extrapolated predictions stay within 5%.
  for (const double bytes : {3000.0, 24000.0, 64000.0}) {
    const double expected = 2e-3 + 1e-9 * bytes;
    EXPECT_NEAR(fit->evaluate(bytes), expected, 0.05 * expected) << bytes;
  }
}

TEST(MultiTerm, FitsQuadraticGrowth) {
  rt::HistoryModel model;
  for (const std::size_t bytes : {512, 1024, 2048, 4096, 8192}) {
    const double n = static_cast<double>(bytes);
    model.record(rt::footprint_of({bytes}), bytes, 1e-12 * n * n);
  }
  const auto fit = model.multi_term_fit();
  ASSERT_TRUE(fit.has_value());
  const double n = 16384.0;
  EXPECT_NEAR(fit->evaluate(n), 1e-12 * n * n, 0.1 * 1e-12 * n * n);
}

TEST(MultiTerm, NeedsFourDistinctSizes) {
  rt::HistoryModel model;
  for (const std::size_t bytes : {1024, 2048, 4096}) {
    model.record(rt::footprint_of({bytes}), bytes, 1e-6);
  }
  EXPECT_FALSE(model.multi_term_fit().has_value());
  model.record(rt::footprint_of({std::size_t{8192}}), 8192, 1e-6);
  EXPECT_TRUE(model.multi_term_fit().has_value());
}

TEST(MultiTerm, EvaluationClampsNegativePredictionsToZero) {
  rt::MultiTermModel model;
  model.terms = {{rt::TermBasis::kConst, -5.0}};
  EXPECT_EQ(model.evaluate(1024.0), 0.0);
}

TEST(MultiTerm, ExtrapolationIsFlaggedOutsideTheObservedRange) {
  rt::MultiTermModel model;
  model.terms = {{rt::TermBasis::kLinear, 1e-9}};
  model.min_bytes = 1000;
  model.max_bytes = 10000;
  EXPECT_FALSE(model.extrapolates(5000.0, 2.0));
  EXPECT_FALSE(model.extrapolates(19999.0, 2.0));  // within 2x slack
  EXPECT_TRUE(model.extrapolates(20001.0, 2.0));
  EXPECT_TRUE(model.extrapolates(100.0, 2.0));
}

TEST(MultiTerm, SerializedModelFileCarriesV2HeaderAndFitLine) {
  rt::HistoryModel model;
  for (const std::size_t bytes : {1000, 2000, 4000, 8000, 16000}) {
    model.record(rt::footprint_of({bytes}), bytes,
                 1e-9 * static_cast<double>(bytes));
  }
  ASSERT_TRUE(model.multi_term_fit().has_value());
  const std::string text = model.serialize();
  EXPECT_EQ(text.rfind("peppher-model v2\n", 0), 0u) << text;
  EXPECT_NE(text.find("\nfit "), std::string::npos) << text;
}

TEST(MultiTerm, FitSurvivesASaveLoadRoundTripWithoutRefitting) {
  rt::HistoryModel model;
  for (const std::size_t bytes : {1000, 2000, 4000, 8000, 16000}) {
    model.record(rt::footprint_of({bytes}), bytes,
                 2e-3 + 1e-9 * static_cast<double>(bytes));
  }
  const auto before = model.multi_term_fit();
  ASSERT_TRUE(before.has_value());

  rt::HistoryModel loaded;
  loaded.deserialize(model.serialize());
  const auto after = loaded.multi_term_fit();
  ASSERT_TRUE(after.has_value());
  ASSERT_EQ(after->terms.size(), before->terms.size());
  for (std::size_t i = 0; i < before->terms.size(); ++i) {
    EXPECT_EQ(after->terms[i].basis, before->terms[i].basis);
    EXPECT_DOUBLE_EQ(after->terms[i].coefficient,
                     before->terms[i].coefficient);
  }
  EXPECT_DOUBLE_EQ(after->cv_error, before->cv_error);
  EXPECT_EQ(after->points, before->points);
  EXPECT_EQ(after->min_bytes, before->min_bytes);
  EXPECT_EQ(after->max_bytes, before->max_bytes);
  // The entries themselves round-trip too.
  EXPECT_EQ(loaded.entry_count(), model.entry_count());
  EXPECT_EQ(loaded.total_samples(), model.total_samples());
}

TEST(MultiTerm, HeaderlessV1FilesStillLoad) {
  rt::HistoryModel model;
  model.deserialize("7 4096 2 0.5 0.0 0.4 0.6\n");
  EXPECT_EQ(model.sample_count(7), 2u);
  EXPECT_DOUBLE_EQ(model.expected(7).value(), 0.5);
}

// ---------------------------------------------------------------------------
// Located parse errors on malformed .model input
// ---------------------------------------------------------------------------

TEST(ModelParse, MalformedLineReportsLineAndColumn) {
  rt::HistoryModel model;
  try {
    model.deserialize("peppher-model v2\n1 4096 2 0.5 0.0 0.4 bogus\n");
    FAIL() << "garbage accepted";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_GT(e.column(), 1);
  }
}

TEST(ModelParse, DuplicateFootprintIsRejected) {
  rt::HistoryModel model;
  EXPECT_THROW(model.deserialize("1 4096 2 0.5 0.0 0.4 0.6\n"
                                 "1 4096 2 0.5 0.0 0.4 0.6\n"),
               ParseError);
}

TEST(ModelParse, FitLineWithoutV2HeaderIsRejected) {
  rt::HistoryModel model;
  EXPECT_THROW(model.deserialize("1 4096 2 0.5 0.0 0.4 0.6\n"
                                 "fit 0.0 4 1024 8192 1 n 1e-9\n"),
               ParseError);
}

// ---------------------------------------------------------------------------
// CostEvaluator estimate chain
// ---------------------------------------------------------------------------

TEST(CostEval, CalibratedMeanWinsAndMatchesTheSchedulerFormula) {
  rt::PerfRegistry models;
  calibrate(models, "work", rt::Arch::kCpu, 4096, 1.5e-3);
  const CostEvaluator eval(sim::MachineConfig::cpu_only(), models, 2);
  const auto exec =
      eval.exec_seconds("work", rt::Arch::kCpu, rt::footprint_of({4096}), 4096);
  EXPECT_EQ(exec.source, EstimateSource::kCalibrated);
  EXPECT_FALSE(exec.low_confidence);
  const auto online = models.estimate_exec("work", rt::Arch::kCpu,
                                           rt::footprint_of({4096}), 4096, 2);
  ASSERT_TRUE(online.has_value());
  EXPECT_DOUBLE_EQ(exec.seconds, *online);
}

TEST(CostEval, UnseenFootprintFallsBackToMultiTerm) {
  rt::PerfRegistry models;
  record_sizes(models, "work", rt::Arch::kCpu,
               {1000, 2000, 4000, 8000, 16000},
               +[](double n) { return 1e-3 + 1e-9 * n; });
  const CostEvaluator eval(sim::MachineConfig::cpu_only(), models, 2);
  const auto exec = eval.exec_seconds("work", rt::Arch::kCpu,
                                      rt::footprint_of({3000}), 3000);
  EXPECT_EQ(exec.source, EstimateSource::kMultiTerm);
  EXPECT_NEAR(exec.seconds, 1e-3 + 3e-6, 0.05 * (1e-3 + 3e-6));
  // Far beyond the observed range the estimate is flagged.
  const auto far = eval.exec_seconds("work", rt::Arch::kCpu,
                                     rt::footprint_of({640000}), 640000);
  EXPECT_TRUE(far.low_confidence);
}

TEST(CostEval, MissingModelYieldsTheNeutralGuess) {
  rt::PerfRegistry models;
  const CostEvaluator eval(sim::MachineConfig::cpu_only(), models, 2);
  const auto exec =
      eval.exec_seconds("work", rt::Arch::kCpu, rt::footprint_of({4096}), 4096);
  EXPECT_EQ(exec.source, EstimateSource::kGuess);
  EXPECT_TRUE(exec.low_confidence);
  EXPECT_DOUBLE_EQ(exec.seconds, CostEvaluator::kNeutralGuessSeconds);
}

TEST(CostEval, ArchFeasibilityFollowsTheMachine) {
  rt::PerfRegistry models;
  const CostEvaluator c2050(sim::MachineConfig::platform_c2050(), models, 2);
  EXPECT_TRUE(c2050.arch_on_machine(rt::Arch::kCpu));
  EXPECT_TRUE(c2050.arch_on_machine(rt::Arch::kCpuOmp));
  EXPECT_TRUE(c2050.arch_on_machine(rt::Arch::kCuda));
  EXPECT_FALSE(c2050.arch_on_machine(rt::Arch::kOpenCl));
  const CostEvaluator solo(sim::MachineConfig::cpu_only(1), models, 2);
  EXPECT_TRUE(solo.arch_on_machine(rt::Arch::kCpu));
  EXPECT_FALSE(solo.arch_on_machine(rt::Arch::kCpuOmp));
  EXPECT_FALSE(solo.arch_on_machine(rt::Arch::kCuda));
}

// ---------------------------------------------------------------------------
// Differential guard: static estimates == dmda online estimates
// ---------------------------------------------------------------------------

TEST(Predict, StraightLineEstimatesMatchTheOnlineFormulaExactly) {
  // Fully-observed sizes, calibrated models, host-only machine: every
  // per-task static estimate must be the scheduler's own number, and the
  // serial makespan their exact sum.
  rt::PerfRegistry models;
  const std::size_t bytes = 4096;
  calibrate(models, "init", rt::Arch::kCpu, bytes, 1.25e-3);
  // work(x, y) has two operands; calibrate its two-operand footprint.
  const std::uint64_t work_fp = rt::footprint_of({bytes, bytes});
  models.record("work", rt::Arch::kCpu, work_fp, 2 * bytes, 3.5e-3);
  models.record("work", rt::Arch::kCpu, work_fp, 2 * bytes, 3.5e-3);
  calibrate(models, "consume", rt::Arch::kCpu, bytes, 0.75e-3);

  PredictOptions options;
  options.machine = sim::MachineConfig::cpu_only();
  options.sizes = {{"v", bytes}, {"out", bytes}};
  const desc::Repository repo = make_repo(main_with_calls(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<call interface=\"work\"><arg param=\"x\" data=\"v\"/>"
      "<arg param=\"y\" data=\"out\"/></call>\n"
      "<call interface=\"consume\"><arg param=\"x\" data=\"out\"/></call>\n"));
  const PredictResult result = analyze::predict_main(repo, models, options);
  ASSERT_TRUE(result.completed);
  ASSERT_EQ(result.points.size(), 3u);

  const double init_online = models
                                 .estimate_exec("init", rt::Arch::kCpu,
                                                rt::footprint_of({bytes}),
                                                bytes, 2)
                                 .value();
  const double work_online =
      models.estimate_exec("work", rt::Arch::kCpu, work_fp, 2 * bytes, 2)
          .value();
  const double consume_online = models
                                    .estimate_exec("consume", rt::Arch::kCpu,
                                                   rt::footprint_of({bytes}),
                                                   bytes, 2)
                                    .value();
  EXPECT_DOUBLE_EQ(result.points[0].exec_seconds, init_online);
  EXPECT_DOUBLE_EQ(result.points[1].exec_seconds, work_online);
  EXPECT_DOUBLE_EQ(result.points[2].exec_seconds, consume_online);
  for (const analyze::PointCost& p : result.points) {
    EXPECT_EQ(p.source, EstimateSource::kCalibrated);
    EXPECT_EQ(p.chosen, rt::Arch::kCpu);
    EXPECT_EQ(p.transfer_seconds, 0.0);  // host-resident data, host exec
  }
  EXPECT_DOUBLE_EQ(result.makespan.est,
                   init_online + work_online + consume_online);
  EXPECT_LE(result.makespan.lo, result.makespan.est);
  EXPECT_GE(result.makespan.hi, result.makespan.est);
  EXPECT_TRUE(result.bag.empty()) << result.bag.format_text();
}

TEST(Predict, LoopIterationsExtrapolateLinearly) {
  rt::PerfRegistry models;
  const std::size_t bytes = 4096;
  calibrate(models, "consume", rt::Arch::kCpu, bytes, 2e-3);
  calibrate(models, "init", rt::Arch::kCpu, bytes, 1e-3);
  PredictOptions options;
  options.machine = sim::MachineConfig::cpu_only();
  options.sizes = {{"v", bytes}};
  const desc::Repository repo = make_repo(main_with_calls(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "<loop count=\"10\">\n"
      "  <call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n"
      "</loop>\n"));
  const PredictResult result = analyze::predict_main(repo, models, options);
  ASSERT_TRUE(result.completed);
  // 1 init + 10 loop iterations, each a calibrated 2 ms consume.
  EXPECT_EQ(result.task_executions, 11u);
  EXPECT_NEAR(result.makespan.est, 1e-3 + 10 * 2e-3, 1e-12);
  ASSERT_EQ(result.points.size(), 2u);
  EXPECT_EQ(result.points[1].executions, 10u);
  EXPECT_NEAR(result.points[1].exec_seconds, 10 * 2e-3, 1e-12);
}

// ---------------------------------------------------------------------------
// PL070..PL077: one positive and one negative case each
// ---------------------------------------------------------------------------

PredictResult predict(const std::string& calls,
                      const std::vector<std::pair<std::string,
                                                  std::vector<std::string>>>&
                          langs,
                      PredictOptions options = {},
                      rt::PerfRegistry* models = nullptr) {
  rt::PerfRegistry empty;
  const desc::Repository repo = make_repo(main_with_calls(calls), langs);
  return analyze::predict_main(repo, models != nullptr ? *models : empty,
                               options);
}

TEST(PredictDiag, PL070DeadVariantUnderTheAnalysedMachine) {
  PredictOptions options;
  options.machine = sim::MachineConfig::platform_c2050();  // no OpenCL
  const PredictResult result = predict(
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n",
      {{"consume", {"cpu", "opencl"}}}, options);
  EXPECT_EQ(count_code(result.bag, "PL070"), 1) << result.bag.format_text();

  PredictOptions opencl;
  opencl.machine = sim::MachineConfig::platform_opencl();
  const PredictResult clean = predict(
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n",
      {{"consume", {"cpu", "opencl"}}}, opencl);
  EXPECT_EQ(count_code(clean.bag, "PL070"), 0) << clean.bag.format_text();
}

TEST(PredictDiag, PL071MissingModelForASelectableVariant) {
  PredictOptions options;
  options.machine = sim::MachineConfig::cpu_only();
  const PredictResult result = predict(
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n",
      {{"consume", {"cpu"}}}, options);
  EXPECT_EQ(count_code(result.bag, "PL071"), 1) << result.bag.format_text();

  rt::PerfRegistry models;
  options.sizes = {{"v", 4096}};
  calibrate(models, "consume", rt::Arch::kCpu, 4096, 1e-3);
  const PredictResult clean = predict(
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n",
      {{"consume", {"cpu"}}}, options, &models);
  EXPECT_EQ(count_code(clean.bag, "PL071"), 0) << clean.bag.format_text();
}

TEST(PredictDiag, PL072LowConfidenceEstimate) {
  rt::PerfRegistry models;
  record_sizes(models, "consume", rt::Arch::kCpu,
               {1000, 2000, 4000, 8000, 16000},
               +[](double n) { return 1e-9 * n; });
  PredictOptions options;
  options.machine = sim::MachineConfig::cpu_only();
  // 100x beyond the observed range: multi-term, but extrapolating.
  options.sizes = {{"v", 1600000}};
  const PredictResult result = predict(
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n",
      {{"consume", {"cpu"}}}, options, &models);
  EXPECT_EQ(count_code(result.bag, "PL072"), 1) << result.bag.format_text();

  options.sizes = {{"v", 3000}};  // interpolation: confident
  const PredictResult clean = predict(
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n",
      {{"consume", {"cpu"}}}, options, &models);
  EXPECT_EQ(count_code(clean.bag, "PL072"), 0) << clean.bag.format_text();
}

TEST(PredictDiag, PL073StaticallyTransferBoundLoop) {
  // Producer pinned to the device, consumer pinned to the host: every
  // steady-state iteration bounces the container across the link.
  PredictOptions options;
  options.machine = sim::MachineConfig::platform_c2050();
  options.sizes = {{"v", 256u << 20}};  // 256 MiB: link time >> 1 ms guesses
  const PredictResult result = predict(
      "<loop count=\"8\">\n"
      "  <call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "  <call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n"
      "</loop>\n",
      {{"init", {"cuda"}}, {"consume", {"cpu"}}}, options);
  ASSERT_EQ(count_code(result.bag, "PL073"), 1) << result.bag.format_text();
  // The message carries the predicted per-iteration byte counts.
  for (const diag::Diagnostic& d : result.bag.diagnostics()) {
    if (d.code == "PL073") {
      EXPECT_NE(d.message.find("bytes H2D"), std::string::npos) << d.message;
      EXPECT_NE(d.message.find("bytes D2H"), std::string::npos) << d.message;
    }
  }

  // Same loop with both calls on the host: no forced steady transfers.
  const PredictResult clean = predict(
      "<loop count=\"8\">\n"
      "  <call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "  <call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n"
      "</loop>\n",
      {{"init", {"cpu"}}, {"consume", {"cpu"}}}, options);
  EXPECT_EQ(count_code(clean.bag, "PL073"), 0) << clean.bag.format_text();
}

TEST(PredictDiag, PL074PredictedDeviceCapacityOverflow) {
  PredictOptions options;
  options.machine = sim::MachineConfig::platform_c2050();  // 3 GiB C2050
  options.sizes = {{"v", std::size_t{4} << 30}};           // 4 GiB container
  const PredictResult result = predict(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n",
      {{"init", {"cuda"}}}, options);
  EXPECT_EQ(count_code(result.bag, "PL074"), 1) << result.bag.format_text();

  options.sizes = {{"v", 1u << 20}};
  const PredictResult clean = predict(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n",
      {{"init", {"cuda"}}}, options);
  EXPECT_EQ(count_code(clean.bag, "PL074"), 0) << clean.bag.format_text();
}

TEST(PredictDiag, PL075AcceleratorVariantPredictedUnprofitable) {
  rt::PerfRegistry models;
  const std::size_t bytes = 4096;
  // Device "speedup" is negative at this size: 10 ms on CUDA vs 1 ms on the
  // host, plus the forced H2D transfer.
  calibrate(models, "consume", rt::Arch::kCpu, bytes, 1e-3);
  calibrate(models, "consume", rt::Arch::kCuda, bytes, 10e-3);
  PredictOptions options;
  options.machine = sim::MachineConfig::platform_c2050();
  options.sizes = {{"v", bytes}};
  const PredictResult result = predict(
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n",
      {{"consume", {"cpu", "cuda"}}}, options, &models);
  EXPECT_EQ(count_code(result.bag, "PL075"), 1) << result.bag.format_text();

  // Flip the times: the accelerator wins, no note.
  rt::PerfRegistry fast;
  calibrate(fast, "consume", rt::Arch::kCpu, bytes, 10e-3);
  calibrate(fast, "consume", rt::Arch::kCuda, bytes, 1e-3);
  const PredictResult clean = predict(
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n",
      {{"consume", {"cpu", "cuda"}}}, options, &fast);
  EXPECT_EQ(count_code(clean.bag, "PL075"), 0) << clean.bag.format_text();
}

TEST(PredictDiag, PL076WhatIfTargetUnreachable) {
  rt::PerfRegistry models;
  const std::size_t bytes = 4096;
  calibrate(models, "init", rt::Arch::kCuda, bytes, 1e-3);
  PredictOptions options;
  options.machine = sim::MachineConfig::platform_c2050();
  options.sizes = {{"v", bytes}};
  const desc::Repository repo = make_repo(
      main_with_calls(
          "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"),
      {{"init", {"cuda"}}});
  // 1 task in ~1 ms: a million tasks/s is unreachable with any device count.
  const WhatIfResult unreachable =
      analyze::whatif(repo, models, options, 1e6, 8);
  EXPECT_EQ(unreachable.min_devices, -1);
  EXPECT_EQ(count_code(unreachable.bag, "PL076"), 1)
      << unreachable.bag.format_text();
  EXPECT_EQ(unreachable.makespans.size(), 8u);

  const WhatIfResult fine = analyze::whatif(repo, models, options, 10.0, 8);
  EXPECT_EQ(fine.min_devices, 1);
  EXPECT_EQ(count_code(fine.bag, "PL076"), 0) << fine.bag.format_text();
  EXPECT_GE(fine.achieved_tasks_per_second, 10.0);
}

TEST(PredictDiag, PL077PredictionBudgetExhausted) {
  PredictOptions options;
  options.machine = sim::MachineConfig::cpu_only();
  options.max_steps = 2;
  const PredictResult result = predict(
      "<loop count=\"4\">\n"
      "  <call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "  <call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n"
      "</loop>\n",
      {{"init", {"cpu"}}, {"consume", {"cpu"}}}, options);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(count_code(result.bag, "PL077"), 1) << result.bag.format_text();

  options.max_steps = 0;  // default budget
  const PredictResult clean = predict(
      "<loop count=\"4\">\n"
      "  <call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
      "  <call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n"
      "</loop>\n",
      {{"init", {"cpu"}}, {"consume", {"cpu"}}}, options);
  EXPECT_TRUE(clean.completed);
  EXPECT_EQ(count_code(clean.bag, "PL077"), 0) << clean.bag.format_text();
}

// ---------------------------------------------------------------------------
// Placement, what-if scaling and reports
// ---------------------------------------------------------------------------

TEST(Predict, GreedyPlacementPrefersTheFasterSide) {
  rt::PerfRegistry models;
  const std::size_t bytes = 1u << 20;
  calibrate(models, "init", rt::Arch::kCpu, bytes, 50e-3);
  calibrate(models, "init", rt::Arch::kCuda, bytes, 1e-3);
  PredictOptions options;
  options.machine = sim::MachineConfig::platform_c2050();
  options.sizes = {{"v", bytes}};
  const PredictResult result = predict(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n",
      {{"init", {"cpu", "cuda"}}}, options, &models);
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_EQ(result.points[0].chosen, rt::Arch::kCuda);
  EXPECT_GT(result.device_exec_seconds, 0.0);
  EXPECT_EQ(result.host_exec_seconds, 0.0);
}

TEST(Predict, WhatIfMakespansDecreaseMonotonically) {
  rt::PerfRegistry models;
  const std::size_t bytes = 4096;
  calibrate(models, "init", rt::Arch::kCuda, bytes, 5e-3);
  PredictOptions options;
  options.machine = sim::MachineConfig::platform_c2050();
  options.sizes = {{"v", bytes}};
  const desc::Repository repo = make_repo(
      main_with_calls(
          "<loop count=\"6\">\n"
          "  <call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n"
          "</loop>\n"),
      {{"init", {"cuda"}}});
  const WhatIfResult result = analyze::whatif(repo, models, options, 1e9, 4);
  ASSERT_EQ(result.makespans.size(), 4u);
  for (std::size_t i = 1; i < result.makespans.size(); ++i) {
    EXPECT_LE(result.makespans[i], result.makespans[i - 1]);
  }
}

TEST(Predict, ReportsContainTheSchemaAndThePoints) {
  rt::PerfRegistry models;
  calibrate(models, "consume", rt::Arch::kCpu, 4096, 1e-3);
  PredictOptions options;
  options.machine = sim::MachineConfig::cpu_only();
  options.sizes = {{"v", 4096}};
  const PredictResult result = predict(
      "<call interface=\"consume\"><arg param=\"x\" data=\"v\"/></call>\n",
      {{"consume", {"cpu"}}}, options, &models);
  const std::string text = result.report_text();
  EXPECT_NE(text.find("predicted makespan"), std::string::npos);
  EXPECT_NE(text.find("consume"), std::string::npos);
  const std::string json = result.report_json();
  EXPECT_NE(json.find("\"schema\":\"peppher-predict-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"interface\":\"consume\""), std::string::npos);
}

TEST(Predict, EmptyMainPredictsZeroCost) {
  desc::Repository repo;
  rt::PerfRegistry models;
  const PredictResult result =
      analyze::predict_main(repo, models, PredictOptions{});
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.makespan.est, 0.0);
  EXPECT_TRUE(result.points.empty());
}

TEST(Predict, DisabledImplsNarrowTheVariantSet) {
  rt::PerfRegistry models;
  const std::size_t bytes = 1u << 20;
  calibrate(models, "init", rt::Arch::kCpu, bytes, 50e-3);
  calibrate(models, "init", rt::Arch::kCuda, bytes, 1e-3);
  PredictOptions options;
  options.machine = sim::MachineConfig::platform_c2050();
  options.sizes = {{"v", bytes}};
  options.lint.disable_impls = {"cuda"};
  const PredictResult result = predict(
      "<call interface=\"init\"><arg param=\"y\" data=\"v\"/></call>\n",
      {{"init", {"cpu", "cuda"}}}, options, &models);
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_EQ(result.points[0].chosen, rt::Arch::kCpu);
}

}  // namespace
}  // namespace peppher
