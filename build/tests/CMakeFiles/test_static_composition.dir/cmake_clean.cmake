file(REMOVE_RECURSE
  "CMakeFiles/test_static_composition.dir/test_static_composition.cpp.o"
  "CMakeFiles/test_static_composition.dir/test_static_composition.cpp.o.d"
  "test_static_composition"
  "test_static_composition.pdb"
  "test_static_composition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_static_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
