# Empty dependencies file for test_static_composition.
# This may be replaced when dependencies are built.
