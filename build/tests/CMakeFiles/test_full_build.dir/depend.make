# Empty dependencies file for test_full_build.
# This may be replaced when dependencies are built.
