file(REMOVE_RECURSE
  "CMakeFiles/test_full_build.dir/test_full_build.cpp.o"
  "CMakeFiles/test_full_build.dir/test_full_build.cpp.o.d"
  "test_full_build"
  "test_full_build.pdb"
  "test_full_build[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_full_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
