# Empty compiler generated dependencies file for test_containers_typed.
# This may be replaced when dependencies are built.
