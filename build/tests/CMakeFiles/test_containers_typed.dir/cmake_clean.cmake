file(REMOVE_RECURSE
  "CMakeFiles/test_containers_typed.dir/test_containers_typed.cpp.o"
  "CMakeFiles/test_containers_typed.dir/test_containers_typed.cpp.o.d"
  "test_containers_typed"
  "test_containers_typed.pdb"
  "test_containers_typed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_containers_typed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
