file(REMOVE_RECURSE
  "CMakeFiles/test_cdecl.dir/test_cdecl.cpp.o"
  "CMakeFiles/test_cdecl.dir/test_cdecl.cpp.o.d"
  "test_cdecl"
  "test_cdecl.pdb"
  "test_cdecl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cdecl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
