# Empty compiler generated dependencies file for test_cdecl.
# This may be replaced when dependencies are built.
