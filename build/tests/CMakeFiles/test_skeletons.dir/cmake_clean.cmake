file(REMOVE_RECURSE
  "CMakeFiles/test_skeletons.dir/test_skeletons.cpp.o"
  "CMakeFiles/test_skeletons.dir/test_skeletons.cpp.o.d"
  "test_skeletons"
  "test_skeletons.pdb"
  "test_skeletons[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skeletons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
