
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_skeletons.cpp" "tests/CMakeFiles/test_skeletons.dir/test_skeletons.cpp.o" "gcc" "tests/CMakeFiles/test_skeletons.dir/test_skeletons.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/peppher_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/compose/CMakeFiles/peppher_compose.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/peppher_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lib/CMakeFiles/peppher_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/descriptor/CMakeFiles/peppher_descriptor.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/peppher_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/cdecl/CMakeFiles/peppher_cdecl.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/peppher_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/peppher_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/peppher_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
