file(REMOVE_RECURSE
  "CMakeFiles/test_scheduler_unit.dir/test_scheduler_unit.cpp.o"
  "CMakeFiles/test_scheduler_unit.dir/test_scheduler_unit.cpp.o.d"
  "test_scheduler_unit"
  "test_scheduler_unit.pdb"
  "test_scheduler_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scheduler_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
