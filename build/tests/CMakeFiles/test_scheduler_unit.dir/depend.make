# Empty dependencies file for test_scheduler_unit.
# This may be replaced when dependencies are built.
