file(REMOVE_RECURSE
  "CMakeFiles/composition_tool_demo.dir/composition_tool_demo.cpp.o"
  "CMakeFiles/composition_tool_demo.dir/composition_tool_demo.cpp.o.d"
  "composition_tool_demo"
  "composition_tool_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composition_tool_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
