# Empty compiler generated dependencies file for composition_tool_demo.
# This may be replaced when dependencies are built.
