# Empty dependencies file for ode_solver.
# This may be replaced when dependencies are built.
