file(REMOVE_RECURSE
  "CMakeFiles/ode_solver.dir/ode_solver.cpp.o"
  "CMakeFiles/ode_solver.dir/ode_solver.cpp.o.d"
  "ode_solver"
  "ode_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ode_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
