# Empty compiler generated dependencies file for hybrid_matmul.
# This may be replaced when dependencies are built.
