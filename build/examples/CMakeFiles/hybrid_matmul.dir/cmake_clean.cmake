file(REMOVE_RECURSE
  "CMakeFiles/hybrid_matmul.dir/hybrid_matmul.cpp.o"
  "CMakeFiles/hybrid_matmul.dir/hybrid_matmul.cpp.o.d"
  "hybrid_matmul"
  "hybrid_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
