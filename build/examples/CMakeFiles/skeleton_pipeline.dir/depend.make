# Empty dependencies file for skeleton_pipeline.
# This may be replaced when dependencies are built.
