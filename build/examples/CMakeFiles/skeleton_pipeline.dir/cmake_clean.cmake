file(REMOVE_RECURSE
  "CMakeFiles/skeleton_pipeline.dir/skeleton_pipeline.cpp.o"
  "CMakeFiles/skeleton_pipeline.dir/skeleton_pipeline.cpp.o.d"
  "skeleton_pipeline"
  "skeleton_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skeleton_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
