# Empty compiler generated dependencies file for spmv_pipeline.
# This may be replaced when dependencies are built.
