file(REMOVE_RECURSE
  "CMakeFiles/spmv_pipeline.dir/spmv_pipeline.cpp.o"
  "CMakeFiles/spmv_pipeline.dir/spmv_pipeline.cpp.o.d"
  "spmv_pipeline"
  "spmv_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmv_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
