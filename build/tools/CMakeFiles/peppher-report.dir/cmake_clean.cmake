file(REMOVE_RECURSE
  "CMakeFiles/peppher-report.dir/report_main.cpp.o"
  "CMakeFiles/peppher-report.dir/report_main.cpp.o.d"
  "peppher-report"
  "peppher-report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peppher-report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
