# Empty dependencies file for peppher-report.
# This may be replaced when dependencies are built.
