# Empty compiler generated dependencies file for compose.
# This may be replaced when dependencies are built.
