file(REMOVE_RECURSE
  "CMakeFiles/compose.dir/compose_main.cpp.o"
  "CMakeFiles/compose.dir/compose_main.cpp.o.d"
  "compose"
  "compose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
