file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_ode_overhead.dir/bench/bench_fig7_ode_overhead.cpp.o"
  "CMakeFiles/bench_fig7_ode_overhead.dir/bench/bench_fig7_ode_overhead.cpp.o.d"
  "bench/bench_fig7_ode_overhead"
  "bench/bench_fig7_ode_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_ode_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
