# Empty dependencies file for bench_fig7_ode_overhead.
# This may be replaced when dependencies are built.
