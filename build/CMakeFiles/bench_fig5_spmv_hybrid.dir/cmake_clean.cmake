file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_spmv_hybrid.dir/bench/bench_fig5_spmv_hybrid.cpp.o"
  "CMakeFiles/bench_fig5_spmv_hybrid.dir/bench/bench_fig5_spmv_hybrid.cpp.o.d"
  "bench/bench_fig5_spmv_hybrid"
  "bench/bench_fig5_spmv_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_spmv_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
