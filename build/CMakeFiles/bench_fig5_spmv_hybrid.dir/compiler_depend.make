# Empty compiler generated dependencies file for bench_fig5_spmv_hybrid.
# This may be replaced when dependencies are built.
