file(REMOVE_RECURSE
  "CMakeFiles/bench_task_overhead.dir/bench/bench_task_overhead.cpp.o"
  "CMakeFiles/bench_task_overhead.dir/bench/bench_task_overhead.cpp.o.d"
  "bench/bench_task_overhead"
  "bench/bench_task_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_task_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
