# Empty compiler generated dependencies file for bench_task_overhead.
# This may be replaced when dependencies are built.
