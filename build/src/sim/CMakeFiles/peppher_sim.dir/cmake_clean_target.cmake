file(REMOVE_RECURSE
  "libpeppher_sim.a"
)
