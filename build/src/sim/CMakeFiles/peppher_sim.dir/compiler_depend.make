# Empty compiler generated dependencies file for peppher_sim.
# This may be replaced when dependencies are built.
