file(REMOVE_RECURSE
  "CMakeFiles/peppher_sim.dir/device.cpp.o"
  "CMakeFiles/peppher_sim.dir/device.cpp.o.d"
  "libpeppher_sim.a"
  "libpeppher_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peppher_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
