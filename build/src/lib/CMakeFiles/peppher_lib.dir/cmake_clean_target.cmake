file(REMOVE_RECURSE
  "libpeppher_lib.a"
)
