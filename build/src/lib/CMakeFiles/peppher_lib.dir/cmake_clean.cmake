file(REMOVE_RECURSE
  "CMakeFiles/peppher_lib.dir/skeletons.cpp.o"
  "CMakeFiles/peppher_lib.dir/skeletons.cpp.o.d"
  "libpeppher_lib.a"
  "libpeppher_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peppher_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
