# Empty compiler generated dependencies file for peppher_lib.
# This may be replaced when dependencies are built.
