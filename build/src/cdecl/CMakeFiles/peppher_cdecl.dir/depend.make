# Empty dependencies file for peppher_cdecl.
# This may be replaced when dependencies are built.
