file(REMOVE_RECURSE
  "libpeppher_cdecl.a"
)
