file(REMOVE_RECURSE
  "CMakeFiles/peppher_cdecl.dir/cdecl.cpp.o"
  "CMakeFiles/peppher_cdecl.dir/cdecl.cpp.o.d"
  "libpeppher_cdecl.a"
  "libpeppher_cdecl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peppher_cdecl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
