file(REMOVE_RECURSE
  "CMakeFiles/peppher_descriptor.dir/descriptor.cpp.o"
  "CMakeFiles/peppher_descriptor.dir/descriptor.cpp.o.d"
  "libpeppher_descriptor.a"
  "libpeppher_descriptor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peppher_descriptor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
