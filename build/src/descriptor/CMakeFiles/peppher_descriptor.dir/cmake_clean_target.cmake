file(REMOVE_RECURSE
  "libpeppher_descriptor.a"
)
