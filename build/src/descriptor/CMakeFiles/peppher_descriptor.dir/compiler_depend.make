# Empty compiler generated dependencies file for peppher_descriptor.
# This may be replaced when dependencies are built.
