file(REMOVE_RECURSE
  "CMakeFiles/peppher_xml.dir/xml.cpp.o"
  "CMakeFiles/peppher_xml.dir/xml.cpp.o.d"
  "libpeppher_xml.a"
  "libpeppher_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peppher_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
