# Empty compiler generated dependencies file for peppher_xml.
# This may be replaced when dependencies are built.
