file(REMOVE_RECURSE
  "libpeppher_xml.a"
)
