file(REMOVE_RECURSE
  "libpeppher_core.a"
)
