# Empty dependencies file for peppher_core.
# This may be replaced when dependencies are built.
