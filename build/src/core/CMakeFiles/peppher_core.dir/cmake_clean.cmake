file(REMOVE_RECURSE
  "CMakeFiles/peppher_core.dir/peppher.cpp.o"
  "CMakeFiles/peppher_core.dir/peppher.cpp.o.d"
  "libpeppher_core.a"
  "libpeppher_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peppher_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
