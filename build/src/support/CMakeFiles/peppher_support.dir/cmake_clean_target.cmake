file(REMOVE_RECURSE
  "libpeppher_support.a"
)
