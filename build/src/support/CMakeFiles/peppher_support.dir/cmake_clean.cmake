file(REMOVE_RECURSE
  "CMakeFiles/peppher_support.dir/error.cpp.o"
  "CMakeFiles/peppher_support.dir/error.cpp.o.d"
  "CMakeFiles/peppher_support.dir/fs.cpp.o"
  "CMakeFiles/peppher_support.dir/fs.cpp.o.d"
  "CMakeFiles/peppher_support.dir/log.cpp.o"
  "CMakeFiles/peppher_support.dir/log.cpp.o.d"
  "CMakeFiles/peppher_support.dir/rng.cpp.o"
  "CMakeFiles/peppher_support.dir/rng.cpp.o.d"
  "CMakeFiles/peppher_support.dir/strings.cpp.o"
  "CMakeFiles/peppher_support.dir/strings.cpp.o.d"
  "libpeppher_support.a"
  "libpeppher_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peppher_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
