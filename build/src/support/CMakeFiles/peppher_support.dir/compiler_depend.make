# Empty compiler generated dependencies file for peppher_support.
# This may be replaced when dependencies are built.
