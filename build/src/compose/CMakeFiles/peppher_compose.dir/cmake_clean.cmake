file(REMOVE_RECURSE
  "CMakeFiles/peppher_compose.dir/codegen.cpp.o"
  "CMakeFiles/peppher_compose.dir/codegen.cpp.o.d"
  "CMakeFiles/peppher_compose.dir/dispatch.cpp.o"
  "CMakeFiles/peppher_compose.dir/dispatch.cpp.o.d"
  "CMakeFiles/peppher_compose.dir/expand.cpp.o"
  "CMakeFiles/peppher_compose.dir/expand.cpp.o.d"
  "CMakeFiles/peppher_compose.dir/ir.cpp.o"
  "CMakeFiles/peppher_compose.dir/ir.cpp.o.d"
  "CMakeFiles/peppher_compose.dir/skeleton.cpp.o"
  "CMakeFiles/peppher_compose.dir/skeleton.cpp.o.d"
  "CMakeFiles/peppher_compose.dir/tool.cpp.o"
  "CMakeFiles/peppher_compose.dir/tool.cpp.o.d"
  "CMakeFiles/peppher_compose.dir/training.cpp.o"
  "CMakeFiles/peppher_compose.dir/training.cpp.o.d"
  "libpeppher_compose.a"
  "libpeppher_compose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peppher_compose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
