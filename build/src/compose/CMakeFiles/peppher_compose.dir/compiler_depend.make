# Empty compiler generated dependencies file for peppher_compose.
# This may be replaced when dependencies are built.
