file(REMOVE_RECURSE
  "libpeppher_compose.a"
)
