
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compose/codegen.cpp" "src/compose/CMakeFiles/peppher_compose.dir/codegen.cpp.o" "gcc" "src/compose/CMakeFiles/peppher_compose.dir/codegen.cpp.o.d"
  "/root/repo/src/compose/dispatch.cpp" "src/compose/CMakeFiles/peppher_compose.dir/dispatch.cpp.o" "gcc" "src/compose/CMakeFiles/peppher_compose.dir/dispatch.cpp.o.d"
  "/root/repo/src/compose/expand.cpp" "src/compose/CMakeFiles/peppher_compose.dir/expand.cpp.o" "gcc" "src/compose/CMakeFiles/peppher_compose.dir/expand.cpp.o.d"
  "/root/repo/src/compose/ir.cpp" "src/compose/CMakeFiles/peppher_compose.dir/ir.cpp.o" "gcc" "src/compose/CMakeFiles/peppher_compose.dir/ir.cpp.o.d"
  "/root/repo/src/compose/skeleton.cpp" "src/compose/CMakeFiles/peppher_compose.dir/skeleton.cpp.o" "gcc" "src/compose/CMakeFiles/peppher_compose.dir/skeleton.cpp.o.d"
  "/root/repo/src/compose/tool.cpp" "src/compose/CMakeFiles/peppher_compose.dir/tool.cpp.o" "gcc" "src/compose/CMakeFiles/peppher_compose.dir/tool.cpp.o.d"
  "/root/repo/src/compose/training.cpp" "src/compose/CMakeFiles/peppher_compose.dir/training.cpp.o" "gcc" "src/compose/CMakeFiles/peppher_compose.dir/training.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/descriptor/CMakeFiles/peppher_descriptor.dir/DependInfo.cmake"
  "/root/repo/build/src/cdecl/CMakeFiles/peppher_cdecl.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/peppher_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/peppher_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/peppher_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/peppher_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
