# Empty compiler generated dependencies file for peppher_apps.
# This may be replaced when dependencies are built.
