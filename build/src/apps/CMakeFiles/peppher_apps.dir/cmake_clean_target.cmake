file(REMOVE_RECURSE
  "libpeppher_apps.a"
)
