
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/bfs.cpp" "src/apps/CMakeFiles/peppher_apps.dir/bfs.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/bfs.cpp.o.d"
  "/root/repo/src/apps/cfd.cpp" "src/apps/CMakeFiles/peppher_apps.dir/cfd.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/cfd.cpp.o.d"
  "/root/repo/src/apps/drivers/bfs_direct.cpp" "src/apps/CMakeFiles/peppher_apps.dir/drivers/bfs_direct.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/drivers/bfs_direct.cpp.o.d"
  "/root/repo/src/apps/drivers/bfs_tool.cpp" "src/apps/CMakeFiles/peppher_apps.dir/drivers/bfs_tool.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/drivers/bfs_tool.cpp.o.d"
  "/root/repo/src/apps/drivers/cfd_direct.cpp" "src/apps/CMakeFiles/peppher_apps.dir/drivers/cfd_direct.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/drivers/cfd_direct.cpp.o.d"
  "/root/repo/src/apps/drivers/cfd_tool.cpp" "src/apps/CMakeFiles/peppher_apps.dir/drivers/cfd_tool.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/drivers/cfd_tool.cpp.o.d"
  "/root/repo/src/apps/drivers/drivers.cpp" "src/apps/CMakeFiles/peppher_apps.dir/drivers/drivers.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/drivers/drivers.cpp.o.d"
  "/root/repo/src/apps/drivers/hotspot_direct.cpp" "src/apps/CMakeFiles/peppher_apps.dir/drivers/hotspot_direct.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/drivers/hotspot_direct.cpp.o.d"
  "/root/repo/src/apps/drivers/hotspot_tool.cpp" "src/apps/CMakeFiles/peppher_apps.dir/drivers/hotspot_tool.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/drivers/hotspot_tool.cpp.o.d"
  "/root/repo/src/apps/drivers/lud_direct.cpp" "src/apps/CMakeFiles/peppher_apps.dir/drivers/lud_direct.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/drivers/lud_direct.cpp.o.d"
  "/root/repo/src/apps/drivers/lud_tool.cpp" "src/apps/CMakeFiles/peppher_apps.dir/drivers/lud_tool.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/drivers/lud_tool.cpp.o.d"
  "/root/repo/src/apps/drivers/nw_direct.cpp" "src/apps/CMakeFiles/peppher_apps.dir/drivers/nw_direct.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/drivers/nw_direct.cpp.o.d"
  "/root/repo/src/apps/drivers/nw_tool.cpp" "src/apps/CMakeFiles/peppher_apps.dir/drivers/nw_tool.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/drivers/nw_tool.cpp.o.d"
  "/root/repo/src/apps/drivers/ode_direct.cpp" "src/apps/CMakeFiles/peppher_apps.dir/drivers/ode_direct.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/drivers/ode_direct.cpp.o.d"
  "/root/repo/src/apps/drivers/ode_tool.cpp" "src/apps/CMakeFiles/peppher_apps.dir/drivers/ode_tool.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/drivers/ode_tool.cpp.o.d"
  "/root/repo/src/apps/drivers/particlefilter_direct.cpp" "src/apps/CMakeFiles/peppher_apps.dir/drivers/particlefilter_direct.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/drivers/particlefilter_direct.cpp.o.d"
  "/root/repo/src/apps/drivers/particlefilter_tool.cpp" "src/apps/CMakeFiles/peppher_apps.dir/drivers/particlefilter_tool.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/drivers/particlefilter_tool.cpp.o.d"
  "/root/repo/src/apps/drivers/pathfinder_direct.cpp" "src/apps/CMakeFiles/peppher_apps.dir/drivers/pathfinder_direct.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/drivers/pathfinder_direct.cpp.o.d"
  "/root/repo/src/apps/drivers/pathfinder_tool.cpp" "src/apps/CMakeFiles/peppher_apps.dir/drivers/pathfinder_tool.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/drivers/pathfinder_tool.cpp.o.d"
  "/root/repo/src/apps/drivers/sgemm_direct.cpp" "src/apps/CMakeFiles/peppher_apps.dir/drivers/sgemm_direct.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/drivers/sgemm_direct.cpp.o.d"
  "/root/repo/src/apps/drivers/sgemm_tool.cpp" "src/apps/CMakeFiles/peppher_apps.dir/drivers/sgemm_tool.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/drivers/sgemm_tool.cpp.o.d"
  "/root/repo/src/apps/drivers/spmv_direct.cpp" "src/apps/CMakeFiles/peppher_apps.dir/drivers/spmv_direct.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/drivers/spmv_direct.cpp.o.d"
  "/root/repo/src/apps/drivers/spmv_tool.cpp" "src/apps/CMakeFiles/peppher_apps.dir/drivers/spmv_tool.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/drivers/spmv_tool.cpp.o.d"
  "/root/repo/src/apps/hotspot.cpp" "src/apps/CMakeFiles/peppher_apps.dir/hotspot.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/hotspot.cpp.o.d"
  "/root/repo/src/apps/lud.cpp" "src/apps/CMakeFiles/peppher_apps.dir/lud.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/lud.cpp.o.d"
  "/root/repo/src/apps/nw.cpp" "src/apps/CMakeFiles/peppher_apps.dir/nw.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/nw.cpp.o.d"
  "/root/repo/src/apps/ode.cpp" "src/apps/CMakeFiles/peppher_apps.dir/ode.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/ode.cpp.o.d"
  "/root/repo/src/apps/particlefilter.cpp" "src/apps/CMakeFiles/peppher_apps.dir/particlefilter.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/particlefilter.cpp.o.d"
  "/root/repo/src/apps/pathfinder.cpp" "src/apps/CMakeFiles/peppher_apps.dir/pathfinder.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/pathfinder.cpp.o.d"
  "/root/repo/src/apps/sgemm.cpp" "src/apps/CMakeFiles/peppher_apps.dir/sgemm.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/sgemm.cpp.o.d"
  "/root/repo/src/apps/sparse.cpp" "src/apps/CMakeFiles/peppher_apps.dir/sparse.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/sparse.cpp.o.d"
  "/root/repo/src/apps/spmv.cpp" "src/apps/CMakeFiles/peppher_apps.dir/spmv.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/spmv.cpp.o.d"
  "/root/repo/src/apps/suite.cpp" "src/apps/CMakeFiles/peppher_apps.dir/suite.cpp.o" "gcc" "src/apps/CMakeFiles/peppher_apps.dir/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/peppher_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/peppher_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/peppher_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/peppher_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
