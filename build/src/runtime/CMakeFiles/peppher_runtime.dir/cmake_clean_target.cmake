file(REMOVE_RECURSE
  "libpeppher_runtime.a"
)
