file(REMOVE_RECURSE
  "CMakeFiles/peppher_runtime.dir/codelet.cpp.o"
  "CMakeFiles/peppher_runtime.dir/codelet.cpp.o.d"
  "CMakeFiles/peppher_runtime.dir/engine.cpp.o"
  "CMakeFiles/peppher_runtime.dir/engine.cpp.o.d"
  "CMakeFiles/peppher_runtime.dir/memory.cpp.o"
  "CMakeFiles/peppher_runtime.dir/memory.cpp.o.d"
  "CMakeFiles/peppher_runtime.dir/perfmodel.cpp.o"
  "CMakeFiles/peppher_runtime.dir/perfmodel.cpp.o.d"
  "CMakeFiles/peppher_runtime.dir/scheduler.cpp.o"
  "CMakeFiles/peppher_runtime.dir/scheduler.cpp.o.d"
  "CMakeFiles/peppher_runtime.dir/trace.cpp.o"
  "CMakeFiles/peppher_runtime.dir/trace.cpp.o.d"
  "CMakeFiles/peppher_runtime.dir/types.cpp.o"
  "CMakeFiles/peppher_runtime.dir/types.cpp.o.d"
  "libpeppher_runtime.a"
  "libpeppher_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peppher_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
