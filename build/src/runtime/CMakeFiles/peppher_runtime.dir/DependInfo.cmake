
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/codelet.cpp" "src/runtime/CMakeFiles/peppher_runtime.dir/codelet.cpp.o" "gcc" "src/runtime/CMakeFiles/peppher_runtime.dir/codelet.cpp.o.d"
  "/root/repo/src/runtime/engine.cpp" "src/runtime/CMakeFiles/peppher_runtime.dir/engine.cpp.o" "gcc" "src/runtime/CMakeFiles/peppher_runtime.dir/engine.cpp.o.d"
  "/root/repo/src/runtime/memory.cpp" "src/runtime/CMakeFiles/peppher_runtime.dir/memory.cpp.o" "gcc" "src/runtime/CMakeFiles/peppher_runtime.dir/memory.cpp.o.d"
  "/root/repo/src/runtime/perfmodel.cpp" "src/runtime/CMakeFiles/peppher_runtime.dir/perfmodel.cpp.o" "gcc" "src/runtime/CMakeFiles/peppher_runtime.dir/perfmodel.cpp.o.d"
  "/root/repo/src/runtime/scheduler.cpp" "src/runtime/CMakeFiles/peppher_runtime.dir/scheduler.cpp.o" "gcc" "src/runtime/CMakeFiles/peppher_runtime.dir/scheduler.cpp.o.d"
  "/root/repo/src/runtime/trace.cpp" "src/runtime/CMakeFiles/peppher_runtime.dir/trace.cpp.o" "gcc" "src/runtime/CMakeFiles/peppher_runtime.dir/trace.cpp.o.d"
  "/root/repo/src/runtime/types.cpp" "src/runtime/CMakeFiles/peppher_runtime.dir/types.cpp.o" "gcc" "src/runtime/CMakeFiles/peppher_runtime.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/peppher_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/peppher_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
