# Empty dependencies file for peppher_runtime.
# This may be replaced when dependencies are built.
